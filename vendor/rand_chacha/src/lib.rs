//! Offline stand-in for `rand_chacha`: a real ChaCha8 block cipher driving
//! the vendored [`rand`] traits. The keystream is the standard ChaCha
//! sequence (64-bit counter, zero nonce, sequential LE words), which is the
//! same word stream upstream `rand_chacha` 0.3 exposes through `BlockRng` —
//! combined with the rand-compatible `seed_from_u64` expansion, seeded
//! generators reproduce upstream output bit-for-bit.

use rand::{RngCore, SeedableRng};

/// ChaCha with 8 rounds, seeded from 32 bytes.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// Cipher input block: constants, key, counter, nonce.
    state: [u32; 16],
    /// Buffered keystream words not yet handed out.
    buf: [u32; 16],
    /// Next unread index into `buf`; 16 means "refill".
    idx: usize,
}

#[inline(always)]
fn quarter_round(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut working = self.state;
        // 8 rounds = 4 double rounds (column + diagonal).
        for _ in 0..4 {
            quarter_round(&mut working, 0, 4, 8, 12);
            quarter_round(&mut working, 1, 5, 9, 13);
            quarter_round(&mut working, 2, 6, 10, 14);
            quarter_round(&mut working, 3, 7, 11, 15);
            quarter_round(&mut working, 0, 5, 10, 15);
            quarter_round(&mut working, 1, 6, 11, 12);
            quarter_round(&mut working, 2, 7, 8, 13);
            quarter_round(&mut working, 3, 4, 9, 14);
        }
        for (b, (w, s)) in self.buf.iter_mut().zip(working.iter().zip(&self.state)) {
            *b = w.wrapping_add(*s);
        }
        // 64-bit block counter in words 12..14.
        let ctr = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = ctr as u32;
        self.state[13] = (ctr >> 32) as u32;
        self.idx = 0;
    }
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: Self::Seed) -> Self {
        let mut state = [0u32; 16];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646e;
        state[2] = 0x7962_2d32;
        state[3] = 0x6b20_6574;
        for i in 0..8 {
            state[4 + i] = u32::from_le_bytes([
                seed[4 * i],
                seed[4 * i + 1],
                seed[4 * i + 2],
                seed[4 * i + 3],
            ]);
        }
        // counter + nonce start at zero
        ChaCha8Rng {
            state,
            buf: [0; 16],
            idx: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let v = self.buf[self.idx];
        self.idx += 1;
        v
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(4) {
            let bytes = self.next_u32().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn unit_floats_in_range_and_roughly_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let n = 10_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn clone_preserves_stream_position() {
        let mut a = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..5 {
            a.next_u32();
        }
        let mut b = a.clone();
        for _ in 0..20 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
