//! Offline stand-in for `rustc-hash`: the Fx multiply-xor hasher plus the
//! usual `FxHashMap` / `FxHashSet` aliases.

use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// Fast, non-cryptographic hasher (the rustc "Fx" construction).
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add_to_hash(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

pub type FxBuildHasher = BuildHasherDefault<FxHasher>;
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_roundtrip() {
        let mut m: FxHashMap<String, usize> = FxHashMap::default();
        m.insert("a".into(), 1);
        m.insert("b".into(), 2);
        assert_eq!(m.get("a"), Some(&1));
        assert_eq!(m.len(), 2);
    }
}
