//! Offline stand-in for `criterion`.
//!
//! Provides the macro/type surface the workspace's benches use
//! (`criterion_group!`, `criterion_main!`, `Criterion::benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Bencher::iter`).
//!
//! Under `cargo bench` (a `--bench` flag is present in argv) each closure
//! is timed over a modest number of iterations and a mean is printed.
//! Under `cargo test` the closures run exactly once — matching real
//! criterion's smoke-test behaviour that keeps test runs fast.

use std::time::Instant;

pub use std::hint::black_box;

pub struct Criterion {
    timed: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        let timed = std::env::args().any(|a| a == "--bench");
        Criterion { timed }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl std::fmt::Display) -> BenchmarkGroup {
        BenchmarkGroup {
            name: name.to_string(),
            timed: self.timed,
            sample_size: 10,
        }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        run_one("", self.timed, 10, &id.to_string(), |b| f(b));
        self
    }
}

pub struct BenchmarkGroup {
    name: String,
    timed: bool,
    sample_size: usize,
}

impl BenchmarkGroup {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl std::fmt::Display,
        mut f: F,
    ) -> &mut Self {
        run_one(
            &self.name,
            self.timed,
            self.sample_size,
            &id.to_string(),
            |b| f(b),
        );
        self
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&self.name, self.timed, self.sample_size, &id.0, |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(name: impl std::fmt::Display, param: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{name}/{param}"))
    }
}

pub struct Bencher {
    timed: bool,
    samples: usize,
    /// Mean seconds per iteration, filled by `iter` in timed mode.
    mean_s: f64,
}

impl Bencher {
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        if !self.timed {
            black_box(f());
            return;
        }
        // Warm-up, then timed samples.
        for _ in 0..2 {
            black_box(f());
        }
        let start = Instant::now();
        for _ in 0..self.samples {
            black_box(f());
        }
        self.mean_s = start.elapsed().as_secs_f64() / self.samples as f64;
    }
}

fn run_one<F: FnMut(&mut Bencher)>(group: &str, timed: bool, samples: usize, id: &str, mut f: F) {
    let mut b = Bencher {
        timed,
        samples,
        mean_s: 0.0,
    };
    f(&mut b);
    if timed {
        let label = if group.is_empty() {
            id.to_string()
        } else {
            format!("{group}/{id}")
        };
        let m = b.mean_s;
        let human = if m >= 1.0 {
            format!("{m:.3} s")
        } else if m >= 1e-3 {
            format!("{:.3} ms", m * 1e3)
        } else if m >= 1e-6 {
            format!("{:.3} µs", m * 1e6)
        } else {
            format!("{:.1} ns", m * 1e9)
        };
        println!("bench: {label:<48} {human}/iter ({samples} samples)");
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
