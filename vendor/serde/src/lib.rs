//! Offline stand-in for `serde`.
//!
//! The registry is unreachable in this build environment, so the workspace
//! vendors a small serialization framework with serde's *surface*: the
//! [`Serialize`] / [`Deserialize`] traits, `#[derive(Serialize, Deserialize)]`
//! via the companion `serde_derive` proc-macro, and a `serde_json`-compatible
//! encoding (unit enum variants as strings, data variants as single-key
//! objects, integer map keys stringified, `Option` as value-or-null).
//!
//! Instead of upstream's visitor architecture, both traits go through one
//! self-describing [`Value`] tree — dramatically simpler, and sufficient for
//! the workspace's needs (JSON persistence of models, labels and experiment
//! records).

use std::collections::{BTreeMap, HashMap};

/// Self-describing data tree; the meeting point of both traits.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    I64(i64),
    U64(u64),
    F64(f64),
    Str(String),
    Array(Vec<Value>),
    /// Insertion-ordered object (stable field order in output).
    Object(Vec<(String, Value)>),
}

impl Value {
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Value::F64(v) => Some(v),
            Value::I64(v) => Some(v as f64),
            Value::U64(v) => Some(v as f64),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Value::U64(v) => Some(v),
            Value::I64(v) if v >= 0 => Some(v as u64),
            Value::F64(v) if v >= 0.0 && v.fract() == 0.0 => Some(v as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Value::I64(v) => Some(v),
            Value::U64(v) if v <= i64::MAX as u64 => Some(v as i64),
            Value::F64(v) if v.fract() == 0.0 => Some(v as i64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Value::Bool(b) => Some(b),
            _ => None,
        }
    }
}

/// Serialization / deserialization error.
#[derive(Debug, Clone)]
pub struct Error(String);

impl Error {
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

pub trait Serialize {
    fn to_value(&self) -> Value;
}

pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---- helpers used by derive-generated code -------------------------------

/// Fetch a struct field by name. Missing fields fall back to decoding
/// `Null`, which lets `Option` fields tolerate absent keys.
pub fn field<T: Deserialize>(v: &Value, name: &str) -> Result<T, Error> {
    match v {
        Value::Object(pairs) => {
            for (k, val) in pairs {
                if k == name {
                    return T::from_value(val)
                        .map_err(|e| Error::msg(format!("field `{name}`: {e}")));
                }
            }
            T::from_value(&Value::Null).map_err(|_| Error::msg(format!("missing field `{name}`")))
        }
        _ => Err(Error::msg(format!("expected object with field `{name}`"))),
    }
}

/// Fetch a positional element of a tuple / tuple-variant payload.
pub fn element<T: Deserialize>(v: &Value, idx: usize) -> Result<T, Error> {
    match v {
        Value::Array(items) => match items.get(idx) {
            Some(item) => T::from_value(item),
            None => Err(Error::msg(format!("missing tuple element {idx}"))),
        },
        _ => Err(Error::msg("expected array")),
    }
}

/// Build a single-key object — serde_json's encoding of a data-carrying
/// enum variant.
pub fn variant(name: &str, payload: Value) -> Value {
    Value::Object(vec![(name.to_string(), payload)])
}

// ---- primitive impls -----------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::msg("expected bool"))
    }
}

macro_rules! unsigned_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = v.as_u64().ok_or_else(|| Error::msg("expected unsigned integer"))?;
                <$t>::try_from(raw).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}

unsigned_impl!(u8, u16, u32, u64, usize);

macro_rules! signed_impl {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::I64(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let raw = v.as_i64().ok_or_else(|| Error::msg("expected integer"))?;
                <$t>::try_from(raw).map_err(|_| Error::msg("integer out of range"))
            }
        }
    )*};
}

signed_impl!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match *v {
            // serde_json writes non-finite floats as null.
            Value::Null => Ok(f64::NAN),
            _ => v.as_f64().ok_or_else(|| Error::msg("expected number")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::msg("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::msg("expected char"))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::msg("expected single-char string")),
        }
    }
}

// ---- composite impls -----------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        T::to_value(self)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::msg("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Deserialize, B: Deserialize> Deserialize for (A, B) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok((element(v, 0)?, element(v, 1)?))
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![
            self.0.to_value(),
            self.1.to_value(),
            self.2.to_value(),
        ])
    }
}

impl<A: Deserialize, B: Deserialize, C: Deserialize> Deserialize for (A, B, C) {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok((element(v, 0)?, element(v, 1)?, element(v, 2)?))
    }
}

/// Map keys: JSON objects require string keys, so integer keys are
/// stringified exactly like serde_json does.
pub trait MapKey: Sized {
    fn to_key(&self) -> String;
    fn from_key(s: &str) -> Result<Self, Error>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(s: &str) -> Result<Self, Error> {
        Ok(s.to_string())
    }
}

macro_rules! int_key_impl {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(s: &str) -> Result<Self, Error> {
                s.parse().map_err(|_| Error::msg(format!("invalid map key `{s}`")))
            }
        }
    )*};
}

int_key_impl!(usize, u64, u32, i64, i32);

impl<K: MapKey + Ord, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.to_key(), v.to_value()))
                .collect(),
        )
    }
}

impl<K: MapKey + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(pairs) => pairs
                .iter()
                .map(|(k, val)| Ok((K::from_key(k)?, V::from_value(val)?)))
                .collect(),
            _ => Err(Error::msg("expected object")),
        }
    }
}

impl<K: MapKey + Eq + std::hash::Hash, V: Serialize, S: std::hash::BuildHasher> Serialize
    for HashMap<K, V, S>
{
    fn to_value(&self) -> Value {
        // Sort keys for stable output (HashMap iteration order is random).
        let mut pairs: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_key(), v.to_value()))
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(pairs)
    }
}

impl<K: MapKey + Eq + std::hash::Hash, V: Deserialize, S: std::hash::BuildHasher + Default>
    Deserialize for HashMap<K, V, S>
{
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(pairs) => pairs
                .iter()
                .map(|(k, val)| Ok((K::from_key(k)?, V::from_value(val)?)))
                .collect(),
            _ => Err(Error::msg("expected object")),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(_: &Value) -> Result<Self, Error> {
        Ok(())
    }
}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
