//! Offline stand-in for `proptest`.
//!
//! Implements the subset the workspace's property tests use: the
//! [`Strategy`] trait over numeric ranges, `prop::collection::vec`,
//! `prop::option::of`, `any::<T>()`, [`ProptestConfig`], and the
//! `proptest!` / `prop_assert!` / `prop_assert_eq!` macros.
//!
//! Differences from upstream, deliberately accepted:
//! * no shrinking — a failing case panics with the raw inputs' case index;
//! * deterministic seeding per test name (no persisted failure regressions).

/// Deterministic per-test random source (SplitMix64 seeded by test name).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    pub fn for_test(name: &str) -> Self {
        // FNV-1a over the test path keeps seeds stable across runs.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A generator of random values for one test argument.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! float_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                self.start + (self.end - self.start) * rng.unit_f64() as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                self.start() + (self.end() - self.start()) * rng.unit_f64() as $t
            }
        }
    )*};
}

float_strategy!(f64, f32);

macro_rules! int_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}

int_strategy!(usize, u64, u32, u16, u8, i64, i32, isize);

/// Types `any::<T>()` can produce.
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for usize {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as usize
    }
}

impl Arbitrary for u64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64()
    }
}

impl Arbitrary for i64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() as i64
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        // Finite, wide-but-tame values; upstream's NaN/inf corner cases are
        // exercised by dedicated unit tests instead.
        (rng.unit_f64() - 0.5) * 2e6
    }
}

pub struct AnyStrategy<T> {
    _marker: core::marker::PhantomData<T>,
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: core::marker::PhantomData,
    }
}

/// Runner configuration (`cases` = iterations per property).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

pub mod prop {
    pub mod collection {
        use crate::{Strategy, TestRng};

        /// Collection size specifier: exact `usize` or a range.
        pub trait IntoSizeRange {
            /// (inclusive lo, exclusive hi)
            fn bounds(self) -> (usize, usize);
        }

        impl IntoSizeRange for usize {
            fn bounds(self) -> (usize, usize) {
                (self, self + 1)
            }
        }

        impl IntoSizeRange for core::ops::Range<usize> {
            fn bounds(self) -> (usize, usize) {
                (self.start, self.end)
            }
        }

        impl IntoSizeRange for core::ops::RangeInclusive<usize> {
            fn bounds(self) -> (usize, usize) {
                (*self.start(), *self.end() + 1)
            }
        }

        pub struct VecStrategy<S> {
            elem: S,
            lo: usize,
            hi: usize,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let len = if self.lo + 1 >= self.hi {
                    self.lo
                } else {
                    self.lo + (rng.next_u64() % (self.hi - self.lo) as u64) as usize
                };
                (0..len).map(|_| self.elem.generate(rng)).collect()
            }
        }

        pub fn vec<S: Strategy>(elem: S, size: impl IntoSizeRange) -> VecStrategy<S> {
            let (lo, hi) = size.bounds();
            assert!(lo < hi, "empty vec size range");
            VecStrategy { elem, lo, hi }
        }
    }

    pub mod option {
        use crate::{Strategy, TestRng};

        pub struct OptionStrategy<S> {
            inner: S,
        }

        impl<S: Strategy> Strategy for OptionStrategy<S> {
            type Value = Option<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                // ~25% None, enough to exercise missing-data paths.
                if rng.next_u64().is_multiple_of(4) {
                    None
                } else {
                    Some(self.inner.generate(rng))
                }
            }
        }

        pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
            OptionStrategy { inner }
        }
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            panic!("prop_assert failed: {}", stringify!($cond));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            panic!($($fmt)+);
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            panic!(
                "prop_assert_eq failed: {} != {}",
                stringify!($left),
                stringify!($right)
            );
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            panic!($($fmt)+);
        }
    }};
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    ($cfg:expr; $(
        #[test]
        fn $name:ident ( $( $arg:ident in $strat:expr ),+ $(,)? ) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let cfg = $cfg;
            let mut __rng =
                $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..cfg.cases {
                $( let $arg = $crate::Strategy::generate(&($strat), &mut __rng); )+
                $body
            }
        }
    )*};
}

pub mod prelude {
    pub use crate::prop;
    pub use crate::{any, prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn small() -> impl Strategy<Value = Vec<f64>> {
        prop::collection::vec(-1.0f64..1.0, 1..8)
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn vec_len_respects_bounds(v in small(), exact in prop::collection::vec(any::<bool>(), 3)) {
            prop_assert!(!v.is_empty() && v.len() < 8);
            prop_assert_eq!(exact.len(), 3);
            prop_assert!(v.iter().all(|x| (-1.0..1.0).contains(x)));
        }

        #[test]
        fn option_of_mixes(vals in prop::collection::vec(prop::option::of(0.0f64..1.0), 64)) {
            let nones = vals.iter().filter(|v| v.is_none()).count();
            prop_assert!(nones < 64, "all None is implausible");
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::TestRng;
        let mut a = TestRng::for_test("x");
        let mut b = TestRng::for_test("x");
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
