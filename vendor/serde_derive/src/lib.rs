//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` against
//! the vendored value-tree `serde`, parsing the item's token stream by hand
//! (no `syn` / `quote` — the registry is unreachable, so this crate has zero
//! dependencies). Supported shapes cover everything the workspace derives:
//!
//! * structs with named fields (including lifetime-generic structs holding
//!   references, for serialize-only envelopes);
//! * tuple / newtype / unit structs;
//! * enums with unit variants (optionally with explicit discriminants),
//!   newtype variants, tuple variants and struct variants — encoded the
//!   serde_json way (`"Variant"` / `{"Variant": payload}`).
//!
//! `#[serde(...)]` field/container attributes are NOT interpreted; the
//! workspace does not use any.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum VariantShape {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<(String, VariantShape)>),
}

struct Item {
    name: String,
    /// `"<'a>"`-style lifetime generics, or empty. Type parameters are not
    /// supported (the workspace never derives on type-generic items).
    generics: String,
    shape: Shape,
}

fn is_punct(t: Option<&TokenTree>, c: char) -> bool {
    matches!(t, Some(TokenTree::Punct(p)) if p.as_char() == c)
}

fn is_ident(t: Option<&TokenTree>, s: &str) -> bool {
    matches!(t, Some(TokenTree::Ident(id)) if id.to_string() == s)
}

/// Skip attributes (`#[...]`, including doc comments) and visibility
/// (`pub`, `pub(...)`).
fn skip_attrs_vis(toks: &[TokenTree], i: &mut usize) {
    loop {
        if is_punct(toks.get(*i), '#') {
            *i += 2; // '#' + bracket group
        } else if is_ident(toks.get(*i), "pub") {
            *i += 1;
            if let Some(TokenTree::Group(g)) = toks.get(*i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    *i += 1;
                }
            }
        } else {
            return;
        }
    }
}

fn expect_ident(toks: &[TokenTree], i: &mut usize, what: &str) -> String {
    match toks.get(*i) {
        Some(TokenTree::Ident(id)) => {
            *i += 1;
            id.to_string()
        }
        other => panic!("serde derive: expected {what}, found {other:?}"),
    }
}

/// Parse `<'a, 'b>`-style lifetime-only generics into a reusable string.
fn parse_generics(toks: &[TokenTree], i: &mut usize) -> String {
    if !is_punct(toks.get(*i), '<') {
        return String::new();
    }
    *i += 1;
    let mut out = String::from("<");
    loop {
        match toks.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '>' => {
                *i += 1;
                out.push('>');
                return out;
            }
            Some(TokenTree::Punct(p)) if p.as_char() == '\'' => out.push('\''),
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => out.push_str(", "),
            Some(TokenTree::Ident(id)) => {
                out.push_str(&id.to_string());
                out.push(' ');
            }
            other => panic!("serde derive: unsupported generics token {other:?}"),
        }
        *i += 1;
    }
}

/// Parse `name: Type, ...` named fields, returning field names. Types are
/// skipped with angle-bracket depth tracking (groups are atomic tokens).
fn parse_named_fields(stream: TokenStream) -> Vec<String> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut names = Vec::new();
    while i < toks.len() {
        skip_attrs_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = expect_ident(&toks, &mut i, "field name");
        if !is_punct(toks.get(i), ':') {
            panic!("serde derive: expected `:` after field `{name}`");
        }
        i += 1;
        let mut depth = 0i32;
        while i < toks.len() {
            match &toks[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        names.push(name);
    }
    names
}

/// Count top-level comma-separated fields of a tuple struct / variant.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    if toks.is_empty() {
        return 0;
    }
    let mut depth = 0i32;
    let mut fields = 1;
    let mut last_was_comma = false;
    for t in &toks {
        last_was_comma = false;
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                fields += 1;
                last_was_comma = true;
            }
            _ => {}
        }
    }
    if last_was_comma {
        fields -= 1; // trailing comma
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<(String, VariantShape)> {
    let toks: Vec<TokenTree> = stream.into_iter().collect();
    let mut i = 0;
    let mut variants = Vec::new();
    while i < toks.len() {
        skip_attrs_vis(&toks, &mut i);
        if i >= toks.len() {
            break;
        }
        let name = expect_ident(&toks, &mut i, "variant name");
        let shape = match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                i += 1;
                VariantShape::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(g.stream());
                i += 1;
                VariantShape::Named(fields)
            }
            _ => VariantShape::Unit,
        };
        // Optional explicit discriminant: `= expr` (skipped to the comma).
        if is_punct(toks.get(i), '=') {
            i += 1;
            while i < toks.len() && !is_punct(toks.get(i), ',') {
                i += 1;
            }
        }
        if is_punct(toks.get(i), ',') {
            i += 1;
        }
        variants.push((name, shape));
    }
    variants
}

fn parse_item(input: TokenStream) -> Item {
    let toks: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_vis(&toks, &mut i);
    let kw = expect_ident(&toks, &mut i, "`struct` or `enum`");
    let name = expect_ident(&toks, &mut i, "item name");
    let generics = parse_generics(&toks, &mut i);
    let shape = match (kw.as_str(), toks.get(i)) {
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Shape::NamedStruct(parse_named_fields(g.stream()))
        }
        ("struct", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Parenthesis => {
            Shape::TupleStruct(count_tuple_fields(g.stream()))
        }
        ("struct", t) if is_punct(t, ';') => Shape::UnitStruct,
        ("enum", Some(TokenTree::Group(g))) if g.delimiter() == Delimiter::Brace => {
            Shape::Enum(parse_variants(g.stream()))
        }
        (kw, other) => panic!("serde derive: unsupported item `{kw}` body {other:?}"),
    };
    Item {
        name,
        generics,
        shape,
    }
}

fn tuple_bindings(n: usize) -> Vec<String> {
    (0..n).map(|k| format!("__f{k}")).collect()
}

#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let g = &item.generics;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let pairs: Vec<String> = fields
                .iter()
                .map(|f| {
                    format!("(String::from(\"{f}\"), ::serde::Serialize::to_value(&self.{f}))")
                })
                .collect();
            format!("::serde::Value::Object(vec![{}])", pairs.join(", "))
        }
        Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::Serialize::to_value(&self.{k})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::UnitStruct => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(v, shape)| match shape {
                    VariantShape::Unit => {
                        format!("{name}::{v} => ::serde::Value::Str(String::from(\"{v}\")),")
                    }
                    VariantShape::Tuple(1) => format!(
                        "{name}::{v}(__f0) => \
                         ::serde::variant(\"{v}\", ::serde::Serialize::to_value(__f0)),"
                    ),
                    VariantShape::Tuple(n) => {
                        let binds = tuple_bindings(*n);
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        format!(
                            "{name}::{v}({}) => ::serde::variant(\"{v}\", \
                             ::serde::Value::Array(vec![{}])),",
                            binds.join(", "),
                            items.join(", ")
                        )
                    }
                    VariantShape::Named(fields) => {
                        let pairs: Vec<String> = fields
                            .iter()
                            .map(|f| {
                                format!(
                                    "(String::from(\"{f}\"), ::serde::Serialize::to_value({f}))"
                                )
                            })
                            .collect();
                        format!(
                            "{name}::{v} {{ {} }} => ::serde::variant(\"{v}\", \
                             ::serde::Value::Object(vec![{}])),",
                            fields.join(", "),
                            pairs.join(", ")
                        )
                    }
                })
                .collect();
            format!("match self {{ {} }}", arms.join(" "))
        }
    };
    let out = format!(
        "impl{g} ::serde::Serialize for {name}{g} {{\n\
            fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
         }}"
    );
    out.parse()
        .expect("serde derive: generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = &item.name;
    let g = &item.generics;
    let body = match &item.shape {
        Shape::NamedStruct(fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| format!("{f}: ::serde::field(__v, \"{f}\")?"))
                .collect();
            format!("Ok({name} {{ {} }})", inits.join(", "))
        }
        Shape::TupleStruct(1) => {
            format!("Ok({name}(::serde::Deserialize::from_value(__v)?))")
        }
        Shape::TupleStruct(n) => {
            let items: Vec<String> = (0..*n)
                .map(|k| format!("::serde::element(__v, {k})?"))
                .collect();
            format!("Ok({name}({}))", items.join(", "))
        }
        Shape::UnitStruct => format!("Ok({name})"),
        Shape::Enum(variants) => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, s)| matches!(s, VariantShape::Unit))
                .map(|(v, _)| format!("\"{v}\" => Ok({name}::{v}),"))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|(v, shape)| match shape {
                    VariantShape::Unit => None,
                    VariantShape::Tuple(1) => Some(format!(
                        "\"{v}\" => Ok({name}::{v}(::serde::Deserialize::from_value(_payload)?)),"
                    )),
                    VariantShape::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|k| format!("::serde::element(_payload, {k})?"))
                            .collect();
                        Some(format!("\"{v}\" => Ok({name}::{v}({})),", items.join(", ")))
                    }
                    VariantShape::Named(fields) => {
                        let inits: Vec<String> = fields
                            .iter()
                            .map(|f| format!("{f}: ::serde::field(_payload, \"{f}\")?"))
                            .collect();
                        Some(format!(
                            "\"{v}\" => Ok({name}::{v} {{ {} }}),",
                            inits.join(", ")
                        ))
                    }
                })
                .collect();
            format!(
                "match __v {{\n\
                    ::serde::Value::Str(__s) => match __s.as_str() {{\n\
                        {unit}\n\
                        _other => Err(::serde::Error::msg(\
                            format!(\"unknown variant `{{}}` of {name}\", _other))),\n\
                    }},\n\
                    ::serde::Value::Object(__pairs) if __pairs.len() == 1 => {{\n\
                        let (__key, _payload) = &__pairs[0];\n\
                        match __key.as_str() {{\n\
                            {data}\n\
                            _other => Err(::serde::Error::msg(\
                                format!(\"unknown variant `{{}}` of {name}\", _other))),\n\
                        }}\n\
                    }}\n\
                    _ => Err(::serde::Error::msg(\"expected enum value for {name}\")),\n\
                }}",
                unit = unit_arms.join("\n"),
                data = data_arms.join("\n"),
            )
        }
    };
    let out = format!(
        "impl{g} ::serde::Deserialize for {name}{g} {{\n\
            fn from_value(__v: &::serde::Value) -> Result<Self, ::serde::Error> {{ {body} }}\n\
         }}"
    );
    out.parse()
        .expect("serde derive: generated Deserialize impl must parse")
}
