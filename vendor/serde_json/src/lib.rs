//! Offline stand-in for `serde_json`, writing and parsing JSON against the
//! vendored `serde` value tree. Supports `to_string` / `to_string_pretty` /
//! `from_str` / `to_value` and a flat-literal `json!` macro — the surface
//! the workspace uses.

pub use serde::{Error, Value};

pub type Result<T> = std::result::Result<T, Error>;

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Serialize to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialize to a 2-space-indented JSON string.
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parse a JSON string into any deserializable type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::msg(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_value(&v)
}

// ---- writer --------------------------------------------------------------

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // Rust's shortest-roundtrip Display is valid JSON for
                // finite values (no exponent notation is emitted).
                out.push_str(&x.to_string());
                if x.fract() == 0.0 && x.abs() < 1e15 && !x.to_string().contains('.') {
                    out.push_str(".0");
                }
            } else {
                // serde_json writes non-finite floats as null.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(pairs) => {
            if pairs.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, level + 1);
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(w) = indent {
        out.push('\n');
        for _ in 0..w * level {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser --------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::msg(format!(
                "expected `{}` at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            )))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                if self.eat_literal("null") {
                    Ok(Value::Null)
                } else {
                    Err(Error::msg("invalid literal"))
                }
            }
            Some(b't') => {
                if self.eat_literal("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(Error::msg("invalid literal"))
                }
            }
            Some(b'f') => {
                if self.eat_literal("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(Error::msg("invalid literal"))
                }
            }
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.parse_value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b']') => {
                            self.pos += 1;
                            return Ok(Value::Array(items));
                        }
                        _ => return Err(Error::msg(format!("bad array at byte {}", self.pos))),
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut pairs = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(pairs));
                }
                loop {
                    self.skip_ws();
                    let key = self.parse_string()?;
                    self.skip_ws();
                    self.expect(b':')?;
                    let val = self.parse_value()?;
                    pairs.push((key, val));
                    self.skip_ws();
                    match self.peek() {
                        Some(b',') => {
                            self.pos += 1;
                        }
                        Some(b'}') => {
                            self.pos += 1;
                            return Ok(Value::Object(pairs));
                        }
                        _ => return Err(Error::msg(format!("bad object at byte {}", self.pos))),
                    }
                }
            }
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            other => Err(Error::msg(format!(
                "unexpected {:?} at byte {}",
                other, self.pos
            ))),
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::msg("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.parse_hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.eat_literal("\\u") {
                                    return Err(Error::msg("lone high surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                let code =
                                    0x10000 + ((hi - 0xD800) << 10) + (lo.wrapping_sub(0xDC00));
                                char::from_u32(code).ok_or_else(|| Error::msg("bad surrogate"))?
                            } else {
                                char::from_u32(hi).ok_or_else(|| Error::msg("bad \\u escape"))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(Error::msg("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::msg("invalid utf-8"))?;
                    let c = rest.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::msg("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::msg("bad \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error::msg("bad \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let s = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::msg("bad number"))?;
        if !is_float {
            if let Ok(n) = s.parse::<i64>() {
                return Ok(if n >= 0 {
                    Value::U64(n as u64)
                } else {
                    Value::I64(n)
                });
            }
            if let Ok(n) = s.parse::<u64>() {
                return Ok(Value::U64(n));
            }
        }
        s.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::msg(format!("invalid number `{s}`")))
    }
}

/// Flat JSON literal macro: object / array literals with expression values,
/// plus a passthrough arm for any serializable expression.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $val:expr),* $(,)? }) => {
        $crate::Value::Object(vec![
            $( ($key.to_string(), $crate::to_value(&$val)) ),*
        ])
    };
    ([ $($val:expr),* $(,)? ]) => {
        $crate::Value::Array(vec![ $( $crate::to_value(&$val) ),* ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for s in ["null", "true", "false", "0", "-7", "3.25", "\"hi\\n\""] {
            let v: Value = from_str(s).unwrap();
            let back = to_string(&v).unwrap();
            let v2: Value = from_str(&back).unwrap();
            assert_eq!(v, v2, "{s}");
        }
    }

    #[test]
    fn float_roundtrip_bits() {
        for x in [
            0.1,
            1.0 / 3.0,
            1e-12,
            123456.789,
            -2.5e10,
            f64::MIN_POSITIVE,
        ] {
            let s = to_string(&x).unwrap();
            let y: f64 = from_str(&s).unwrap();
            assert_eq!(x.to_bits(), y.to_bits(), "{s}");
        }
    }

    #[test]
    fn nan_becomes_null() {
        let s = to_string(&f64::NAN).unwrap();
        assert_eq!(s, "null");
        let back: f64 = from_str("null").unwrap();
        assert!(back.is_nan());
    }

    #[test]
    fn nested_containers() {
        let v = json!({ "a": vec![1usize, 2], "b": "x", "c": 1.5 });
        let s = to_string(&v).unwrap();
        let v2: Value = from_str(&s).unwrap();
        assert_eq!(v, v2);
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n"));
        let v3: Value = from_str(&pretty).unwrap();
        assert_eq!(v, v3);
    }

    #[test]
    fn unicode_escapes() {
        let v: Value = from_str("\"\\u00e9\\ud83d\\ude00\"").unwrap();
        assert_eq!(v, Value::Str("é😀".to_string()));
    }
}
