//! Offline stand-in for `rayon`, backed by a persistent thread pool.
//!
//! The build environment cannot reach a crate registry, so the workspace
//! vendors the subset of rayon's API it actually uses: `par_iter`,
//! `into_par_iter` (slices, `Vec`, `Range<usize>`), `par_chunks_mut`,
//! `map` / `enumerate` / `for_each` / `any` / `collect` / `sum` / `unzip`,
//! and [`current_num_threads`].
//!
//! Two properties matter more here than raw scheduling cleverness:
//!
//! 1. **Ordering** — results are always concatenated in input order, and
//!    reductions (`sum`, `collect`, `unzip`) fold the ordered result
//!    sequentially, so every combinator is *bitwise deterministic*
//!    regardless of thread count, chunk size, or which worker ran which
//!    chunk. Upstream rayon guarantees this for `collect` but not for
//!    `sum`; we guarantee it across the board, which the workspace's
//!    determinism tests rely on.
//! 2. **Thread-count control** — the pool width is overridable at
//!    runtime through [`set_thread_count_override`] so determinism tests
//!    can flip between serial and parallel execution in-process, and
//!    cappable per-thread through [`set_thread_parallelism_cap`] so the
//!    streaming engine can divide cores between shards without
//!    oversubscribing.
//!
//! # Scheduling
//!
//! Earlier versions spawned a fresh `std::thread::scope` per parallel
//! call, which put two syscalls and a stack allocation on every matmul
//! band. This version keeps a process-global pool of lazily-spawned
//! workers that park on a condvar between jobs:
//!
//! * A parallel call splits its items into `width × OVERPARTITION`
//!   chunks and **deals** them into `width` lanes of contiguous chunk
//!   indices, one lane per expected participant.
//! * The job is published to a global queue, enough workers are woken
//!   (spawned on first use, up to [`MAX_THREADS`]` - 1`), and the caller
//!   itself participates — correctness never depends on a worker ever
//!   arriving.
//! * Each participant drains its own lane front-to-back, then **steals**
//!   from other lanes back-to-front. Lane ranges are packed into a
//!   single `AtomicU64` (`lo << 32 | hi`), so claim and steal are plain
//!   CAS loops and each chunk index is claimed exactly once.
//! * Chunk outputs land in per-chunk slots and the caller concatenates
//!   them in input order after the job's completion latch drops to zero,
//!   which is what makes the schedule invisible to the result.
//!
//! A panic inside a task is caught per-chunk, the first payload is
//! stashed, every remaining chunk still runs (so the completion latch
//! always reaches zero and nothing leaks), and the caller re-raises the
//! payload with `resume_unwind` — workers survive and the pool is not
//! poisoned. Nested parallel calls from inside a task are fine: a
//! claimed chunk is always completed by its claimant, so the wait graph
//! bottoms out and cannot cycle.
//!
//! Workers are detached daemon threads parked on a condvar; process
//! exit while they are parked is a clean shutdown (nothing to join,
//! no destructors pending).

use std::any::Any;
use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::time::Instant;

/// Hard ceiling on pool participants (workers + caller). Far above any
/// machine this workspace targets; exists so a bogus override cannot
/// spawn unbounded threads.
pub const MAX_THREADS: usize = 64;

/// How many chunks each expected participant's lane receives. A little
/// overpartitioning is what makes stealing effective on imbalanced
/// workloads without shrinking chunks into scheduling noise.
const OVERPARTITION: usize = 4;

// ---------------------------------------------------------------------
// Thread-count configuration
// ---------------------------------------------------------------------

/// Process-wide test override; 0 = unset. Takes precedence over the
/// (cached) `RAYON_NUM_THREADS` env var.
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Per-thread parallelism cap; 0 = uncapped. See
    /// [`set_thread_parallelism_cap`].
    static TLS_CAP: Cell<usize> = const { Cell::new(0) };
}

/// `RAYON_NUM_THREADS`, read **once** at first use (upstream behaviour).
/// Runtime `set_var` is invisible after init — tests that need to vary
/// the width in-process use [`set_thread_count_override`] instead.
fn env_threads() -> Option<usize> {
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
    })
}

/// Cached `available_parallelism`: on Linux it walks the cgroup
/// filesystem, which costs ~15 µs per call — enough to dominate a small
/// matmul when every kernel dispatch asks for the thread count.
fn available() -> usize {
    static AVAILABLE: OnceLock<usize> = OnceLock::new();
    *AVAILABLE.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Number of threads a parallel call issued from this thread will use:
/// the test override if set, else the cached `RAYON_NUM_THREADS`, else
/// cached `available_parallelism` — then clamped by this thread's
/// parallelism cap (if any) and by [`MAX_THREADS`].
pub fn current_num_threads() -> usize {
    let base = match OVERRIDE.load(Ordering::Relaxed) {
        0 => env_threads().unwrap_or_else(available),
        n => n,
    };
    let base = base.clamp(1, MAX_THREADS);
    let cap = TLS_CAP.with(|c| c.get());
    if cap > 0 {
        base.min(cap)
    } else {
        base
    }
}

/// Test-only override of the pool width (`None` restores the cached env
/// / `available_parallelism` default). Process-global: tests that vary
/// it must serialise themselves (the workspace's determinism tests hold
/// a mutex around it). The pool grows workers on demand, so an override
/// larger than the initial width still gets real threads.
pub fn set_thread_count_override(n: Option<usize>) {
    OVERRIDE.store(n.map_or(0, |v| v.max(1)), Ordering::Relaxed);
}

/// The currently-set test override, if any.
pub fn thread_count_override() -> Option<usize> {
    match OVERRIDE.load(Ordering::Relaxed) {
        0 => None,
        n => Some(n),
    }
}

/// Cap the parallel width of calls issued **from the current thread**
/// (`None` lifts the cap); returns the previous cap. The streaming
/// engine sets this in each shard worker so `shards × kernel threads`
/// cannot oversubscribe the machine. Results are unaffected — every
/// combinator is bitwise deterministic in the width — only scheduling
/// changes. The cap applies to calls made on this thread; pool workers
/// executing stolen chunks run leaf kernels and do not re-dispatch.
pub fn set_thread_parallelism_cap(cap: Option<usize>) -> Option<usize> {
    TLS_CAP.with(|c| {
        let prev = c.get();
        c.set(cap.map_or(0, |v| v.max(1)));
        match prev {
            0 => None,
            p => Some(p),
        }
    })
}

// ---------------------------------------------------------------------
// The pool
// ---------------------------------------------------------------------

/// Erased handle workers use to help with a published job.
trait Job: Send + Sync {
    /// Claim and run chunks until none remain anywhere in the job.
    fn participate(&self);
    /// Every chunk has been claimed (not necessarily finished).
    fn drained(&self) -> bool;
}

struct PoolState {
    jobs: VecDeque<Arc<dyn Job>>,
    spawned: usize,
}

struct Pool {
    state: Mutex<PoolState>,
    cv: Condvar,
    // Counters behind `pool_stats()`; all relaxed — they are telemetry,
    // not synchronisation.
    jobs_submitted: AtomicU64,
    tasks_executed: AtomicU64,
    steals: AtomicU64,
    parks: AtomicU64,
    unparks: AtomicU64,
    busy_ns: Vec<AtomicU64>,
}

fn pool() -> &'static Pool {
    static POOL: OnceLock<Pool> = OnceLock::new();
    POOL.get_or_init(|| Pool {
        state: Mutex::new(PoolState {
            jobs: VecDeque::new(),
            spawned: 0,
        }),
        cv: Condvar::new(),
        jobs_submitted: AtomicU64::new(0),
        tasks_executed: AtomicU64::new(0),
        steals: AtomicU64::new(0),
        parks: AtomicU64::new(0),
        unparks: AtomicU64::new(0),
        busy_ns: (0..MAX_THREADS - 1).map(|_| AtomicU64::new(0)).collect(),
    })
}

/// One scheduling snapshot of the pool, for `ns-obs` export and the
/// shard-scaling benchmark.
#[derive(Clone, Debug, Default)]
pub struct PoolStats {
    /// Worker threads spawned so far (excludes callers).
    pub workers: usize,
    /// Jobs currently published and not yet fully claimed.
    pub queued_jobs: usize,
    /// Parallel jobs submitted since process start.
    pub jobs_submitted: u64,
    /// Chunks (tasks) executed.
    pub tasks_executed: u64,
    /// Chunks claimed from another participant's lane.
    pub steals: u64,
    /// Worker park transitions (condvar waits entered).
    pub parks: u64,
    /// Worker unpark transitions (condvar waits returned).
    pub unparks: u64,
    /// Per-worker busy time in nanoseconds, indexed by worker id;
    /// length = `workers`.
    pub busy_ns: Vec<u64>,
}

/// Read the pool's scheduling counters.
pub fn pool_stats() -> PoolStats {
    let p = pool();
    let (workers, queued_jobs) = {
        let s = p.state.lock().unwrap();
        (s.spawned, s.jobs.len())
    };
    PoolStats {
        workers,
        queued_jobs,
        jobs_submitted: p.jobs_submitted.load(Ordering::Relaxed),
        tasks_executed: p.tasks_executed.load(Ordering::Relaxed),
        steals: p.steals.load(Ordering::Relaxed),
        parks: p.parks.load(Ordering::Relaxed),
        unparks: p.unparks.load(Ordering::Relaxed),
        busy_ns: p.busy_ns[..workers]
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect(),
    }
}

fn worker_loop(idx: usize) {
    let p = pool();
    loop {
        let job: Arc<dyn Job> = {
            let mut s = p.state.lock().unwrap();
            loop {
                s.jobs.retain(|j| !j.drained());
                if let Some(j) = s.jobs.front() {
                    break j.clone();
                }
                p.parks.fetch_add(1, Ordering::Relaxed);
                s = p.cv.wait(s).unwrap();
                p.unparks.fetch_add(1, Ordering::Relaxed);
            }
        };
        let t0 = Instant::now();
        job.participate();
        p.busy_ns[idx].fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
    }
}

/// Publish `job` and make sure at least `width - 1` workers exist to
/// help with it (the caller is the remaining participant).
fn publish(job: Arc<dyn Job>, width: usize) {
    let p = pool();
    {
        let mut s = p.state.lock().unwrap();
        let want = (width - 1).min(MAX_THREADS - 1);
        while s.spawned < want {
            let idx = s.spawned;
            let spawned = std::thread::Builder::new()
                .name(format!("rayon-worker-{idx}"))
                .spawn(move || worker_loop(idx))
                .is_ok();
            if !spawned {
                // Thread creation failing is not fatal: the caller
                // participates and will drain the job alone.
                break;
            }
            s.spawned += 1;
        }
        s.jobs.push_back(job);
    }
    p.jobs_submitted.fetch_add(1, Ordering::Relaxed);
    p.cv.notify_all();
}

/// Drop fully-claimed jobs from the queue (callers do this after their
/// job drains so parked workers never wake for a stale entry).
fn sweep_drained() {
    let p = pool();
    let mut s = p.state.lock().unwrap();
    s.jobs.retain(|j| !j.drained());
}

// ---------------------------------------------------------------------
// Lane ranges: a contiguous span of chunk indices packed lo<<32|hi.
// ---------------------------------------------------------------------

#[inline]
fn pack(lo: u32, hi: u32) -> u64 {
    ((lo as u64) << 32) | hi as u64
}

#[inline]
fn unpack(v: u64) -> (u32, u32) {
    ((v >> 32) as u32, v as u32)
}

/// Claim the front index of a lane (the lane owner's fast path).
fn pop_front(lane: &AtomicU64) -> Option<usize> {
    let mut cur = lane.load(Ordering::Relaxed);
    loop {
        let (lo, hi) = unpack(cur);
        if lo >= hi {
            return None;
        }
        match lane.compare_exchange_weak(cur, pack(lo + 1, hi), Ordering::AcqRel, Ordering::Relaxed)
        {
            Ok(_) => return Some(lo as usize),
            Err(now) => cur = now,
        }
    }
}

/// Claim the back index of a lane (the thief's path — opposite end from
/// the owner, so contention only appears when a lane is nearly empty).
fn pop_back(lane: &AtomicU64) -> Option<usize> {
    let mut cur = lane.load(Ordering::Relaxed);
    loop {
        let (lo, hi) = unpack(cur);
        if lo >= hi {
            return None;
        }
        match lane.compare_exchange_weak(cur, pack(lo, hi - 1), Ordering::AcqRel, Ordering::Relaxed)
        {
            Ok(_) => return Some((hi - 1) as usize),
            Err(now) => cur = now,
        }
    }
}

// ---------------------------------------------------------------------
// The map job
// ---------------------------------------------------------------------

/// A parallel ordered map published to the pool.
///
/// `f` is stored as a raw pointer because the closure (and the items it
/// captures by reference) live on the caller's stack; the caller blocks
/// on the completion latch until every chunk has finished, so the
/// pointer is valid whenever a participant dereferences it. After the
/// latch drops, stragglers still holding the `Arc` only ever touch the
/// atomics (`drained`) or drop emptied `Option` slots.
struct MapJob<I, R, F> {
    lanes: Vec<AtomicU64>,
    next_participant: AtomicUsize,
    inputs: Vec<Mutex<Option<Vec<I>>>>,
    outputs: Vec<Mutex<Option<Vec<R>>>>,
    f: *const F,
    /// Chunks not yet finished; the caller waits for zero.
    pending: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn Any + Send>>>,
}

// SAFETY: `f` is only dereferenced while the submitting caller blocks
// (see the struct docs); with `F: Sync` shared calls are fine, and the
// `I`/`R` payloads only cross threads via mutex-guarded `Option`s.
unsafe impl<I: Send, R: Send, F: Sync> Send for MapJob<I, R, F> {}
unsafe impl<I: Send, R: Send, F: Sync> Sync for MapJob<I, R, F> {}

impl<I: Send, R: Send, F: Fn(I) -> R + Sync> MapJob<I, R, F> {
    fn run_chunk(&self, c: usize) {
        let items = self.inputs[c].lock().unwrap().take();
        let Some(items) = items else { return };
        // SAFETY: caller is latched until `pending` hits zero.
        let f = unsafe { &*self.f };
        match catch_unwind(AssertUnwindSafe(|| {
            items.into_iter().map(f).collect::<Vec<R>>()
        })) {
            Ok(out) => *self.outputs[c].lock().unwrap() = Some(out),
            Err(payload) => {
                let mut p = self.panic.lock().unwrap();
                if p.is_none() {
                    *p = Some(payload);
                }
            }
        }
        pool().tasks_executed.fetch_add(1, Ordering::Relaxed);
        let mut pending = self.pending.lock().unwrap();
        *pending -= 1;
        if *pending == 0 {
            self.done.notify_all();
        }
    }
}

impl<I: Send, R: Send, F: Fn(I) -> R + Sync> Job for MapJob<I, R, F> {
    fn participate(&self) {
        let lanes = self.lanes.len();
        let my_lane = self.next_participant.fetch_add(1, Ordering::Relaxed) % lanes;
        // Own lane, front to back.
        while let Some(c) = pop_front(&self.lanes[my_lane]) {
            self.run_chunk(c);
        }
        // Steal from the other lanes, back to front, until a full scan
        // finds nothing left.
        loop {
            let mut claimed = false;
            for off in 1..lanes {
                let l = (my_lane + off) % lanes;
                while let Some(c) = pop_back(&self.lanes[l]) {
                    pool().steals.fetch_add(1, Ordering::Relaxed);
                    self.run_chunk(c);
                    claimed = true;
                }
            }
            if !claimed {
                return;
            }
        }
    }

    fn drained(&self) -> bool {
        self.lanes.iter().all(|l| {
            let (lo, hi) = unpack(l.load(Ordering::Relaxed));
            lo >= hi
        })
    }
}

/// Map `f` over `items` on the persistent pool, preserving input order.
fn run_parallel<I, R, F>(items: Vec<I>, f: F) -> Vec<R>
where
    I: Send,
    R: Send,
    F: Fn(I) -> R + Sync,
{
    let n = items.len();
    let width = current_num_threads().min(n);
    if width <= 1 {
        return items.into_iter().map(f).collect();
    }

    // Deal the items into `width * OVERPARTITION` chunks, then the
    // chunks into `width` contiguous lanes. Chunk boundaries are
    // invisible to the result (ordered concatenation), so the counts
    // here are pure scheduling knobs.
    let n_chunks = (width * OVERPARTITION).min(n);
    let chunk_size = n.div_ceil(n_chunks);
    let mut inputs: Vec<Mutex<Option<Vec<I>>>> = Vec::with_capacity(n_chunks);
    let mut it = items.into_iter();
    loop {
        let c: Vec<I> = it.by_ref().take(chunk_size).collect();
        if c.is_empty() {
            break;
        }
        inputs.push(Mutex::new(Some(c)));
    }
    let n_chunks = inputs.len();
    let outputs: Vec<Mutex<Option<Vec<R>>>> = (0..n_chunks).map(|_| Mutex::new(None)).collect();

    let base = n_chunks / width;
    let rem = n_chunks % width;
    let mut lanes = Vec::with_capacity(width);
    let mut start = 0usize;
    for p in 0..width {
        let len = base + usize::from(p < rem);
        lanes.push(AtomicU64::new(pack(start as u32, (start + len) as u32)));
        start += len;
    }
    debug_assert_eq!(start, n_chunks);

    let job = Arc::new(MapJob {
        lanes,
        next_participant: AtomicUsize::new(0),
        inputs,
        outputs,
        f: &f as *const F,
        pending: Mutex::new(n_chunks),
        done: Condvar::new(),
        panic: Mutex::new(None),
    });

    // SAFETY: the erased Arc outlives this call only inside the pool
    // queue, where the only methods reachable are `participate` (claims
    // nothing once drained) and `drained` (atomics only); the borrowed
    // closure is never dereferenced after `pending` reaches zero, and
    // this function does not return before that.
    let erased: Arc<dyn Job + 'static> = unsafe {
        std::mem::transmute::<Arc<dyn Job + '_>, Arc<dyn Job + 'static>>(
            job.clone() as Arc<dyn Job + '_>
        )
    };
    publish(erased, width);

    // The caller is a participant too — the job completes even if no
    // worker ever picks it up.
    job.participate();

    let mut pending = job.pending.lock().unwrap();
    while *pending > 0 {
        pending = job.done.wait(pending).unwrap();
    }
    drop(pending);
    sweep_drained();

    if let Some(payload) = job.panic.lock().unwrap().take() {
        // Drain finished outputs first: results may borrow caller data,
        // and a straggling Arc in the queue must never be the one to
        // drop them.
        for slot in &job.outputs {
            slot.lock().unwrap().take();
        }
        resume_unwind(payload);
    }

    let mut out = Vec::with_capacity(n);
    for slot in &job.outputs {
        if let Some(v) = slot.lock().unwrap().take() {
            out.extend(v);
        }
    }
    debug_assert_eq!(out.len(), n);
    out
}

// ---------------------------------------------------------------------
// Public combinators (unchanged API)
// ---------------------------------------------------------------------

/// A materialized parallel iterator (items are collected eagerly).
pub struct ParIter<I> {
    items: Vec<I>,
}

/// A parallel iterator with a pending `map` stage.
pub struct ParMap<I, F> {
    items: Vec<I>,
    f: F,
}

impl<I: Send> ParIter<I> {
    pub fn map<R, F: Fn(I) -> R + Sync>(self, f: F) -> ParMap<I, F> {
        ParMap {
            items: self.items,
            f,
        }
    }

    pub fn enumerate(self) -> ParIter<(usize, I)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    pub fn for_each<F: Fn(I) + Sync>(self, f: F) {
        run_parallel(self.items, f);
    }

    pub fn any<F: Fn(I) -> bool + Sync>(self, f: F) -> bool {
        run_parallel(self.items, f).into_iter().any(|b| b)
    }
}

/// Splits a pair item for `unzip` without unconstrained impl parameters.
pub trait Pair {
    type A;
    type B;
    fn split(self) -> (Self::A, Self::B);
}

impl<A, B> Pair for (A, B) {
    type A = A;
    type B = B;
    fn split(self) -> (A, B) {
        self
    }
}

impl<I: Send, R: Send, F: Fn(I) -> R + Sync> ParMap<I, F> {
    pub fn collect<C: FromIterator<R>>(self) -> C {
        run_parallel(self.items, self.f).into_iter().collect()
    }

    pub fn for_each_result(self) {
        run_parallel(self.items, self.f);
    }

    /// Ordered, sequential reduction of the parallel map results —
    /// deterministic for floating-point sums regardless of thread count.
    pub fn sum<S: std::iter::Sum<R>>(self) -> S {
        run_parallel(self.items, self.f).into_iter().sum()
    }

    pub fn unzip<CA, CB>(self) -> (CA, CB)
    where
        R: Pair,
        CA: FromIterator<R::A>,
        CB: FromIterator<R::B>,
    {
        let pairs = run_parallel(self.items, self.f);
        let mut left = Vec::with_capacity(pairs.len());
        let mut right = Vec::with_capacity(pairs.len());
        for p in pairs {
            let (a, b) = p.split();
            left.push(a);
            right.push(b);
        }
        (left.into_iter().collect(), right.into_iter().collect())
    }
}

/// `par_iter` over shared slices.
pub trait ParallelSlice<T: Sync> {
    fn par_iter(&self) -> ParIter<&T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<&T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// `par_chunks_mut` over mutable slices.
pub trait ParallelSliceMut<T: Send> {
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<&mut [T]> {
        ParIter {
            items: self.chunks_mut(size.max(1)).collect(),
        }
    }
}

/// `into_par_iter` for owned collections and index ranges.
pub trait IntoParallelIterator {
    type Item;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

pub mod prelude {
    pub use super::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    /// Tests that touch the process-global override serialise on this.
    fn override_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn ordered_collect() {
        let v: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sum_matches_sequential_bitwise() {
        let xs: Vec<f64> = (0..997).map(|i| (i as f64).sin() * 1e-3).collect();
        let par: f64 = xs.par_iter().map(|&x| x * 1.000001).sum();
        let seq: f64 = xs.iter().map(|&x| x * 1.000001).sum();
        assert_eq!(par.to_bits(), seq.to_bits());
    }

    #[test]
    fn chunks_mut_cover_all() {
        let mut data = vec![0usize; 103];
        data.par_chunks_mut(10).enumerate().for_each(|(i, chunk)| {
            for (k, v) in chunk.iter_mut().enumerate() {
                *v = i * 10 + k;
            }
        });
        assert_eq!(data, (0..103).collect::<Vec<_>>());
    }

    #[test]
    fn any_and_unzip() {
        let xs = [1, 5, 9];
        assert!(xs.par_iter().any(|&x| x == 5));
        assert!(!xs.par_iter().any(|&x| x == 4));
        let (a, b): (Vec<usize>, Vec<usize>) = (0..10).into_par_iter().map(|i| (i, i * i)).unzip();
        assert_eq!(a.len(), 10);
        assert_eq!(b[3], 9);
    }

    #[test]
    fn override_controls_width_and_grows_workers() {
        let _g = override_lock();
        set_thread_count_override(Some(4));
        assert_eq!(current_num_threads(), 4);
        let v: Vec<usize> = (0..1000).into_par_iter().map(|i| i + 1).collect();
        assert_eq!(v[999], 1000);
        // Publishing a width-4 job must have spawned real workers.
        assert!(pool_stats().workers >= 1);
        set_thread_count_override(None);
    }

    #[test]
    fn tls_cap_forces_serial() {
        let _g = override_lock();
        set_thread_count_override(Some(8));
        let prev = set_thread_parallelism_cap(Some(1));
        assert_eq!(prev, None);
        assert_eq!(current_num_threads(), 1);
        let jobs_before = pool_stats().jobs_submitted;
        let v: Vec<usize> = (0..100).into_par_iter().map(|i| i).collect();
        assert_eq!(v.len(), 100);
        // Serial path: nothing was published to the pool.
        assert_eq!(pool_stats().jobs_submitted, jobs_before);
        assert_eq!(set_thread_parallelism_cap(None), Some(1));
        set_thread_count_override(None);
    }

    #[test]
    fn pool_counters_move() {
        let _g = override_lock();
        set_thread_count_override(Some(3));
        let before = pool_stats();
        let _: Vec<u64> = (0..5000u64)
            .collect::<Vec<_>>()
            .into_par_iter()
            .map(|i| i * 3)
            .collect();
        let after = pool_stats();
        assert!(after.jobs_submitted > before.jobs_submitted);
        assert!(after.tasks_executed > before.tasks_executed);
        assert_eq!(after.busy_ns.len(), after.workers);
        set_thread_count_override(None);
    }
}
