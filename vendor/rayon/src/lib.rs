//! Offline stand-in for `rayon`.
//!
//! The build environment cannot reach a crate registry, so the workspace
//! vendors the subset of rayon's API it actually uses: `par_iter`,
//! `into_par_iter` (slices, `Vec`, `Range<usize>`), `par_chunks_mut`,
//! `map` / `enumerate` / `for_each` / `any` / `collect` / `sum` / `unzip`,
//! and [`current_num_threads`].
//!
//! Two properties matter more here than raw scheduling cleverness:
//!
//! 1. **Ordering** — results are always concatenated in input order, and
//!    reductions (`sum`, `collect`, `unzip`) fold the ordered result
//!    sequentially, so every combinator is *bitwise deterministic*
//!    regardless of thread count. Upstream rayon guarantees this for
//!    `collect` but not for `sum`; we guarantee it across the board,
//!    which the workspace's determinism tests rely on.
//! 2. **Thread-count control** — `RAYON_NUM_THREADS` is re-read on every
//!    parallel call (upstream reads it once at global-pool init), so
//!    tests can flip between serial and parallel execution in-process.

/// Number of worker threads a parallel call will use.
///
/// The env override is re-read every call (see above), but the
/// `available_parallelism` fallback is cached: on Linux it walks the
/// cgroup filesystem, which costs ~15 µs per call — enough to dominate a
/// small matmul when every kernel dispatch asks for the thread count.
pub fn current_num_threads() -> usize {
    if let Ok(v) = std::env::var("RAYON_NUM_THREADS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    static AVAILABLE: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *AVAILABLE.get_or_init(|| {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    })
}

/// Map `f` over `items` on a scoped thread pool, preserving input order.
fn run_parallel<I, R, F>(items: Vec<I>, f: F) -> Vec<R>
where
    I: Send,
    R: Send,
    F: Fn(I) -> R + Sync,
{
    let n = items.len();
    let threads = current_num_threads().min(n);
    if threads <= 1 {
        return items.into_iter().map(f).collect();
    }
    let chunk_size = n.div_ceil(threads);
    let mut chunks: Vec<Vec<I>> = Vec::with_capacity(threads);
    let mut it = items.into_iter();
    loop {
        let c: Vec<I> = it.by_ref().take(chunk_size).collect();
        if c.is_empty() {
            break;
        }
        chunks.push(c);
    }
    let f = &f;
    let mut out = Vec::with_capacity(n);
    std::thread::scope(|s| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| s.spawn(move || c.into_iter().map(f).collect::<Vec<R>>()))
            .collect();
        for h in handles {
            out.extend(h.join().expect("parallel worker panicked"));
        }
    });
    out
}

/// A materialized parallel iterator (items are collected eagerly).
pub struct ParIter<I> {
    items: Vec<I>,
}

/// A parallel iterator with a pending `map` stage.
pub struct ParMap<I, F> {
    items: Vec<I>,
    f: F,
}

impl<I: Send> ParIter<I> {
    pub fn map<R, F: Fn(I) -> R + Sync>(self, f: F) -> ParMap<I, F> {
        ParMap {
            items: self.items,
            f,
        }
    }

    pub fn enumerate(self) -> ParIter<(usize, I)> {
        ParIter {
            items: self.items.into_iter().enumerate().collect(),
        }
    }

    pub fn for_each<F: Fn(I) + Sync>(self, f: F) {
        run_parallel(self.items, f);
    }

    pub fn any<F: Fn(I) -> bool + Sync>(self, f: F) -> bool {
        run_parallel(self.items, f).into_iter().any(|b| b)
    }
}

/// Splits a pair item for `unzip` without unconstrained impl parameters.
pub trait Pair {
    type A;
    type B;
    fn split(self) -> (Self::A, Self::B);
}

impl<A, B> Pair for (A, B) {
    type A = A;
    type B = B;
    fn split(self) -> (A, B) {
        self
    }
}

impl<I: Send, R: Send, F: Fn(I) -> R + Sync> ParMap<I, F> {
    pub fn collect<C: FromIterator<R>>(self) -> C {
        run_parallel(self.items, self.f).into_iter().collect()
    }

    pub fn for_each_result(self) {
        run_parallel(self.items, self.f);
    }

    /// Ordered, sequential reduction of the parallel map results —
    /// deterministic for floating-point sums regardless of thread count.
    pub fn sum<S: std::iter::Sum<R>>(self) -> S {
        run_parallel(self.items, self.f).into_iter().sum()
    }

    pub fn unzip<CA, CB>(self) -> (CA, CB)
    where
        R: Pair,
        CA: FromIterator<R::A>,
        CB: FromIterator<R::B>,
    {
        let pairs = run_parallel(self.items, self.f);
        let mut left = Vec::with_capacity(pairs.len());
        let mut right = Vec::with_capacity(pairs.len());
        for p in pairs {
            let (a, b) = p.split();
            left.push(a);
            right.push(b);
        }
        (left.into_iter().collect(), right.into_iter().collect())
    }
}

/// `par_iter` over shared slices.
pub trait ParallelSlice<T: Sync> {
    fn par_iter(&self) -> ParIter<&T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_iter(&self) -> ParIter<&T> {
        ParIter {
            items: self.iter().collect(),
        }
    }
}

/// `par_chunks_mut` over mutable slices.
pub trait ParallelSliceMut<T: Send> {
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<&mut [T]>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ParIter<&mut [T]> {
        ParIter {
            items: self.chunks_mut(size.max(1)).collect(),
        }
    }
}

/// `into_par_iter` for owned collections and index ranges.
pub trait IntoParallelIterator {
    type Item;
    fn into_par_iter(self) -> ParIter<Self::Item>;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    fn into_par_iter(self) -> ParIter<usize> {
        ParIter {
            items: self.collect(),
        }
    }
}

pub mod prelude {
    pub use super::{IntoParallelIterator, ParallelSlice, ParallelSliceMut};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ordered_collect() {
        let v: Vec<usize> = (0..1000).into_par_iter().map(|i| i * 2).collect();
        assert_eq!(v, (0..1000).map(|i| i * 2).collect::<Vec<_>>());
    }

    #[test]
    fn sum_matches_sequential_bitwise() {
        let xs: Vec<f64> = (0..997).map(|i| (i as f64).sin() * 1e-3).collect();
        let par: f64 = xs.par_iter().map(|&x| x * 1.000001).sum();
        let seq: f64 = xs.iter().map(|&x| x * 1.000001).sum();
        assert_eq!(par.to_bits(), seq.to_bits());
    }

    #[test]
    fn chunks_mut_cover_all() {
        let mut data = vec![0usize; 103];
        data.par_chunks_mut(10).enumerate().for_each(|(i, chunk)| {
            for (k, v) in chunk.iter_mut().enumerate() {
                *v = i * 10 + k;
            }
        });
        assert_eq!(data, (0..103).collect::<Vec<_>>());
    }

    #[test]
    fn any_and_unzip() {
        let xs = [1, 5, 9];
        assert!(xs.par_iter().any(|&x| x == 5));
        assert!(!xs.par_iter().any(|&x| x == 4));
        let (a, b): (Vec<usize>, Vec<usize>) = (0..10).into_par_iter().map(|i| (i, i * i)).unzip();
        assert_eq!(a.len(), 10);
        assert_eq!(b[3], 9);
    }
}
