//! Shared harness for the elastic-lifecycle differential suites
//! (`checkpoint_equivalence.rs`, `reshard_equivalence.rs`,
//! `proptest_snapshot.rs`): one tiny dataset, one fitted model, one
//! step-major clean tick stream, and the checkpoint/restore replay
//! helpers that every suite holds against an uninterrupted run.
#![allow(dead_code)]

use nodesentry::core::{CoarseConfig, NodeInput, NodeSentry, NodeSentryConfig, SharingConfig};
use nodesentry::features::FeatureCatalog;
use nodesentry::stream::{Engine, EngineConfig, EngineReport, Tick, Verdict};
use nodesentry::telemetry::{Dataset, DatasetProfile};
use std::collections::HashSet;
use std::sync::{Arc, OnceLock};

pub const CHUNK: usize = 256;
pub const REORDER_BOUND: usize = 16;
pub const BLACKOUT_GAP: usize = 48;

pub fn quick_cfg() -> NodeSentryConfig {
    NodeSentryConfig {
        coarse: CoarseConfig {
            catalog: FeatureCatalog::compact(),
            k_max: 6,
            ..Default::default()
        },
        sharing: SharingConfig {
            window: 12,
            stride: 6,
            d_model: 16,
            n_heads: 2,
            n_layers: 1,
            hidden: 32,
            n_experts: 2,
            epochs: 6,
            lr: 3e-3,
            batch: 16,
            k_nearest: 4,
            ..Default::default()
        },
        match_period: 40,
        min_segment_len: 8,
        ..Default::default()
    }
}

pub struct Setup {
    pub ds: Dataset,
    pub model: Arc<NodeSentry>,
    /// Step-major clean feed: every node's tick for step 0, then step 1, …
    pub clean: Vec<Tick>,
    /// Raw column count of the preprocessor input (for fault-plan specs).
    pub n_cols: usize,
    /// Raw columns feeding kept cumulative counter groups.
    pub counter_cols: Vec<usize>,
}

static SETUP: OnceLock<Setup> = OnceLock::new();

pub fn setup() -> &'static Setup {
    SETUP.get_or_init(|| {
        let ds = DatasetProfile::tiny().generate();
        let groups = ds.catalog.group_ids();
        let inputs: Vec<NodeInput> = (0..ds.n_nodes())
            .map(|n| NodeInput {
                raw: ds.raw_node(n),
                transitions: ds
                    .schedule
                    .node_timeline(n)
                    .iter()
                    .map(|s| s.start)
                    .filter(|&s| s > 0)
                    .collect(),
            })
            .collect();
        let model = NodeSentry::fit(quick_cfg(), &inputs, &groups, ds.split);
        let pp = &model.preprocessor;
        let n_cols = pp.groups.len();
        let counter_cols: Vec<usize> = (0..n_cols)
            .filter(|&c| pp.counters[pp.groups[c]] && pp.kept.contains(&pp.groups[c]))
            .collect();
        let transition_sets: Vec<HashSet<usize>> = inputs
            .iter()
            .map(|i| i.transitions.iter().copied().collect())
            .collect();
        let mut clean = Vec::new();
        for step in 0..ds.horizon() {
            for (node, input) in inputs.iter().enumerate() {
                clean.push(Tick {
                    node,
                    step,
                    values: input.raw.row(step).to_vec(),
                    transition: transition_sets[node].contains(&step),
                });
            }
        }
        Setup {
            ds,
            model: Arc::new(model),
            clean,
            n_cols,
            counter_cols,
        }
    })
}

pub fn engine_cfg(setup: &Setup, shards: usize) -> EngineConfig {
    let mut cfg = EngineConfig::new(setup.ds.split);
    cfg.n_shards = shards;
    cfg.smooth_window = 1;
    cfg.reorder_bound = REORDER_BOUND;
    cfg.blackout_gap = BLACKOUT_GAP;
    cfg
}

/// One uninterrupted run — the reference every lifecycle variant must
/// reproduce bit for bit.
pub fn run_uninterrupted(setup: &Setup, stream: &[Tick], cfg: EngineConfig) -> EngineReport {
    let engine = Engine::new(Arc::clone(&setup.model), cfg);
    for chunk in stream.chunks(CHUNK) {
        engine.ingest(chunk.to_vec()).expect("stream shard alive");
    }
    engine.finish()
}

/// Everything a checkpoint-at-`cut` lifecycle produced, reassembled.
pub struct CutRun {
    /// Prefix verdicts (drained by the checkpoint) + tail verdicts,
    /// re-sorted by `(node, step)` — directly comparable to an
    /// uninterrupted [`EngineReport::verdicts`].
    pub verdicts: Vec<Verdict>,
    /// The snapshot's wire bytes, for byte-stability checks.
    pub bytes: Vec<u8>,
    /// Report of the engine that replayed the tail.
    pub tail_report: EngineReport,
}

/// Ingest `stream[..cut]`, checkpoint, kill the first engine, restore a
/// second one from the snapshot *bytes* with `post_cfg`, replay
/// `stream[cut..]`, and stitch the verdict sets back together.
pub fn run_with_restore(
    setup: &Setup,
    stream: &[Tick],
    cut: usize,
    pre_cfg: EngineConfig,
    post_cfg: EngineConfig,
) -> CutRun {
    let engine = Engine::new(Arc::clone(&setup.model), pre_cfg);
    for chunk in stream[..cut].chunks(CHUNK) {
        engine.ingest(chunk.to_vec()).expect("prefix shard alive");
    }
    let ckpt = engine.checkpoint().expect("checkpoint");
    // The first engine dies here *without* finish(): anything it would
    // have emitted past the cut must be reproduced by the restored one.
    drop(engine);
    let restored =
        Engine::restore_bytes(Arc::clone(&setup.model), post_cfg, &ckpt.bytes).expect("restore");
    for chunk in stream[cut..].chunks(CHUNK) {
        restored.ingest(chunk.to_vec()).expect("tail shard alive");
    }
    let tail_report = restored.finish();
    let mut verdicts = ckpt.verdicts;
    verdicts.extend(tail_report.verdicts.iter().cloned());
    verdicts.sort_by_key(|v| (v.node, v.step));
    CutRun {
        verdicts,
        bytes: ckpt.bytes,
        tail_report,
    }
}

/// Bit-level verdict equality: node, step, score bits, flag, cluster,
/// and kind must all agree, element by element.
pub fn assert_verdicts_identical(got: &[Verdict], want: &[Verdict], tag: &str) {
    assert_eq!(
        got.len(),
        want.len(),
        "{tag}: verdict count {} vs {}",
        got.len(),
        want.len()
    );
    for (g, w) in got.iter().zip(want) {
        assert_eq!(
            (g.node, g.step),
            (w.node, w.step),
            "{tag}: verdict identity diverged"
        );
        assert_eq!(
            g.score.to_bits(),
            w.score.to_bits(),
            "{tag}: score bits diverged at node {} step {}: {} vs {}",
            g.node,
            g.step,
            g.score,
            w.score
        );
        assert_eq!(
            g.anomalous, w.anomalous,
            "{tag}: flag diverged at node {} step {}",
            g.node, g.step
        );
        assert_eq!(
            g.cluster, w.cluster,
            "{tag}: cluster diverged at node {} step {}",
            g.node, g.step
        );
        assert_eq!(
            g.kind, w.kind,
            "{tag}: kind diverged at node {} step {}",
            g.node, g.step
        );
    }
}
