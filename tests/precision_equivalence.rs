//! Contract of the opt-in f32 scoring tier
//! (`EngineConfig::scoring_precision`), in four parts:
//!
//! * **f64 invisibility** — with the tier left at its `F64` default the
//!   new plumbing must change nothing: verdicts stay bit-identical to a
//!   default-config oracle at 1/2/4 shards, on clean and fault-injected
//!   feeds, and every verdict carries the `F64` tag.
//! * **f32 fidelity floor** — on a seeded D2′-shaped feed the f32 tier
//!   must agree with the f64 oracle on at least [`AGREEMENT_FLOOR`] of
//!   verdict flags (the tier trades bit-stability for bandwidth, not
//!   detection quality), and the flags must be shard-count invariant
//!   *within* the tier.
//! * **kernel fidelity** — property test: `InferenceSessionF32::forward`
//!   tracks the f64 forward within a per-layer relative tolerance for
//!   arbitrary window contents.
//! * **mismatch rejection** — restoring a checkpoint under a different
//!   tier and announcing a mismatched tier over the wire both fail with
//!   typed errors, never a panic, and matching announcements succeed.

use nodesentry::core::{CoarseConfig, NodeInput, NodeSentry, NodeSentryConfig, SharingConfig};
use nodesentry::features::FeatureCatalog;
use nodesentry::nn::{
    BlockKind, InferenceSession, InferenceSessionF32, ParamStore, ReconstructionTransformer,
    TransformerConfig,
};
use nodesentry::stream::snapshot::SnapshotError;
use nodesentry::stream::{
    Engine, EngineConfig, EngineError, EngineReport, ScoringPrecision, Tick, Verdict,
};
use nodesentry::telemetry::{
    Dataset, DatasetProfile, FaultEvent, FaultInjector, FaultKind, FaultPlan, IngestClient,
};
use proptest::prelude::*;
use std::collections::HashSet;
use std::sync::{Arc, OnceLock};

const SHARDS: [usize; 3] = [1, 2, 4];

/// Minimum fraction of verdict flags on which the f32 tier must agree
/// with the f64 oracle on the seeded D2′-shaped feed. Measured ~1.0
/// (the tiers disagree only when a score lands within float noise of
/// the k-sigma threshold); pinned with headroom so the floor trips on
/// real fidelity loss, not on a single borderline point.
const AGREEMENT_FLOOR: f64 = 0.995;

fn quick_cfg() -> NodeSentryConfig {
    NodeSentryConfig {
        coarse: CoarseConfig {
            catalog: FeatureCatalog::compact(),
            k_max: 6,
            ..Default::default()
        },
        sharing: SharingConfig {
            window: 12,
            stride: 6,
            d_model: 16,
            n_heads: 2,
            n_layers: 1,
            hidden: 32,
            n_experts: 2,
            epochs: 6,
            lr: 3e-3,
            batch: 16,
            k_nearest: 4,
            ..Default::default()
        },
        match_period: 40,
        min_segment_len: 8,
        ..Default::default()
    }
}

struct Setup {
    ds: Dataset,
    model: Arc<NodeSentry>,
    /// Clean step-major tick stream (every node's sample per step).
    clean: Vec<Tick>,
}

fn build(profile: DatasetProfile) -> Setup {
    let ds = profile.generate();
    let groups = ds.catalog.group_ids();
    let inputs: Vec<NodeInput> = (0..ds.n_nodes())
        .map(|n| NodeInput {
            raw: ds.raw_node(n),
            transitions: ds
                .schedule
                .node_timeline(n)
                .iter()
                .map(|s| s.start)
                .filter(|&s| s > 0)
                .collect(),
        })
        .collect();
    let model = NodeSentry::fit(quick_cfg(), &inputs, &groups, ds.split);
    let transition_sets: Vec<HashSet<usize>> = inputs
        .iter()
        .map(|i| i.transitions.iter().copied().collect())
        .collect();
    let mut clean = Vec::new();
    for step in 0..ds.horizon() {
        for (node, input) in inputs.iter().enumerate() {
            clean.push(Tick {
                node,
                step,
                values: input.raw.row(step).to_vec(),
                transition: transition_sets[node].contains(&step),
            });
        }
    }
    Setup {
        ds,
        model: Arc::new(model),
        clean,
    }
}

static TINY: OnceLock<Setup> = OnceLock::new();

fn tiny() -> &'static Setup {
    TINY.get_or_init(|| build(DatasetProfile::tiny()))
}

static D2: OnceLock<Setup> = OnceLock::new();

/// D2′-shaped feed at test scale: the real schedule/catalog shape and
/// seed, trimmed to a quarter day so the fit stays test-sized.
fn d2() -> &'static Setup {
    D2.get_or_init(|| {
        let mut profile = DatasetProfile::d2_prime();
        profile.schedule.horizon = 720;
        profile.events_per_node = 2.0;
        build(profile)
    })
}

fn cfg_of(setup: &Setup, shards: usize, precision: ScoringPrecision) -> EngineConfig {
    let mut cfg = EngineConfig::new(setup.ds.split);
    cfg.n_shards = shards;
    cfg.reorder_bound = 16;
    cfg.blackout_gap = 48;
    cfg.batch_scoring = true;
    cfg.scoring_precision = precision;
    cfg
}

fn run(setup: &Setup, stream: &[Tick], cfg: EngineConfig) -> EngineReport {
    let engine = Engine::new(Arc::clone(&setup.model), cfg);
    for batch in stream.chunks(256) {
        engine.ingest(batch.to_vec()).expect("stream shard alive");
    }
    engine.finish()
}

fn assert_bit_identical(got: &[Verdict], oracle: &[Verdict], tag: &str) {
    assert_eq!(got.len(), oracle.len(), "{tag}: verdict counts diverged");
    for (g, o) in got.iter().zip(oracle) {
        assert_eq!((g.node, g.step), (o.node, o.step), "{tag}: stream order");
        assert_eq!(
            g.score.to_bits(),
            o.score.to_bits(),
            "{tag}: score bits diverged at node {} step {}",
            g.node,
            g.step
        );
        assert_eq!(
            (g.anomalous, g.cluster, g.kind),
            (o.anomalous, o.cluster, o.kind),
            "{tag}: verdict diverged at node {} step {}",
            g.node,
            g.step
        );
    }
}

// ---------------------------------------------------------------------
// 1. The F64 default is the old engine, bit for bit
// ---------------------------------------------------------------------

#[test]
fn f64_tier_is_bit_identical_to_default_config() {
    let setup = tiny();
    // Oracle: a config that never mentions the tier at all.
    let mut oracle_cfg = EngineConfig::new(setup.ds.split);
    oracle_cfg.n_shards = 1;
    oracle_cfg.reorder_bound = 16;
    oracle_cfg.blackout_gap = 48;
    oracle_cfg.batch_scoring = true;
    let oracle = run(setup, &setup.clean, oracle_cfg);
    assert!(
        oracle
            .verdicts
            .iter()
            .all(|v| v.precision == ScoringPrecision::F64),
        "default-config verdicts must carry the F64 tag"
    );
    for shards in SHARDS {
        let got = run(
            setup,
            &setup.clean,
            cfg_of(setup, shards, ScoringPrecision::F64),
        );
        assert_bit_identical(&got.verdicts, &oracle.verdicts, &format!("clean/s{shards}"));
    }
}

#[test]
fn f64_tier_is_bit_identical_under_faults() {
    let setup = tiny();
    let mk = |node, kind, start, end, magnitude| FaultEvent {
        node,
        kind,
        start,
        end,
        magnitude,
        cols: Vec::new(),
    };
    let plan = FaultPlan {
        events: vec![
            mk(0, FaultKind::Drop, 410, 435, 0.5),
            mk(2, FaultKind::Reorder, 390, 520, 3.0),
            mk(3, FaultKind::NanBurst, 460, 475, 1.0),
        ],
        seed: 0xF1F0,
    };
    let outcome = FaultInjector::new(plan).apply(&setup.clean);
    let oracle = run(
        setup,
        &outcome.stream,
        cfg_of(setup, 1, ScoringPrecision::F64),
    );
    for shards in SHARDS {
        let got = run(
            setup,
            &outcome.stream,
            cfg_of(setup, shards, ScoringPrecision::F64),
        );
        assert_bit_identical(&got.verdicts, &oracle.verdicts, &format!("fault/s{shards}"));
    }
}

// ---------------------------------------------------------------------
// 2. The f32 tier keeps its fidelity floor
// ---------------------------------------------------------------------

#[test]
fn f32_tier_agreement_meets_pinned_floor() {
    let setup = d2();
    let oracle = run(setup, &setup.clean, cfg_of(setup, 2, ScoringPrecision::F64));
    let f32_run = run(setup, &setup.clean, cfg_of(setup, 2, ScoringPrecision::F32));
    assert_eq!(
        f32_run.verdicts.len(),
        oracle.verdicts.len(),
        "the tier must not change verdict cadence"
    );
    assert!(
        f32_run
            .verdicts
            .iter()
            .all(|v| v.precision == ScoringPrecision::F32),
        "f32-tier verdicts must carry the F32 tag"
    );
    let mut agree = 0usize;
    for (a, b) in f32_run.verdicts.iter().zip(&oracle.verdicts) {
        assert_eq!(
            (a.node, a.step),
            (b.node, b.step),
            "verdict streams misaligned"
        );
        agree += (a.anomalous == b.anomalous) as usize;
    }
    let agreement = agree as f64 / oracle.verdicts.len().max(1) as f64;
    assert!(
        agreement >= AGREEMENT_FLOOR,
        "f32 tier agreed on {agreement:.4} of {} verdicts (floor {AGREEMENT_FLOOR})",
        oracle.verdicts.len()
    );
}

#[test]
fn f32_tier_is_shard_invariant_within_itself() {
    // The tier may differ from f64, but it must be deterministic: the
    // same f32 feed at any shard count yields the same bits.
    let setup = tiny();
    let oracle = run(setup, &setup.clean, cfg_of(setup, 1, ScoringPrecision::F32));
    assert!(
        oracle
            .verdicts
            .iter()
            .all(|v| v.precision == ScoringPrecision::F32),
        "f32-tier verdicts must carry the F32 tag"
    );
    for shards in SHARDS {
        let got = run(
            setup,
            &setup.clean,
            cfg_of(setup, shards, ScoringPrecision::F32),
        );
        assert_bit_identical(&got.verdicts, &oracle.verdicts, &format!("f32/s{shards}"));
    }
}

// ---------------------------------------------------------------------
// 3. The f32 forward tracks the f64 forward
// ---------------------------------------------------------------------

/// Relative tolerance per encoder layer: each layer's matmuls, softmax
/// and layernorm accumulate rounding of order f32 epsilon times the
/// reduction width; 5e-4 per layer (plus one for the embed/output
/// projections) is orders of magnitude above that but far below any
/// real fidelity break.
fn layer_tolerance(model: &ReconstructionTransformer) -> f64 {
    (model.cfg.n_layers as f64 + 1.0) * 5e-4
}

fn small_model(n_layers: usize) -> (ParamStore, ReconstructionTransformer) {
    let mut params = ParamStore::new(17);
    let model = ReconstructionTransformer::new(
        &mut params,
        TransformerConfig {
            input_dim: 6,
            d_model: 8,
            n_heads: 2,
            n_layers,
            hidden: 16,
            // Dense block: top-k MoE routing is a discrete choice that
            // can legitimately flip between precisions on a gate tie;
            // the continuous-path tolerance contract is what this
            // property pins.
            block: BlockKind::Dense,
            aux_weight: 0.01,
        },
    );
    (params, model)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn f32_forward_matches_f64_within_layer_tolerance(
        seed_vals in prop::collection::vec(-3.0f64..3.0, 6 * 10),
        pe_vals in prop::collection::vec(-1.0f64..1.0, 8 * 10),
        n_layers in 1usize..3,
    ) {
        let (params, model) = small_model(n_layers);
        let t = 10;
        let x = nodesentry::linalg::Matrix::from_fn(t, 6, |r, c| seed_vals[r * 6 + c]);
        let pe = nodesentry::linalg::Matrix::from_fn(t, 8, |r, c| pe_vals[r * 8 + c]);
        let mut s64 = InferenceSession::new();
        let mut s32 = InferenceSessionF32::new();
        let want = s64.forward(&params, &model, &x, &pe).clone();
        let got = s32.forward(&params, &model, &x, &pe);
        let tol = layer_tolerance(&model);
        for r in 0..t {
            for (c, (&g, &w)) in got.row(r).iter().zip(want.row(r)).enumerate() {
                let rel = (g as f64 - w).abs() / (1.0 + w.abs());
                prop_assert!(
                    rel <= tol,
                    "row {r} col {c}: f32 {g} vs f64 {w} (rel {rel:.2e} > tol {tol:.2e})"
                );
            }
        }
    }
}

// ---------------------------------------------------------------------
// 4. Mismatches are refused with typed errors, never panics
// ---------------------------------------------------------------------

#[test]
fn restore_refuses_precision_mismatch_with_typed_error() {
    let setup = tiny();
    for (ckpt_tier, restore_tier) in [
        (ScoringPrecision::F64, ScoringPrecision::F32),
        (ScoringPrecision::F32, ScoringPrecision::F64),
    ] {
        let cfg = cfg_of(setup, 2, ckpt_tier);
        let engine = Engine::new(Arc::clone(&setup.model), cfg);
        let cut = setup.clean.len() / 2;
        engine
            .ingest(setup.clean[..cut].to_vec())
            .expect("stream shard alive");
        let ckpt = engine.checkpoint().expect("checkpoint");
        drop(engine);

        let res = Engine::restore_bytes(
            Arc::clone(&setup.model),
            cfg_of(setup, 2, restore_tier),
            &ckpt.bytes,
        );
        match res.err().expect("mismatched tier must be refused") {
            EngineError::Snapshot(SnapshotError::ConfigMismatch {
                field,
                snapshot,
                config,
            }) => {
                assert_eq!(field, "scoring_precision");
                assert_eq!(snapshot, ckpt_tier.to_ordinal() as u64);
                assert_eq!(config, restore_tier.to_ordinal() as u64);
            }
            other => panic!("expected ConfigMismatch, got {other:?}"),
        }

        // The same bytes under the matching tier restore and finish.
        let restored = Engine::restore_bytes(
            Arc::clone(&setup.model),
            cfg_of(setup, 2, ckpt_tier),
            &ckpt.bytes,
        )
        .expect("matching tier restores");
        restored
            .ingest(setup.clean[cut..].to_vec())
            .expect("restored shard alive");
        let tail = restored.finish();
        assert!(
            tail.verdicts.iter().all(|v| v.precision == ckpt_tier),
            "restored verdicts must carry the checkpoint's tier"
        );
    }
}

#[test]
fn wire_hello_refuses_precision_mismatch_with_typed_error() {
    let setup = tiny();
    for engine_tier in [ScoringPrecision::F64, ScoringPrecision::F32] {
        let engine = Engine::new(Arc::clone(&setup.model), cfg_of(setup, 1, engine_tier));
        let server = engine.serve_ingest("127.0.0.1:0").expect("bind ingest");
        let addr = server.local_addr();

        // A matching announcement is accepted and the session proceeds.
        let mut ok_client = IngestClient::connect(addr).expect("connect");
        ok_client
            .announce_precision(engine_tier)
            .expect("matching tier accepted");

        // A mismatched announcement is refused with a typed error, and
        // the refusal does not take the server (or other sessions) down.
        let wrong = match engine_tier {
            ScoringPrecision::F64 => ScoringPrecision::F32,
            ScoringPrecision::F32 => ScoringPrecision::F64,
        };
        let mut bad_client = IngestClient::connect(addr).expect("connect");
        let err = bad_client
            .announce_precision(wrong)
            .expect_err("mismatched tier must be refused");
        let msg = err.to_string();
        assert!(
            msg.contains("rejected") && msg.contains("precision"),
            "refusal should be the typed REJECTED error, got: {msg}"
        );
        assert!(
            ok_client.ping().is_ok(),
            "an accepted session must survive another client's refusal"
        );
        drop(ok_client);
        server.shutdown();
    }
}
