//! Property-based invariants across the workspace (proptest).

use nodesentry::cluster::dtw::dtw_distance;
use nodesentry::cluster::{linkage, Linkage};
use nodesentry::eval::metrics::{point_adjust, roc_auc_adjusted};
use nodesentry::eval::streaming::{StreamingKSigma, StreamingSmoother};
use nodesentry::eval::threshold::{ksigma_detect, smooth_scores, KSigmaConfig};
use nodesentry::features::fft::{fft_in_place, Complex};
use nodesentry::features::FeatureCatalog;
use nodesentry::linalg::{stats, Matrix};
use proptest::prelude::*;

fn series(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-100.0f64..100.0, 2..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fft_roundtrip_is_identity(x in prop::collection::vec(-50.0f64..50.0, 1..65)) {
        let n = x.len().next_power_of_two();
        let mut buf: Vec<Complex> = x.iter().map(|&v| Complex::new(v, 0.0)).collect();
        buf.resize(n, Complex::zero());
        fft_in_place(&mut buf, false);
        fft_in_place(&mut buf, true);
        for (c, &v) in buf.iter().zip(&x) {
            prop_assert!((c.re - v).abs() < 1e-8);
            prop_assert!(c.im.abs() < 1e-8);
        }
    }

    #[test]
    fn feature_extraction_is_total_and_fixed_width(x in series(200)) {
        let catalog = FeatureCatalog::standard();
        let f = catalog.extract(&x, 1.0);
        prop_assert_eq!(f.len(), 134);
        prop_assert!(f.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn feature_shift_invariance_of_std(x in series(100), shift in -50.0f64..50.0) {
        // std/variance/mad features must be shift-invariant.
        let shifted: Vec<f64> = x.iter().map(|v| v + shift).collect();
        prop_assert!((stats::std_dev(&x) - stats::std_dev(&shifted)).abs() < 1e-8);
        prop_assert!((stats::mad(&x) - stats::mad(&shifted)).abs() < 1e-8);
    }

    #[test]
    fn hac_cut_produces_compact_valid_labels(
        pts in prop::collection::vec(prop::collection::vec(-10.0f64..10.0, 2), 2..24),
        k_raw in 1usize..10
    ) {
        let dend = linkage(&pts, Linkage::Average);
        let k = k_raw.min(pts.len());
        let labels = dend.cut_k(k);
        prop_assert_eq!(labels.len(), pts.len());
        let mut uniq = labels.clone();
        uniq.sort_unstable();
        uniq.dedup();
        prop_assert_eq!(uniq.len(), k);
        prop_assert_eq!(*uniq.iter().max().unwrap(), k - 1);
    }

    #[test]
    fn dtw_symmetry_and_identity(a in series(40), b in series(40)) {
        let d_ab = dtw_distance(&a, &b, None);
        let d_ba = dtw_distance(&b, &a, None);
        prop_assert!((d_ab - d_ba).abs() < 1e-9);
        prop_assert!(dtw_distance(&a, &a, None) < 1e-12);
        prop_assert!(d_ab >= 0.0);
    }

    #[test]
    fn point_adjust_never_removes_predictions(
        pred in prop::collection::vec(any::<bool>(), 1..120),
        truth_seed in prop::collection::vec(any::<bool>(), 1..120)
    ) {
        let n = pred.len().min(truth_seed.len());
        let adjusted = point_adjust(&pred[..n], &truth_seed[..n]);
        for i in 0..n {
            // Adjustment only ever adds positives inside true runs.
            if pred[i] {
                prop_assert!(adjusted[i]);
            }
            if adjusted[i] && !pred[i] {
                prop_assert!(truth_seed[i]);
            }
        }
    }

    #[test]
    fn auc_is_bounded_and_flip_symmetric(
        scores in prop::collection::vec(0.0f64..1.0, 4..80),
        idx in 1usize..3
    ) {
        let truth: Vec<bool> = (0..scores.len()).map(|i| i % (idx + 1) == 0).collect();
        let auc = roc_auc_adjusted(&scores, &truth, None);
        prop_assert!((0.0..=1.0).contains(&auc));
        // Negating scores flips AUC around 0.5 (up to tie handling).
        let neg: Vec<f64> = scores.iter().map(|v| -v).collect();
        let auc_neg = roc_auc_adjusted(&neg, &truth, None);
        prop_assert!((auc + auc_neg - 1.0).abs() < 1e-9);
    }

    #[test]
    fn ksigma_flags_subset_under_larger_k(scores in prop::collection::vec(0.0f64..10.0, 8..200)) {
        let loose = ksigma_detect(&scores, &KSigmaConfig { k: 2.0, ..Default::default() });
        let strict = ksigma_detect(&scores, &KSigmaConfig { k: 6.0, ..Default::default() });
        // A point flagged by the strict detector is flagged by the loose
        // one as long as the reference windows coincide; globally the
        // strict count cannot exceed the loose count.
        let nl = loose.iter().filter(|&&b| b).count();
        let ns = strict.iter().filter(|&&b| b).count();
        prop_assert!(ns <= nl);
    }

    #[test]
    fn smoothing_preserves_mean_and_bounds(scores in prop::collection::vec(0.0f64..5.0, 1..100)) {
        let sm = smooth_scores(&scores, 5);
        prop_assert_eq!(sm.len(), scores.len());
        let lo = scores.iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = scores.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(sm.iter().all(|&v| v >= lo - 1e-12 && v <= hi + 1e-12));
    }

    #[test]
    fn interpolation_is_idempotent_and_total(
        vals in prop::collection::vec(prop::option::of(-10.0f64..10.0), 3..60)
    ) {
        let mut m = Matrix::from_fn(vals.len(), 1, |r, _| vals[r].unwrap_or(f64::NAN));
        nodesentry::core::preprocess::interpolate_missing(&mut m);
        prop_assert!(m.as_slice().iter().all(|v| v.is_finite()));
        let before = m.clone();
        nodesentry::core::preprocess::interpolate_missing(&mut m);
        prop_assert_eq!(before, m);
    }

    #[test]
    fn trimmed_std_never_exceeds_plain_std(x in series(150)) {
        let (_, trimmed) = stats::trimmed_mean_std(&x, 0.05);
        let plain = stats::std_dev(&x);
        prop_assert!(trimmed <= plain + 1e-9);
    }

    #[test]
    fn streaming_smoother_matches_batch_on_arbitrary_series(
        scores in prop::collection::vec(-50.0f64..50.0, 0..160),
        window in 1usize..12
    ) {
        let batch = smooth_scores(&scores, window);
        let mut sm = StreamingSmoother::new(window);
        let mut streamed = Vec::new();
        for &s in &scores {
            streamed.extend(sm.push(s));
        }
        streamed.extend(sm.flush());
        prop_assert_eq!(batch.len(), streamed.len());
        for (a, b) in batch.iter().zip(&streamed) {
            prop_assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn streaming_ksigma_matches_batch_on_arbitrary_series(
        scores in prop::collection::vec(-20.0f64..20.0, 0..300),
        window in 1usize..50,
        k_tenths in 10usize..60
    ) {
        let cfg = KSigmaConfig { window, k: k_tenths as f64 / 10.0, ..Default::default() };
        let batch = ksigma_detect(&scores, &cfg);
        let mut det = StreamingKSigma::new(cfg);
        let streamed: Vec<bool> = scores.iter().map(|&s| det.push(s)).collect();
        prop_assert_eq!(batch, streamed);
    }

    #[test]
    fn streaming_smooth_then_ksigma_matches_batch_composition(
        scores in prop::collection::vec(0.0f64..10.0, 0..250),
        smooth_w in 1usize..9
    ) {
        let cfg = KSigmaConfig::default();
        let batch = ksigma_detect(&smooth_scores(&scores, smooth_w), &cfg);
        let mut sm = StreamingSmoother::new(smooth_w);
        let mut det = StreamingKSigma::new(cfg);
        let mut streamed = Vec::new();
        for &s in &scores {
            for sv in sm.push(s) {
                streamed.push(det.push(sv));
            }
        }
        for sv in sm.flush() {
            streamed.push(det.push(sv));
        }
        prop_assert_eq!(batch, streamed);
    }
}
