//! Differential checkpoint/restore conformance: an engine checkpointed
//! at step T, torn down, restored from the snapshot *bytes*, and fed the
//! remaining ticks must produce — prefix verdicts + tail verdicts —
//! exactly the verdict set of an engine that never stopped, bit for bit
//! (`score.to_bits()`), at 1, 2, and 4 shards, on clean and faulted
//! feeds. The snapshot itself must be byte-stable across a
//! restore→checkpoint round trip, and restore must reject the wrong
//! model or bit-critical config with typed errors instead of silently
//! diverging.

#[path = "snapshot_common/mod.rs"]
mod common;

use common::{
    assert_verdicts_identical, engine_cfg, run_uninterrupted, run_with_restore, setup, CHUNK,
};
use nodesentry::stream::snapshot::{EngineSnapshot, SnapshotError};
use nodesentry::stream::{Engine, EngineError};
use nodesentry::telemetry::{FaultEvent, FaultInjector, FaultKind, FaultPlan};
use std::sync::Arc;

const SHARDS: [usize; 3] = [1, 2, 4];

/// A cut strictly inside the test span: past the split, far from the end.
fn mid_cut(setup: &common::Setup) -> usize {
    let ticks_per_step = setup.ds.n_nodes();
    (setup.ds.split + (setup.ds.horizon() - setup.ds.split) / 2) * ticks_per_step
}

#[test]
fn clean_feed_checkpoint_restore_is_bit_identical() {
    let s = setup();
    let cut = mid_cut(s);
    for shards in SHARDS {
        let reference = run_uninterrupted(s, &s.clean, engine_cfg(s, shards));
        let run = run_with_restore(
            s,
            &s.clean,
            cut,
            engine_cfg(s, shards),
            engine_cfg(s, shards),
        );
        assert_verdicts_identical(
            &run.verdicts,
            &reference.verdicts,
            &format!("clean/s{shards}"),
        );
        assert!(
            run.tail_report.faults.is_clean(),
            "clean tail tripped fault counters: {:?}",
            run.tail_report.faults
        );
    }
}

#[test]
fn checkpoint_cut_position_never_leaks_or_drops_verdicts() {
    let s = setup();
    let ticks_per_step = s.ds.n_nodes();
    let reference = run_uninterrupted(s, &s.clean, engine_cfg(s, 2));
    // Early (pre-split context only), mid-span, and nearly-done cuts; the
    // late cut is deliberately not chunk-aligned.
    let cuts = [
        (s.ds.split / 2) * ticks_per_step,
        mid_cut(s),
        (s.ds.horizon() - 3) * ticks_per_step + 1,
    ];
    for cut in cuts {
        let run = run_with_restore(s, &s.clean, cut, engine_cfg(s, 2), engine_cfg(s, 2));
        assert_verdicts_identical(&run.verdicts, &reference.verdicts, &format!("cut@{cut}"));
    }
}

#[test]
fn faulted_feed_checkpoint_restore_is_bit_identical() {
    let s = setup();
    // Every fault class the injector offers lands somewhere in the span,
    // straddling the cut: drops and a stuck sensor before it, NaNs,
    // skew, and a blackout after.
    let mut events = vec![
        FaultEvent {
            node: 0,
            kind: FaultKind::Drop,
            start: 420,
            end: 450,
            magnitude: 0.6,
            cols: Vec::new(),
        },
        FaultEvent {
            node: 1,
            kind: FaultKind::Duplicate,
            start: 400,
            end: 460,
            magnitude: 0.5,
            cols: Vec::new(),
        },
        FaultEvent {
            node: 2,
            kind: FaultKind::Reorder,
            start: 380,
            end: 430,
            magnitude: 4.0,
            cols: Vec::new(),
        },
        FaultEvent {
            node: 3,
            kind: FaultKind::NanBurst,
            start: 520,
            end: 535,
            magnitude: 1.0,
            cols: Vec::new(),
        },
        FaultEvent {
            node: 0,
            kind: FaultKind::StuckSensor,
            start: 500,
            end: 540,
            magnitude: 1.0,
            cols: Vec::new(),
        },
        FaultEvent {
            node: 1,
            kind: FaultKind::ClockSkew,
            start: 500,
            end: 530,
            magnitude: 6.0,
            cols: Vec::new(),
        },
        FaultEvent {
            node: 2,
            kind: FaultKind::Blackout,
            start: 460,
            end: 520,
            magnitude: 1.0,
            cols: Vec::new(),
        },
    ];
    events[4].cols = (0..s.model.preprocessor.groups.len()).collect();
    let plan = FaultPlan {
        events,
        seed: 0xC4EC,
    };
    let outcome = FaultInjector::new(plan).apply(&s.clean);
    let cut = outcome.stream.len() / 2;
    for shards in SHARDS {
        let reference = run_uninterrupted(s, &outcome.stream, engine_cfg(s, shards));
        let run = run_with_restore(
            s,
            &outcome.stream,
            cut,
            engine_cfg(s, shards),
            engine_cfg(s, shards),
        );
        assert_verdicts_identical(
            &run.verdicts,
            &reference.verdicts,
            &format!("faulted/s{shards}"),
        );
    }
}

#[test]
fn restored_fault_counters_resume_from_the_snapshot() {
    let s = setup();
    // Drop fault entirely inside the prefix: its counters live in the
    // snapshot and must survive into the restored engine's final report.
    let plan = FaultPlan::single(
        FaultEvent {
            node: 0,
            kind: FaultKind::Drop,
            start: 420,
            end: 450,
            magnitude: 0.6,
            cols: Vec::new(),
        },
        0xD201,
    );
    let outcome = FaultInjector::new(plan).apply(&s.clean);
    let reference = run_uninterrupted(s, &outcome.stream, engine_cfg(s, 2));
    let cut = (470 * s.ds.n_nodes()).min(outcome.stream.len());
    let run = run_with_restore(s, &outcome.stream, cut, engine_cfg(s, 2), engine_cfg(s, 2));
    assert_verdicts_identical(&run.verdicts, &reference.verdicts, "prefix-fault");
    assert_eq!(
        run.tail_report.faults.synthesized_rows, reference.faults.synthesized_rows,
        "synthesized-row count must carry across the restore"
    );
    assert!(run.tail_report.faults.synthesized_rows > 0);
}

#[test]
fn snapshot_is_byte_stable_across_restore_checkpoint() {
    let s = setup();
    let cut = mid_cut(s);
    let engine = Engine::new(Arc::clone(&s.model), engine_cfg(s, 2));
    for chunk in s.clean[..cut].chunks(CHUNK) {
        engine.ingest(chunk.to_vec()).expect("shard alive");
    }
    let first = engine.checkpoint().expect("first checkpoint");
    // Idle engine: a second checkpoint sees the same state and has no new
    // verdicts to drain.
    let again = engine.checkpoint().expect("second checkpoint");
    assert_eq!(first.bytes, again.bytes, "idle re-checkpoint changed bytes");
    assert!(
        again.verdicts.is_empty(),
        "the first checkpoint already drained all {} verdicts",
        again.verdicts.len()
    );
    drop(engine);
    // Restore → immediate checkpoint reproduces the exact wire encoding.
    let restored = Engine::restore_bytes(Arc::clone(&s.model), engine_cfg(s, 2), &first.bytes)
        .expect("restore");
    let rt = restored.checkpoint().expect("restored checkpoint");
    assert_eq!(
        first.bytes, rt.bytes,
        "restore→checkpoint is not byte-stable"
    );
    assert!(rt.verdicts.is_empty());
    drop(restored);
    // And decode→re-encode reproduces the wire bytes (NaN-bearing state
    // defeats derived equality, so the round trip is held at the byte
    // level, which is strictly stronger).
    let snap = EngineSnapshot::from_bytes(&first.bytes).expect("decode");
    assert_eq!(snap.to_bytes(), first.bytes);
}

#[test]
fn restore_rejects_wrong_model_and_config_with_typed_errors() {
    let s = setup();
    let cut = mid_cut(s);
    let engine = Engine::new(Arc::clone(&s.model), engine_cfg(s, 2));
    for chunk in s.clean[..cut].chunks(CHUNK) {
        engine.ingest(chunk.to_vec()).expect("shard alive");
    }
    let ckpt = engine.checkpoint().expect("checkpoint");
    drop(engine);

    let mut wrong_model = ckpt.snapshot.clone();
    wrong_model.model_fingerprint ^= 1;
    match Engine::restore(Arc::clone(&s.model), engine_cfg(s, 2), &wrong_model).map(|_| ()) {
        Err(EngineError::Snapshot(SnapshotError::ModelMismatch { snapshot, model })) => {
            assert_eq!(snapshot, wrong_model.model_fingerprint);
            assert_eq!(model, s.model.fingerprint());
        }
        other => panic!("wrong model accepted: {other:?}"),
    }

    let mut bad_split = engine_cfg(s, 2);
    bad_split.split += 1;
    match Engine::restore(Arc::clone(&s.model), bad_split, &ckpt.snapshot).map(|_| ()) {
        Err(EngineError::Snapshot(SnapshotError::ConfigMismatch { field, .. })) => {
            assert_eq!(field, "split")
        }
        other => panic!("wrong split accepted: {other:?}"),
    }

    let mut bad_smooth = engine_cfg(s, 2);
    bad_smooth.smooth_window = 5;
    match Engine::restore(Arc::clone(&s.model), bad_smooth, &ckpt.snapshot).map(|_| ()) {
        Err(EngineError::Snapshot(SnapshotError::ConfigMismatch { field, .. })) => {
            assert_eq!(field, "smooth_window")
        }
        other => panic!("wrong smooth_window accepted: {other:?}"),
    }

    // The untampered snapshot still restores fine afterwards.
    let ok = Engine::restore(Arc::clone(&s.model), engine_cfg(s, 2), &ckpt.snapshot);
    assert!(ok.is_ok(), "clean restore failed: {:?}", ok.err());
}

#[test]
fn checkpoint_then_continue_equals_uninterrupted() {
    // The engine that *takes* the checkpoint keeps running: its own
    // post-cut verdicts joined with the drained prefix must also equal
    // the uninterrupted set (the cut is observation, not interference).
    let s = setup();
    let cut = mid_cut(s);
    let reference = run_uninterrupted(s, &s.clean, engine_cfg(s, 2));
    let engine = Engine::new(Arc::clone(&s.model), engine_cfg(s, 2));
    for chunk in s.clean[..cut].chunks(CHUNK) {
        engine.ingest(chunk.to_vec()).expect("shard alive");
    }
    let ckpt = engine.checkpoint().expect("checkpoint");
    for chunk in s.clean[cut..].chunks(CHUNK) {
        engine.ingest(chunk.to_vec()).expect("shard alive");
    }
    let report = engine.finish();
    let mut verdicts = ckpt.verdicts;
    verdicts.extend(report.verdicts.iter().cloned());
    verdicts.sort_by_key(|v| (v.node, v.step));
    assert_verdicts_identical(&verdicts, &reference.verdicts, "observe-and-continue");
}
