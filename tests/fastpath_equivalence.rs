//! The inference fast path's contract: routing scoring through the
//! tape-free [`InferenceSession`] changes *nothing* about what the engine
//! computes. End-to-end verdicts with the fast path on are bit-identical
//! (`f64::to_bits`) to verdicts with it off — taped autodiff forward —
//! at 1, 2, and 4 shards.
//!
//! The fast-path switch is process-global, so the test serializes on a
//! lock; the trained model is a shared fixture because training dominates
//! the runtime.

use nodesentry::core::{
    CoarseConfig, NodeInput, NodeSentry, NodeSentryConfig, SharingConfig, Variant,
};
use nodesentry::features::FeatureCatalog;
use nodesentry::nn;
use nodesentry::stream::{Engine, EngineConfig, Tick, Verdict};
use nodesentry::telemetry::{Dataset, DatasetProfile};
use std::collections::HashSet;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

fn test_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn quick_cfg() -> NodeSentryConfig {
    NodeSentryConfig {
        coarse: CoarseConfig {
            catalog: FeatureCatalog::compact(),
            k_max: 6,
            ..Default::default()
        },
        sharing: SharingConfig {
            window: 12,
            stride: 6,
            d_model: 16,
            n_heads: 2,
            n_layers: 1,
            hidden: 32,
            n_experts: 2,
            epochs: 4,
            lr: 3e-3,
            batch: 16,
            k_nearest: 4,
            ..Default::default()
        },
        match_period: 40,
        min_segment_len: 8,
        variant: Variant::Full,
        ..Default::default()
    }
}

struct Fixture {
    model: Arc<NodeSentry>,
    batches: Vec<Vec<Tick>>,
    split: usize,
}

fn fixture() -> &'static Fixture {
    static CELL: OnceLock<Fixture> = OnceLock::new();
    CELL.get_or_init(|| {
        let ds: Dataset = DatasetProfile::tiny().generate();
        let groups = ds.catalog.group_ids();
        let inputs: Vec<NodeInput> = (0..ds.n_nodes())
            .map(|n| NodeInput {
                raw: ds.raw_node(n),
                transitions: ds
                    .schedule
                    .node_timeline(n)
                    .iter()
                    .map(|s| s.start)
                    .filter(|&s| s > 0)
                    .collect(),
            })
            .collect();
        let model = NodeSentry::fit(quick_cfg(), &inputs, &groups, ds.split);
        let transition_sets: Vec<HashSet<usize>> = inputs
            .iter()
            .map(|i| i.transitions.iter().copied().collect())
            .collect();
        let batches = (0..ds.horizon())
            .map(|step| {
                inputs
                    .iter()
                    .enumerate()
                    .map(|(node, input)| Tick {
                        node,
                        step,
                        values: input.raw.row(step).to_vec(),
                        transition: transition_sets[node].contains(&step),
                    })
                    .collect()
            })
            .collect();
        Fixture {
            model: Arc::new(model),
            batches,
            split: ds.split,
        }
    })
}

fn run_stream(fx: &Fixture, n_shards: usize) -> Vec<Verdict> {
    let mut cfg = EngineConfig::new(fx.split);
    cfg.n_shards = n_shards;
    let engine = Engine::new(Arc::clone(&fx.model), cfg);
    for batch in &fx.batches {
        engine.ingest(batch.clone()).expect("stream shard alive");
    }
    engine.finish().verdicts
}

#[test]
fn verdicts_bit_identical_with_fast_path_on_and_off() {
    let _l = test_lock();
    let fx = fixture();
    for n_shards in [1usize, 2, 4] {
        nn::set_fast_path(false);
        let taped = run_stream(fx, n_shards);
        nn::set_fast_path(true);
        let fast = run_stream(fx, n_shards);

        assert!(!taped.is_empty());
        assert_eq!(taped.len(), fast.len(), "{n_shards} shards: verdict count");
        for (a, b) in taped.iter().zip(&fast) {
            assert_eq!((a.node, a.step), (b.node, b.step), "{n_shards} shards");
            assert_eq!(
                a.score.to_bits(),
                b.score.to_bits(),
                "{n_shards} shards: node {} step {}: taped {} vs fast {}",
                a.node,
                a.step,
                a.score,
                b.score
            );
            assert_eq!(a.anomalous, b.anomalous);
            assert_eq!(a.cluster, b.cluster);
            assert_eq!(a.kind, b.kind);
        }
    }
    nn::set_fast_path(true);
}
