//! End-to-end integration: simulator → NodeSentry training → online
//! detection → evaluation protocol, at a deliberately small scale so the
//! test runs in a debug build.

use nodesentry::core::{CoarseConfig, NodeInput, NodeSentry, NodeSentryConfig, SharingConfig};
use nodesentry::eval::metrics::{adjusted_confusion, roc_auc_adjusted};
use nodesentry::features::FeatureCatalog;
use nodesentry::telemetry::{Dataset, DatasetProfile};

fn quick_cfg() -> NodeSentryConfig {
    NodeSentryConfig {
        coarse: CoarseConfig {
            catalog: FeatureCatalog::compact(),
            k_max: 8,
            ..Default::default()
        },
        sharing: SharingConfig {
            window: 12,
            stride: 6,
            d_model: 16,
            n_heads: 2,
            n_layers: 2,
            hidden: 32,
            n_experts: 2,
            epochs: 14,
            lr: 3e-3,
            batch: 16,
            k_nearest: 6,
            ..Default::default()
        },
        match_period: 40,
        min_segment_len: 8,
        ..Default::default()
    }
}

fn inputs_of(ds: &Dataset) -> Vec<NodeInput> {
    (0..ds.n_nodes())
        .map(|n| NodeInput {
            raw: ds.raw_node(n),
            transitions: ds
                .schedule
                .node_timeline(n)
                .iter()
                .map(|s| s.start)
                .filter(|&s| s > 0)
                .collect(),
        })
        .collect()
}

#[test]
fn full_pipeline_detects_better_than_chance() {
    // A bit larger than `tiny`: contextual anomalies need a few examples
    // of each pattern in the library before detection is meaningful.
    let mut profile = DatasetProfile::tiny();
    profile.schedule.n_nodes = 6;
    profile.schedule.horizon = 1600;
    profile.events_per_node = 2.5;
    let ds = profile.generate();
    let groups = ds.catalog.group_ids();
    let inputs = inputs_of(&ds);
    let model = NodeSentry::fit(quick_cfg(), &inputs, &groups, ds.split);

    assert!(model.n_clusters() >= 2, "multiple patterns should emerge");
    assert!(model.preprocessor.out_dim() >= 10);
    assert!(
        model.preprocessor.out_dim() * 3 < ds.catalog.len(),
        "reduction must shrink the metric space substantially: {} of {}",
        model.preprocessor.out_dim(),
        ds.catalog.len()
    );

    // Score every node; AUC averaged over anomalous nodes must beat 0.5.
    let mut aucs = Vec::new();
    for (n, input) in inputs.iter().enumerate() {
        let truth = ds.labels(n);
        if !truth[ds.split..].iter().any(|&b| b) {
            continue;
        }
        let (scores, matches) = model.score_node(&input.raw, &input.transitions, ds.split);
        assert_eq!(scores.len(), ds.horizon() - ds.split);
        assert!(!matches.is_empty());
        assert!(scores.iter().all(|v| v.is_finite() && *v >= 0.0));
        aucs.push(roc_auc_adjusted(&scores, &truth[ds.split..], None));
    }
    assert!(!aucs.is_empty(), "test data must contain anomalies");
    let mean_auc = aucs.iter().sum::<f64>() / aucs.len() as f64;
    // The tiny profile's contextual anomalies are hard at this reduced
    // model scale; the bar is "clearly better than chance", the paper's
    // numbers are the bench harness's job.
    assert!(
        mean_auc > 0.55,
        "mean AUC {mean_auc} barely better than chance"
    );
}

#[test]
fn detection_protocol_produces_consistent_confusion() {
    let ds = DatasetProfile::tiny().generate();
    let groups = ds.catalog.group_ids();
    let inputs = inputs_of(&ds);
    let model = NodeSentry::fit(quick_cfg(), &inputs, &groups, ds.split);
    for (n, input) in inputs.iter().enumerate() {
        let pred = model.detect_node(&input.raw, &input.transitions, ds.split);
        let truth = ds.labels(n);
        let c = adjusted_confusion(&pred, &truth[ds.split..], None);
        let total = c.tp + c.fp + c.fn_ + c.tn;
        assert_eq!(
            total,
            ds.horizon() - ds.split,
            "confusion must cover the test window"
        );
    }
}

#[test]
fn ablation_variants_run_end_to_end() {
    use nodesentry::core::Variant;
    let ds = DatasetProfile::tiny().generate();
    let groups = ds.catalog.group_ids();
    let inputs = inputs_of(&ds);
    for v in [
        Variant::C1SingleModel,
        Variant::C3EqualLength,
        Variant::C5DenseFfn,
    ] {
        let model = NodeSentry::fit(quick_cfg().with_variant(v), &inputs, &groups, ds.split);
        let (scores, _) = model.score_node(&inputs[0].raw, &inputs[0].transitions, ds.split);
        assert!(scores.iter().all(|s| s.is_finite()), "{v:?} produced NaNs");
    }
}

#[test]
fn incremental_pipeline_extends_cluster_library() {
    let ds = DatasetProfile::tiny().generate();
    let groups = ds.catalog.group_ids();
    let inputs = inputs_of(&ds);
    let mut model = NodeSentry::fit(quick_cfg(), &inputs, &groups, ds.split);
    let k0 = model.n_clusters();
    // A segment the library has seen must match without a new cluster.
    let known = model.train_segments[0].data.clone();
    let (_, was_new) = model.incremental_update(&known, 1);
    assert!(!was_new);
    assert_eq!(model.n_clusters(), k0);
    // A wildly alien pattern must spawn a new cluster + model.
    let alien = nodesentry::linalg::Matrix::from_fn(60, model.preprocessor.out_dim(), |t, _| {
        if t % 4 == 0 {
            5.0
        } else {
            -5.0
        }
    });
    let (_, was_new) = model.incremental_update(&alien, 1);
    assert!(was_new);
    assert_eq!(model.n_clusters(), k0 + 1);
}
