//! Property-based fault tolerance: the hardened streaming engine must
//! survive *arbitrary* seeded fault plans — every class at once, random
//! rates, random shard counts — and uphold its structural invariants:
//!
//! * the engine terminates (no deadlock, no panic escaping a worker);
//! * per node, verdict steps are strictly increasing (which also rules
//!   out duplicate verdicts) and confined to the test window;
//! * a step that was never delivered never gets a verdict.

use nodesentry::core::{CoarseConfig, NodeInput, NodeSentry, NodeSentryConfig, SharingConfig};
use nodesentry::features::FeatureCatalog;
use nodesentry::stream::{Engine, EngineConfig, Tick};
use nodesentry::telemetry::{
    Dataset, DatasetProfile, FaultInjector, FaultPlan, FaultPlanSpec, ALL_FAULTS,
};
use proptest::prelude::*;
use std::collections::HashMap;
use std::collections::HashSet;
use std::sync::{Arc, OnceLock};

fn quick_cfg() -> NodeSentryConfig {
    NodeSentryConfig {
        coarse: CoarseConfig {
            catalog: FeatureCatalog::compact(),
            k_max: 6,
            ..Default::default()
        },
        sharing: SharingConfig {
            window: 12,
            stride: 6,
            d_model: 16,
            n_heads: 2,
            n_layers: 1,
            hidden: 32,
            n_experts: 2,
            epochs: 6,
            lr: 3e-3,
            batch: 16,
            k_nearest: 4,
            ..Default::default()
        },
        match_period: 40,
        min_segment_len: 8,
        ..Default::default()
    }
}

struct Harness {
    ds: Dataset,
    model: Arc<NodeSentry>,
    clean: Vec<Tick>,
    n_cols: usize,
    counter_cols: Vec<usize>,
}

static HARNESS: OnceLock<Harness> = OnceLock::new();

fn harness() -> &'static Harness {
    HARNESS.get_or_init(|| {
        let ds = DatasetProfile::tiny().generate();
        let groups = ds.catalog.group_ids();
        let inputs: Vec<NodeInput> = (0..ds.n_nodes())
            .map(|n| NodeInput {
                raw: ds.raw_node(n),
                transitions: ds
                    .schedule
                    .node_timeline(n)
                    .iter()
                    .map(|s| s.start)
                    .filter(|&s| s > 0)
                    .collect(),
            })
            .collect();
        let model = NodeSentry::fit(quick_cfg(), &inputs, &groups, ds.split);
        let pp = &model.preprocessor;
        let n_cols = pp.groups.len();
        let counter_cols: Vec<usize> = (0..n_cols)
            .filter(|&c| pp.counters[pp.groups[c]] && pp.kept.contains(&pp.groups[c]))
            .collect();
        let transition_sets: Vec<HashSet<usize>> = inputs
            .iter()
            .map(|i| i.transitions.iter().copied().collect())
            .collect();
        let mut clean = Vec::new();
        for step in 0..ds.horizon() {
            for (node, input) in inputs.iter().enumerate() {
                clean.push(Tick {
                    node,
                    step,
                    values: input.raw.row(step).to_vec(),
                    transition: transition_sets[node].contains(&step),
                });
            }
        }
        Harness {
            ds,
            model: Arc::new(model),
            clean,
            n_cols,
            counter_cols,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(20))]

    #[test]
    fn random_fault_plans_uphold_engine_invariants(
        seed in any::<u64>(),
        rate_pct in 2usize..14,
        shards in 1usize..5,
        len_lo in 2usize..10,
        len_span in 1usize..40,
        chunk in 16usize..400,
    ) {
        let h = harness();
        let spec = FaultPlanSpec {
            seed,
            window: (1, h.ds.horizon()),
            kinds: ALL_FAULTS.to_vec(),
            rate: rate_pct as f64 / 100.0,
            event_len: (len_lo, len_lo + len_span),
            n_cols: h.n_cols,
            counter_cols: h.counter_cols.clone(),
        };
        let plan = FaultPlan::random(&spec, h.ds.n_nodes());
        prop_assert!(!plan.events.is_empty(), "spec must yield events");
        let outcome = FaultInjector::new(plan).apply(&h.clean);

        let mut cfg = EngineConfig::new(h.ds.split);
        cfg.n_shards = shards;
        cfg.smooth_window = 1;
        cfg.reorder_bound = 16;
        cfg.blackout_gap = 48;
        let engine = Engine::new(Arc::clone(&h.model), cfg);
        for chunk in outcome.stream.chunks(chunk) {
            engine.ingest(chunk.to_vec()).expect("shard must survive any fault plan");
        }
        // Reaching this point at all is the termination property: finish()
        // joins every worker.
        let report = engine.finish();

        let mut last: HashMap<usize, usize> = HashMap::new();
        for v in &report.verdicts {
            prop_assert!(
                v.step >= h.ds.split && v.step < h.ds.horizon(),
                "verdict outside test span: node {} step {}", v.node, v.step
            );
            prop_assert!(
                !outcome.dropped.contains(&(v.node, v.step)),
                "verdict for a tick that never arrived: node {} step {}", v.node, v.step
            );
            if let Some(&prev) = last.get(&v.node) {
                prop_assert!(
                    v.step > prev,
                    "verdict steps not strictly increasing for node {}: {} after {}",
                    v.node, v.step, prev
                );
            }
            last.insert(v.node, v.step);
        }
        // Verdicts can only come from delivered steps, so the count is
        // bounded by the horizon even under duplication faults.
        for (&node, _) in last.iter() {
            let n = report.verdicts.iter().filter(|v| v.node == node).count();
            prop_assert!(n <= h.ds.horizon() - h.ds.split);
        }
    }

    #[test]
    fn clean_streams_stay_clean_under_any_sharding(
        shards in 1usize..5,
        chunk in 16usize..400,
    ) {
        let h = harness();
        let mut cfg = EngineConfig::new(h.ds.split);
        cfg.n_shards = shards;
        cfg.smooth_window = 1;
        let engine = Engine::new(Arc::clone(&h.model), cfg);
        for chunk in h.clean.chunks(chunk) {
            engine.ingest(chunk.to_vec()).expect("clean feed never kills a shard");
        }
        let report = engine.finish();
        prop_assert!(report.faults.is_clean(), "clean feed tripped counters: {:?}", report.faults);
        prop_assert_eq!(
            report.verdicts.len(),
            h.ds.n_nodes() * (h.ds.horizon() - h.ds.split)
        );
    }
}
