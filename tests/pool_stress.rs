//! Stress and correctness suite for the persistent thread pool behind
//! the vendored rayon shim.
//!
//! The pool's promises, each pinned here:
//! * order preservation — results concatenate in input order no matter
//!   which worker ran which chunk (10k tiny tasks);
//! * nested `par_map` from inside a task neither deadlocks nor reorders;
//! * a panic in one task propagates to the caller without poisoning the
//!   workers or leaking sibling outputs — the very next parallel call
//!   succeeds at full width;
//! * `par_map` output bit-matches the serial `map` for random f64
//!   workloads at 1/2/4/8 threads (property test below);
//! * shutdown at process exit is clean — parked daemon workers hold no
//!   state that needs unwinding, so this whole binary exiting *is* the
//!   test.
//!
//! The width override is process-global, so every test (and every
//! proptest case) takes [`width_lock`] around it.

use proptest::prelude::*;
use rayon::prelude::*;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard};

fn width_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Run `f` with the pool width overridden to `w`, restoring on exit
/// (including panicking exits, so later tests aren't stuck at `w`).
fn with_width<R>(w: usize, f: impl FnOnce() -> R) -> R {
    let _g = width_lock();
    struct Reset;
    impl Drop for Reset {
        fn drop(&mut self) {
            rayon::set_thread_count_override(None);
        }
    }
    let _r = Reset;
    rayon::set_thread_count_override(Some(w));
    f()
}

#[test]
fn ten_thousand_tiny_tasks_preserve_order() {
    for w in [2, 4, 8] {
        let out: Vec<usize> = with_width(w, || {
            (0..10_000).into_par_iter().map(|i| i * 7 + 1).collect()
        });
        assert_eq!(out.len(), 10_000);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i * 7 + 1, "width {w}, index {i}");
        }
    }
}

#[test]
fn nested_par_map_is_ordered_and_deadlock_free() {
    let out: Vec<Vec<usize>> = with_width(4, || {
        (0..64)
            .into_par_iter()
            .map(|i| (0..32).into_par_iter().map(|j| i * 100 + j).collect())
            .collect()
    });
    for (i, inner) in out.iter().enumerate() {
        for (j, v) in inner.iter().enumerate() {
            assert_eq!(*v, i * 100 + j);
        }
    }
}

#[test]
fn panic_propagates_without_poisoning_the_pool() {
    let result = std::panic::catch_unwind(|| {
        with_width(4, || {
            (0..1000usize)
                .into_par_iter()
                .map(|i| {
                    if i == 613 {
                        panic!("task 613 exploded");
                    }
                    i
                })
                .collect::<Vec<_>>()
        })
    });
    let payload = result.expect_err("the task panic must reach the caller");
    let msg = payload
        .downcast_ref::<&str>()
        .copied()
        .map(str::to_owned)
        .or_else(|| payload.downcast_ref::<String>().cloned())
        .unwrap_or_default();
    assert!(msg.contains("task 613 exploded"), "payload: {msg:?}");

    // Workers survived: the next full-width job runs to completion with
    // every task executed exactly once.
    let ran = AtomicUsize::new(0);
    let out: Vec<usize> = with_width(4, || {
        (0..1000usize)
            .into_par_iter()
            .map(|i| {
                ran.fetch_add(1, Ordering::Relaxed);
                i * 2
            })
            .collect()
    });
    assert_eq!(ran.load(Ordering::Relaxed), 1000);
    assert_eq!(out[999], 1998);
}

#[test]
fn panic_in_nested_job_leaves_outer_pool_usable() {
    let result = std::panic::catch_unwind(|| {
        with_width(4, || {
            (0..8usize)
                .into_par_iter()
                .map(|i| {
                    let inner: Vec<usize> = (0..16)
                        .into_par_iter()
                        .map(move |j| {
                            if i == 3 && j == 5 {
                                panic!("nested panic");
                            }
                            j
                        })
                        .collect();
                    inner.len()
                })
                .collect::<Vec<_>>()
        })
    });
    assert!(result.is_err());
    let out: Vec<usize> = with_width(4, || (0..100).into_par_iter().map(|i| i + 1).collect());
    assert_eq!(out[99], 100);
}

#[test]
fn for_each_sees_every_item_exactly_once() {
    let hits: Vec<AtomicUsize> = (0..5000).map(|_| AtomicUsize::new(0)).collect();
    with_width(8, || {
        (0..5000usize).into_par_iter().for_each(|i| {
            hits[i].fetch_add(1, Ordering::Relaxed);
        });
    });
    assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
}

#[test]
fn pool_counters_account_for_work() {
    let before = rayon::pool_stats();
    with_width(4, || {
        let _: Vec<usize> = (0..4000).into_par_iter().map(|i| i).collect();
    });
    let after = rayon::pool_stats();
    assert!(after.jobs_submitted > before.jobs_submitted);
    assert!(after.tasks_executed > before.tasks_executed);
    // Busy-time is tracked per spawned worker.
    assert_eq!(after.busy_ns.len(), after.workers);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    // `par_map` must bit-match the serial `map` at every width — the
    // combinator layer's half of the workspace determinism contract.
    #[test]
    fn par_map_bit_matches_serial_map(xs in prop::collection::vec(-1e6f64..1e6, 0..512)) {
        let f = |x: f64| (x * 1.000_000_1).sin() * x + 0.5;
        let serial: Vec<u64> = xs.iter().map(|&x| f(x).to_bits()).collect();
        for w in [1usize, 2, 4, 8] {
            let par: Vec<u64> = with_width(w, || {
                xs.clone()
                    .into_par_iter()
                    .map(|x| f(x).to_bits())
                    .collect()
            });
            prop_assert_eq!(&par, &serial, "width {}", w);
        }
    }

    // Ordered `sum` reduction: bitwise equal to the sequential fold at
    // every width (upstream rayon does not even promise this).
    #[test]
    fn par_sum_bit_matches_serial_sum(xs in prop::collection::vec(-1e3f64..1e3, 0..512)) {
        let serial: f64 = xs.iter().map(|&x| x * 1.000_001).sum();
        for w in [1usize, 2, 4, 8] {
            let par: f64 = with_width(w, || {
                xs.par_iter().map(|&x| x * 1.000_001).sum()
            });
            prop_assert_eq!(par.to_bits(), serial.to_bits(), "width {}", w);
        }
    }
}
