//! Cross-crate contract: every baseline detector consumes the same
//! preprocessed representation NodeSentry uses, produces finite scores of
//! the right length, and separates an easy synthetic anomaly.

use nodesentry::baselines::{
    Detector, Examon, ExamonConfig, Isc20, Isc20Config, Prodigy, ProdigyConfig, Ruad, RuadConfig,
};
use nodesentry::linalg::Matrix;

fn easy_nodes() -> (Vec<Matrix>, usize, usize, usize) {
    let horizon = 300;
    let split = 200;
    let (a0, a1) = (250, 280);
    let nodes = (0..2)
        .map(|n| {
            Matrix::from_fn(horizon, 4, |t, m| {
                let base = ((t as f64) * 0.3 + (m + n) as f64).sin() * 0.5;
                if n == 0 && (a0..a1).contains(&t) {
                    base + 4.0
                } else {
                    base
                }
            })
        })
        .collect();
    (nodes, split, a0, a1)
}

fn detectors() -> Vec<Box<dyn Detector>> {
    vec![
        Box::new(Prodigy::new(ProdigyConfig {
            epochs: 30,
            ..Default::default()
        })),
        Box::new(Ruad::new(RuadConfig {
            epochs: 2,
            max_windows_per_node: 20,
            ..Default::default()
        })),
        Box::new(Examon::new(ExamonConfig {
            epochs: 40,
            ..Default::default()
        })),
        Box::new(Isc20::new(Isc20Config {
            max_iter: 20,
            ..Default::default()
        })),
    ]
}

#[test]
fn all_baselines_fit_and_score() {
    let (nodes, split, a0, a1) = easy_nodes();
    for mut det in detectors() {
        det.fit(&nodes, split);
        for (n, data) in nodes.iter().enumerate() {
            let scores = det.score_node(n, data, split);
            assert_eq!(scores.len(), data.rows() - split, "{}", det.name());
            assert!(
                scores.iter().all(|s| s.is_finite()),
                "{} emitted NaN",
                det.name()
            );
        }
        // Node 0 carries the anomaly: its scores there should beat the
        // clean region on average.
        let scores = det.score_node(0, &nodes[0], split);
        let anom: f64 = scores[a0 - split..a1 - split].iter().sum::<f64>() / (a1 - a0) as f64;
        let clean: f64 = scores[..a0 - split].iter().sum::<f64>() / (a0 - split) as f64;
        assert!(
            anom > clean,
            "{}: anomaly region {anom} not above clean {clean}",
            det.name()
        );
    }
}

#[test]
fn baseline_names_match_table4_rows() {
    let names: Vec<&str> = detectors().iter().map(|d| d.name()).collect();
    assert_eq!(names, vec!["Prodigy", "RUAD", "ExaMon", "ISC 20"]);
}
