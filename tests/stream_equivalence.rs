//! The streaming engine's contract: feeding a trained detector one tick
//! at a time through `ns-stream` produces *exactly* the scores and
//! verdicts of batch scoring — `f64::to_bits` equality, not tolerance —
//! on seeded datasets with missing values, across multiple shards.

use nodesentry::core::{CoarseConfig, NodeInput, NodeSentry, NodeSentryConfig, SharingConfig};
use nodesentry::eval::{ksigma_detect, smooth_scores};
use nodesentry::features::FeatureCatalog;
use nodesentry::stream::{Engine, EngineConfig, Tick};
use nodesentry::telemetry::{Dataset, DatasetProfile};
use std::collections::HashSet;
use std::sync::Arc;

fn quick_cfg() -> NodeSentryConfig {
    NodeSentryConfig {
        coarse: CoarseConfig {
            catalog: FeatureCatalog::compact(),
            k_max: 6,
            ..Default::default()
        },
        sharing: SharingConfig {
            window: 12,
            stride: 6,
            d_model: 16,
            n_heads: 2,
            n_layers: 1,
            hidden: 32,
            n_experts: 2,
            epochs: 6,
            lr: 3e-3,
            batch: 16,
            k_nearest: 4,
            ..Default::default()
        },
        match_period: 40,
        min_segment_len: 8,
        ..Default::default()
    }
}

fn inputs_of(ds: &Dataset) -> Vec<NodeInput> {
    (0..ds.n_nodes())
        .map(|n| NodeInput {
            raw: ds.raw_node(n),
            transitions: ds
                .schedule
                .node_timeline(n)
                .iter()
                .map(|s| s.start)
                .filter(|&s| s > 0)
                .collect(),
        })
        .collect()
}

/// Step-major tick batches: each batch carries every node's sample for
/// one step, so shards interleave the way a real collector would.
fn tick_batches(inputs: &[NodeInput], horizon: usize) -> Vec<Vec<Tick>> {
    let transition_sets: Vec<HashSet<usize>> = inputs
        .iter()
        .map(|i| i.transitions.iter().copied().collect())
        .collect();
    (0..horizon)
        .map(|step| {
            inputs
                .iter()
                .enumerate()
                .map(|(node, input)| Tick {
                    node,
                    step,
                    values: input.raw.row(step).to_vec(),
                    transition: transition_sets[node].contains(&step),
                })
                .collect()
        })
        .collect()
}

/// Fit on the dataset, run batch + streaming, and hold them to bitwise
/// equality. Returns the trained model for further checks.
fn assert_equivalence(ds: &Dataset, n_shards: usize) -> (NodeSentry, Vec<NodeInput>) {
    let groups = ds.catalog.group_ids();
    let inputs = inputs_of(ds);
    let model = NodeSentry::fit(quick_cfg(), &inputs, &groups, ds.split);
    let horizon = ds.horizon();

    // Batch reference: scores, segment clusters, unsmoothed k-sigma.
    let mut batch_scores = Vec::new();
    let mut batch_flags = Vec::new();
    let mut batch_clusters = Vec::new();
    for input in &inputs {
        let (scores, matches) = model.score_node(&input.raw, &input.transitions, ds.split);
        assert!(!matches.is_empty());
        let mut clusters = vec![usize::MAX; scores.len()];
        for &(start, end, cluster) in &matches {
            for slot in clusters[start - ds.split..end - ds.split].iter_mut() {
                *slot = cluster;
            }
        }
        assert!(
            clusters.iter().all(|&c| c != usize::MAX),
            "segments must cover the span"
        );
        batch_flags.push(ksigma_detect(&scores, &model.cfg.threshold));
        batch_scores.push(scores);
        batch_clusters.push(clusters);
    }

    // Streaming run (smoothing off = raw ksigma_detect path).
    let shared = Arc::new(model);
    let mut cfg = EngineConfig::new(ds.split);
    cfg.n_shards = n_shards;
    let engine = Engine::new(Arc::clone(&shared), cfg);
    for batch in tick_batches(&inputs, horizon) {
        engine.ingest(batch).expect("stream shard alive");
    }
    let report = engine.finish();

    assert_eq!(
        report.verdicts.len(),
        inputs.len() * (horizon - ds.split),
        "one verdict per node per test step"
    );
    assert_eq!(report.stats.n_points as usize, report.verdicts.len());
    assert!(report.stats.n_matches > 0);
    // A clean ordered feed must not trip any hardening path.
    assert!(
        report.faults.is_clean(),
        "clean feed tripped fault counters: {:?}",
        report.faults
    );
    assert!(report
        .verdicts
        .iter()
        .all(|v| v.kind == nodesentry::stream::VerdictKind::Ok));

    for v in &report.verdicts {
        let k = v.step - ds.split;
        let (bs, bf, bc) = (
            batch_scores[v.node][k],
            batch_flags[v.node][k],
            batch_clusters[v.node][k],
        );
        assert_eq!(
            v.score.to_bits(),
            bs.to_bits(),
            "node {} step {}: stream {} vs batch {}",
            v.node,
            v.step,
            v.score,
            bs
        );
        assert_eq!(
            v.anomalous, bf,
            "flag diverged at node {} step {}",
            v.node, v.step
        );
        assert_eq!(
            v.cluster, bc,
            "cluster diverged at node {} step {}",
            v.node, v.step
        );
    }

    let model = Arc::into_inner(shared).expect("engine released the model");
    (model, inputs)
}

#[test]
fn streaming_matches_batch_on_tiny_dataset() {
    let ds = DatasetProfile::tiny().generate();
    let (model, inputs) = assert_equivalence(&ds, 3);

    // Smoothed path: engine with the config's smoothing window must
    // reproduce `detect_node` flag for flag.
    let shared = Arc::new(model);
    let mut cfg = EngineConfig::new(ds.split);
    cfg.n_shards = 2;
    cfg.smooth_window = shared.cfg.smooth_window;
    let engine = Engine::new(Arc::clone(&shared), cfg);
    for batch in tick_batches(&inputs, ds.horizon()) {
        engine.ingest(batch).expect("stream shard alive");
    }
    let report = engine.finish();
    for (node, input) in inputs.iter().enumerate() {
        let batch_pred = shared.detect_node(&input.raw, &input.transitions, ds.split);
        let stream_pred: Vec<bool> = report
            .verdicts
            .iter()
            .filter(|v| v.node == node)
            .map(|v| v.anomalous)
            .collect();
        assert_eq!(
            batch_pred, stream_pred,
            "smoothed flags diverged for node {node}"
        );
        // Scores stay the raw normalized ones even when flags are
        // smoothed — the smoothing only feeds the threshold.
        let (batch_scores, _) = shared.score_node(&input.raw, &input.transitions, ds.split);
        let smoothed = smooth_scores(&batch_scores, shared.cfg.smooth_window);
        assert_eq!(ksigma_detect(&smoothed, &shared.cfg.threshold), stream_pred);
    }
}

#[test]
fn streaming_matches_batch_on_reseeded_noisier_dataset() {
    // A second, independently seeded dataset with 10× the missing rate,
    // so NaN runs regularly span segment boundaries and the streaming
    // watermark is exercised hard.
    let mut profile = DatasetProfile::tiny();
    profile.name = "tiny-reseeded".into();
    profile.seed = 5150;
    profile.missing_rate = 0.02;
    profile.schedule.n_nodes = 5;
    let ds = profile.generate();
    assert_equivalence(&ds, 4);
}
