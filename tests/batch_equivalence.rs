//! The batched scoring phase must be invisible in the output: with
//! `EngineConfig::batch_scoring` on, the engine stacks every segment
//! and probe that becomes ready in a tick batch across the shard's
//! nodes into batched forwards — and the resulting verdict stream must
//! be **bit-identical** (`f64::to_bits` on scores; equality on node,
//! step, flag, cluster and kind) to the eager per-segment path, at 1,
//! 2 and 4 shards, on clean feeds and under fault-injection plans
//! (drops, reorders, NaN bursts, blackouts, chaos panics).

use nodesentry::core::{CoarseConfig, NodeInput, NodeSentry, NodeSentryConfig, SharingConfig};
use nodesentry::features::FeatureCatalog;
use nodesentry::stream::{Engine, EngineConfig, EngineReport, Tick, Verdict};
use nodesentry::telemetry::{
    Dataset, DatasetProfile, FaultEvent, FaultInjector, FaultKind, FaultPlan,
};
use std::collections::HashSet;
use std::sync::{Arc, OnceLock};

const SHARDS: [usize; 3] = [1, 2, 4];

fn quick_cfg() -> NodeSentryConfig {
    NodeSentryConfig {
        coarse: CoarseConfig {
            catalog: FeatureCatalog::compact(),
            k_max: 6,
            ..Default::default()
        },
        sharing: SharingConfig {
            window: 12,
            stride: 6,
            d_model: 16,
            n_heads: 2,
            n_layers: 1,
            hidden: 32,
            n_experts: 2,
            epochs: 6,
            lr: 3e-3,
            batch: 16,
            k_nearest: 4,
            ..Default::default()
        },
        match_period: 40,
        min_segment_len: 8,
        ..Default::default()
    }
}

struct Setup {
    ds: Dataset,
    model: Arc<NodeSentry>,
    /// Clean step-major tick stream (every node's sample per step).
    clean: Vec<Tick>,
}

static SETUP: OnceLock<Setup> = OnceLock::new();

fn setup() -> &'static Setup {
    SETUP.get_or_init(|| {
        let ds = DatasetProfile::tiny().generate();
        let groups = ds.catalog.group_ids();
        let inputs: Vec<NodeInput> = (0..ds.n_nodes())
            .map(|n| NodeInput {
                raw: ds.raw_node(n),
                transitions: ds
                    .schedule
                    .node_timeline(n)
                    .iter()
                    .map(|s| s.start)
                    .filter(|&s| s > 0)
                    .collect(),
            })
            .collect();
        let model = NodeSentry::fit(quick_cfg(), &inputs, &groups, ds.split);
        let transition_sets: Vec<HashSet<usize>> = inputs
            .iter()
            .map(|i| i.transitions.iter().copied().collect())
            .collect();
        let mut clean = Vec::new();
        for step in 0..ds.horizon() {
            for (node, input) in inputs.iter().enumerate() {
                clean.push(Tick {
                    node,
                    step,
                    values: input.raw.row(step).to_vec(),
                    transition: transition_sets[node].contains(&step),
                });
            }
        }
        Setup {
            ds,
            model: Arc::new(model),
            clean,
        }
    })
}

fn cfg_of(setup: &Setup, shards: usize, batched: bool) -> EngineConfig {
    let mut cfg = EngineConfig::new(setup.ds.split);
    cfg.n_shards = shards;
    cfg.reorder_bound = 16;
    cfg.blackout_gap = 48;
    cfg.batch_scoring = batched;
    cfg
}

fn run(setup: &Setup, stream: &[Tick], cfg: EngineConfig, chunk: usize) -> EngineReport {
    let engine = Engine::new(Arc::clone(&setup.model), cfg);
    for batch in stream.chunks(chunk) {
        engine.ingest(batch.to_vec()).expect("stream shard alive");
    }
    engine.finish()
}

/// Bitwise comparison of two sorted verdict streams.
fn assert_same_verdicts(batched: &[Verdict], eager: &[Verdict], tag: &str) {
    assert_eq!(
        batched.len(),
        eager.len(),
        "{tag}: verdict counts diverged ({} batched vs {} eager)",
        batched.len(),
        eager.len()
    );
    for (b, e) in batched.iter().zip(eager) {
        assert_eq!((b.node, b.step), (e.node, e.step), "{tag}: stream order");
        assert_eq!(
            b.score.to_bits(),
            e.score.to_bits(),
            "{tag}: node {} step {}: batched {} vs eager {}",
            b.node,
            b.step,
            b.score,
            e.score
        );
        assert_eq!(
            b.anomalous, e.anomalous,
            "{tag}: flag diverged at node {} step {}",
            b.node, b.step
        );
        assert_eq!(
            b.cluster, e.cluster,
            "{tag}: cluster diverged at node {} step {}",
            b.node, b.step
        );
        assert_eq!(
            b.kind, e.kind,
            "{tag}: kind diverged at node {} step {}",
            b.node, b.step
        );
    }
}

/// Run both modes over the same stream and hold them bit-identical.
fn check_stream(stream: &[Tick], chunk: usize, panic_at: Option<(usize, usize)>, tag: &str) {
    let setup = setup();
    for shards in SHARDS {
        let mut bc = cfg_of(setup, shards, true);
        let mut ec = cfg_of(setup, shards, false);
        bc.panic_at = panic_at;
        ec.panic_at = panic_at;
        let batched = run(setup, stream, bc, chunk);
        let eager = run(setup, stream, ec, chunk);
        assert_same_verdicts(
            &batched.verdicts,
            &eager.verdicts,
            &format!("{tag}/s{shards}"),
        );
        assert_eq!(
            batched.stats.n_points, eager.stats.n_points,
            "{tag}/s{shards}: point counts"
        );
        assert_eq!(
            batched.stats.n_matches, eager.stats.n_matches,
            "{tag}/s{shards}: match cycle counts"
        );
    }
}

#[test]
fn clean_feed_step_major_batches() {
    let setup = setup();
    let per_step = setup.ds.n_nodes();
    // One batch per step: the cross-node burst case the batcher targets.
    check_stream(&setup.clean, per_step, None, "clean/step-major");
}

#[test]
fn clean_feed_arbitrary_chunking() {
    // Chunk sizes that split steps across batches and bundle several
    // steps per batch: batching must be a pure scheduling change
    // regardless of arrival framing.
    let setup = setup();
    for chunk in [1, 7, 256] {
        check_stream(&setup.clean, chunk, None, &format!("clean/chunk{chunk}"));
    }
}

#[test]
fn fault_plans_stay_bit_identical() {
    let setup = setup();
    let cases: Vec<(&str, FaultEvent)> = vec![
        (
            "drop",
            FaultEvent {
                node: 0,
                kind: FaultKind::Drop,
                start: 420,
                end: 450,
                magnitude: 0.6,
                cols: Vec::new(),
            },
        ),
        (
            "reorder",
            FaultEvent {
                node: 2,
                kind: FaultKind::Reorder,
                start: 380,
                end: 560,
                magnitude: 4.0,
                cols: Vec::new(),
            },
        ),
        (
            "nan-burst",
            FaultEvent {
                node: 3,
                kind: FaultKind::NanBurst,
                start: 430,
                end: 445,
                magnitude: 1.0,
                cols: Vec::new(),
            },
        ),
        (
            "blackout",
            FaultEvent {
                node: 1,
                kind: FaultKind::Blackout,
                start: 420,
                end: 500,
                magnitude: 1.0,
                cols: Vec::new(),
            },
        ),
    ];
    for (tag, event) in cases {
        let outcome = FaultInjector::new(FaultPlan::single(event, 0xD1FF)).apply(&setup.clean);
        check_stream(&outcome.stream, 256, None, &format!("fault/{tag}"));
    }
}

#[test]
fn multi_event_plan_stays_bit_identical() {
    // Several fault classes live in one plan, hitting different nodes:
    // the scoring phase sees degraded, suppressed and clean segments in
    // the same sweep.
    let setup = setup();
    let mk = |node, kind, start, end, magnitude| FaultEvent {
        node,
        kind,
        start,
        end,
        magnitude,
        cols: Vec::new(),
    };
    let plan = FaultPlan {
        events: vec![
            mk(0, FaultKind::Drop, 410, 435, 0.5),
            mk(2, FaultKind::Reorder, 390, 520, 3.0),
            mk(3, FaultKind::NanBurst, 460, 475, 1.0),
        ],
        seed: 0xBEEF,
    };
    let outcome = FaultInjector::new(plan).apply(&setup.clean);
    check_stream(&outcome.stream, 256, None, "fault/multi");
}

#[test]
fn chaos_panic_quarantine_preserves_equivalence() {
    // A worker panic quarantines the node mid-stream; the surviving
    // verdict set (including segments queued before the panic tick)
    // must still match the eager engine's.
    let setup = setup();
    let step = setup.ds.split + (setup.ds.horizon() - setup.ds.split) / 2;
    let per_step = setup.ds.n_nodes();
    check_stream(&setup.clean, per_step, Some((1, step)), "chaos/step-major");
    check_stream(&setup.clean, 256, Some((1, step)), "chaos/chunk256");
}
