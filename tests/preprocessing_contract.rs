//! Cross-crate contract between the telemetry catalog and the
//! preprocessing pipeline: semantic groups aggregate, counters
//! rate-convert, correlated duplicates prune, and the final reduction is
//! in the paper's ballpark (~an order of magnitude).

use nodesentry::core::preprocess::{detect_counters, groups_from_names, Preprocessor};
use nodesentry::telemetry::{CatalogSpec, DatasetProfile, MetricCatalog};

#[test]
fn reduction_reaches_paper_ballpark() {
    let ds = DatasetProfile::tiny().generate();
    let raw = ds.raw_node(0).slice_rows(0, ds.split);
    let groups = ds.catalog.group_ids();
    let pp = Preprocessor::fit(&raw, &groups, 0.99, 0.05);
    let m_raw = ds.catalog.len();
    let m_out = pp.out_dim();
    assert!(m_out >= 10, "over-pruned to {m_out}");
    assert!(
        (m_out as f64) <= (m_raw as f64) * 0.35,
        "reduction too weak: {m_out} of {m_raw}"
    );
    // Transform yields standardized, clipped, finite output.
    let out = pp.transform(&ds.raw_node(0));
    assert_eq!(out.rows(), ds.horizon());
    assert!(out
        .as_slice()
        .iter()
        .all(|v| v.is_finite() && v.abs() <= 5.0));
}

#[test]
fn counters_are_detected_in_aggregated_telemetry() {
    let ds = DatasetProfile::tiny().generate();
    let raw = ds.raw_node(1).slice_rows(0, ds.split);
    let groups = ds.catalog.group_ids();
    let cleaned = {
        let mut m = raw.clone();
        nodesentry::core::preprocess::interpolate_missing(&mut m);
        m
    };
    let aggregated = nodesentry::core::preprocess::aggregate_groups(&cleaned, &groups);
    let counters = detect_counters(&aggregated);
    let n_counters = counters.iter().filter(|&&c| c).count();
    // The catalog assigns the Counter transform to ~20% of kinds.
    assert!(n_counters > 10, "only {n_counters} counters detected");
    assert!(n_counters < counters.len() / 2);
}

#[test]
fn name_based_grouping_matches_catalog_structure() {
    // The catalog's own group ids and the name-derived ones must induce
    // the same partition for per-unit metrics.
    let cat = MetricCatalog::build(CatalogSpec::small());
    let names: Vec<String> = cat.metrics().iter().map(|m| m.name.clone()).collect();
    let by_name = groups_from_names(&names);
    let by_catalog = cat.group_ids();
    // Same-group-by-catalog implies same-group-by-name.
    for i in 0..names.len() {
        for j in i + 1..names.len() {
            if by_catalog[i] == by_catalog[j] {
                assert_eq!(
                    by_name[i], by_name[j],
                    "{} vs {} split by name-grouping",
                    names[i], names[j]
                );
            }
        }
    }
}

#[test]
fn transitions_from_schedule_segment_the_timeline() {
    let ds = DatasetProfile::tiny().generate();
    for node in 0..ds.n_nodes() {
        let timeline = ds.schedule.node_timeline(node);
        let transitions: Vec<usize> = timeline
            .iter()
            .map(|s| s.start)
            .filter(|&s| s > 0)
            .collect();
        let raw = ds.raw_node(node);
        let groups = ds.catalog.group_ids();
        let pp = Preprocessor::fit(&raw.slice_rows(0, ds.split), &groups, 0.99, 0.05);
        let processed = pp.transform(&raw);
        let segs =
            nodesentry::core::preprocess::segment_at_transitions(node, &processed, &transitions, 4);
        // Segments tile the horizon (up to dropped short spans).
        let covered: usize = segs.iter().map(|s| s.len()).sum();
        assert!(covered as f64 > 0.9 * ds.horizon() as f64);
        for w in segs.windows(2) {
            assert!(w[0].end <= w[1].start);
        }
    }
}
