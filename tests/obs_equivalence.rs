//! The observability layer's contract: enabling ns-obs tracing + metrics
//! changes *nothing* about what the engine computes. Verdicts with
//! observability on are bit-identical (`f64::to_bits`) to verdicts with
//! it off, at 1, 2, and 4 shards — while the live registry demonstrably
//! moves. A second test scrapes the `/metrics` endpoint over a real
//! socket and parses every exposed family.
//!
//! Both tests mutate process-global ns-obs state (enabled flags, the
//! registry), so they serialize on a shared lock; the trained model is a
//! shared fixture because training dominates the runtime.

use nodesentry::core::{
    CoarseConfig, NodeInput, NodeSentry, NodeSentryConfig, SharingConfig, Variant,
};
use nodesentry::features::FeatureCatalog;
use nodesentry::obs;
use nodesentry::stream::{metrics as sm, Engine, EngineConfig, FaultCounters, Tick, Verdict};
use nodesentry::telemetry::{Dataset, DatasetProfile};
use std::collections::{BTreeMap, HashSet};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};

fn test_lock() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|e| e.into_inner())
}

fn quick_cfg() -> NodeSentryConfig {
    NodeSentryConfig {
        coarse: CoarseConfig {
            catalog: FeatureCatalog::compact(),
            k_max: 6,
            ..Default::default()
        },
        sharing: SharingConfig {
            window: 12,
            stride: 6,
            d_model: 16,
            n_heads: 2,
            n_layers: 1,
            hidden: 32,
            n_experts: 2,
            epochs: 4,
            lr: 3e-3,
            batch: 16,
            k_nearest: 4,
            ..Default::default()
        },
        match_period: 40,
        min_segment_len: 8,
        variant: Variant::Full,
        ..Default::default()
    }
}

struct Fixture {
    model: Arc<NodeSentry>,
    batches: Vec<Vec<Tick>>,
    split: usize,
}

fn fixture() -> &'static Fixture {
    static CELL: OnceLock<Fixture> = OnceLock::new();
    CELL.get_or_init(|| {
        // Train with observability off so the fixture is the plain
        // baseline; each test toggles the flags around its own runs.
        obs::disable_all();
        let ds: Dataset = DatasetProfile::tiny().generate();
        let groups = ds.catalog.group_ids();
        let inputs: Vec<NodeInput> = (0..ds.n_nodes())
            .map(|n| NodeInput {
                raw: ds.raw_node(n),
                transitions: ds
                    .schedule
                    .node_timeline(n)
                    .iter()
                    .map(|s| s.start)
                    .filter(|&s| s > 0)
                    .collect(),
            })
            .collect();
        let model = NodeSentry::fit(quick_cfg(), &inputs, &groups, ds.split);
        let transition_sets: Vec<HashSet<usize>> = inputs
            .iter()
            .map(|i| i.transitions.iter().copied().collect())
            .collect();
        let batches = (0..ds.horizon())
            .map(|step| {
                inputs
                    .iter()
                    .enumerate()
                    .map(|(node, input)| Tick {
                        node,
                        step,
                        values: input.raw.row(step).to_vec(),
                        transition: transition_sets[node].contains(&step),
                    })
                    .collect()
            })
            .collect();
        Fixture {
            model: Arc::new(model),
            batches,
            split: ds.split,
        }
    })
}

fn run_stream(fx: &Fixture, n_shards: usize) -> Vec<Verdict> {
    run_stream_with(fx, n_shards, None)
}

fn run_stream_with(
    fx: &Fixture,
    n_shards: usize,
    panic_at: Option<(usize, usize)>,
) -> Vec<Verdict> {
    let mut cfg = EngineConfig::new(fx.split);
    cfg.n_shards = n_shards;
    cfg.panic_at = panic_at;
    let engine = Engine::new(Arc::clone(&fx.model), cfg);
    for batch in &fx.batches {
        engine.ingest(batch.clone()).expect("stream shard alive");
    }
    engine.finish().verdicts
}

#[test]
fn verdicts_bit_identical_with_observability_on_and_off() {
    let _l = test_lock();
    let fx = fixture();
    for n_shards in [1usize, 2, 4] {
        obs::disable_all();
        obs::trace::reset();
        obs::metrics::global().reset();
        let off = run_stream(fx, n_shards);

        // Disabled means no-op: nothing may have landed in either store.
        assert!(
            obs::trace::all_stats().is_empty(),
            "spans recorded while disabled"
        );
        assert!(
            obs::metrics::global()
                .histogram_quantile(sm::POINT_SECONDS, &[], 0.5)
                .is_none(),
            "histogram observed while disabled"
        );

        obs::enable_all();
        let on = run_stream(fx, n_shards);
        obs::disable_all();

        assert!(!off.is_empty());
        assert_eq!(off.len(), on.len(), "{n_shards} shards: verdict count");
        for (a, b) in off.iter().zip(&on) {
            assert_eq!((a.node, a.step), (b.node, b.step), "{n_shards} shards");
            assert_eq!(
                a.score.to_bits(),
                b.score.to_bits(),
                "{n_shards} shards: node {} step {}: off {} vs on {}",
                a.node,
                a.step,
                a.score,
                b.score
            );
            assert_eq!(a.anomalous, b.anomalous);
            assert_eq!(a.cluster, b.cluster);
            assert_eq!(a.kind, b.kind);
        }

        // ...and the enabled run actually measured something.
        let reg = obs::metrics::global();
        assert!(
            reg.histogram_quantile(sm::POINT_SECONDS, &[], 0.5)
                .is_some(),
            "{n_shards} shards: point latency histogram stayed empty"
        );
        assert!(
            reg.histogram_quantile(sm::INGEST_SECONDS, &[], 0.5)
                .is_some(),
            "{n_shards} shards: ingest histogram stayed empty"
        );
    }
}

fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut s = TcpStream::connect(addr).expect("connect to exporter");
    write!(
        s,
        "GET {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut out = String::new();
    s.read_to_string(&mut out).expect("read response");
    out
}

#[test]
fn metrics_endpoint_serves_every_family_over_a_socket() {
    let _l = test_lock();
    let fx = fixture();
    obs::metrics::global().reset();
    obs::enable_all();
    let verdicts = run_stream(fx, 2);
    obs::disable_all();
    assert!(!verdicts.is_empty());

    let server = Engine::serve_metrics("127.0.0.1:0").expect("bind ephemeral port");
    let resp = http_get(server.local_addr(), "/metrics");
    server.shutdown();

    assert!(resp.starts_with("HTTP/1.1 200 OK"), "{resp}");
    assert!(resp.contains("text/plain; version=0.0.4"), "{resp}");
    let body = resp.split_once("\r\n\r\n").expect("header/body split").1;

    // Parse the exposition format: every family must announce # HELP and
    // # TYPE, every sample must belong to the family announced above it
    // and carry a parseable value.
    let mut families: BTreeMap<String, usize> = BTreeMap::new();
    let mut helped: HashSet<String> = HashSet::new();
    let mut current: Option<String> = None;
    for line in body.lines().filter(|l| !l.is_empty()) {
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split_whitespace().next().expect("HELP name");
            helped.insert(name.to_string());
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let name = it.next().expect("TYPE name");
            let kind = it.next().expect("TYPE kind");
            assert!(
                ["counter", "gauge", "histogram"].contains(&kind),
                "unknown type in {line:?}"
            );
            assert!(helped.contains(name), "# TYPE before # HELP for {name}");
            families.insert(name.to_string(), 0);
            current = Some(name.to_string());
        } else {
            let fam = current.as_ref().expect("sample line before any # TYPE");
            let name_end = line.find(['{', ' ']).expect("sample name boundary");
            assert!(
                line[..name_end].starts_with(fam.as_str()),
                "sample {line:?} outside family {fam}"
            );
            let value = line.rsplit(' ').next().expect("sample value");
            value
                .parse::<f64>()
                .unwrap_or_else(|_| panic!("unparseable value in {line:?}"));
            *families.get_mut(fam).expect("family registered") += 1;
        }
    }

    for name in [
        sm::QUEUE_DEPTH,
        sm::REORDER_OCCUPANCY,
        sm::INGEST_SECONDS,
        sm::MATCH_SECONDS,
        sm::SCORE_SECONDS,
        sm::POINT_SECONDS,
        sm::TICKS_TOTAL,
        sm::VERDICTS_TOTAL,
        sm::FAULTS_TOTAL,
    ] {
        let samples = families.get(name).copied();
        assert!(
            samples.is_some_and(|n| n > 0),
            "family {name} missing or empty: {samples:?}\n{body}"
        );
    }

    // Both shards of the run expose their queue-depth series, drained
    // back to zero after finish().
    for shard in 0..2 {
        let series = format!("ns_stream_shard_queue_depth{{shard=\"{shard}\"}} 0");
        assert!(body.contains(&series), "missing/nonzero {series}\n{body}");
    }
    // Every fault class is bridged as a labeled series — all zero on
    // this clean feed.
    for (class, _) in FaultCounters::default().as_pairs() {
        let series = format!("ns_stream_faults_total{{class=\"{class}\"}} 0");
        assert!(body.contains(&series), "missing/nonzero {series}\n{body}");
    }
}

/// The flight recorder's contract, held on a feed that actually goes
/// wrong: with the event journal on and incident triggers armed, a
/// `panic_at` chaos run (worker panic → node quarantine → incident
/// capture) still produces verdicts bit-identical to the fully-disabled
/// run at 1, 2, and 4 shards — and the quarantine incident it fires is
/// complete, field by field.
#[test]
fn recorder_and_triggers_hold_bit_identity_on_a_faulted_feed() {
    let _l = test_lock();
    let fx = fixture();
    let panic_node = 1usize;
    let panic_step = fx.split + 3;
    let fingerprint = format!("{:016x}", fx.model.fingerprint());

    for n_shards in [1usize, 2, 4] {
        obs::disable_all();
        obs::trace::reset();
        obs::metrics::global().reset();
        obs::events::reset();
        obs::incident::reset();

        let off = run_stream_with(fx, n_shards, Some((panic_node, panic_step)));
        assert_eq!(
            obs::events::stats().recorded,
            0,
            "journal appended while disabled"
        );
        assert_eq!(
            obs::incident::stats().captured,
            0,
            "incident captured while disarmed"
        );

        obs::enable_all();
        obs::incident::set_armed(true);
        obs::incident::set_min_interval(std::time::Duration::ZERO);
        // One completed span so the incident's span_report has a real row.
        drop(obs::trace::span("equivalence_probe"));
        let on = run_stream_with(fx, n_shards, Some((panic_node, panic_step)));
        obs::disable_all();
        obs::incident::set_min_interval(obs::incident::DEFAULT_MIN_INTERVAL);

        assert!(!off.is_empty());
        assert_eq!(off.len(), on.len(), "{n_shards} shards: verdict count");
        for (a, b) in off.iter().zip(&on) {
            assert_eq!((a.node, a.step), (b.node, b.step), "{n_shards} shards");
            assert_eq!(
                a.score.to_bits(),
                b.score.to_bits(),
                "{n_shards} shards: node {} step {} diverged with recorder on",
                a.node,
                a.step
            );
            assert_eq!(a.anomalous, b.anomalous);
            assert_eq!(a.cluster, b.cluster);
            assert_eq!(a.kind, b.kind);
        }
        // The quarantined node stops producing verdicts at the panic
        // step in *both* runs — the fault actually happened.
        assert!(
            !off.iter()
                .any(|v| v.node == panic_node && v.step > panic_step),
            "{n_shards} shards: quarantine never took effect"
        );

        // The enabled run journaled the whole story...
        let js = obs::events::stats();
        assert!(js.recorded > 0, "{n_shards} shards: journal stayed empty");
        let recent = obs::events::recent(js.len);
        assert!(
            recent
                .iter()
                .any(|e| e.kind == obs::EventKind::Quarantine && e.node == panic_node as i64),
            "{n_shards} shards: no quarantine event in the journal"
        );
        assert!(
            recent.iter().any(|e| e.kind == obs::EventKind::Verdict),
            "{n_shards} shards: no verdict events in the journal"
        );

        // ...and captured exactly the incident the satellite demands,
        // validated field by field.
        let incidents = obs::incident::incidents();
        let inc = incidents
            .iter()
            .find(|i| i.trigger == "quarantine")
            .unwrap_or_else(|| {
                panic!("{n_shards} shards: no quarantine incident in {incidents:?}")
            });
        assert!(
            inc.reason.contains(&format!("node {panic_node}")),
            "reason omits the node: {:?}",
            inc.reason
        );
        assert!(
            inc.reason.contains(&format!("step {panic_step}")),
            "reason omits the step: {:?}",
            inc.reason
        );
        assert!(inc.t_ns > 0, "monotonic timestamp missing");
        assert!(inc.unix_ms > 0, "wall-clock timestamp missing");
        assert!(
            !inc.events.is_empty() && inc.events.len() <= obs::incident::MAX_EVENTS_PER_INCIDENT,
            "snapshot holds {} events",
            inc.events.len()
        );
        assert!(
            inc.events
                .iter()
                .any(|e| e.kind == obs::EventKind::Quarantine),
            "snapshot misses the quarantine event itself"
        );
        assert!(
            inc.metrics_delta
                .iter()
                .any(|m| m.name.starts_with("ns_stream_")),
            "no engine metric moved in the delta: {:?}",
            inc.metrics_delta
        );
        assert!(
            inc.span_report.contains("equivalence_probe"),
            "span report misses the completed span: {:?}",
            inc.span_report
        );
        assert!(
            inc.context.contains(&fingerprint),
            "context misses the model fingerprint {fingerprint}: {:?}",
            inc.context
        );
        let line = inc.to_json();
        assert!(
            line.contains("\"trigger\":\"quarantine\"") && line.contains("\"events\":["),
            "JSONL dump incomplete: {line}"
        );
    }
}

/// Scrape every operational route over a real socket against live
/// engine state: health/readiness, the composed `/statusz` (including
/// the engine's own section), the journal tail, the incident dump, and
/// the failure paths (404, bad query, malformed request, wrong method).
#[test]
fn operational_routes_serve_live_state_over_a_socket() {
    let _l = test_lock();
    let fx = fixture();
    obs::metrics::global().reset();
    obs::events::reset();
    obs::incident::reset();
    obs::enable_all();
    obs::incident::set_armed(true);
    obs::incident::set_min_interval(std::time::Duration::ZERO);
    let verdicts = run_stream_with(fx, 2, Some((0, fx.split + 2)));
    obs::disable_all();
    obs::incident::set_min_interval(obs::incident::DEFAULT_MIN_INTERVAL);
    assert!(!verdicts.is_empty());

    let server = Engine::serve_metrics("127.0.0.1:0").expect("bind ephemeral port");
    let addr = server.local_addr();

    let healthz = http_get(addr, "/healthz");
    assert!(healthz.starts_with("HTTP/1.1 200 OK"), "{healthz}");
    assert!(healthz.ends_with("ok\n"), "{healthz}");

    let readyz = http_get(addr, "/readyz");
    assert!(readyz.starts_with("HTTP/1.1 200 OK"), "{readyz}");
    assert!(readyz.ends_with("ready\n"), "{readyz}");

    let statusz = http_get(addr, "/statusz");
    assert!(statusz.starts_with("HTTP/1.1 200 OK"), "{statusz}");
    assert!(statusz.contains("application/json"), "{statusz}");
    let fingerprint = format!("{:016x}", fx.model.fingerprint());
    let fp_needle = format!("\"model_fingerprint\":\"{fingerprint}\"");
    for needle in [
        "\"uptime_s\":",
        "\"ready\":true",
        "\"events\":",
        "\"incidents\":",
        "\"stream\":{",
        "\"shard_queue_depths\":[",
        "\"verdicts\":{",
        fp_needle.as_str(),
    ] {
        assert!(
            statusz.contains(needle),
            "statusz misses {needle}: {statusz}"
        );
    }

    let events = http_get(addr, "/debug/events?n=5");
    assert!(events.starts_with("HTTP/1.1 200 OK"), "{events}");
    assert!(
        events.contains("\"events\":[") && events.contains("\"kind\":"),
        "{events}"
    );

    let bad_n = http_get(addr, "/debug/events?n=bogus");
    assert!(bad_n.starts_with("HTTP/1.1 400"), "{bad_n}");
    let bad_param = http_get(addr, "/debug/events?m=10");
    assert!(bad_param.starts_with("HTTP/1.1 400"), "{bad_param}");

    let incidents = http_get(addr, "/debug/incidents");
    assert!(incidents.starts_with("HTTP/1.1 200 OK"), "{incidents}");
    assert!(incidents.contains("application/x-ndjson"), "{incidents}");
    assert!(
        incidents.contains("\"trigger\":\"quarantine\""),
        "captured incident missing from dump: {incidents}"
    );
    assert!(
        incidents.contains("\"meta\":\"ns-obs-incidents\""),
        "dump meta line missing: {incidents}"
    );

    let missing = http_get(addr, "/nope");
    assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");

    // Wrong method and an outright malformed request line.
    let mut s = TcpStream::connect(addr).expect("connect");
    write!(s, "POST /metrics HTTP/1.1\r\nHost: t\r\n\r\n").unwrap();
    let mut resp = String::new();
    s.read_to_string(&mut resp).expect("read");
    assert!(resp.starts_with("HTTP/1.1 405"), "{resp}");

    let mut s = TcpStream::connect(addr).expect("connect");
    write!(s, "garbage\r\n\r\n").unwrap();
    let mut resp = String::new();
    s.read_to_string(&mut resp).expect("read");
    assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");

    server.shutdown();
}
