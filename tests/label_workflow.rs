//! Integration of the labeling toolkit (artifact A2) against simulator
//! ground truth: assisted suggestions should recover injected anomalies,
//! the history replays faithfully, and cluster adjustment keeps its
//! invariants on real feature vectors.

use nodesentry::eval::threshold::KSigmaConfig;
use nodesentry::features::FeatureCatalog;
use nodesentry::label::{
    suggest_ksigma, Action, AnnotationHistory, ClusterAdjustment, Interval, LabelStore,
};
use nodesentry::linalg::Matrix;
use nodesentry::telemetry::DatasetProfile;

#[test]
fn assisted_suggestions_cover_injected_anomalies() {
    let ds = DatasetProfile::tiny().generate();
    let mut covered = 0usize;
    let mut total = 0usize;
    for node in 0..ds.n_nodes() {
        let events: Vec<_> = ds.events.iter().filter(|e| e.node == node).collect();
        if events.is_empty() {
            continue;
        }
        // Assist over the latent signals of the test window (stand-in for
        // the preprocessed metrics the GUI shows).
        let view = Matrix::from_fn(ds.horizon() - ds.split, 8, |r, c| {
            ds.latent[node][ds.split + r][c]
        });
        let suggestions = suggest_ksigma(&view, &KSigmaConfig::default(), 2, 2);
        for e in events {
            total += 1;
            let hit = suggestions.iter().any(|s| {
                let lo = s.interval.start + ds.split;
                let hi = s.interval.end + ds.split;
                lo < e.end && e.start < hi
            });
            if hit {
                covered += 1;
            }
        }
    }
    assert!(total > 0);
    assert!(
        covered * 2 >= total,
        "assisted labeling covered only {covered}/{total} events"
    );
}

#[test]
fn labeling_session_roundtrips_through_csv_and_history() {
    let mut store = LabelStore::new();
    let mut history = AnnotationHistory::new();
    history.apply(
        &mut store,
        Action::Label {
            node: 4,
            interval: Interval::new(100, 130, "oom"),
        },
    );
    history.apply(
        &mut store,
        Action::Label {
            node: 4,
            interval: Interval::new(300, 310, ""),
        },
    );
    history.apply(
        &mut store,
        Action::Unlabel {
            node: 4,
            start: 110,
            end: 120,
        },
    );

    // CSV round trip.
    let csv = store.to_csv(4);
    let mut restored = LabelStore::new();
    restored.load_csv(4, &csv).unwrap();
    assert_eq!(restored.intervals(4), store.intervals(4));

    // History replay equals live state; undo removes the unlabel.
    assert_eq!(history.replay().intervals(4), store.intervals(4));
    let undone = history.undo().unwrap();
    assert_eq!(undone.intervals(4).len(), 2);
    assert_eq!(undone.intervals(4)[0], Interval::new(100, 130, "oom"));

    // JSONL round trip of the (shortened) log.
    let log = history.to_jsonl();
    let reparsed = AnnotationHistory::from_jsonl(&log).unwrap();
    assert_eq!(reparsed.replay().intervals(4), undone.intervals(4));
}

#[test]
fn cluster_adjustment_on_real_segment_features() {
    let ds = DatasetProfile::tiny().generate();
    let catalog = FeatureCatalog::compact();
    let mut feats = Vec::new();
    for node in 0..ds.n_nodes() {
        for seg in ds.schedule.node_timeline(node) {
            if seg.len() < 20 || seg.end > ds.split {
                continue;
            }
            let m = Matrix::from_fn(seg.len(), 4, |r, c| ds.latent[node][seg.start + r][c]);
            feats.push(catalog.extract_mts(&m, 1.0 / 30.0));
        }
    }
    assert!(feats.len() >= 6);
    let dend = nodesentry::cluster::linkage(&feats, nodesentry::cluster::Linkage::Ward);
    let labels = dend.cut_k(3.min(feats.len()));
    let mut adj = ClusterAdjustment::new(feats, labels.clone());
    let s0 = adj.silhouette();
    // Reassigning an item and reverting restores the original silhouette.
    let victim = 0;
    let old = adj.labels()[victim];
    let target = (old + 1) % adj.k();
    adj.reassign(victim, target);
    assert_eq!(adj.overrides(), vec![victim]);
    adj.reassign(victim, old);
    assert!(adj.overrides().is_empty());
    assert!((adj.silhouette() - s0).abs() < 1e-12);
    assert_eq!(adj.labels(), &labels[..]);
}
