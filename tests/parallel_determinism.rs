//! Parallel preprocessing in `fit_from_source` must be deterministic:
//! the same seed produces bit-identical models and scores whether the
//! thread pool has one thread or many.
//!
//! The pool caches `RAYON_NUM_THREADS` at first use, so the width is
//! varied through [`rayon::set_thread_count_override`] — the explicit
//! in-process hook the pool exposes for exactly this test. The override
//! is process-global, so this file holds a single test that toggles it
//! around each fit.

use nodesentry::core::{CoarseConfig, NodeInput, NodeSentry, NodeSentryConfig, SharingConfig};
use nodesentry::features::FeatureCatalog;
use nodesentry::telemetry::{Dataset, DatasetProfile};

fn quick_cfg() -> NodeSentryConfig {
    NodeSentryConfig {
        coarse: CoarseConfig {
            catalog: FeatureCatalog::compact(),
            k_max: 6,
            ..Default::default()
        },
        sharing: SharingConfig {
            window: 12,
            stride: 6,
            d_model: 16,
            n_heads: 2,
            n_layers: 1,
            hidden: 32,
            n_experts: 2,
            epochs: 6,
            lr: 3e-3,
            batch: 16,
            k_nearest: 4,
            ..Default::default()
        },
        match_period: 40,
        min_segment_len: 8,
        ..Default::default()
    }
}

fn inputs_of(ds: &Dataset) -> Vec<NodeInput> {
    (0..ds.n_nodes())
        .map(|n| NodeInput {
            raw: ds.raw_node(n),
            transitions: ds
                .schedule
                .node_timeline(n)
                .iter()
                .map(|s| s.start)
                .filter(|&s| s > 0)
                .collect(),
        })
        .collect()
}

fn fit_and_score(ds: &Dataset, inputs: &[NodeInput]) -> (String, Vec<Vec<u64>>) {
    let groups = ds.catalog.group_ids();
    let model = NodeSentry::fit(quick_cfg(), inputs, &groups, ds.split);
    let scores: Vec<Vec<u64>> = inputs
        .iter()
        .map(|input| {
            let (s, _) = model.score_node(&input.raw, &input.transitions, ds.split);
            s.iter().map(|v| v.to_bits()).collect()
        })
        .collect();
    // The serialized model captures every trained weight; comparing the
    // JSON compares the entire model bit for bit.
    (model.to_json(true).expect("serialize"), scores)
}

#[test]
fn fit_is_bitwise_identical_across_thread_counts() {
    let ds = DatasetProfile::tiny().generate();
    let inputs = inputs_of(&ds);

    rayon::set_thread_count_override(Some(1));
    let (model_serial, scores_serial) = fit_and_score(&ds, &inputs);

    rayon::set_thread_count_override(None);
    let (model_parallel, scores_parallel) = fit_and_score(&ds, &inputs);

    rayon::set_thread_count_override(Some(3));
    let (model_three, scores_three) = fit_and_score(&ds, &inputs);
    rayon::set_thread_count_override(None);

    assert_eq!(
        model_serial, model_parallel,
        "model differs between 1 thread and default"
    );
    assert_eq!(
        model_serial, model_three,
        "model differs between 1 and 3 threads"
    );
    assert_eq!(
        scores_serial, scores_parallel,
        "scores differ between 1 thread and default"
    );
    assert_eq!(
        scores_serial, scores_three,
        "scores differ between 1 and 3 threads"
    );
}
