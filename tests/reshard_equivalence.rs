//! Live resharding conformance: a snapshot taken at N shards restored at
//! M shards (2→4 scale-out, 4→2 scale-in, and collapse to 1) re-routes
//! every node state by `node % M` and must keep the stitched verdict set
//! bit-identical to an engine that never resharded — on clean and
//! faulted feeds. Node join (a node first appears after the cut) and
//! node leave (a node stops before the cut) must behave exactly as in an
//! uninterrupted run over the same feed: no dropped, duplicated, or
//! invented verdicts.

#[path = "snapshot_common/mod.rs"]
mod common;

use common::{
    assert_verdicts_identical, engine_cfg, run_uninterrupted, run_with_restore, setup, Setup,
    BLACKOUT_GAP, CHUNK,
};
use nodesentry::stream::snapshot::EngineSnapshot;
use nodesentry::stream::{Engine, Tick};
use nodesentry::telemetry::{FaultEvent, FaultInjector, FaultKind, FaultPlan};
use std::sync::Arc;

/// (pre-cut shards, post-cut shards): scale-out, scale-in, collapse,
/// and expand-from-one.
const RESHARDS: [(usize, usize); 4] = [(2, 4), (4, 2), (4, 1), (1, 4)];

fn mid_cut(s: &Setup) -> usize {
    (s.ds.split + (s.ds.horizon() - s.ds.split) / 2) * s.ds.n_nodes()
}

#[test]
fn clean_feed_survives_every_reshard_bit_identically() {
    let s = setup();
    let cut = mid_cut(s);
    // One single-shard reference serves every pair: shard count is
    // already proven verdict-neutral for uninterrupted runs.
    let reference = run_uninterrupted(s, &s.clean, engine_cfg(s, 1));
    for (pre, post) in RESHARDS {
        let run = run_with_restore(s, &s.clean, cut, engine_cfg(s, pre), engine_cfg(s, post));
        assert_verdicts_identical(
            &run.verdicts,
            &reference.verdicts,
            &format!("reshard {pre}->{post}"),
        );
        let snap = EngineSnapshot::from_bytes(&run.bytes).expect("decode");
        assert_eq!(snap.n_shards, pre, "snapshot records the pre-cut layout");
        assert_eq!(
            run.tail_report.n_shards, post,
            "tail report records the effective post-cut layout"
        );
    }
}

#[test]
fn faulted_feed_survives_resharding_across_the_cut() {
    let s = setup();
    // Faults straddle the cut on nodes that change shards in every
    // reshard pair: a reorder window and a drop burst in flight at the
    // moment of the cut, plus a blackout whose gap spans it.
    let plan = FaultPlan {
        events: vec![
            FaultEvent {
                node: 1,
                kind: FaultKind::Reorder,
                start: 400,
                end: 520,
                magnitude: 4.0,
                cols: Vec::new(),
            },
            FaultEvent {
                node: 2,
                kind: FaultKind::Drop,
                start: 430,
                end: 470,
                magnitude: 0.6,
                cols: Vec::new(),
            },
            FaultEvent {
                node: 3,
                kind: FaultKind::Blackout,
                start: 420,
                end: 490,
                magnitude: 1.0,
                cols: Vec::new(),
            },
        ],
        seed: 0x5EED,
    };
    let outcome = FaultInjector::new(plan).apply(&s.clean);
    let cut = outcome.stream.len() / 2;
    let reference = run_uninterrupted(s, &outcome.stream, engine_cfg(s, 1));
    for (pre, post) in RESHARDS {
        let run = run_with_restore(
            s,
            &outcome.stream,
            cut,
            engine_cfg(s, pre),
            engine_cfg(s, post),
        );
        assert_verdicts_identical(
            &run.verdicts,
            &reference.verdicts,
            &format!("faulted reshard {pre}->{post}"),
        );
    }
}

#[test]
fn node_join_after_the_cut_matches_uninterrupted() {
    let s = setup();
    let joiner = 3usize;
    let join_step = s.ds.split + BLACKOUT_GAP + 40;
    // The joining node has no ticks before `join_step`; everyone else
    // streams normally. The reference is an uninterrupted run over the
    // *same* feed — the lifecycle (checkpoint before the join, restore
    // with more shards, then the node appears) must be invisible.
    let feed: Vec<Tick> = s
        .clean
        .iter()
        .filter(|t| t.node != joiner || t.step >= join_step)
        .cloned()
        .collect();
    let cut = feed
        .iter()
        .position(|t| t.step >= join_step - 8)
        .expect("cut before the join");
    let reference = run_uninterrupted(s, &feed, engine_cfg(s, 2));
    let run = run_with_restore(s, &feed, cut, engine_cfg(s, 2), engine_cfg(s, 4));
    assert_verdicts_identical(&run.verdicts, &reference.verdicts, "node join");
    // The snapshot knows nothing of the joiner…
    let snap = EngineSnapshot::from_bytes(&run.bytes).expect("decode");
    assert!(
        snap.nodes.iter().all(|n| n.node != joiner),
        "joiner must not be in the pre-join snapshot"
    );
    // …yet it still gets verdicts after joining.
    assert!(
        run.verdicts
            .iter()
            .any(|v| v.node == joiner && v.step >= join_step),
        "joined node never produced a verdict"
    );
}

#[test]
fn node_leave_before_the_cut_matches_uninterrupted() {
    let s = setup();
    let leaver = 0usize;
    let leave_step = s.ds.split + 60;
    let feed: Vec<Tick> = s
        .clean
        .iter()
        .filter(|t| t.node != leaver || t.step < leave_step)
        .cloned()
        .collect();
    // Cut well after the departure: the leaver's final state rides the
    // snapshot into a *smaller* shard layout and must neither resurrect
    // nor lose verdicts.
    let cut = feed
        .iter()
        .position(|t| t.step >= leave_step + 100)
        .expect("cut after the leave");
    let reference = run_uninterrupted(s, &feed, engine_cfg(s, 4));
    let run = run_with_restore(s, &feed, cut, engine_cfg(s, 4), engine_cfg(s, 2));
    assert_verdicts_identical(&run.verdicts, &reference.verdicts, "node leave");
    assert!(
        run.verdicts
            .iter()
            .all(|v| v.node != leaver || v.step < leave_step),
        "departed node produced post-departure verdicts"
    );
}

#[test]
fn back_to_back_reshards_compose() {
    // 2 → 4 → 1 across two cuts, with no finish() in between: each
    // restore re-routes every node state again, and the three verdict
    // slices stitched together must still be bit-exact.
    let s = setup();
    let third = s.clean.len() / 3;
    let reference = run_uninterrupted(s, &s.clean, engine_cfg(s, 2));

    let a = Engine::new(Arc::clone(&s.model), engine_cfg(s, 2));
    for chunk in s.clean[..third].chunks(CHUNK) {
        a.ingest(chunk.to_vec()).expect("leg A alive");
    }
    let ckpt_a = a.checkpoint().expect("checkpoint A");
    drop(a);

    let b = Engine::restore_bytes(Arc::clone(&s.model), engine_cfg(s, 4), &ckpt_a.bytes)
        .expect("restore B");
    for chunk in s.clean[third..2 * third].chunks(CHUNK) {
        b.ingest(chunk.to_vec()).expect("leg B alive");
    }
    let ckpt_b = b.checkpoint().expect("checkpoint B");
    drop(b);

    let c = Engine::restore_bytes(Arc::clone(&s.model), engine_cfg(s, 1), &ckpt_b.bytes)
        .expect("restore C");
    for chunk in s.clean[2 * third..].chunks(CHUNK) {
        c.ingest(chunk.to_vec()).expect("leg C alive");
    }
    let tail = c.finish();

    let mut verdicts = ckpt_a.verdicts;
    verdicts.extend(ckpt_b.verdicts);
    verdicts.extend(tail.verdicts.iter().cloned());
    verdicts.sort_by_key(|v| (v.node, v.step));
    assert_verdicts_identical(&verdicts, &reference.verdicts, "2->4->1 chain");
    assert_eq!(tail.n_shards, 1);
}
