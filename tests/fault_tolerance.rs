//! Differential fault-tolerance conformance: for every fault class in
//! `ns-telemetry::faults`, run the hardened streaming engine on the
//! *faulted* stream and the batch `score_node` oracle on the *clean*
//! stream, then hold them together:
//!
//! * outside the fault-affected windows (widened to the oracle's segment
//!   boundaries), verdicts are bit-identical — score, cluster, and
//!   `VerdictKind::Ok`;
//! * flags are additionally compared outside a short washout after each
//!   window, where the k-sigma reference window still remembers the
//!   fault;
//! * inside the windows, any verdict whose score diverges from the
//!   oracle must be annotated `Degraded`;
//! * a verdict is never emitted for a step that was never delivered;
//! * the engine finishes without panic or deadlock at 1, 2, and 4
//!   shards, and no state leaks across a blackout rejoin.

use nodesentry::core::{CoarseConfig, NodeInput, NodeSentry, NodeSentryConfig, SharingConfig};
use nodesentry::eval::ksigma_detect;
use nodesentry::features::FeatureCatalog;
use nodesentry::stream::{Engine, EngineConfig, EngineReport, Tick, VerdictKind};
use nodesentry::telemetry::{
    Dataset, DatasetProfile, FaultEvent, FaultInjector, FaultKind, FaultOutcome, FaultPlan,
};
use std::collections::HashMap;
use std::collections::HashSet;
use std::sync::{Arc, OnceLock};

const SHARDS: [usize; 3] = [1, 2, 4];
const REORDER_BOUND: usize = 16;
const BLACKOUT_GAP: usize = 48;
/// Rows of guard on each side of a fault window for cross-row coupling
/// (NaN interpolation reaches backward, counter rates one row forward).
const GUARD_BACK: usize = 4;
const GUARD_FWD: usize = 1;

fn quick_cfg() -> NodeSentryConfig {
    NodeSentryConfig {
        coarse: CoarseConfig {
            catalog: FeatureCatalog::compact(),
            k_max: 6,
            ..Default::default()
        },
        sharing: SharingConfig {
            window: 12,
            stride: 6,
            d_model: 16,
            n_heads: 2,
            n_layers: 1,
            hidden: 32,
            n_experts: 2,
            epochs: 6,
            lr: 3e-3,
            batch: 16,
            k_nearest: 4,
            ..Default::default()
        },
        match_period: 40,
        min_segment_len: 8,
        ..Default::default()
    }
}

/// Batch reference for one node.
struct Oracle {
    /// `scores[step - split]`, from `score_node` on the clean stream.
    scores: Vec<f64>,
    flags: Vec<bool>,
    clusters: Vec<usize>,
    /// Oracle segment spans `[start, end)` in global steps.
    segments: Vec<(usize, usize)>,
}

struct Setup {
    ds: Dataset,
    model: Arc<NodeSentry>,
    clean: Vec<Tick>,
    oracles: Vec<Oracle>,
    /// Raw columns feeding kept cumulative counter groups.
    counter_cols: Vec<usize>,
    /// Flag-comparison washout after each dirty window.
    washout: usize,
}

static SETUP: OnceLock<Setup> = OnceLock::new();

fn setup() -> &'static Setup {
    SETUP.get_or_init(|| {
        let ds = DatasetProfile::tiny().generate();
        let groups = ds.catalog.group_ids();
        let inputs: Vec<NodeInput> = (0..ds.n_nodes())
            .map(|n| NodeInput {
                raw: ds.raw_node(n),
                transitions: ds
                    .schedule
                    .node_timeline(n)
                    .iter()
                    .map(|s| s.start)
                    .filter(|&s| s > 0)
                    .collect(),
            })
            .collect();
        let model = NodeSentry::fit(quick_cfg(), &inputs, &groups, ds.split);
        let mut oracles = Vec::new();
        for input in &inputs {
            let (scores, matches) = model.score_node(&input.raw, &input.transitions, ds.split);
            let mut clusters = vec![usize::MAX; scores.len()];
            for &(start, end, cluster) in &matches {
                for slot in clusters[start - ds.split..end - ds.split].iter_mut() {
                    *slot = cluster;
                }
            }
            assert!(clusters.iter().all(|&c| c != usize::MAX));
            oracles.push(Oracle {
                flags: ksigma_detect(&scores, &model.cfg.threshold),
                segments: matches.iter().map(|&(s, e, _)| (s, e)).collect(),
                scores,
                clusters,
            });
        }
        let pp = &model.preprocessor;
        let counter_cols: Vec<usize> = (0..pp.groups.len())
            .filter(|&c| pp.counters[pp.groups[c]] && pp.kept.contains(&pp.groups[c]))
            .collect();
        assert!(
            !counter_cols.is_empty(),
            "tiny catalog must keep at least one counter group"
        );
        let transition_sets: Vec<HashSet<usize>> = inputs
            .iter()
            .map(|i| i.transitions.iter().copied().collect())
            .collect();
        let mut clean = Vec::new();
        for step in 0..ds.horizon() {
            for (node, input) in inputs.iter().enumerate() {
                clean.push(Tick {
                    node,
                    step,
                    values: input.raw.row(step).to_vec(),
                    transition: transition_sets[node].contains(&step),
                });
            }
        }
        // The k-sigma reference excludes previously-flagged points and
        // looks back up to 3·window candidates, so flag history needs up
        // to ~4·window clean steps to forget a fault.
        let washout = model.cfg.threshold.window * 4 + 8;
        Setup {
            ds,
            model: Arc::new(model),
            clean,
            oracles,
            counter_cols,
            washout,
        }
    })
}

fn engine_cfg(setup: &Setup, shards: usize) -> EngineConfig {
    let mut cfg = EngineConfig::new(setup.ds.split);
    cfg.n_shards = shards;
    cfg.smooth_window = 1;
    cfg.reorder_bound = REORDER_BOUND;
    cfg.blackout_gap = BLACKOUT_GAP;
    cfg
}

fn run_stream(setup: &Setup, stream: &[Tick], cfg: EngineConfig) -> EngineReport {
    let engine = Engine::new(Arc::clone(&setup.model), cfg);
    for chunk in stream.chunks(256) {
        engine.ingest(chunk.to_vec()).expect("stream shard alive");
    }
    engine.finish()
}

/// Widen a dirty step range by the coupling guards, then to the oracle's
/// segment granularity (scores are segment-local, so divergence spreads
/// exactly to the enclosing segments).
fn expand(setup: &Setup, node: usize, s: usize, e: usize) -> (usize, usize) {
    let sg = s.saturating_sub(GUARD_BACK);
    let eg = e + GUARD_FWD;
    let mut lo = sg.max(setup.ds.split);
    let mut hi = eg.min(setup.ds.horizon());
    for &(ss, se) in &setup.oracles[node].segments {
        if ss < eg && se > sg {
            lo = lo.min(ss);
            hi = hi.max(se);
        }
    }
    (lo, hi)
}

fn in_windows(windows: &[(usize, usize)], step: usize) -> bool {
    windows.iter().any(|&(s, e)| step >= s && step < e)
}

fn in_washout(windows: &[(usize, usize)], step: usize, washout: usize) -> bool {
    windows
        .iter()
        .any(|&(_, e)| step >= e && step < e + washout)
}

/// The differential contract, given per-node expanded dirty windows.
fn differential_check(
    setup: &Setup,
    report: &EngineReport,
    outcome: &FaultOutcome,
    windows: &[Vec<(usize, usize)>],
    tag: &str,
) {
    let split = setup.ds.split;
    let horizon = setup.ds.horizon();
    let mut seen: HashMap<(usize, usize), usize> = HashMap::new();
    for (i, v) in report.verdicts.iter().enumerate() {
        assert!(
            v.step >= split && v.step < horizon,
            "{tag}: verdict outside test span at node {} step {}",
            v.node,
            v.step
        );
        assert!(
            !outcome.dropped.contains(&(v.node, v.step)),
            "{tag}: verdict for never-delivered tick node {} step {}",
            v.node,
            v.step
        );
        assert!(
            seen.insert((v.node, v.step), i).is_none(),
            "{tag}: duplicate verdict at node {} step {}",
            v.node,
            v.step
        );
    }
    for (node, win) in windows.iter().enumerate() {
        let oracle = &setup.oracles[node];
        for step in split..horizon {
            let k = step - split;
            let inside = in_windows(win, step);
            let v = match seen.get(&(node, step)) {
                Some(&i) => &report.verdicts[i],
                None => {
                    assert!(
                        inside,
                        "{tag}: missing verdict outside fault windows at node {node} step {step}"
                    );
                    continue;
                }
            };
            let same_score = v.score.to_bits() == oracle.scores[k].to_bits();
            if !inside {
                assert!(
                    same_score,
                    "{tag}: node {node} step {step}: stream {} vs batch {}",
                    v.score, oracle.scores[k]
                );
                assert_eq!(
                    v.cluster, oracle.clusters[k],
                    "{tag}: cluster diverged at node {node} step {step}"
                );
                assert_eq!(
                    v.kind,
                    VerdictKind::Ok,
                    "{tag}: clean verdict degraded at node {node} step {step}"
                );
                if !in_washout(win, step, setup.washout) {
                    assert_eq!(
                        v.anomalous, oracle.flags[k],
                        "{tag}: flag diverged at node {node} step {step}"
                    );
                }
            } else if !same_score {
                assert_eq!(
                    v.kind,
                    VerdictKind::Degraded,
                    "{tag}: divergent score not annotated at node {node} step {step}"
                );
            }
        }
    }
}

/// Build per-node window lists from one event's raw dirty range.
fn windows_for(setup: &Setup, node: usize, s: usize, e: usize) -> Vec<Vec<(usize, usize)>> {
    let mut w = vec![Vec::new(); setup.ds.n_nodes()];
    if e > s {
        w[node].push(expand(setup, node, s, e));
    }
    w
}

fn run_class(event: FaultEvent, dirty: Option<(usize, usize)>, tag: &str) -> Vec<EngineReport> {
    let setup = setup();
    let node = event.node;
    let (ds_s, ds_e) = dirty.unwrap_or_else(|| event.dirty_range());
    let windows = windows_for(setup, node, ds_s, ds_e);
    let plan = FaultPlan::single(event, 0xD1FF);
    let outcome = FaultInjector::new(plan).apply(&setup.clean);
    let mut reports = Vec::new();
    for shards in SHARDS {
        let report = run_stream(setup, &outcome.stream, engine_cfg(setup, shards));
        differential_check(
            setup,
            &report,
            &outcome,
            &windows,
            &format!("{tag}/s{shards}"),
        );
        reports.push(report);
    }
    reports
}

fn event(kind: FaultKind, node: usize, start: usize, end: usize, mag: f64) -> FaultEvent {
    FaultEvent {
        node,
        kind,
        start,
        end,
        magnitude: mag,
        cols: Vec::new(),
    }
}

#[test]
fn drop_faults_synthesize_and_degrade() {
    let reports = run_class(event(FaultKind::Drop, 0, 420, 450, 0.6), None, "drop");
    for r in &reports {
        assert!(r.faults.synthesized_rows > 0, "drops must be synthesized");
        assert!(r.faults.suppressed_verdicts > 0);
        assert!(r.faults.degraded_verdicts > 0);
        assert_eq!(r.faults.blackouts, 0, "short gaps are not blackouts");
    }
}

#[test]
fn duplicates_heal_to_bit_exact() {
    let reports = run_class(event(FaultKind::Duplicate, 1, 400, 500, 0.5), None, "dup");
    let setup = setup();
    for r in &reports {
        assert!(r.faults.late_ticks > 0, "re-deliveries must be rejected");
        assert_eq!(r.faults.synthesized_rows, 0);
        assert_eq!(r.faults.degraded_verdicts, 0, "duplicates heal completely");
        assert_eq!(
            r.verdicts.len(),
            setup.ds.n_nodes() * (setup.ds.horizon() - setup.ds.split),
            "every step still gets its verdict"
        );
    }
}

#[test]
fn bounded_reorder_heals_to_bit_exact() {
    let reports = run_class(event(FaultKind::Reorder, 2, 380, 560, 4.0), None, "reorder");
    let setup = setup();
    for r in &reports {
        assert!(
            r.faults.reordered_ticks > 0,
            "shuffle must exercise the buffer"
        );
        assert_eq!(
            r.faults.synthesized_rows, 0,
            "bounded reorder loses nothing"
        );
        assert_eq!(r.faults.degraded_verdicts, 0);
        assert_eq!(
            r.verdicts.len(),
            setup.ds.n_nodes() * (setup.ds.horizon() - setup.ds.split)
        );
    }
}

#[test]
fn nan_bursts_degrade_their_segments() {
    let reports = run_class(event(FaultKind::NanBurst, 3, 430, 445, 1.0), None, "nan");
    for r in &reports {
        assert!(r.faults.nan_rows > 0, "all-NaN rows must be spotted");
        assert!(r.faults.degraded_verdicts > 0);
        assert_eq!(
            r.faults.suppressed_verdicts, 0,
            "delivered steps keep verdicts"
        );
    }
}

#[test]
fn stuck_sensors_are_confirmed_and_degraded() {
    let setup = setup();
    let mut ev = event(FaultKind::StuckSensor, 0, 460, 500, 1.0);
    // Freeze every raw column — a wedged collector repeats whole frames.
    ev.cols = (0..setup.model.preprocessor.groups.len()).collect();
    let reports = run_class(ev, None, "stuck");
    for r in &reports {
        assert!(r.faults.stuck_rows > 0, "run-length watch must confirm");
        assert!(r.faults.degraded_verdicts > 0);
    }
}

#[test]
fn counter_resets_degrade_the_reset_segment() {
    let setup = setup();
    // Confine the glitch to one oracle segment: the downward step at
    // `start` is flagged and degrades the segment, but the recovery
    // spike at `end` is indistinguishable from a real burst, so it must
    // land in the same (already degraded) segment for the contract to
    // hold.
    let (ss, se) = setup.oracles[1]
        .segments
        .iter()
        .copied()
        .find(|&(ss, se)| se - ss >= 16)
        .expect("an oracle segment long enough for the glitch");
    let mut ev = event(FaultKind::CounterReset, 1, ss + 2, se - 4, 1.0);
    ev.cols = setup.counter_cols.clone();
    let reports = run_class(ev, None, "reset");
    for r in &reports {
        assert!(
            r.faults.counter_resets > 0,
            "backward counter must be spotted"
        );
        assert!(r.faults.degraded_verdicts > 0);
    }
}

#[test]
fn clock_skew_is_absorbed_with_synthesis() {
    let reports = run_class(event(FaultKind::ClockSkew, 2, 410, 440, 6.0), None, "skew");
    for r in &reports {
        assert!(
            r.faults.synthesized_rows > 0,
            "erased labels must be synthesized"
        );
        assert!(r.faults.late_ticks > 0, "doubled labels must be rejected");
        assert!(r.faults.degraded_verdicts > 0);
    }
}

#[test]
fn blackout_resyncs_without_leaking_state() {
    let setup = setup();
    let (start, end) = (400usize, 460usize);
    // Engine state realigns with the oracle at the first transition after
    // rejoin; everything from the blackout to that cut is dirty.
    let resync_cut = setup.oracles[3]
        .segments
        .iter()
        .map(|&(_, se)| se)
        .find(|&se| se >= end + GUARD_BACK)
        .unwrap_or(setup.ds.horizon());
    let reports = run_class(
        event(FaultKind::Blackout, 3, start, end, 1.0),
        Some((start, resync_cut)),
        "blackout",
    );
    for r in &reports {
        assert_eq!(r.faults.blackouts, 1, "one reset per run");
        assert_eq!(
            r.faults.synthesized_rows, 0,
            "a blackout resyncs instead of synthesizing the whole gap"
        );
        assert!(r.faults.degraded_verdicts > 0);
        // The gap itself gets no verdicts at all.
        assert!(r
            .verdicts
            .iter()
            .all(|v| v.node != 3 || !(start..end).contains(&v.step)));
    }
}

#[test]
fn chaos_panic_quarantines_one_node_only() {
    let setup = setup();
    let mut cfg = engine_cfg(setup, 2);
    cfg.panic_at = Some((1, 450));
    let report = run_stream(setup, &setup.clean, cfg);
    assert_eq!(report.faults.quarantined_nodes, 1);
    assert!(report.faults.quarantine_dropped > 0);
    assert_eq!(report.faults.worker_crashes, 0, "the shard itself survives");
    // Every other node is bit-exact end to end.
    for node in [0usize, 2, 3] {
        let oracle = &setup.oracles[node];
        let verdicts: Vec<_> = report.verdicts.iter().filter(|v| v.node == node).collect();
        assert_eq!(verdicts.len(), setup.ds.horizon() - setup.ds.split);
        for v in verdicts {
            let k = v.step - setup.ds.split;
            assert_eq!(v.score.to_bits(), oracle.scores[k].to_bits());
            assert_eq!(v.kind, VerdictKind::Ok);
        }
    }
    // The quarantined node emitted only pre-panic (still bit-exact)
    // verdicts.
    for v in report.verdicts.iter().filter(|v| v.node == 1) {
        assert!(v.step < 450, "no verdicts after the panic step");
        let k = v.step - setup.ds.split;
        assert_eq!(v.score.to_bits(), setup.oracles[1].scores[k].to_bits());
    }
}

#[test]
fn all_fault_classes_at_once_still_conform() {
    let setup = setup();
    let mut events = vec![
        event(FaultKind::Drop, 0, 420, 450, 0.6),
        event(FaultKind::Duplicate, 1, 400, 460, 0.5),
        event(FaultKind::Reorder, 2, 380, 430, 4.0),
        event(FaultKind::NanBurst, 3, 520, 535, 1.0),
        event(FaultKind::StuckSensor, 0, 500, 540, 1.0),
        event(FaultKind::ClockSkew, 1, 500, 530, 6.0),
        event(FaultKind::Blackout, 2, 460, 520, 1.0),
    ];
    events[4].cols = (0..setup.model.preprocessor.groups.len()).collect();
    let mut windows: Vec<Vec<(usize, usize)>> = vec![Vec::new(); setup.ds.n_nodes()];
    for ev in &events {
        let (s, e) = match ev.kind {
            FaultKind::Blackout => {
                let resync = setup.oracles[ev.node]
                    .segments
                    .iter()
                    .map(|&(_, se)| se)
                    .find(|&se| se >= ev.end + GUARD_BACK)
                    .unwrap_or(setup.ds.horizon());
                (ev.start, resync)
            }
            _ => ev.dirty_range(),
        };
        if e > s {
            windows[ev.node].push(expand(setup, ev.node, s, e));
        }
    }
    let plan = FaultPlan {
        events,
        seed: 0xA11,
    };
    let outcome = FaultInjector::new(plan).apply(&setup.clean);
    for shards in SHARDS {
        let report = run_stream(setup, &outcome.stream, engine_cfg(setup, shards));
        differential_check(
            setup,
            &report,
            &outcome,
            &windows,
            &format!("all/s{shards}"),
        );
        assert!(report.faults.synthesized_rows > 0);
        assert!(report.faults.degraded_verdicts > 0);
        assert_eq!(report.faults.blackouts, 1);
    }
}
