//! Property-based elastic lifecycle: for *arbitrary* seeded fault
//! plans, an arbitrary checkpoint cut, and arbitrary pre/post shard
//! counts, checkpoint → kill → restore-from-bytes → replay-tail must be
//! indistinguishable — bit for bit — from the engine that never
//! stopped, and the snapshot itself must survive a restore→checkpoint
//! round trip byte-identically.

#[path = "snapshot_common/mod.rs"]
mod common;

use common::{assert_verdicts_identical, engine_cfg, run_uninterrupted, setup, CHUNK};
use nodesentry::stream::snapshot::EngineSnapshot;
use nodesentry::stream::Engine;
use nodesentry::telemetry::{FaultInjector, FaultPlan, FaultPlanSpec, ALL_FAULTS};
use proptest::prelude::*;
use std::sync::Arc;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn random_cut_and_reshard_replay_bit_identically(
        seed in any::<u64>(),
        rate_pct in 2usize..12,
        pre_shards in 1usize..5,
        post_shards in 1usize..5,
        cut_pct in 5usize..95,
        chunk in 32usize..400,
    ) {
        let s = setup();
        let spec = FaultPlanSpec {
            seed,
            window: (1, s.ds.horizon()),
            kinds: ALL_FAULTS.to_vec(),
            rate: rate_pct as f64 / 100.0,
            event_len: (2, 30),
            n_cols: s.n_cols,
            counter_cols: s.counter_cols.clone(),
        };
        let plan = FaultPlan::random(&spec, s.ds.n_nodes());
        let outcome = FaultInjector::new(plan).apply(&s.clean);

        let reference = run_uninterrupted(s, &outcome.stream, engine_cfg(s, pre_shards));

        let cut = outcome.stream.len() * cut_pct / 100;
        let engine = Engine::new(Arc::clone(&s.model), engine_cfg(s, pre_shards));
        for batch in outcome.stream[..cut].chunks(chunk) {
            engine.ingest(batch.to_vec()).expect("prefix shard alive");
        }
        let ckpt = engine.checkpoint().expect("checkpoint");
        drop(engine);

        // Encode → decode → encode is byte-stable.
        let decoded = EngineSnapshot::from_bytes(&ckpt.bytes).expect("decode");
        prop_assert_eq!(decoded.to_bytes(), ckpt.bytes.clone(), "re-encode changed bytes");

        let restored = Engine::restore_bytes(
            Arc::clone(&s.model),
            engine_cfg(s, post_shards),
            &ckpt.bytes,
        )
        .expect("restore");
        // A freshly restored engine checkpoints back to the identical
        // state. The only field allowed to move is `n_shards`, which
        // records the layout of the engine that *took* the checkpoint;
        // with an unchanged layout the bytes themselves must match.
        let echo = restored.checkpoint().expect("echo checkpoint");
        prop_assert!(echo.verdicts.is_empty(), "restored engine invented verdicts");
        if pre_shards == post_shards {
            prop_assert_eq!(&echo.bytes, &ckpt.bytes, "restore→checkpoint not byte-stable");
        } else {
            let mut echo_snap = EngineSnapshot::from_bytes(&echo.bytes).expect("echo decode");
            prop_assert_eq!(echo_snap.n_shards, post_shards);
            echo_snap.n_shards = decoded.n_shards;
            // Byte-level comparison: derived equality is NaN-hostile.
            prop_assert_eq!(echo_snap.to_bytes(), ckpt.bytes.clone(), "restored state drifted");
        }

        for batch in outcome.stream[cut..].chunks(chunk) {
            restored.ingest(batch.to_vec()).expect("tail shard alive");
        }
        let tail = restored.finish();
        prop_assert_eq!(tail.n_shards, post_shards, "effective shard count misreported");

        let mut verdicts = ckpt.verdicts;
        verdicts.extend(tail.verdicts.iter().cloned());
        verdicts.sort_by_key(|v| (v.node, v.step));
        assert_verdicts_identical(
            &verdicts,
            &reference.verdicts,
            &format!(
                "seed={seed:#x} rate={rate_pct}% cut={cut_pct}% {pre_shards}->{post_shards}"
            ),
        );
    }

    #[test]
    fn clean_feed_random_cut_keeps_every_chunk_size_honest(
        cut_pct in 5usize..95,
        shards in 1usize..5,
    ) {
        let s = setup();
        let reference = run_uninterrupted(s, &s.clean, engine_cfg(s, shards));
        let cut = s.clean.len() * cut_pct / 100;
        let engine = Engine::new(Arc::clone(&s.model), engine_cfg(s, shards));
        for batch in s.clean[..cut].chunks(CHUNK) {
            engine.ingest(batch.to_vec()).expect("prefix shard alive");
        }
        let ckpt = engine.checkpoint().expect("checkpoint");
        drop(engine);
        let restored =
            Engine::restore_bytes(Arc::clone(&s.model), engine_cfg(s, shards), &ckpt.bytes)
                .expect("restore");
        for batch in s.clean[cut..].chunks(CHUNK) {
            restored.ingest(batch.to_vec()).expect("tail shard alive");
        }
        let tail = restored.finish();
        prop_assert!(tail.faults.is_clean(), "clean tail tripped counters: {:?}", tail.faults);
        let mut verdicts = ckpt.verdicts;
        verdicts.extend(tail.verdicts.iter().cloned());
        verdicts.sort_by_key(|v| (v.node, v.step));
        assert_verdicts_identical(
            &verdicts,
            &reference.verdicts,
            &format!("clean cut={cut_pct}% s={shards}"),
        );
    }
}
