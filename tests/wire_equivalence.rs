//! Over-the-wire differential conformance: verdicts produced by an
//! engine fed through the TCP ingest server must be `to_bits`-identical
//! to the same engine fed in-process — at 1, 2, and 4 shards, on a
//! clean feed, on a feed carrying all 8 stream fault classes, under the
//! full socket-fault chaos plan (partial writes, stalls, torn frames
//! with resend, duplicate connections, scheduled reconnects), and
//! across a mid-stream client disconnect/reconnect.
//!
//! The transport must be a bit-invisible layer: everything it can do to
//! the byte stream either reassembles to the same tick sequence or is
//! rejected by the engine's existing duplicate/late hardening. Only the
//! fault *counters* may differ between the two runs — never a verdict.

use nodesentry::core::{CoarseConfig, NodeInput, NodeSentry, NodeSentryConfig, SharingConfig};
use nodesentry::features::FeatureCatalog;
use nodesentry::stream::{Engine, EngineConfig, EngineReport, Tick, VerdictKind};
use nodesentry::telemetry::{
    subscribe_verdicts, Dataset, DatasetProfile, FaultEvent, FaultInjector, FaultKind, FaultPlan,
    IngestClient, SocketFaultPlan,
};
use nodesentry::wire::{ReportMsg, VerdictMsg};
use std::collections::HashSet;
use std::sync::{Arc, OnceLock};

const SHARDS: [usize; 3] = [1, 2, 4];

fn quick_cfg() -> NodeSentryConfig {
    NodeSentryConfig {
        coarse: CoarseConfig {
            catalog: FeatureCatalog::compact(),
            k_max: 6,
            ..Default::default()
        },
        sharing: SharingConfig {
            window: 12,
            stride: 6,
            d_model: 16,
            n_heads: 2,
            n_layers: 1,
            hidden: 32,
            n_experts: 2,
            epochs: 6,
            lr: 3e-3,
            batch: 16,
            k_nearest: 4,
            ..Default::default()
        },
        match_period: 40,
        min_segment_len: 8,
        ..Default::default()
    }
}

struct Setup {
    ds: Dataset,
    model: Arc<NodeSentry>,
    clean: Vec<Tick>,
    counter_cols: Vec<usize>,
}

static SETUP: OnceLock<Setup> = OnceLock::new();

fn setup() -> &'static Setup {
    SETUP.get_or_init(|| {
        let ds = DatasetProfile::tiny().generate();
        let groups = ds.catalog.group_ids();
        let inputs: Vec<NodeInput> = (0..ds.n_nodes())
            .map(|n| NodeInput {
                raw: ds.raw_node(n),
                transitions: ds
                    .schedule
                    .node_timeline(n)
                    .iter()
                    .map(|s| s.start)
                    .filter(|&s| s > 0)
                    .collect(),
            })
            .collect();
        let model = NodeSentry::fit(quick_cfg(), &inputs, &groups, ds.split);
        let pp = &model.preprocessor;
        let counter_cols: Vec<usize> = (0..pp.groups.len())
            .filter(|&c| pp.counters[pp.groups[c]] && pp.kept.contains(&pp.groups[c]))
            .collect();
        let transition_sets: Vec<HashSet<usize>> = inputs
            .iter()
            .map(|i| i.transitions.iter().copied().collect())
            .collect();
        let mut clean = Vec::new();
        for step in 0..ds.horizon() {
            for (node, input) in inputs.iter().enumerate() {
                clean.push(Tick {
                    node,
                    step,
                    values: input.raw.row(step).to_vec(),
                    transition: transition_sets[node].contains(&step),
                });
            }
        }
        Setup {
            ds,
            model: Arc::new(model),
            clean,
            counter_cols,
        }
    })
}

fn engine_cfg(setup: &Setup, shards: usize) -> EngineConfig {
    let mut cfg = EngineConfig::new(setup.ds.split);
    cfg.n_shards = shards;
    cfg.smooth_window = 1;
    cfg.reorder_bound = 16;
    cfg.blackout_gap = 48;
    cfg
}

/// The in-process baseline: same chunking the batch suites use.
fn run_in_process(setup: &Setup, stream: &[Tick], cfg: EngineConfig) -> EngineReport {
    let engine = Engine::new(Arc::clone(&setup.model), cfg);
    for chunk in stream.chunks(256) {
        engine.ingest(chunk.to_vec()).expect("shard alive");
    }
    engine.finish()
}

/// The over-the-wire run: serve the engine on an ephemeral localhost
/// port, drive it with a (possibly fault-injecting) client, finalize
/// over the socket, and return what came back over the wire.
fn run_over_wire(
    setup: &Setup,
    stream: &[Tick],
    cfg: EngineConfig,
    plan: SocketFaultPlan,
) -> (Vec<VerdictMsg>, ReportMsg, IngestStats) {
    let engine = Engine::new(Arc::clone(&setup.model), cfg);
    let server = engine.serve_ingest("127.0.0.1:0").expect("bind ephemeral");
    let addr = server.local_addr();
    let mut client = IngestClient::with_faults(addr, plan).expect("connect");
    for chunk in stream.chunks(256) {
        client.send_cycle(chunk).expect("send");
    }
    let counters = client.fault_counters;
    let (verdicts, report) = client.finish().expect("finish over wire");
    let run = server.shutdown().expect("server saw the finish");
    (
        verdicts,
        report,
        IngestStats {
            socket_faults: counters,
            server_verdicts: run.report.verdicts.len(),
        },
    )
}

struct IngestStats {
    socket_faults: nodesentry::telemetry::SocketFaultCounters,
    server_verdicts: usize,
}

/// Bit-level equality between the in-process report and the wire run.
fn assert_bit_identical(
    baseline: &EngineReport,
    wire: &[VerdictMsg],
    report: &ReportMsg,
    tag: &str,
) {
    assert_eq!(
        baseline.verdicts.len(),
        wire.len(),
        "{tag}: verdict count diverged"
    );
    for (v, m) in baseline.verdicts.iter().zip(wire) {
        let loc = format!("{tag}: node {} step {}", v.node, v.step);
        assert_eq!(v.node as u64, m.node, "{loc}: node");
        assert_eq!(v.step as u64, m.step, "{loc}: step");
        assert_eq!(
            v.score.to_bits(),
            m.score_bits,
            "{loc}: score {} vs {}",
            v.score,
            m.score()
        );
        assert_eq!(v.anomalous, m.anomalous, "{loc}: flag");
        assert_eq!(v.cluster as u64, m.cluster, "{loc}: cluster");
        assert_eq!(
            matches!(v.kind, VerdictKind::Degraded),
            m.degraded,
            "{loc}: kind"
        );
    }
    assert_eq!(
        report.n_verdicts as usize,
        wire.len(),
        "{tag}: report count"
    );
    assert_eq!(
        report.n_degraded as usize,
        wire.iter().filter(|m| m.degraded).count(),
        "{tag}: report degraded count"
    );
}

#[test]
fn clean_feed_is_bit_identical_across_shards() {
    let setup = setup();
    for shards in SHARDS {
        let baseline = run_in_process(setup, &setup.clean, engine_cfg(setup, shards));
        let (wire, report, stats) = run_over_wire(
            setup,
            &setup.clean,
            engine_cfg(setup, shards),
            SocketFaultPlan::none(),
        );
        assert_bit_identical(&baseline, &wire, &report, &format!("clean/s{shards}"));
        assert_eq!(stats.server_verdicts, wire.len());
        assert_eq!(report.n_shards as usize, baseline.n_shards);
        assert_eq!(report.n_ticks, setup.clean.len() as u64);
    }
}

/// The all-classes fault plan from the fault-tolerance suite: every
/// stream fault the engine hardens against, on one feed.
fn all_fault_stream(setup: &Setup) -> Vec<Tick> {
    let ev = |kind, node, start, end, mag| FaultEvent {
        node,
        kind,
        start,
        end,
        magnitude: mag,
        cols: Vec::new(),
    };
    let mut events = vec![
        ev(FaultKind::Drop, 0, 420, 450, 0.6),
        ev(FaultKind::Duplicate, 1, 400, 460, 0.5),
        ev(FaultKind::Reorder, 2, 380, 430, 4.0),
        ev(FaultKind::NanBurst, 3, 520, 535, 1.0),
        ev(FaultKind::StuckSensor, 0, 500, 540, 1.0),
        ev(FaultKind::CounterReset, 1, 510, 540, 1.0),
        ev(FaultKind::ClockSkew, 1, 470, 500, 6.0),
        ev(FaultKind::Blackout, 2, 460, 520, 1.0),
    ];
    events[4].cols = (0..setup.model.preprocessor.groups.len()).collect();
    events[5].cols = setup.counter_cols.clone();
    let plan = FaultPlan {
        events,
        seed: 0xA11,
    };
    FaultInjector::new(plan).apply(&setup.clean).stream
}

#[test]
fn all_fault_classes_with_socket_chaos_stay_bit_identical() {
    let setup = setup();
    let faulted = all_fault_stream(setup);
    for shards in SHARDS {
        let baseline = run_in_process(setup, &faulted, engine_cfg(setup, shards));
        let (wire, report, stats) = run_over_wire(
            setup,
            &faulted,
            engine_cfg(setup, shards),
            SocketFaultPlan::chaos(0xC4A0 + shards as u64),
        );
        assert_bit_identical(&baseline, &wire, &report, &format!("faults/s{shards}"));
        // The chaos plan must have actually exercised the socket faults
        // it promises — otherwise this test proves nothing.
        let sf = stats.socket_faults;
        assert!(sf.partial_writes > 0, "s{shards}: no partial writes");
        assert!(sf.disconnects > 0, "s{shards}: no reconnect cycles");
        assert!(sf.torn_resends > 0, "s{shards}: no torn frames");
        assert!(
            sf.duplicate_conns > 0,
            "s{shards}: no duplicate connections"
        );
    }
}

#[test]
fn mid_stream_disconnect_and_reconnect_is_bit_identical() {
    let setup = setup();
    let cfg = engine_cfg(setup, 2);
    let baseline = run_in_process(setup, &setup.clean, cfg);

    // Same client object reconnecting mid-stream (sync, drop, redial).
    let engine = Engine::new(Arc::clone(&setup.model), cfg);
    let server = engine.serve_ingest("127.0.0.1:0").expect("bind");
    let addr = server.local_addr();
    let half = setup.clean.len() / 2;
    let mut client = IngestClient::connect(addr).expect("connect");
    client.send_cycle(&setup.clean[..half]).expect("first half");
    client.reconnect().expect("mid-stream reconnect");
    client
        .send_cycle(&setup.clean[half..])
        .expect("second half");
    let (wire, report) = client.finish().expect("finish");
    server.shutdown();
    assert_bit_identical(&baseline, &wire, &report, "reconnect/same-client");

    // A different client finishing the stream the first one started.
    let engine = Engine::new(Arc::clone(&setup.model), cfg);
    let server = engine.serve_ingest("127.0.0.1:0").expect("bind");
    let addr = server.local_addr();
    let mut first = IngestClient::connect(addr).expect("connect A");
    first.send_cycle(&setup.clean[..half]).expect("A half");
    // Sync before abandoning the connection so nothing is in flight.
    first.ping().expect("A sync");
    drop(first);
    let mut second = IngestClient::connect(addr).expect("connect B");
    second.send_cycle(&setup.clean[half..]).expect("B half");
    let (wire, report) = second.finish().expect("B finish");
    server.shutdown();
    assert_bit_identical(&baseline, &wire, &report, "reconnect/two-clients");
}

#[test]
fn verdict_subscribers_get_the_same_stream() {
    let setup = setup();
    let cfg = engine_cfg(setup, 2);
    let baseline = run_in_process(setup, &setup.clean, cfg);
    let engine = Engine::new(Arc::clone(&setup.model), cfg);
    let server = engine.serve_ingest("127.0.0.1:0").expect("bind");
    let addr = server.local_addr();

    // Early subscriber: connects before the run finalizes and blocks.
    let early = std::thread::spawn(move || subscribe_verdicts(addr).expect("early subscriber"));

    let mut client = IngestClient::connect(addr).expect("connect");
    client.send_cycle(&setup.clean).expect("send");
    let (finisher, report) = client.finish().expect("finish");
    assert_bit_identical(&baseline, &finisher, &report, "subscribe/finisher");

    let (early_verdicts, early_report) = early.join().expect("early thread");
    assert_bit_identical(&baseline, &early_verdicts, &early_report, "subscribe/early");

    // Late subscriber: the finished run is retained until shutdown.
    let (late_verdicts, late_report) = subscribe_verdicts(addr).expect("late subscriber");
    assert_bit_identical(&baseline, &late_verdicts, &late_report, "subscribe/late");
    server.shutdown();
}
