//! Property-based wire conformance: for *arbitrary* inputs —
//! exotic float bit patterns (NaN payloads, infinities, signed zeros,
//! subnormals), arbitrary scalar fields, and arbitrary TCP segmentation
//! of the byte stream — the frame codec must
//!
//! * round-trip every frame byte-stably (`encode ∘ decode ∘ encode` is
//!   the identity on bytes, and every float survives by bits);
//! * reassemble the exact frame sequence no matter where the stream is
//!   split; and
//! * never panic on random garbage: every outcome of [`decode_frame`]
//!   on hostile bytes is `Ok` or a typed [`WireError`].

use nodesentry::stream::Tick;
use nodesentry::wire::{
    decode_frame, encode_frame, error_code, Frame, FrameAssembler, ReportMsg, Role,
    ScoringPrecision, VerdictMsg, HEADER_LEN, TRAILER_LEN,
};
use proptest::prelude::*;

/// Re-encode must reproduce the input bytes exactly, and the decoded
/// frame must re-encode to the same bytes (byte stability).
fn assert_roundtrip(frame: &Frame) -> Frame {
    let bytes = encode_frame(frame);
    assert!(bytes.len() >= HEADER_LEN + TRAILER_LEN);
    let (decoded, consumed) = decode_frame(&bytes)
        .unwrap_or_else(|e| panic!("own encoding must decode ({}): {e}", frame.kind_label()));
    prop_assert_eq!(consumed, bytes.len());
    prop_assert_eq!(&encode_frame(&decoded), &bytes, "byte-unstable re-encode");
    decoded
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    // Ticks with fully arbitrary f64 bit patterns — every NaN payload,
    // ±inf, -0.0, subnormals — survive the wire by bits.
    #[test]
    fn tick_frames_round_trip_by_bits(
        node in any::<u64>(),
        step in any::<u64>(),
        bits in prop::collection::vec(any::<u64>(), 0..24),
        transition in any::<bool>(),
    ) {
        let tick = Tick {
            node: node as usize,
            step: step as usize,
            values: bits.iter().copied().map(f64::from_bits).collect(),
            transition,
        };
        match assert_roundtrip(&Frame::Tick(tick.clone())) {
            Frame::Tick(got) => {
                prop_assert_eq!(got.node, tick.node);
                prop_assert_eq!(got.step, tick.step);
                prop_assert_eq!(got.transition, tick.transition);
                let got_bits: Vec<u64> = got.values.iter().map(|v| v.to_bits()).collect();
                prop_assert_eq!(&got_bits, &bits, "float bits changed in flight");
            }
            other => panic!("kind changed in flight: {other:?}"),
        }
    }

    // Every other frame kind round-trips with arbitrary field values.
    #[test]
    fn all_frame_kinds_round_trip(
        a in any::<u64>(),
        b in any::<u64>(),
        score_bits in any::<u64>(),
        flag in any::<bool>(),
        ingest in any::<bool>(),
    ) {
        let role = if ingest { Role::Ingest } else { Role::Verdicts };
        // Cycle Hello through all three precision announcements: absent
        // (v1-identical payload), f64, f32.
        let precision = match a % 3 {
            0 => None,
            1 => Some(ScoringPrecision::F64),
            _ => Some(ScoringPrecision::F32),
        };
        let frames = [
            Frame::Hello { role, client_id: a, precision },
            Frame::Finish,
            Frame::Verdict(VerdictMsg {
                node: a,
                step: b,
                score_bits,
                anomalous: flag,
                cluster: a ^ b,
                degraded: !flag,
            }),
            Frame::Report(ReportMsg {
                n_verdicts: a,
                n_degraded: b,
                n_ticks: a.wrapping_add(b),
                n_shards: b % 64,
            }),
            Frame::Error { code: error_code::PROTOCOL, msg: format!("e{a:x}") },
            Frame::Ping { token: a },
            Frame::Pong { token: b },
        ];
        for frame in &frames {
            let decoded = assert_roundtrip(frame);
            if let (Frame::Verdict(v), Frame::Verdict(got)) = (frame, &decoded) {
                prop_assert_eq!(got.score_bits, v.score_bits, "score bits changed");
            }
        }
    }

    // Arbitrary TCP segmentation: a multi-frame byte stream split at
    // random points reassembles to exactly the original frame sequence.
    #[test]
    fn random_split_points_reassemble(
        node in any::<u64>(),
        bits in prop::collection::vec(any::<u64>(), 1..12),
        tokens in prop::collection::vec(any::<u64>(), 1..5),
        cut_fracs in prop::collection::vec(0.0f64..1.0, 0..16),
    ) {
        // A realistic little conversation: hello, ticks, pings, finish.
        let mut frames = vec![Frame::Hello { role: Role::Ingest, client_id: node, precision: None }];
        for (i, &token) in tokens.iter().enumerate() {
            frames.push(Frame::Tick(Tick {
                node: node as usize,
                step: i,
                values: bits.iter().copied().map(f64::from_bits).collect(),
                transition: i == 0,
            }));
            frames.push(Frame::Ping { token });
        }
        frames.push(Frame::Finish);

        let stream: Vec<u8> = frames.iter().flat_map(encode_frame).collect();
        let mut cuts: Vec<usize> = cut_fracs
            .iter()
            .map(|f| (f * stream.len() as f64) as usize)
            .collect();
        cuts.push(0);
        cuts.push(stream.len());
        cuts.sort_unstable();
        cuts.dedup();

        let mut asm = FrameAssembler::new();
        let mut got = Vec::new();
        for pair in cuts.windows(2) {
            got.extend(asm.push(&stream[pair[0]..pair[1]]).expect("valid stream"));
        }
        prop_assert_eq!(asm.pending_bytes(), 0, "bytes left over after full stream");
        prop_assert_eq!(got.len(), frames.len());
        for (want, have) in frames.iter().zip(&got) {
            prop_assert_eq!(&encode_frame(want), &encode_frame(have), "frame changed");
        }
    }

    // Total garbage never panics: decode yields a typed result, and the
    // assembler either waits for more bytes or reports a typed error.
    #[test]
    fn garbage_bytes_never_panic(
        bytes in prop::collection::vec(0u8..=255u8, 0..96),
    ) {
        // Either outcome is fine — the property is "no panic, and a
        // decoded frame re-encodes consistently".
        if let Ok((frame, consumed)) = decode_frame(&bytes) {
            prop_assert!(consumed <= bytes.len());
            prop_assert_eq!(&encode_frame(&frame)[..], &bytes[..consumed]);
        }
        let mut asm = FrameAssembler::new();
        let _ = asm.push(&bytes);
        // After a hard error the assembler must be reusable.
        let ping = encode_frame(&Frame::Ping { token: 3 });
        if let Ok(frames) = asm.push(&ping) {
            prop_assert!(!frames.is_empty() || asm.pending_bytes() > 0);
        }
    }

    // Garbage *appended to* a valid frame never corrupts that frame.
    #[test]
    fn valid_prefix_survives_trailing_garbage(
        token in any::<u64>(),
        junk in prop::collection::vec(0u8..=255u8, 0..40),
    ) {
        let good = encode_frame(&Frame::Ping { token });
        let mut stream = good.clone();
        stream.extend_from_slice(&junk);
        let (frame, consumed) = decode_frame(&stream).expect("prefix is valid");
        prop_assert_eq!(consumed, good.len());
        prop_assert_eq!(&encode_frame(&frame), &good);
    }
}
