//! Model persistence: a trained detector serialized with
//! `NodeSentry::to_json` and restored with `from_json` must score
//! identically — both the slim deployment envelope (no training
//! segments) and the full layout.

use nodesentry::core::{CoarseConfig, NodeInput, NodeSentry, NodeSentryConfig, SharingConfig};
use nodesentry::features::FeatureCatalog;
use nodesentry::telemetry::DatasetProfile;

fn quick_cfg() -> NodeSentryConfig {
    NodeSentryConfig {
        coarse: CoarseConfig {
            catalog: FeatureCatalog::compact(),
            k_max: 6,
            ..Default::default()
        },
        sharing: SharingConfig {
            window: 12,
            stride: 6,
            d_model: 16,
            n_heads: 2,
            n_layers: 1,
            hidden: 32,
            n_experts: 2,
            epochs: 6,
            lr: 3e-3,
            batch: 16,
            k_nearest: 4,
            ..Default::default()
        },
        match_period: 40,
        min_segment_len: 8,
        ..Default::default()
    }
}

#[test]
fn fit_serialize_deserialize_scores_identically() {
    let ds = DatasetProfile::tiny().generate();
    let groups = ds.catalog.group_ids();
    let inputs: Vec<NodeInput> = (0..ds.n_nodes())
        .map(|n| NodeInput {
            raw: ds.raw_node(n),
            transitions: ds
                .schedule
                .node_timeline(n)
                .iter()
                .map(|s| s.start)
                .filter(|&s| s > 0)
                .collect(),
        })
        .collect();
    let model = NodeSentry::fit(quick_cfg(), &inputs, &groups, ds.split);

    for include_segments in [false, true] {
        let json = model.to_json(include_segments).expect("serialize");
        let restored = NodeSentry::from_json(&json).expect("deserialize");
        assert_eq!(restored.n_clusters(), model.n_clusters());
        assert_eq!(
            restored.preprocessor.out_dim(),
            model.preprocessor.out_dim()
        );
        if include_segments {
            assert_eq!(restored.train_segments.len(), model.train_segments.len());
        } else {
            assert!(restored.train_segments.is_empty());
        }
        // Identical scoring, bit for bit, on every node.
        for input in &inputs {
            let (before, matches_before) =
                model.score_node(&input.raw, &input.transitions, ds.split);
            let (after, matches_after) =
                restored.score_node(&input.raw, &input.transitions, ds.split);
            assert_eq!(matches_before, matches_after);
            assert_eq!(before.len(), after.len());
            for (a, b) in before.iter().zip(&after) {
                assert_eq!(a.to_bits(), b.to_bits(), "score changed across round-trip");
            }
        }
        // A second round-trip is a fixed point of serialization.
        let json2 = restored.to_json(include_segments).expect("re-serialize");
        assert_eq!(json, json2, "serialization not stable across a round-trip");
    }
}
