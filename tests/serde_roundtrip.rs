//! Model persistence: a trained detector serialized with
//! `NodeSentry::to_json` and restored with `from_json` must score
//! identically — both the slim deployment envelope (no training
//! segments) and the full layout.

use nodesentry::core::{CoarseConfig, NodeInput, NodeSentry, NodeSentryConfig, SharingConfig};
use nodesentry::features::FeatureCatalog;
use nodesentry::telemetry::DatasetProfile;

fn quick_cfg() -> NodeSentryConfig {
    NodeSentryConfig {
        coarse: CoarseConfig {
            catalog: FeatureCatalog::compact(),
            k_max: 6,
            ..Default::default()
        },
        sharing: SharingConfig {
            window: 12,
            stride: 6,
            d_model: 16,
            n_heads: 2,
            n_layers: 1,
            hidden: 32,
            n_experts: 2,
            epochs: 6,
            lr: 3e-3,
            batch: 16,
            k_nearest: 4,
            ..Default::default()
        },
        match_period: 40,
        min_segment_len: 8,
        ..Default::default()
    }
}

#[test]
fn fit_serialize_deserialize_scores_identically() {
    let ds = DatasetProfile::tiny().generate();
    let groups = ds.catalog.group_ids();
    let inputs: Vec<NodeInput> = (0..ds.n_nodes())
        .map(|n| NodeInput {
            raw: ds.raw_node(n),
            transitions: ds
                .schedule
                .node_timeline(n)
                .iter()
                .map(|s| s.start)
                .filter(|&s| s > 0)
                .collect(),
        })
        .collect();
    let model = NodeSentry::fit(quick_cfg(), &inputs, &groups, ds.split);

    for include_segments in [false, true] {
        let json = model.to_json(include_segments).expect("serialize");
        let restored = NodeSentry::from_json(&json).expect("deserialize");
        assert_eq!(restored.n_clusters(), model.n_clusters());
        assert_eq!(
            restored.preprocessor.out_dim(),
            model.preprocessor.out_dim()
        );
        if include_segments {
            assert_eq!(restored.train_segments.len(), model.train_segments.len());
        } else {
            assert!(restored.train_segments.is_empty());
        }
        // Identical scoring, bit for bit, on every node.
        for input in &inputs {
            let (before, matches_before) =
                model.score_node(&input.raw, &input.transitions, ds.split);
            let (after, matches_after) =
                restored.score_node(&input.raw, &input.transitions, ds.split);
            assert_eq!(matches_before, matches_after);
            assert_eq!(before.len(), after.len());
            for (a, b) in before.iter().zip(&after) {
                assert_eq!(a.to_bits(), b.to_bits(), "score changed across round-trip");
            }
        }
        // A second round-trip is a fixed point of serialization.
        let json2 = restored.to_json(include_segments).expect("re-serialize");
        assert_eq!(json, json2, "serialization not stable across a round-trip");
    }
}

// ---------------------------------------------------------------------
// Snapshot wire format: value round trips and the pinned v1 golden file
// ---------------------------------------------------------------------

mod snapshot_format {
    use nodesentry::eval::streaming::{KSigmaState, SmootherState};
    use nodesentry::stream::snapshot::{
        EngineSnapshot, JobSnap, NodeSnap, PendingSnap, PreSnap, SNAPSHOT_VERSION,
    };
    use nodesentry::stream::{FaultCounters, StreamStats, Tick};

    /// The golden snapshot: deterministic, hand-built, touching every
    /// field the format carries — including float bit patterns (negative
    /// zero, infinities, a subnormal) that a text codec would mangle.
    /// Regenerating the fixture (`NS_REGEN_FIXTURES=1`) is a conscious
    /// format change and must come with a `SNAPSHOT_VERSION` bump.
    fn golden() -> EngineSnapshot {
        let pre = PreSnap {
            buf: vec![vec![1.5, -0.0, 0.25], vec![f64::INFINITY, -2.0, 5e-324]],
            nan_flags: vec![true, false],
            base: 41,
            n_pushed: 43,
            resolved: 41,
            last_obs: vec![Some(42), None, Some(40)],
            last_val: vec![0.125, -1.0, f64::NEG_INFINITY],
            rate_prev: vec![3.5, 0.0],
            any_row: true,
        };
        let full = NodeSnap {
            node: 5,
            next_step: 43,
            next_row: 19,
            pre,
            cuts: vec![12, 24, 36],
            seg_start: 36,
            seg_rows: vec![vec![0.1, 0.2, 0.3], vec![0.4, 0.5, 0.6]],
            seg_row_kinds: vec![0, 1],
            matched: Some(2),
            jobs: vec![JobSnap {
                start: 24,
                rows: vec![vec![-0.5, 0.5, 1.5]],
                kinds: vec![2],
                matched: None,
                degraded: true,
            }],
            probe_pending: true,
            smoother: SmootherState {
                buf: vec![0.75, -0.25],
                n_pushed: 40,
                next_out: 38,
            },
            detector: KSigmaState {
                window: vec![0.1, 0.2, 0.9, 0.15],
                flagged_run: 2,
            },
            pending: vec![PendingSnap {
                step: 42,
                score: 0.875,
                cluster: 1,
                suppress: false,
                degraded: true,
            }],
            ahead: vec![Tick {
                node: 5,
                step: 45,
                values: vec![1.0, -0.0, 2.5],
                transition: true,
            }],
            row_kinds: vec![0, 1, 2, 0],
            resync_degraded: true,
            prev_raw: vec![9.75, -3.5, 0.0],
            runs: vec![0, 4, 1],
            stats: StreamStats {
                n_ticks: 43,
                ..Default::default()
            },
            faults: FaultCounters {
                synthesized_rows: 2,
                late_ticks: 1,
                ..Default::default()
            },
        };
        let mut minimal = full.clone();
        minimal.node = 0;
        minimal.pre.buf.clear();
        minimal.pre.nan_flags.clear();
        minimal.jobs.clear();
        minimal.pending.clear();
        minimal.ahead.clear();
        minimal.matched = None;
        EngineSnapshot {
            model_fingerprint: 0x0123_4567_89AB_CDEF,
            split: 360,
            smooth_window: 1,
            // F64 is omitted from the encoding, so the golden fixture's
            // pinned v1 bytes stay valid with the field present.
            scoring_precision: nodesentry::stream::ScoringPrecision::F64,
            n_shards: 4,
            nodes: vec![minimal, full],
            quarantined: vec![2, 9],
            carried_stats: StreamStats {
                n_ticks: 17,
                ..Default::default()
            },
            carried_faults: FaultCounters {
                quarantine_dropped: 4,
                ..Default::default()
            },
        }
    }

    const FIXTURE: &str = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/engine_snapshot_v1.bin"
    );

    /// Every snapshot type survives the self-describing `Value` layer —
    /// the same layer the binary codec serializes — losslessly.
    #[test]
    fn snapshot_types_roundtrip_through_serde_values() {
        use serde::{Deserialize, Serialize};

        let snap = golden();
        let v = snap.to_value();
        let back = EngineSnapshot::from_value(&v).expect("EngineSnapshot");
        assert_eq!(back, snap);

        let node = &snap.nodes[1];
        assert_eq!(
            &NodeSnap::from_value(&node.to_value()).expect("NodeSnap"),
            node
        );
        assert_eq!(
            PreSnap::from_value(&node.pre.to_value()).expect("PreSnap"),
            node.pre
        );
        assert_eq!(
            JobSnap::from_value(&node.jobs[0].to_value()).expect("JobSnap"),
            node.jobs[0]
        );
        assert_eq!(
            PendingSnap::from_value(&node.pending[0].to_value()).expect("PendingSnap"),
            node.pending[0]
        );
        // Type confusion fails typed, not silently.
        assert!(PreSnap::from_value(&node.jobs[0].to_value()).is_err());
    }

    /// The checked-in fixture pins the on-disk format: if this test
    /// fails, the wire encoding changed, which breaks every snapshot
    /// already persisted by a deployment. Bump `SNAPSHOT_VERSION`, keep
    /// a decoder for v1, and only then regenerate with
    /// `NS_REGEN_FIXTURES=1 cargo test --test serde_roundtrip`.
    #[test]
    fn golden_fixture_pins_the_v1_wire_format() {
        let bytes = golden().to_bytes();
        if std::env::var_os("NS_REGEN_FIXTURES").is_some() {
            std::fs::write(FIXTURE, &bytes).expect("write fixture");
            eprintln!("regenerated {FIXTURE} ({} bytes)", bytes.len());
        }
        let pinned = std::fs::read(FIXTURE)
            .expect("fixture missing — run with NS_REGEN_FIXTURES=1 once to create it");
        assert_eq!(
            SNAPSHOT_VERSION, 1,
            "version bumped: add a migration path and a new fixture instead of editing v1's"
        );
        assert_eq!(
            bytes, pinned,
            "snapshot wire encoding drifted from the checked-in v1 fixture"
        );
        // And the pinned bytes still decode to the golden value.
        let decoded = EngineSnapshot::from_bytes(&pinned).expect("decode fixture");
        assert_eq!(decoded, golden());
    }
}

// ---------------------------------------------------------------------
// Network wire format: the pinned v1 golden frame stream
// ---------------------------------------------------------------------

mod wire_format {
    use nodesentry::stream::Tick;
    use nodesentry::wire::{
        decode_frame, encode_frame, error_code, FrameAssembler, ReportMsg, Role, VerdictMsg,
        WIRE_VERSION,
    };
    use nodesentry::wire::{Frame, HEADER_LEN, WIRE_MAGIC};

    /// The golden conversation: one frame of every kind, with field
    /// values chosen to cover the encoding's corners — float bit
    /// patterns a text codec would mangle (NaN payload, ±inf, -0.0, a
    /// subnormal), an empty tick, max-u64 scalars, and a non-ASCII
    /// error message. Regenerating the fixture (`NS_REGEN_FIXTURES=1`)
    /// is a conscious protocol change and must come with a
    /// `WIRE_VERSION` bump plus a decoder for v1.
    fn golden() -> Vec<Frame> {
        vec![
            Frame::Hello {
                role: Role::Ingest,
                client_id: 7,
                precision: None,
            },
            Frame::Hello {
                role: Role::Verdicts,
                client_id: u64::MAX,
                precision: None,
            },
            Frame::Tick(Tick {
                node: 3,
                step: 411,
                values: vec![
                    1.5,
                    f64::NAN,
                    f64::from_bits(0x7FF8_0000_DEAD_BEEF), // NaN payload
                    -0.0,
                    f64::INFINITY,
                    f64::NEG_INFINITY,
                    5e-324, // smallest subnormal
                    -273.15,
                ],
                transition: true,
            }),
            Frame::Tick(Tick {
                node: 0,
                step: 0,
                values: vec![],
                transition: false,
            }),
            Frame::Ping { token: 0xC0FF_EE00 },
            Frame::Pong { token: 0xC0FF_EE00 },
            Frame::Verdict(VerdictMsg {
                node: 3,
                step: 411,
                score_bits: (-0.0f64).to_bits(),
                anomalous: true,
                cluster: 2,
                degraded: false,
            }),
            Frame::Finish,
            Frame::Report(ReportMsg {
                n_verdicts: 96,
                n_degraded: 4,
                n_ticks: 1_152,
                n_shards: 4,
            }),
            Frame::Error {
                code: error_code::REJECTED,
                msg: "run déjà finalized".to_string(),
            },
        ]
    }

    const FIXTURE: &str = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/fixtures/wire_frame_v1.bin"
    );

    /// The checked-in fixture pins the network frame encoding: if this
    /// test fails, a new server can no longer speak to an old client
    /// (or vice versa). Bump `WIRE_VERSION`, keep the v1 decoder, and
    /// only then regenerate with
    /// `NS_REGEN_FIXTURES=1 cargo test --test serde_roundtrip`.
    #[test]
    fn golden_fixture_pins_the_v1_frame_encoding() {
        let stream: Vec<u8> = golden().iter().flat_map(encode_frame).collect();
        if std::env::var_os("NS_REGEN_FIXTURES").is_some() {
            std::fs::write(FIXTURE, &stream).expect("write fixture");
            eprintln!("regenerated {FIXTURE} ({} bytes)", stream.len());
        }
        let pinned = std::fs::read(FIXTURE)
            .expect("fixture missing — run with NS_REGEN_FIXTURES=1 once to create it");
        assert_eq!(
            WIRE_VERSION, 1,
            "version bumped: add a migration path and a new fixture instead of editing v1's"
        );
        assert_eq!(
            stream, pinned,
            "network frame encoding drifted from the checked-in v1 fixture"
        );

        // The pinned bytes still decode to the golden conversation.
        // NaN fields make `Frame: PartialEq` useless here, so compare
        // the canonical re-encoding (byte equality implies bit-level
        // field equality — the codec is injective on bits).
        let decoded = FrameAssembler::new()
            .push(&pinned)
            .expect("decode fixture stream");
        let want = golden();
        assert_eq!(decoded.len(), want.len());
        for (have, want) in decoded.iter().zip(&want) {
            assert_eq!(
                encode_frame(have),
                encode_frame(want),
                "frame {} decoded differently",
                want.kind_label()
            );
        }
        // Spot-check the exotic float bits survive by value too.
        match &decoded[2] {
            Frame::Tick(t) => {
                assert_eq!(t.values[2].to_bits(), 0x7FF8_0000_DEAD_BEEF);
                assert_eq!(t.values[3].to_bits(), (-0.0f64).to_bits());
            }
            other => panic!("fixture frame 2 should be the exotic tick, got {other:?}"),
        }

        // Structural invariants of the pinned bytes themselves: every
        // frame leads with the magic and the pinned version.
        let (first, consumed) = decode_frame(&pinned).expect("first frame");
        assert!(matches!(first, Frame::Hello { .. }));
        assert_eq!(&pinned[..4], WIRE_MAGIC);
        assert_eq!(
            u16::from_le_bytes([pinned[4], pinned[5]]),
            WIRE_VERSION,
            "pinned version bytes"
        );
        assert!(consumed >= HEADER_LEN);
    }
}
