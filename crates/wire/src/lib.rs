//! `ns-wire` — the length-prefixed, versioned binary tick/verdict
//! protocol that carries telemetry from collectors to the streaming
//! engine over a socket.
//!
//! The batch and in-process streaming APIs assume the caller and the
//! engine share an address space. A monitoring deployment does not: the
//! collector daemons run on thousands of physical nodes and ship samples
//! over TCP. This crate defines the transport unit — one [`Frame`] — and
//! nothing else: no sockets are opened here, so the codec is testable
//! byte by byte and both sides (the ingest server in `ns-stream`, the
//! client in `ns-telemetry`) share one grammar.
//!
//! # Frame layout (version 1)
//!
//! ```text
//! magic "NSWP" (4) | version u16 LE | kind u8 | payload_len u32 LE | payload | fnv1a64 u64 LE
//! ```
//!
//! The FNV-1a 64 checksum is taken over everything before it (header +
//! payload), mirroring the `NSSN` snapshot envelope. Floats travel as
//! raw IEEE-754 bits, so NaN payloads and `-0.0` survive the wire
//! byte-exactly — the over-the-wire differential suite compares verdict
//! scores with `to_bits`, not `==`.
//!
//! # Totality
//!
//! [`decode_frame`] never panics on hostile bytes: every malformed input
//! maps to a typed [`WireError`] (`crates/stream/tests/wire_corruption.rs`
//! drives every truncation length and every single-bit flip through it).
//! The check order is deliberate: magic → length sanity (so a hostile
//! length cannot force a huge allocation or an unbounded read) →
//! checksum → version gate → kind gate → payload decode. A corrupted
//! version byte therefore reports the corruption ([`WireError::Corrupt`]),
//! while an intact frame from a newer protocol reports
//! [`WireError::UnsupportedVersion`].
//!
//! # Reassembly
//!
//! TCP is a byte stream: one `read` may return half a frame or three and
//! a half. [`FrameAssembler`] buffers arbitrary splits and yields whole
//! frames in order; `tests/proptest_wire.rs` proves reassembly is
//! invariant under random split points.

use nodesentry_core::Tick;

/// Leading magic of every frame: `NSWP` ("NodeSentry Wire Protocol").
pub const WIRE_MAGIC: [u8; 4] = *b"NSWP";
/// Current wire protocol version.
pub const WIRE_VERSION: u16 = 1;
/// Frame header: magic (4) + version (2) + kind (1) + payload len (4).
pub const HEADER_LEN: usize = 11;
/// Trailing checksum width.
pub const TRAILER_LEN: usize = 8;
/// Hard ceiling on a frame's payload. A tick for a 1,000-column catalog
/// is ~8 KiB; anything near this bound is hostile, not telemetry, and is
/// rejected before any allocation or blocking read sized from it.
pub const MAX_PAYLOAD_LEN: u32 = 1 << 20;

/// Typed failures of the wire layer. Decoding is total: hostile bytes
/// land here, never in a panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ends before the frame does. Over a socket this is a
    /// torn frame (peer died mid-write); in an assembler it just means
    /// "wait for more bytes".
    Truncated { expected: usize, have: usize },
    /// The leading 4 bytes are not `NSWP` — not a frame boundary.
    BadMagic,
    /// Header or payload bytes do not match the trailing checksum.
    Corrupt,
    /// Checksum-intact frame from a protocol version this build cannot
    /// read.
    UnsupportedVersion { found: u16, supported: u16 },
    /// Checksum-intact frame whose kind byte names no known frame.
    UnknownKind(u8),
    /// Declared payload length exceeds [`MAX_PAYLOAD_LEN`].
    Oversized { declared: u64, max: u64 },
    /// Structurally invalid payload (bad counts, bad enum ordinals,
    /// trailing bytes).
    Decode(String),
    /// Socket-level failure wrapped for callers that mix I/O and
    /// protocol errors in one result.
    Io(String),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated { expected, have } => {
                write!(f, "frame truncated: need {expected} bytes, have {have}")
            }
            WireError::BadMagic => write!(f, "not a wire frame: bad magic"),
            WireError::Corrupt => write!(f, "frame checksum mismatch"),
            WireError::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "wire version {found} unsupported (this build speaks {supported})"
                )
            }
            WireError::UnknownKind(k) => write!(f, "unknown frame kind {k}"),
            WireError::Oversized { declared, max } => {
                write!(f, "declared payload {declared} exceeds the {max}-byte cap")
            }
            WireError::Decode(e) => write!(f, "frame payload malformed: {e}"),
            WireError::Io(e) => write!(f, "wire i/o: {e}"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<std::io::Error> for WireError {
    fn from(e: std::io::Error) -> Self {
        WireError::Io(e.to_string())
    }
}

impl WireError {
    /// Stable class label for metrics (`ns_wire_errors_total{class=...}`).
    pub fn class(&self) -> &'static str {
        match self {
            WireError::Truncated { .. } => "truncated",
            WireError::BadMagic => "bad_magic",
            WireError::Corrupt => "corrupt",
            WireError::UnsupportedVersion { .. } => "unsupported_version",
            WireError::UnknownKind(_) => "unknown_kind",
            WireError::Oversized { .. } => "oversized",
            WireError::Decode(_) => "decode",
            WireError::Io(_) => "io",
        }
    }
}

/// What a connection is for, declared by its opening [`Frame::Hello`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Role {
    /// Sends ticks; may request finalization with [`Frame::Finish`].
    Ingest,
    /// Receives the verdict stream once the run finalizes.
    Verdicts,
}

impl Role {
    fn to_ordinal(self) -> u8 {
        match self {
            Role::Ingest => 0,
            Role::Verdicts => 1,
        }
    }

    fn from_ordinal(b: u8) -> Result<Self, WireError> {
        match b {
            0 => Ok(Role::Ingest),
            1 => Ok(Role::Verdicts),
            other => Err(WireError::Decode(format!("bad role ordinal {other}"))),
        }
    }
}

/// Scoring precision tier of the engine behind a connection. Defined
/// here (and re-exported by `ns-stream` as its `EngineConfig` field) so
/// wire clients can announce the tier they expect without an engine
/// dependency. Scores travel the wire as f64 bits under both tiers —
/// the tier changes engine arithmetic, never the wire format.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ScoringPrecision {
    /// Full-precision scoring; streaming verdicts are bit-identical to
    /// batch scoring. The default everywhere.
    #[default]
    F64,
    /// Opt-in f32 scoring pipeline (prebaked f32 weights, f32 kernels);
    /// faster, with a measured — not pinned — accuracy delta vs f64.
    F32,
}

impl ScoringPrecision {
    /// Wire/snapshot ordinal (pinned: part of the on-wire format).
    pub fn to_ordinal(self) -> u8 {
        match self {
            ScoringPrecision::F64 => 0,
            ScoringPrecision::F32 => 1,
        }
    }

    pub fn from_ordinal(b: u8) -> Result<Self, WireError> {
        match b {
            0 => Ok(ScoringPrecision::F64),
            1 => Ok(ScoringPrecision::F32),
            other => Err(WireError::Decode(format!("bad precision ordinal {other}"))),
        }
    }

    /// Stable label for JSON reports and metrics.
    pub fn as_str(self) -> &'static str {
        match self {
            ScoringPrecision::F64 => "f64",
            ScoringPrecision::F32 => "f32",
        }
    }
}

impl serde::Serialize for ScoringPrecision {
    fn to_value(&self) -> serde::Value {
        serde::Value::Str(
            match self {
                ScoringPrecision::F64 => "F64",
                ScoringPrecision::F32 => "F32",
            }
            .to_string(),
        )
    }
}

impl serde::Deserialize for ScoringPrecision {
    fn from_value(v: &serde::Value) -> Result<Self, serde::Error> {
        match v {
            // Absent fields decode from Null: snapshots written before
            // the tier existed are F64 by construction.
            serde::Value::Null => Ok(ScoringPrecision::F64),
            serde::Value::Str(s) if s == "F64" => Ok(ScoringPrecision::F64),
            serde::Value::Str(s) if s == "F32" => Ok(ScoringPrecision::F32),
            other => Err(serde::Error::msg(format!(
                "expected scoring precision, got {other:?}"
            ))),
        }
    }
}

/// One detection outcome on the wire. Mirrors `ns_stream::Verdict` field
/// for field, with the score as raw IEEE bits so equality over the wire
/// is bit equality. (Defined here rather than borrowed from `ns-stream`
/// so the client side needs no dependency on the engine.)
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VerdictMsg {
    pub node: u64,
    pub step: u64,
    /// `f64::to_bits` of the normalized anomaly score.
    pub score_bits: u64,
    pub anomalous: bool,
    pub cluster: u64,
    /// True when the engine marked the verdict `Degraded`.
    pub degraded: bool,
}

impl VerdictMsg {
    pub fn score(&self) -> f64 {
        f64::from_bits(self.score_bits)
    }
}

/// End-of-stream summary closing a verdict stream.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReportMsg {
    pub n_verdicts: u64,
    pub n_degraded: u64,
    /// Raw ticks the engine ingested (post socket, pre fault rejection).
    pub n_ticks: u64,
    /// Effective shard count the engine ran with.
    pub n_shards: u64,
}

/// Error codes carried by [`Frame::Error`] (server → client).
pub mod error_code {
    /// The frame was understood but arrived in a state that forbids it
    /// (e.g. a tick after the run finalized).
    pub const REJECTED: u8 = 1;
    /// The connection's bytes stopped parsing; the server is closing it.
    pub const PROTOCOL: u8 = 2;
    /// The engine itself failed (shard down, ingestion error).
    pub const ENGINE: u8 = 3;
}

/// The transport unit. Kind ordinals are pinned — part of the on-wire
/// format, asserted by the golden fixture in `tests/serde_roundtrip.rs`.
#[derive(Clone, Debug, PartialEq)]
pub enum Frame {
    /// Connection preamble declaring intent. Optional for ingest
    /// connections (a bare tick implies `Role::Ingest`), required to
    /// subscribe to verdicts. `precision` optionally announces the
    /// scoring tier the client expects; the server rejects a mismatch
    /// with a typed [`Frame::Error`] instead of silently serving scores
    /// from a different pipeline. `None` encodes exactly the version-1
    /// nine-byte payload, so old clients and the pinned golden fixtures
    /// are untouched.
    Hello {
        role: Role,
        client_id: u64,
        precision: Option<ScoringPrecision>,
    },
    /// One telemetry sample (client → server).
    Tick(Tick),
    /// Finalize the run: flush every node and stream verdicts back.
    Finish,
    /// One detection outcome (server → client).
    Verdict(VerdictMsg),
    /// End-of-stream summary (server → client, after the last verdict).
    Report(ReportMsg),
    /// Typed server-side failure notification, sent best-effort before
    /// the server closes a misbehaving or unlucky connection.
    Error { code: u8, msg: String },
    /// Liveness / end-to-end latency probe. The server replies
    /// [`Frame::Pong`] with the same token once every frame received
    /// before the ping has been ingested.
    Ping { token: u64 },
    /// Reply to [`Frame::Ping`].
    Pong { token: u64 },
}

impl Frame {
    fn kind(&self) -> u8 {
        match self {
            Frame::Hello { .. } => 0,
            Frame::Tick(_) => 1,
            Frame::Finish => 2,
            Frame::Verdict(_) => 3,
            Frame::Report(_) => 4,
            Frame::Error { .. } => 5,
            Frame::Ping { .. } => 6,
            Frame::Pong { .. } => 7,
        }
    }

    /// Stable kind label for metrics (`ns_wire_frames_total{kind=...}`).
    pub fn kind_label(&self) -> &'static str {
        match self {
            Frame::Hello { .. } => "hello",
            Frame::Tick(_) => "tick",
            Frame::Finish => "finish",
            Frame::Verdict(_) => "verdict",
            Frame::Report(_) => "report",
            Frame::Error { .. } => "error",
            Frame::Ping { .. } => "ping",
            Frame::Pong { .. } => "pong",
        }
    }
}

// ---------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------

fn encode_payload(f: &Frame, out: &mut Vec<u8>) {
    match f {
        Frame::Hello {
            role,
            client_id,
            precision,
        } => {
            out.push(role.to_ordinal());
            out.extend_from_slice(&client_id.to_le_bytes());
            if let Some(p) = precision {
                out.push(p.to_ordinal());
            }
        }
        Frame::Tick(t) => {
            out.extend_from_slice(&(t.node as u64).to_le_bytes());
            out.extend_from_slice(&(t.step as u64).to_le_bytes());
            out.push(t.transition as u8);
            out.extend_from_slice(&(t.values.len() as u32).to_le_bytes());
            for v in &t.values {
                out.extend_from_slice(&v.to_bits().to_le_bytes());
            }
        }
        Frame::Finish => {}
        Frame::Verdict(v) => {
            out.extend_from_slice(&v.node.to_le_bytes());
            out.extend_from_slice(&v.step.to_le_bytes());
            out.extend_from_slice(&v.score_bits.to_le_bytes());
            out.push(v.anomalous as u8);
            out.extend_from_slice(&v.cluster.to_le_bytes());
            out.push(v.degraded as u8);
        }
        Frame::Report(r) => {
            out.extend_from_slice(&r.n_verdicts.to_le_bytes());
            out.extend_from_slice(&r.n_degraded.to_le_bytes());
            out.extend_from_slice(&r.n_ticks.to_le_bytes());
            out.extend_from_slice(&r.n_shards.to_le_bytes());
        }
        Frame::Error { code, msg } => {
            out.push(*code);
            out.extend_from_slice(&(msg.len() as u32).to_le_bytes());
            out.extend_from_slice(msg.as_bytes());
        }
        Frame::Ping { token } | Frame::Pong { token } => {
            out.extend_from_slice(&token.to_le_bytes());
        }
    }
}

/// Encode one frame into its complete wire envelope.
pub fn encode_frame(f: &Frame) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    out.extend_from_slice(&WIRE_MAGIC);
    out.extend_from_slice(&WIRE_VERSION.to_le_bytes());
    out.push(f.kind());
    let len_at = out.len();
    out.extend_from_slice(&0u32.to_le_bytes());
    encode_payload(f, &mut out);
    let payload_len = (out.len() - HEADER_LEN) as u32;
    debug_assert!(payload_len <= MAX_PAYLOAD_LEN, "frame exceeds payload cap");
    out[len_at..len_at + 4].copy_from_slice(&payload_len.to_le_bytes());
    let sum = fnv1a64(&out);
    out.extend_from_slice(&sum.to_le_bytes());
    out
}

// ---------------------------------------------------------------------
// Decoding
// ---------------------------------------------------------------------

fn take<'a>(b: &'a [u8], pos: &mut usize, n: usize) -> Result<&'a [u8], WireError> {
    let end = pos
        .checked_add(n)
        .ok_or(WireError::Decode("payload cursor overflow".into()))?;
    if end > b.len() {
        return Err(WireError::Decode(format!(
            "payload ends at {} of {} needed",
            b.len(),
            end
        )));
    }
    let s = &b[*pos..end];
    *pos = end;
    Ok(s)
}

fn take_u64(b: &[u8], pos: &mut usize) -> Result<u64, WireError> {
    Ok(u64::from_le_bytes(
        take(b, pos, 8)?.try_into().expect("8 bytes"),
    ))
}

fn take_u32(b: &[u8], pos: &mut usize) -> Result<u32, WireError> {
    Ok(u32::from_le_bytes(
        take(b, pos, 4)?.try_into().expect("4 bytes"),
    ))
}

fn take_u8(b: &[u8], pos: &mut usize) -> Result<u8, WireError> {
    Ok(take(b, pos, 1)?[0])
}

fn take_bool(b: &[u8], pos: &mut usize) -> Result<bool, WireError> {
    match take_u8(b, pos)? {
        0 => Ok(false),
        1 => Ok(true),
        other => Err(WireError::Decode(format!("bad bool byte {other}"))),
    }
}

fn decode_payload(kind: u8, payload: &[u8]) -> Result<Frame, WireError> {
    let mut pos = 0usize;
    let frame = match kind {
        0 => {
            let role = Role::from_ordinal(take_u8(payload, &mut pos)?)?;
            let client_id = take_u64(payload, &mut pos)?;
            // Optional trailing precision byte: absent in version-1
            // nine-byte payloads, one ordinal when announced. Anything
            // past it still lands in the trailing-bytes check below.
            let precision = if pos < payload.len() {
                Some(ScoringPrecision::from_ordinal(take_u8(payload, &mut pos)?)?)
            } else {
                None
            };
            Frame::Hello {
                role,
                client_id,
                precision,
            }
        }
        1 => {
            let node = take_u64(payload, &mut pos)? as usize;
            let step = take_u64(payload, &mut pos)? as usize;
            let transition = take_bool(payload, &mut pos)?;
            let n = take_u32(payload, &mut pos)? as usize;
            // Bounds-check the count against the bytes actually present
            // so a hostile count cannot force a giant allocation.
            if n > (payload.len() - pos) / 8 {
                return Err(WireError::Decode(format!(
                    "tick declares {n} values but only {} payload bytes remain",
                    payload.len() - pos
                )));
            }
            let mut values = Vec::with_capacity(n);
            for _ in 0..n {
                values.push(f64::from_bits(take_u64(payload, &mut pos)?));
            }
            Frame::Tick(Tick {
                node,
                step,
                values,
                transition,
            })
        }
        2 => Frame::Finish,
        3 => Frame::Verdict(VerdictMsg {
            node: take_u64(payload, &mut pos)?,
            step: take_u64(payload, &mut pos)?,
            score_bits: take_u64(payload, &mut pos)?,
            anomalous: take_bool(payload, &mut pos)?,
            cluster: take_u64(payload, &mut pos)?,
            degraded: take_bool(payload, &mut pos)?,
        }),
        4 => Frame::Report(ReportMsg {
            n_verdicts: take_u64(payload, &mut pos)?,
            n_degraded: take_u64(payload, &mut pos)?,
            n_ticks: take_u64(payload, &mut pos)?,
            n_shards: take_u64(payload, &mut pos)?,
        }),
        5 => {
            let code = take_u8(payload, &mut pos)?;
            let len = take_u32(payload, &mut pos)? as usize;
            let raw = take(payload, &mut pos, len)?;
            let msg = String::from_utf8(raw.to_vec())
                .map_err(|_| WireError::Decode("error message is not UTF-8".into()))?;
            Frame::Error { code, msg }
        }
        6 => Frame::Ping {
            token: take_u64(payload, &mut pos)?,
        },
        7 => Frame::Pong {
            token: take_u64(payload, &mut pos)?,
        },
        other => return Err(WireError::UnknownKind(other)),
    };
    if pos != payload.len() {
        return Err(WireError::Decode(format!(
            "{} trailing payload bytes",
            payload.len() - pos
        )));
    }
    Ok(frame)
}

/// Decode the first frame in `buf`. Returns the frame and the number of
/// bytes it occupied. Total: every malformed prefix yields a typed
/// [`WireError`]; [`WireError::Truncated`] specifically means "the bytes
/// so far are a valid prefix — feed me more".
pub fn decode_frame(buf: &[u8]) -> Result<(Frame, usize), WireError> {
    if buf.len() < HEADER_LEN {
        return Err(WireError::Truncated {
            expected: HEADER_LEN,
            have: buf.len(),
        });
    }
    if buf[..4] != WIRE_MAGIC {
        return Err(WireError::BadMagic);
    }
    let version = u16::from_le_bytes([buf[4], buf[5]]);
    let kind = buf[6];
    let declared = u32::from_le_bytes(buf[7..11].try_into().expect("4 bytes"));
    // Length sanity before anything sized from it: a flipped high bit in
    // the length field must not make the reader wait for gigabytes.
    if declared > MAX_PAYLOAD_LEN {
        return Err(WireError::Oversized {
            declared: declared as u64,
            max: MAX_PAYLOAD_LEN as u64,
        });
    }
    let total = HEADER_LEN + declared as usize + TRAILER_LEN;
    if buf.len() < total {
        return Err(WireError::Truncated {
            expected: total,
            have: buf.len(),
        });
    }
    let body = &buf[..total - TRAILER_LEN];
    let stored = u64::from_le_bytes(buf[total - TRAILER_LEN..total].try_into().expect("8 bytes"));
    if fnv1a64(body) != stored {
        return Err(WireError::Corrupt);
    }
    // Version gate after the checksum, like the NSSN envelope: an intact
    // future-version frame reports `UnsupportedVersion`; a corrupted
    // version field reports `Corrupt`.
    if version != WIRE_VERSION {
        return Err(WireError::UnsupportedVersion {
            found: version,
            supported: WIRE_VERSION,
        });
    }
    let frame = decode_payload(kind, &body[HEADER_LEN..])?;
    Ok((frame, total))
}

/// FNV-1a 64 over a byte slice — same constants as the `NSSN` snapshot
/// envelope and the model fingerprint.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

// ---------------------------------------------------------------------
// Stream reassembly
// ---------------------------------------------------------------------

/// Reassembles whole frames from arbitrary byte-stream splits.
///
/// Feed it whatever each socket read returned; it yields every frame
/// that completed and buffers the rest. A hard protocol error (bad
/// magic, checksum, hostile length) is returned as `Err` and the
/// assembler should be discarded with its connection — a byte stream
/// that has lost framing cannot be resynchronized safely.
#[derive(Default)]
pub struct FrameAssembler {
    buf: Vec<u8>,
}

impl FrameAssembler {
    pub fn new() -> Self {
        FrameAssembler::default()
    }

    /// Bytes held that do not yet form a complete frame. Non-zero at
    /// connection close means the peer died mid-frame (a torn frame).
    pub fn pending_bytes(&self) -> usize {
        self.buf.len()
    }

    /// Append bytes and pop every now-complete frame, in order.
    pub fn push(&mut self, bytes: &[u8]) -> Result<Vec<Frame>, WireError> {
        self.buf.extend_from_slice(bytes);
        let mut out = Vec::new();
        let mut consumed = 0usize;
        loop {
            match decode_frame(&self.buf[consumed..]) {
                Ok((frame, n)) => {
                    out.push(frame);
                    consumed += n;
                }
                Err(WireError::Truncated { .. }) => break,
                Err(e) => {
                    self.buf.clear();
                    return Err(e);
                }
            }
        }
        self.buf.drain(..consumed);
        Ok(out)
    }
}

// ---------------------------------------------------------------------
// Blocking I/O helpers
// ---------------------------------------------------------------------

/// Write one frame to a blocking writer.
pub fn write_frame(w: &mut impl std::io::Write, f: &Frame) -> Result<(), WireError> {
    w.write_all(&encode_frame(f))?;
    Ok(())
}

/// Read exactly one frame from a blocking reader. `Ok(None)` on clean
/// EOF at a frame boundary; EOF mid-frame reports the torn frame as
/// [`WireError::Truncated`].
pub fn read_frame(r: &mut impl std::io::Read) -> Result<Option<Frame>, WireError> {
    let mut header = [0u8; HEADER_LEN];
    let mut have = 0usize;
    while have < HEADER_LEN {
        let n = r.read(&mut header[have..])?;
        if n == 0 {
            if have == 0 {
                return Ok(None);
            }
            return Err(WireError::Truncated {
                expected: HEADER_LEN,
                have,
            });
        }
        have += n;
    }
    // Validate the prefix before reading a payload sized from it.
    match decode_frame(&header) {
        Err(WireError::Truncated { expected, .. }) => {
            let mut rest = vec![0u8; expected - HEADER_LEN];
            r.read_exact(&mut rest).map_err(|e| {
                if e.kind() == std::io::ErrorKind::UnexpectedEof {
                    WireError::Truncated {
                        expected,
                        have: HEADER_LEN,
                    }
                } else {
                    WireError::from(e)
                }
            })?;
            let mut whole = header.to_vec();
            whole.extend_from_slice(&rest);
            decode_frame(&whole).map(|(f, _)| Some(f))
        }
        // An 11-byte frame cannot exist (the trailer alone is 8 more),
        // so a non-truncated result here is always a header-level error.
        Err(e) => Err(e),
        Ok(_) => unreachable!("a frame is at least HEADER_LEN + TRAILER_LEN bytes"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_frames() -> Vec<Frame> {
        vec![
            Frame::Hello {
                role: Role::Verdicts,
                client_id: 0xDEAD_BEEF,
                precision: None,
            },
            Frame::Hello {
                role: Role::Ingest,
                client_id: 7,
                precision: Some(ScoringPrecision::F32),
            },
            Frame::Tick(Tick {
                node: 7,
                step: 42,
                values: vec![1.5, f64::NAN, -0.0, f64::INFINITY],
                transition: true,
            }),
            Frame::Finish,
            Frame::Verdict(VerdictMsg {
                node: 7,
                step: 42,
                score_bits: (-0.0f64).to_bits(),
                anomalous: true,
                cluster: 3,
                degraded: false,
            }),
            Frame::Report(ReportMsg {
                n_verdicts: 100,
                n_degraded: 3,
                n_ticks: 480,
                n_shards: 4,
            }),
            Frame::Error {
                code: error_code::PROTOCOL,
                msg: "bad bytes".into(),
            },
            Frame::Ping { token: 99 },
            Frame::Pong { token: 99 },
        ]
    }

    /// Bit-aware frame equality (NaN != NaN under PartialEq).
    fn assert_frames_eq(a: &Frame, b: &Frame) {
        match (a, b) {
            (Frame::Tick(x), Frame::Tick(y)) => {
                assert_eq!(
                    (x.node, x.step, x.transition),
                    (y.node, y.step, y.transition)
                );
                assert_eq!(x.values.len(), y.values.len());
                for (u, v) in x.values.iter().zip(&y.values) {
                    assert_eq!(u.to_bits(), v.to_bits());
                }
            }
            _ => assert_eq!(a, b),
        }
    }

    #[test]
    fn every_frame_kind_roundtrips() {
        for f in all_frames() {
            let bytes = encode_frame(&f);
            let (back, n) = decode_frame(&bytes).expect("decode");
            assert_eq!(n, bytes.len(), "whole buffer consumed");
            assert_frames_eq(&f, &back);
            // Byte-stable: re-encoding the decoded frame is a fixed point.
            assert_eq!(encode_frame(&back), bytes);
        }
    }

    #[test]
    fn hello_without_precision_keeps_v1_payload_length() {
        // The optional precision byte must not disturb old peers: a
        // `None` Hello encodes the original 9-byte payload, `Some` adds
        // exactly one ordinal byte.
        let bare = encode_frame(&Frame::Hello {
            role: Role::Ingest,
            client_id: 42,
            precision: None,
        });
        assert_eq!(bare.len(), HEADER_LEN + 9 + TRAILER_LEN);
        let tiered = encode_frame(&Frame::Hello {
            role: Role::Ingest,
            client_id: 42,
            precision: Some(ScoringPrecision::F64),
        });
        assert_eq!(tiered.len(), bare.len() + 1);
        let (back, _) = decode_frame(&tiered).expect("decode");
        assert_eq!(
            back,
            Frame::Hello {
                role: Role::Ingest,
                client_id: 42,
                precision: Some(ScoringPrecision::F64),
            }
        );
    }

    #[test]
    fn bad_precision_ordinal_is_typed() {
        let mut bytes = encode_frame(&Frame::Hello {
            role: Role::Ingest,
            client_id: 1,
            precision: Some(ScoringPrecision::F32),
        });
        let n = bytes.len();
        bytes[n - TRAILER_LEN - 1] = 9; // hostile ordinal
        let body_len = n - TRAILER_LEN;
        let sum = fnv1a64(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&sum.to_le_bytes());
        assert!(matches!(decode_frame(&bytes), Err(WireError::Decode(_))));
    }

    #[test]
    fn precision_serde_value_roundtrip_and_null_default() {
        use serde::{Deserialize, Serialize, Value};
        for p in [ScoringPrecision::F64, ScoringPrecision::F32] {
            let v = p.to_value();
            assert_eq!(ScoringPrecision::from_value(&v).expect("roundtrip"), p);
        }
        // Pre-tier snapshots have no precision field; Null decodes F64.
        assert_eq!(
            ScoringPrecision::from_value(&Value::Null).expect("null"),
            ScoringPrecision::F64
        );
        assert!(ScoringPrecision::from_value(&Value::Str("f99".into())).is_err());
    }

    #[test]
    fn every_truncation_is_typed() {
        let bytes = encode_frame(&all_frames()[1]);
        for cut in 0..bytes.len() {
            match decode_frame(&bytes[..cut]) {
                Err(WireError::Truncated { .. }) => {}
                other => panic!("truncation at {cut} gave {other:?}"),
            }
        }
    }

    #[test]
    fn single_bit_flips_never_panic_and_always_err() {
        let bytes = encode_frame(&all_frames()[1]);
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut bad = bytes.clone();
                bad[byte] ^= 1 << bit;
                // A typed error is the contract; any Ok is a bug.
                if let Ok((frame, _)) = decode_frame(&bad) {
                    panic!("flip at byte {byte} bit {bit} decoded as {frame:?}");
                }
            }
        }
    }

    #[test]
    fn future_version_is_gated_after_checksum() {
        let mut bytes = encode_frame(&Frame::Finish);
        bytes[4..6].copy_from_slice(&7u16.to_le_bytes());
        // Reseal so the checksum is valid for the new version bytes.
        let body_len = bytes.len() - TRAILER_LEN;
        let sum = fnv1a64(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&sum.to_le_bytes());
        assert_eq!(
            decode_frame(&bytes),
            Err(WireError::UnsupportedVersion {
                found: 7,
                supported: WIRE_VERSION
            })
        );
    }

    #[test]
    fn oversized_length_rejected_before_reading() {
        let mut bytes = encode_frame(&Frame::Finish);
        bytes[7..11].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_frame(&bytes),
            Err(WireError::Oversized { .. })
        ));
    }

    #[test]
    fn hostile_tick_count_rejected_without_allocation() {
        // A tick frame claiming u32::MAX values with an empty body.
        let mut payload = Vec::new();
        payload.extend_from_slice(&1u64.to_le_bytes());
        payload.extend_from_slice(&2u64.to_le_bytes());
        payload.push(0);
        payload.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&WIRE_MAGIC);
        bytes.extend_from_slice(&WIRE_VERSION.to_le_bytes());
        bytes.push(1);
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&payload);
        let sum = fnv1a64(&bytes);
        bytes.extend_from_slice(&sum.to_le_bytes());
        assert!(matches!(decode_frame(&bytes), Err(WireError::Decode(_))));
    }

    #[test]
    fn assembler_handles_arbitrary_splits() {
        let frames = all_frames();
        let mut wire = Vec::new();
        for f in &frames {
            wire.extend_from_slice(&encode_frame(f));
        }
        // 1-byte drip feed: worst-case splitting.
        let mut asm = FrameAssembler::new();
        let mut got = Vec::new();
        for &b in &wire {
            got.extend(asm.push(&[b]).expect("clean stream"));
        }
        assert_eq!(asm.pending_bytes(), 0);
        assert_eq!(got.len(), frames.len());
        for (a, b) in frames.iter().zip(&got) {
            assert_frames_eq(a, b);
        }
    }

    #[test]
    fn assembler_reports_corruption_and_clears() {
        let mut bytes = encode_frame(&Frame::Finish);
        let n = bytes.len();
        bytes[n - 1] ^= 0x40; // trailer flip
        let mut asm = FrameAssembler::new();
        assert!(asm.push(&bytes).is_err());
        assert_eq!(asm.pending_bytes(), 0, "poisoned buffer dropped");
    }

    #[test]
    fn read_frame_distinguishes_clean_eof_from_torn() {
        let bytes = encode_frame(&Frame::Ping { token: 5 });
        let mut whole: &[u8] = &bytes;
        assert!(matches!(
            read_frame(&mut whole).expect("one frame"),
            Some(Frame::Ping { token: 5 })
        ));
        assert!(read_frame(&mut whole).expect("eof").is_none());
        let mut torn: &[u8] = &bytes[..bytes.len() - 3];
        assert!(matches!(
            read_frame(&mut torn),
            Err(WireError::Truncated { .. })
        ));
    }
}
