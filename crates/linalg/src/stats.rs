//! Scalar statistics over slices: moments, quantiles, robust estimators.
//!
//! These are the primitives behind both the feature-extraction catalog and
//! the preprocessing pipeline (trimmed standardization, Pearson pruning).

/// Arithmetic mean (0 for empty input).
pub fn mean(x: &[f64]) -> f64 {
    if x.is_empty() {
        0.0
    } else {
        x.iter().sum::<f64>() / x.len() as f64
    }
}

/// Population variance (divides by `n`); 0 for fewer than one element.
pub fn variance(x: &[f64]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    let m = mean(x);
    x.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / x.len() as f64
}

/// Sample variance (divides by `n-1`); 0 for fewer than two elements.
pub fn sample_variance(x: &[f64]) -> f64 {
    if x.len() < 2 {
        return 0.0;
    }
    let m = mean(x);
    x.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / (x.len() - 1) as f64
}

/// Population standard deviation.
pub fn std_dev(x: &[f64]) -> f64 {
    variance(x).sqrt()
}

/// Minimum (`+inf` for empty, so callers can fold safely).
pub fn min(x: &[f64]) -> f64 {
    x.iter().cloned().fold(f64::INFINITY, f64::min)
}

/// Maximum (`-inf` for empty).
pub fn max(x: &[f64]) -> f64 {
    x.iter().cloned().fold(f64::NEG_INFINITY, f64::max)
}

/// Linear-interpolated quantile `q ∈ [0, 1]` of the data (NaNs excluded by
/// the caller). Returns 0 for empty input.
pub fn quantile(x: &[f64], q: f64) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    let mut v: Vec<f64> = x.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    quantile_sorted(&v, q)
}

/// Quantile of pre-sorted data.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let q = q.clamp(0.0, 1.0);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let t = pos - lo as f64;
        sorted[lo] * (1.0 - t) + sorted[hi] * t
    }
}

/// Median.
pub fn median(x: &[f64]) -> f64 {
    quantile(x, 0.5)
}

/// Interquartile range (Q3 − Q1).
pub fn iqr(x: &[f64]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    let mut v: Vec<f64> = x.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    quantile_sorted(&v, 0.75) - quantile_sorted(&v, 0.25)
}

/// Fisher skewness (0 when std ≈ 0).
pub fn skewness(x: &[f64]) -> f64 {
    skewness_with(x, mean(x), std_dev(x))
}

/// [`skewness`] with the mean and population std precomputed. Guards and
/// accumulation order match the standalone function, so given `m` and `s`
/// from [`mean`]/[`std_dev`] the result is bit-identical.
pub fn skewness_with(x: &[f64], m: f64, s: f64) -> f64 {
    if s < 1e-15 || x.is_empty() {
        return 0.0;
    }
    x.iter().map(|v| ((v - m) / s).powi(3)).sum::<f64>() / x.len() as f64
}

/// Excess kurtosis (0 when std ≈ 0).
pub fn kurtosis(x: &[f64]) -> f64 {
    kurtosis_with(x, mean(x), std_dev(x))
}

/// [`kurtosis`] with the mean and population std precomputed
/// (bit-identical; see [`skewness_with`]).
pub fn kurtosis_with(x: &[f64], m: f64, s: f64) -> f64 {
    if s < 1e-15 || x.is_empty() {
        return 0.0;
    }
    x.iter().map(|v| ((v - m) / s).powi(4)).sum::<f64>() / x.len() as f64 - 3.0
}

/// Median absolute deviation from the median.
pub fn mad(x: &[f64]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    let med = median(x);
    let dev: Vec<f64> = x.iter().map(|v| (v - med).abs()).collect();
    median(&dev)
}

/// Root mean square.
pub fn rms(x: &[f64]) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    (x.iter().map(|v| v * v).sum::<f64>() / x.len() as f64).sqrt()
}

/// Pearson correlation coefficient between two equally-long series.
/// Returns 0 when either series is constant (the paper's r ≥ 0.99 pruning
/// then never merges a constant metric with a varying one; exact-constant
/// pairs are handled separately by the caller).
pub fn pearson(x: &[f64], y: &[f64]) -> f64 {
    assert_eq!(x.len(), y.len(), "pearson requires equal lengths");
    if x.len() < 2 {
        return 0.0;
    }
    let mx = mean(x);
    let my = mean(y);
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (a, b) in x.iter().zip(y) {
        let dx = a - mx;
        let dy = b - my;
        sxy += dx * dy;
        sxx += dx * dx;
        syy += dy * dy;
    }
    if sxx < 1e-24 || syy < 1e-24 {
        return 0.0;
    }
    sxy / (sxx.sqrt() * syy.sqrt())
}

/// Mean and population std computed after dropping the lowest and highest
/// `trim` fraction of values (the paper's §3.2 standardization excludes the
/// top and bottom 5% extreme outliers; `trim = 0.05`).
///
/// Falls back to untrimmed moments when trimming would leave < 2 points.
pub fn trimmed_mean_std(x: &[f64], trim: f64) -> (f64, f64) {
    if x.is_empty() {
        return (0.0, 0.0);
    }
    let mut v: Vec<f64> = x.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    trimmed_mean_std_sorted(&v, trim)
}

/// [`trimmed_mean_std`] over data already sorted ascending — exactly the
/// array the standalone function's clone-and-sort produces, so the result
/// is bit-identical while skipping that allocation.
pub fn trimmed_mean_std_sorted(sorted: &[f64], trim: f64) -> (f64, f64) {
    if sorted.is_empty() {
        return (0.0, 0.0);
    }
    let k = ((sorted.len() as f64) * trim).floor() as usize;
    let kept = if sorted.len() > 2 * k + 1 {
        &sorted[k..sorted.len() - k]
    } else {
        sorted
    };
    (mean(kept), std_dev(kept))
}

/// Mean Absolute Change (paper Eq. 6): `MAC = mean(|x[t+1] - x[t]|)`.
/// Returns 0 for series shorter than 2.
pub fn mean_abs_change(x: &[f64]) -> f64 {
    if x.len() < 2 {
        return 0.0;
    }
    x.windows(2).map(|w| (w[1] - w[0]).abs()).sum::<f64>() / (x.len() - 1) as f64
}

/// Autocorrelation at the given lag (biased estimator; 0 for degenerate input).
pub fn autocorrelation(x: &[f64], lag: usize) -> f64 {
    if x.len() <= lag || x.len() < 2 {
        return 0.0;
    }
    let m = mean(x);
    let var: f64 = x.iter().map(|v| (v - m) * (v - m)).sum();
    autocorrelation_with(x, lag, m, var)
}

/// [`autocorrelation`] with the mean and the raw centered square sum
/// `Σ(x−m)²` precomputed (bit-identical given values from the same
/// expressions).
pub fn autocorrelation_with(x: &[f64], lag: usize, m: f64, centered_sq: f64) -> f64 {
    if x.len() <= lag || x.len() < 2 {
        return 0.0;
    }
    if centered_sq < 1e-24 {
        return 0.0;
    }
    let cov: f64 = (0..x.len() - lag)
        .map(|i| (x[i] - m) * (x[i + lag] - m))
        .sum();
    cov / centered_sq
}

/// Shannon entropy of a fixed-bin histogram of the data (natural log).
/// Degenerate (constant or empty) input yields 0.
pub fn histogram_entropy(x: &[f64], bins: usize) -> f64 {
    if x.len() < 2 || bins == 0 {
        return 0.0;
    }
    let lo = min(x);
    let hi = max(x);
    if !(hi - lo).is_finite() || hi - lo < 1e-24 {
        return 0.0;
    }
    let mut counts = vec![0usize; bins];
    for &v in x {
        let mut b = ((v - lo) / (hi - lo) * bins as f64) as usize;
        if b >= bins {
            b = bins - 1;
        }
        counts[b] += 1;
    }
    histogram_entropy_from_counts(&counts, x.len())
}

/// The entropy accumulation of [`histogram_entropy`] over precomputed bin
/// counts. Callers own the degenerate-range guards the standalone function
/// applies before counting.
pub fn histogram_entropy_from_counts(counts: &[usize], n: usize) -> f64 {
    let n = n as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.ln()
        })
        .sum()
}

/// Simple linear regression slope of `x` against index 0..n.
pub fn slope(x: &[f64]) -> f64 {
    slope_with(x, mean(x))
}

/// [`slope`] with the series mean precomputed (bit-identical).
pub fn slope_with(x: &[f64], xm: f64) -> f64 {
    let n = x.len();
    if n < 2 {
        return 0.0;
    }
    let tm = (n as f64 - 1.0) / 2.0;
    let mut num = 0.0;
    let mut den = 0.0;
    for (t, &v) in x.iter().enumerate() {
        let dt = t as f64 - tm;
        num += dt * (v - xm);
        den += dt * dt;
    }
    if den < 1e-24 {
        0.0
    } else {
        num / den
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn moments_of_known_data() {
        let x = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&x), 5.0);
        assert_eq!(variance(&x), 4.0);
        assert_eq!(std_dev(&x), 2.0);
        assert!((sample_variance(&x) - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn quantiles_and_median() {
        let x = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(median(&x), 2.5);
        assert_eq!(quantile(&x, 0.0), 1.0);
        assert_eq!(quantile(&x, 1.0), 4.0);
        assert_eq!(quantile(&x, 0.25), 1.75);
        assert_eq!(iqr(&x), 1.5);
    }

    #[test]
    fn skew_kurt_symmetric_is_zero() {
        let x = [-2.0, -1.0, 0.0, 1.0, 2.0];
        assert!(skewness(&x).abs() < 1e-12);
        // Excess kurtosis of this flat 5-point set is negative (platykurtic).
        assert!(kurtosis(&x) < 0.0);
        // Constant input degenerates to 0, not NaN.
        assert_eq!(skewness(&[3.0; 10]), 0.0);
        assert_eq!(kurtosis(&[3.0; 10]), 0.0);
    }

    #[test]
    fn pearson_perfect_and_constant() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&x, &y) - 1.0).abs() < 1e-12);
        let z = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&x, &z) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&x, &[5.0; 4]), 0.0);
    }

    #[test]
    fn trimmed_moments_resist_outliers() {
        let mut x = vec![10.0; 100];
        x[0] = -1e9;
        x[99] = 1e9;
        let (m, s) = trimmed_mean_std(&x, 0.05);
        assert!((m - 10.0).abs() < 1e-9);
        assert!(s.abs() < 1e-9);
        // Untrimmed would explode.
        assert!(std_dev(&x) > 1e7);
    }

    #[test]
    fn mac_of_alternating_series() {
        let x = [0.0, 1.0, 0.0, 1.0, 0.0];
        assert_eq!(mean_abs_change(&x), 1.0);
        assert_eq!(mean_abs_change(&[5.0]), 0.0);
    }

    #[test]
    fn autocorr_of_periodic_signal() {
        let x: Vec<f64> = (0..64)
            .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
            .collect();
        assert!(autocorrelation(&x, 2) > 0.9);
        assert!(autocorrelation(&x, 1) < -0.9);
        assert_eq!(autocorrelation(&[1.0, 1.0], 1), 0.0); // constant
    }

    #[test]
    fn entropy_bounds() {
        let uniform: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let e = histogram_entropy(&uniform, 10);
        assert!((e - (10.0f64).ln()).abs() < 0.05);
        assert_eq!(histogram_entropy(&[1.0; 50], 10), 0.0);
    }

    #[test]
    fn slope_of_line() {
        let x: Vec<f64> = (0..10).map(|i| 3.0 * i as f64 + 1.0).collect();
        assert!((slope(&x) - 3.0).abs() < 1e-12);
        assert_eq!(slope(&[7.0]), 0.0);
    }

    #[test]
    fn mad_is_robust() {
        let x = [1.0, 1.0, 2.0, 2.0, 4.0, 6.0, 9.0];
        assert_eq!(mad(&x), 1.0);
    }

    #[test]
    fn with_variants_are_bit_identical() {
        // The `_with` forms exist so feature extraction can share scalar
        // aggregates across kinds; their contract is exact equality.
        let series: Vec<Vec<f64>> = vec![
            vec![],
            vec![3.25],
            vec![0.0, -0.0],
            vec![7.0; 9],
            (0..97)
                .map(|i| ((i as f64) * 0.61).sin() * 3.0 + 0.02 * i as f64)
                .collect(),
        ];
        for x in &series {
            let m = mean(x);
            let s = std_dev(x);
            let csq: f64 = x.iter().map(|v| (v - m) * (v - m)).sum();
            let b = |v: f64| v.to_bits();
            assert_eq!(b(skewness(x)), b(skewness_with(x, m, s)));
            assert_eq!(b(kurtosis(x)), b(kurtosis_with(x, m, s)));
            assert_eq!(b(slope(x)), b(slope_with(x, m)));
            for lag in [1usize, 2, 5] {
                assert_eq!(
                    b(autocorrelation(x, lag)),
                    b(autocorrelation_with(x, lag, m, csq))
                );
            }
            let mut sorted = x.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            let (tm, ts) = trimmed_mean_std(x, 0.05);
            let (um, us) = trimmed_mean_std_sorted(&sorted, 0.05);
            assert_eq!((b(tm), b(ts)), (b(um), b(us)));
        }
    }
}
