//! Small dense decompositions: Cholesky, LU with partial pivoting, solves,
//! inverse and log-determinant. Used by the Gaussian-mixture baseline
//! (Mahalanobis distances need `Σ⁻¹` and `log|Σ|`) and by PCA's fallback
//! paths.

use crate::matrix::Matrix;

/// Error type for decompositions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecompError {
    /// The matrix is not square.
    NotSquare,
    /// Cholesky hit a non-positive pivot (matrix not positive definite).
    NotPositiveDefinite,
    /// LU hit an (effectively) zero pivot: the matrix is singular.
    Singular,
    /// Dimension mismatch between the system matrix and the RHS.
    DimensionMismatch,
}

impl std::fmt::Display for DecompError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecompError::NotSquare => write!(f, "matrix is not square"),
            DecompError::NotPositiveDefinite => write!(f, "matrix is not positive definite"),
            DecompError::Singular => write!(f, "matrix is singular"),
            DecompError::DimensionMismatch => write!(f, "dimension mismatch"),
        }
    }
}

impl std::error::Error for DecompError {}

/// Lower-triangular Cholesky factor `L` with `A = L Lᵀ`.
pub fn cholesky(a: &Matrix) -> Result<Matrix, DecompError> {
    let n = a.rows();
    if a.cols() != n {
        return Err(DecompError::NotSquare);
    }
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut s = a[(i, j)];
            for k in 0..j {
                s -= l[(i, k)] * l[(j, k)];
            }
            if i == j {
                if s <= 0.0 {
                    return Err(DecompError::NotPositiveDefinite);
                }
                l[(i, j)] = s.sqrt();
            } else {
                l[(i, j)] = s / l[(j, j)];
            }
        }
    }
    Ok(l)
}

/// LU decomposition with partial pivoting. Returns `(lu, perm, sign)` where
/// `lu` packs `L` (unit diagonal, below) and `U` (on/above the diagonal) and
/// `perm[i]` is the source row of output row `i`.
pub fn lu(a: &Matrix) -> Result<(Matrix, Vec<usize>, f64), DecompError> {
    let n = a.rows();
    if a.cols() != n {
        return Err(DecompError::NotSquare);
    }
    let mut m = a.clone();
    let mut perm: Vec<usize> = (0..n).collect();
    let mut sign = 1.0;
    for k in 0..n {
        // Pivot: largest |value| in column k at/below row k.
        let mut p = k;
        let mut best = m[(k, k)].abs();
        for r in k + 1..n {
            let v = m[(r, k)].abs();
            if v > best {
                best = v;
                p = r;
            }
        }
        if best < 1e-14 {
            return Err(DecompError::Singular);
        }
        if p != k {
            perm.swap(p, k);
            sign = -sign;
            for c in 0..n {
                let tmp = m[(k, c)];
                m[(k, c)] = m[(p, c)];
                m[(p, c)] = tmp;
            }
        }
        let pivot = m[(k, k)];
        for r in k + 1..n {
            let f = m[(r, k)] / pivot;
            m[(r, k)] = f;
            for c in k + 1..n {
                let v = m[(k, c)];
                m[(r, c)] -= f * v;
            }
        }
    }
    Ok((m, perm, sign))
}

/// Solve `A x = b` for a square `A` and a (possibly multi-column) RHS.
pub fn solve(a: &Matrix, b: &Matrix) -> Result<Matrix, DecompError> {
    let n = a.rows();
    if b.rows() != n {
        return Err(DecompError::DimensionMismatch);
    }
    let (lum, perm, _) = lu(a)?;
    let ncols = b.cols();
    let mut x = Matrix::zeros(n, ncols);
    // Apply permutation to b.
    for i in 0..n {
        for c in 0..ncols {
            x[(i, c)] = b[(perm[i], c)];
        }
    }
    // Forward substitution (L has unit diagonal).
    for i in 0..n {
        for j in 0..i {
            let f = lum[(i, j)];
            for c in 0..ncols {
                let v = x[(j, c)];
                x[(i, c)] -= f * v;
            }
        }
    }
    // Back substitution.
    for i in (0..n).rev() {
        for j in i + 1..n {
            let f = lum[(i, j)];
            for c in 0..ncols {
                let v = x[(j, c)];
                x[(i, c)] -= f * v;
            }
        }
        let d = lum[(i, i)];
        for c in 0..ncols {
            x[(i, c)] /= d;
        }
    }
    Ok(x)
}

/// Matrix inverse via LU solve against the identity.
pub fn inverse(a: &Matrix) -> Result<Matrix, DecompError> {
    solve(a, &Matrix::identity(a.rows()))
}

/// `log |A|` for a positive-definite `A`, via Cholesky (stable for
/// covariance matrices). Falls back to LU for general square input.
pub fn log_det(a: &Matrix) -> Result<f64, DecompError> {
    match cholesky(a) {
        Ok(l) => {
            let mut s = 0.0;
            for i in 0..l.rows() {
                s += l[(i, i)].ln();
            }
            Ok(2.0 * s)
        }
        Err(_) => {
            let (lum, _, sign) = lu(a)?;
            let mut s = 0.0;
            let mut neg = sign < 0.0;
            for i in 0..lum.rows() {
                let d = lum[(i, i)];
                if d < 0.0 {
                    neg = !neg;
                }
                s += d.abs().ln();
            }
            if neg {
                Err(DecompError::NotPositiveDefinite)
            } else {
                Ok(s)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        // A = Bᵀ B + I is SPD for any B.
        let b = Matrix::from_rows(&[
            vec![1.0, 2.0, 0.5],
            vec![0.0, 1.0, -1.0],
            vec![2.0, 0.0, 1.0],
        ]);
        b.transpose().matmul(&b).add(&Matrix::identity(3))
    }

    #[test]
    fn cholesky_reconstructs() {
        let a = spd3();
        let l = cholesky(&a).unwrap();
        let rec = l.matmul(&l.transpose());
        for (x, y) in rec.as_slice().iter().zip(a.as_slice()) {
            assert!((x - y).abs() < 1e-10);
        }
        // Strictly lower-triangular structure.
        for i in 0..3 {
            for j in i + 1..3 {
                assert_eq!(l[(i, j)], 0.0);
            }
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        assert_eq!(cholesky(&a).unwrap_err(), DecompError::NotPositiveDefinite);
    }

    #[test]
    fn solve_roundtrip() {
        let a = Matrix::from_rows(&[
            vec![4.0, -2.0, 1.0],
            vec![-2.0, 4.0, -2.0],
            vec![1.0, -2.0, 4.0],
        ]);
        let xtrue = Matrix::col_vector(&[1.0, 2.0, 3.0]);
        let b = a.matmul(&xtrue);
        let x = solve(&a, &b).unwrap();
        for (u, v) in x.as_slice().iter().zip(xtrue.as_slice()) {
            assert!((u - v).abs() < 1e-10);
        }
    }

    #[test]
    fn solve_needs_pivoting() {
        // Zero leading pivot forces a row swap.
        let a = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let b = Matrix::col_vector(&[2.0, 3.0]);
        let x = solve(&a, &b).unwrap();
        assert!((x[(0, 0)] - 3.0).abs() < 1e-12);
        assert!((x[(1, 0)] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_times_self_is_identity() {
        let a = spd3();
        let inv = inverse(&a).unwrap();
        let prod = a.matmul(&inv);
        for i in 0..3 {
            for j in 0..3 {
                let want = if i == j { 1.0 } else { 0.0 };
                assert!((prod[(i, j)] - want).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn singular_is_detected() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert_eq!(lu(&a).unwrap_err(), DecompError::Singular);
    }

    #[test]
    fn log_det_of_diagonal() {
        let a = Matrix::from_rows(&[vec![2.0, 0.0], vec![0.0, 8.0]]);
        assert!((log_det(&a).unwrap() - (16.0f64).ln()).abs() < 1e-10);
    }
}
