//! `ns-linalg` — dense linear algebra substrate for the NodeSentry workspace.
//!
//! Everything downstream of this crate (feature extraction, clustering, the
//! neural-network stack) operates on the [`Matrix`] type defined here: a
//! row-major, heap-allocated, `f64` dense matrix with a deliberately small
//! but complete API surface:
//!
//! * construction (`zeros`, `from_rows`, `from_fn`, …) and element access,
//! * arithmetic (`add`, `sub`, `scale`, Hadamard products, broadcasting of
//!   row vectors),
//! * a blocked, rayon-parallel [`Matrix::matmul`],
//! * reductions and per-row/per-column statistics,
//! * decompositions used by the Gaussian-mixture baseline
//!   ([`decomp::cholesky`], [`decomp::solve`], [`decomp::inverse`]),
//! * condensed pairwise-distance storage ([`distance::CondensedDistance`])
//!   shared by the clustering crate, and an early-abandon nearest-row
//!   kernel ([`distance::nearest_row`]) for contiguous centroid matching.
//!
//! The crate is BLAS-free by design: this repository re-implements the whole
//! paper stack from scratch, and the matrix sizes involved (model dims of a
//! few dozen, feature matrices of a few thousand rows) are served well by a
//! cache-blocked triple loop parallelised over row bands.

pub mod decomp;
pub mod distance;
pub mod kernels;
pub mod matrix;
pub mod matrix_f32;
pub mod stats;
pub mod vecops;

pub use distance::CondensedDistance;
pub use matrix::Matrix;
pub use matrix_f32::MatrixF32;

/// Numerical tolerance used by tests and by rank/positivity checks inside
/// the decomposition routines.
pub const EPS: f64 = 1e-10;
