//! Row-major dense `f32` matrix — the precision-tiered scoring substrate.
//!
//! A deliberately small twin of [`crate::matrix::Matrix`] carrying only
//! the operations the f32 inference session needs: construction, in-place
//! reshaping, the blocked axpy matmul, the pre-transposed dot matmul, and
//! the elementwise helpers. It is **not** a generic refactor of `Matrix`
//! — the f64 type is the bit-pinned contract surface for the default
//! scoring tier and stays untouched; this type exists so the opt-in f32
//! tier halves memory traffic and doubles SIMD lane width without
//! forking the f64 codegen line.
//!
//! The same internal determinism argument applies as for f64: every
//! reduction accumulates in strict ascending order through the f32
//! kernels ([`crate::kernels::dot4_f32`], [`crate::kernels::axpy4_f32`]),
//! so results are bitwise independent of thread count and banding. What
//! is *not* promised is any bit relationship to the f64 tier — that
//! delta is measured, not pinned.

use rayon::prelude::*;
use std::ops::{Index, IndexMut};

use crate::matrix::Matrix;

/// Block edge for the cache-blocked matmul — same 64-tile as the f64
/// kernel; f32 tiles are half the bytes, which only helps.
const BLOCK: usize = 64;

/// Row-count threshold below which matmul stays single-threaded.
const PAR_MIN_ROWS: usize = 32;

/// Row-major dense matrix of `f32`.
///
/// Invariant: `data.len() == rows * cols`.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct MatrixF32 {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl MatrixF32 {
    /// Create a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Build from an element function `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Build from row slices; all rows must have equal length.
    pub fn from_rows(rows: &[Vec<f32>]) -> Self {
        if rows.is_empty() {
            return Self::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "all rows must have the same length");
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Down-convert an f64 matrix elementwise (`as f32`, round-to-nearest).
    /// This is the single conversion point of the precision-tiered path:
    /// weights cross it once per [`crate::matrix::Matrix`] at session
    /// build, never per forward.
    pub fn from_matrix(src: &Matrix) -> Self {
        Self {
            rows: src.rows(),
            cols: src.cols(),
            data: src.as_slice().iter().map(|&v| v as f32).collect(),
        }
    }

    /// Re-fill from an f64 matrix in place, reusing the allocation.
    pub fn copy_from_matrix(&mut self, src: &Matrix) {
        self.rows = src.rows();
        self.cols = src.cols();
        self.data.clear();
        self.data.extend(src.as_slice().iter().map(|&v| v as f32));
    }

    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat row-major view of the data.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat row-major view of the data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Reshape in place to `rows × cols`, resetting every element to zero;
    /// reuses the allocation whenever capacity suffices (same scratch
    /// discipline as [`Matrix::resize`]).
    pub fn resize(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// In-place elementwise map.
    pub fn map_inplace(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// In-place `self += other`.
    pub fn add_assign(&mut self, other: &MatrixF32) {
        assert_eq!(self.shape(), other.shape());
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place bias broadcast: `self[r] += row` for every row.
    pub fn add_row_broadcast_inplace(&mut self, row: &MatrixF32) {
        assert_eq!(row.rows, 1, "broadcast operand must be a row vector");
        assert_eq!(row.cols, self.cols, "broadcast width mismatch");
        for r in 0..self.rows {
            for (a, b) in self.row_mut(r).iter_mut().zip(&row.data) {
                *a += b;
            }
        }
    }

    /// `self × other` into a caller-provided matrix (reshaped + zeroed in
    /// place) — the f32 twin of [`Matrix::matmul_into`]: i-k-j blocked
    /// axpy, per-element k-sums in strict ascending order.
    pub fn matmul_into(&self, other: &MatrixF32, out: &mut MatrixF32) {
        assert_eq!(
            self.cols, other.rows,
            "matmul dimension mismatch: {}×{} by {}×{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, k, n) = (self.rows, self.cols, other.cols);
        out.resize(m, n);
        if m == 0 || k == 0 || n == 0 {
            return;
        }
        let a = &self.data;
        let b = &other.data;

        let kernel = |row_band: &mut [f32], r0: usize, rows_in_band: usize| {
            for kb in (0..k).step_by(BLOCK) {
                let kend = (kb + BLOCK).min(k);
                for i in 0..rows_in_band {
                    let arow = &a[(r0 + i) * k..(r0 + i) * k + k];
                    let crow = &mut row_band[i * n..(i + 1) * n];
                    let mut kk = kb;
                    while kk + 4 <= kend {
                        crate::kernels::axpy4_f32(
                            crow,
                            [arow[kk], arow[kk + 1], arow[kk + 2], arow[kk + 3]],
                            &b[kk * n..kk * n + n],
                            &b[(kk + 1) * n..(kk + 1) * n + n],
                            &b[(kk + 2) * n..(kk + 2) * n + n],
                            &b[(kk + 3) * n..(kk + 3) * n + n],
                        );
                        kk += 4;
                    }
                    for kk in kk..kend {
                        crate::kernels::axpy_f32(crow, arow[kk], &b[kk * n..kk * n + n]);
                    }
                }
            }
        };

        let threads = rayon::current_num_threads().max(1);
        if m >= PAR_MIN_ROWS && threads > 1 {
            let band = (m / threads).max(8);
            out.data
                .par_chunks_mut(band * n)
                .enumerate()
                .for_each(|(bi, chunk)| {
                    let r0 = bi * band;
                    let rows_in_band = chunk.len() / n;
                    kernel(chunk, r0, rows_in_band);
                });
        } else {
            kernel(&mut out.data, 0, m);
        }
    }

    /// `self × bt.transpose()` into a caller-provided matrix with the
    /// right operand already transposed — f32 twin of
    /// [`Matrix::matmul_pre_t_into`], 4-column dot interleave.
    pub fn matmul_pre_t_into(&self, bt: &MatrixF32, out: &mut MatrixF32) {
        assert_eq!(
            self.cols, bt.cols,
            "matmul_pre_t dimension mismatch: {}×{} by ({}×{})ᵀ",
            self.rows, self.cols, bt.rows, bt.cols
        );
        let (m, k, n) = (self.rows, self.cols, bt.rows);
        out.resize(m, n);
        if m == 0 || k == 0 || n == 0 {
            return;
        }
        let a = &self.data;
        let b = &bt.data;
        let kernel = |row_band: &mut [f32], r0: usize| {
            for (i, crow) in row_band.chunks_exact_mut(n).enumerate() {
                let arow = &a[(r0 + i) * k..(r0 + i) * k + k];
                let mut j = 0;
                while j + 4 <= n {
                    let (s0, s1, s2, s3) = crate::kernels::dot4_f32(
                        arow,
                        &b[j * k..j * k + k],
                        &b[(j + 1) * k..(j + 1) * k + k],
                        &b[(j + 2) * k..(j + 2) * k + k],
                        &b[(j + 3) * k..(j + 3) * k + k],
                    );
                    crow[j] = s0;
                    crow[j + 1] = s1;
                    crow[j + 2] = s2;
                    crow[j + 3] = s3;
                    j += 4;
                }
                for (jj, cv) in crow.iter_mut().enumerate().skip(j) {
                    *cv = crate::kernels::dot_from_f32(0.0, arow, &b[jj * k..jj * k + k]);
                }
            }
        };
        let threads = rayon::current_num_threads().max(1);
        if m >= PAR_MIN_ROWS && threads > 1 {
            let band = (m / threads).max(8);
            out.data
                .par_chunks_mut(band * n)
                .enumerate()
                .for_each(|(bi, chunk)| kernel(chunk, bi * band));
        } else {
            kernel(&mut out.data, 0);
        }
    }
}

impl Index<(usize, usize)> for MatrixF32 {
    type Output = f32;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        debug_assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for MatrixF32 {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        debug_assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_matmul(a: &MatrixF32, b: &MatrixF32) -> MatrixF32 {
        let mut c = MatrixF32::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut s = 0.0f32;
                for k in 0..a.cols() {
                    s += a[(i, k)] * b[(k, j)];
                }
                c[(i, j)] = s;
            }
        }
        c
    }

    fn cases() -> Vec<(MatrixF32, MatrixF32)> {
        let f = |r: usize, c: usize| (((r * 31 + c * 17) % 13) as f32 - 6.0) * 0.37;
        let g = |r: usize, c: usize| (((r * 7 + c * 3) % 11) as f32) * 0.5 - 2.0;
        vec![
            (MatrixF32::from_fn(7, 3, f), MatrixF32::from_fn(3, 9, g)),
            (MatrixF32::from_fn(1, 1, f), MatrixF32::from_fn(1, 1, g)),
            (MatrixF32::from_fn(97, 70, f), MatrixF32::from_fn(70, 83, g)),
        ]
    }

    #[test]
    fn matmul_into_bit_identical_to_naive() {
        // The blocked kernel keeps each output's k-sum in strict ascending
        // order, so it must match the rolled triple loop to the bit.
        let mut out = MatrixF32::zeros(0, 0);
        for (a, b) in cases() {
            a.matmul_into(&b, &mut out);
            let want = naive_matmul(&a, &b);
            assert_eq!(out.shape(), want.shape());
            for (x, y) in out.as_slice().iter().zip(want.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn matmul_pre_t_into_bit_identical_to_matmul() {
        let mut out = MatrixF32::zeros(0, 0);
        for (a, b) in cases() {
            let bt = MatrixF32::from_fn(b.cols(), b.rows(), |r, c| b[(c, r)]);
            a.matmul_pre_t_into(&bt, &mut out);
            let mut want = MatrixF32::zeros(0, 0);
            a.matmul_into(&b, &mut want);
            assert_eq!(out.shape(), want.shape());
            for (x, y) in out.as_slice().iter().zip(want.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn conversion_and_scratch_reuse() {
        let m = Matrix::from_fn(4, 3, |r, c| (r * 3 + c) as f64 * 0.1);
        let mut f = MatrixF32::from_matrix(&m);
        assert_eq!(f.shape(), (4, 3));
        assert_eq!(f[(2, 1)], (7.0f64 * 0.1) as f32);
        let ptr = f.as_slice().as_ptr();
        f.resize(2, 3);
        assert!(f.as_slice().iter().all(|&x| x == 0.0));
        assert_eq!(f.as_slice().as_ptr(), ptr, "shrinking must not reallocate");
        f.copy_from_matrix(&m);
        assert_eq!(f.shape(), (4, 3));
    }

    #[test]
    fn broadcast_and_add_assign() {
        let mut a = MatrixF32::from_fn(3, 2, |_, _| 1.0);
        let row = MatrixF32::from_rows(&[vec![10.0, 20.0]]);
        a.add_row_broadcast_inplace(&row);
        assert_eq!(a[(0, 0)], 11.0);
        assert_eq!(a[(2, 1)], 21.0);
        let b = a.clone();
        a.add_assign(&b);
        assert_eq!(a[(1, 0)], 22.0);
    }
}
