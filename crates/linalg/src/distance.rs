//! Condensed pairwise-distance storage.
//!
//! HAC over `n` items needs all `n(n-1)/2` pairwise distances. Storing the
//! full square matrix doubles memory for no benefit, so this mirrors SciPy's
//! condensed form: a flat upper-triangle buffer with O(1) `(i, j)` indexing.
//! Distances are stored as `f32` — clustering decisions never need more than
//! single precision, and at a few thousand segments this halves a buffer
//! that is the dominant allocation of the coarse-clustering stage.

use crate::matrix::Matrix;
use crate::matrix_f32::MatrixF32;
use rayon::prelude::*;

/// Index and Euclidean distance of the row of `rows` nearest to `query`,
/// with monotone early-abandon pruning.
///
/// Bit-identical to the reference scan
///
/// ```text
/// let mut best = (0, f64::INFINITY);
/// for (c, row) in rows { let d = vecops::euclidean(query, row);
///     if d < best.1 { best = (c, d); } }
/// ```
///
/// Why pruning cannot change the answer:
/// - The comparison runs in *squared* space. `sqrt` is strictly monotone
///   and injective on `[0, ∞]`, so `d_i < d_j ⟺ d_i² < d_j²` — the strict
///   `<` argmin (ties keep the earlier index) is the same in either space.
/// - Partial sums of squares are nondecreasing, so once a candidate's
///   running sum reaches the current best it can never win a strict `<`
///   and may be abandoned without being selected — exactly the outcome
///   the full scan would reach.
/// - A NaN sum compares false both against the prune bound and against
///   the best, so NaN rows are skipped just as `d < best` skips them.
/// - The winning row is always accumulated to completion in ascending
///   element order — the exact order of [`crate::vecops::euclidean_sq`] —
///   so `best_sq.sqrt()` reproduces `vecops::euclidean` to the bit.
///
/// An empty matrix returns `(0, f64::INFINITY)`.
pub fn nearest_row(rows: &Matrix, query: &[f64]) -> (usize, f64) {
    let mut best_idx = 0usize;
    let mut best_sq = f64::INFINITY;
    if rows.rows() > 0 {
        assert_eq!(
            query.len(),
            rows.cols(),
            "query length must match row width"
        );
    }
    for c in 0..rows.rows() {
        // The bounded kernel checks the running sum against the current
        // best once per 8 elements and abandons once it can no longer
        // win; a surviving row's sum is bit-identical to the full scan
        // (see `kernels::squared_distance_bounded`).
        let s = crate::kernels::squared_distance_bounded(query, rows.row(c), best_sq);
        if s < best_sq {
            best_idx = c;
            best_sq = s;
        }
    }
    (best_idx, best_sq.sqrt())
}

/// f32 twin of [`nearest_row`] for the precision-tiered probe matcher:
/// same strict-`<` argmin in squared space, with early-abandon pruning
/// through [`crate::kernels::squared_distance_bounded_f32`] (8-lane
/// accumulation, bound checked every 32 elements), same NaN-skip and
/// empty-matrix behavior. Row sums carry the f32 kernels' fixed lane
/// association — the argmin argument in [`nearest_row`]'s doc only
/// needs sums to be nondecreasing in elements and consistent between
/// the pruned and full scans, which the bounded kernel's
/// survival-equality contract provides. The returned distance is
/// widened to `f64` so callers compare it against the same f64 match
/// radius the default tier uses; the comparison itself ran in f32.
pub fn nearest_row_f32(rows: &MatrixF32, query: &[f32]) -> (usize, f64) {
    let mut best_idx = 0usize;
    let mut best_sq = f32::INFINITY;
    if rows.rows() > 0 {
        assert_eq!(
            query.len(),
            rows.cols(),
            "query length must match row width"
        );
    }
    for c in 0..rows.rows() {
        let s = crate::kernels::squared_distance_bounded_f32(query, rows.row(c), best_sq);
        if s < best_sq {
            best_idx = c;
            best_sq = s;
        }
    }
    (best_idx, (best_sq as f64).sqrt())
}

/// Condensed upper-triangular pairwise distance matrix over `n` items.
#[derive(Clone, Debug)]
pub struct CondensedDistance {
    n: usize,
    data: Vec<f32>,
}

impl CondensedDistance {
    /// Build from a per-pair distance function, computed in parallel row
    /// bands. `dist(i, j)` is only ever called with `i < j`.
    pub fn compute<F>(n: usize, dist: F) -> Self
    where
        F: Fn(usize, usize) -> f64 + Sync,
    {
        if n < 2 {
            return Self {
                n,
                data: Vec::new(),
            };
        }
        let mut data = vec![0.0f32; n * (n - 1) / 2];
        // Parallelise over i: row i owns the contiguous range of pairs
        // (i, i+1..n) in condensed order.
        let offsets: Vec<usize> = (0..n).map(|i| Self::row_offset(n, i)).collect();
        let mut bands: Vec<(usize, &mut [f32])> = Vec::with_capacity(n);
        {
            let mut rest: &mut [f32] = &mut data;
            for i in 0..n {
                let len = n - i - 1;
                let (band, tail) = rest.split_at_mut(len);
                bands.push((i, band));
                rest = tail;
            }
            debug_assert!(rest.is_empty());
        }
        let _ = &offsets; // offsets are implied by the split order
        bands.into_par_iter().for_each(|(i, band)| {
            for (k, slot) in band.iter_mut().enumerate() {
                let j = i + 1 + k;
                *slot = dist(i, j) as f32;
            }
        });
        Self { n, data }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.n
    }

    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    #[inline]
    fn row_offset(n: usize, i: usize) -> usize {
        // Start of row i's pairs in condensed order:
        // sum_{r<i} (n-r-1) = i*n - i(i-1)/2 - i; written as (i*i - i)/2
        // to avoid usize underflow at i = 0.
        i * n - (i * i - i) / 2 - i
    }

    #[inline]
    fn index(&self, i: usize, j: usize) -> usize {
        debug_assert!(i != j && i < self.n && j < self.n);
        let (a, b) = if i < j { (i, j) } else { (j, i) };
        Self::row_offset(self.n, a) + (b - a - 1)
    }

    /// Distance between items `i` and `j` (`i != j`).
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[self.index(i, j)] as f64
    }

    /// Overwrite the stored distance between `i` and `j`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        let idx = self.index(i, j);
        self.data[idx] = v as f32;
    }

    /// Flat condensed buffer (SciPy `pdist` order).
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_matches_manual_enumeration() {
        let n = 6;
        // dist(i,j) = 10*i + j encodes the pair uniquely.
        let d = CondensedDistance::compute(n, |i, j| (10 * i + j) as f64);
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let (a, b) = if i < j { (i, j) } else { (j, i) };
                assert_eq!(d.get(i, j), (10 * a + b) as f64, "pair ({i},{j})");
            }
        }
        assert_eq!(d.as_slice().len(), n * (n - 1) / 2);
    }

    #[test]
    fn symmetric_access_and_set() {
        let mut d = CondensedDistance::compute(4, |_, _| 1.0);
        d.set(2, 0, 7.0);
        assert_eq!(d.get(0, 2), 7.0);
        assert_eq!(d.get(2, 0), 7.0);
    }

    #[test]
    fn single_pair() {
        let d = CondensedDistance::compute(2, |_, _| 3.5);
        assert_eq!(d.get(0, 1), 3.5);
        assert_eq!(d.len(), 2);
    }

    /// The scan `nearest_row` must reproduce to the bit.
    fn reference_nearest(rows: &Matrix, query: &[f64]) -> (usize, f64) {
        let mut best = (0usize, f64::INFINITY);
        for c in 0..rows.rows() {
            let d = crate::vecops::euclidean(query, rows.row(c));
            if d < best.1 {
                best = (c, d);
            }
        }
        best
    }

    fn assert_matches_reference(rows: &Matrix, query: &[f64]) {
        let (ri, rd) = reference_nearest(rows, query);
        let (i, d) = nearest_row(rows, query);
        assert_eq!(i, ri, "argmin index");
        assert_eq!(d.to_bits(), rd.to_bits(), "distance bits");
    }

    #[test]
    fn nearest_row_matches_reference_scan() {
        // Widths spanning <8, exactly 8, and >8 exercise both the chunked
        // prune loop and the remainder path.
        for width in [1, 3, 8, 11, 19, 64] {
            let rows = Matrix::from_fn(13, width, |r, c| {
                ((r * 31 + c * 7) as f64 * 0.37).sin() * 3.0
            });
            for qseed in 0..8 {
                let query: Vec<f64> = (0..width)
                    .map(|c| ((qseed * 17 + c * 5) as f64 * 0.23).cos() * 3.0)
                    .collect();
                assert_matches_reference(&rows, &query);
            }
        }
    }

    #[test]
    fn nearest_row_ties_keep_first_index() {
        // Rows 1 and 3 are identical: the strict-< argmin keeps index 1.
        let rows = Matrix::from_rows(&[
            vec![9.0, 9.0],
            vec![1.0, 2.0],
            vec![5.0, 5.0],
            vec![1.0, 2.0],
        ]);
        let (i, d) = nearest_row(&rows, &[1.0, 2.0]);
        assert_eq!(i, 1);
        assert_eq!(d, 0.0);
        assert_matches_reference(&rows, &[1.0, 2.0]);
    }

    #[test]
    fn nearest_row_skips_nan_rows_like_the_scan() {
        let rows = Matrix::from_rows(&[
            vec![f64::NAN; 10],
            vec![2.0; 10],
            vec![f64::NAN; 10],
            vec![1.5; 10],
        ]);
        let q = vec![1.0; 10];
        assert_matches_reference(&rows, &q);
        assert_eq!(nearest_row(&rows, &q).0, 3);

        let all_nan = Matrix::from_rows(&[vec![f64::NAN; 4], vec![f64::NAN; 4]]);
        let (i, d) = nearest_row(&all_nan, &[0.0; 4]);
        assert_eq!((i, d.to_bits()), (0, f64::INFINITY.to_bits()));
    }

    #[test]
    fn nearest_row_empty_matrix_is_infinite() {
        let empty = Matrix::zeros(0, 0);
        let (i, d) = nearest_row(&empty, &[]);
        assert_eq!(i, 0);
        assert!(d.is_infinite());
    }

    /// The f32 scan must reproduce a strict-< argmin over *full* f32
    /// squared distances — the unpruned kernel scan in the f32 tier's
    /// pinned lane association — widened to f64 at the end.
    fn reference_nearest_f32(rows: &MatrixF32, query: &[f32]) -> (usize, f64) {
        let mut best = (0usize, f32::INFINITY);
        for c in 0..rows.rows() {
            let d = crate::kernels::squared_distance_f32(query, rows.row(c));
            if d < best.1 {
                best = (c, d);
            }
        }
        (best.0, (best.1 as f64).sqrt())
    }

    #[test]
    fn nearest_row_f32_matches_reference_scan() {
        for width in [1, 3, 8, 11, 19, 64] {
            let rows = MatrixF32::from_fn(13, width, |r, c| {
                (((r * 31 + c * 7) as f64 * 0.37).sin() * 3.0) as f32
            });
            for qseed in 0..8 {
                let query: Vec<f32> = (0..width)
                    .map(|c| (((qseed * 17 + c * 5) as f64 * 0.23).cos() * 3.0) as f32)
                    .collect();
                let (ri, rd) = reference_nearest_f32(&rows, &query);
                let (i, d) = nearest_row_f32(&rows, &query);
                assert_eq!(i, ri, "argmin index (width {width}, qseed {qseed})");
                assert_eq!(d.to_bits(), rd.to_bits(), "distance bits");
            }
        }
    }

    #[test]
    fn nearest_row_f32_skips_nan_and_handles_empty() {
        let rows = MatrixF32::from_rows(&[
            vec![f32::NAN; 10],
            vec![2.0; 10],
            vec![f32::NAN; 10],
            vec![1.5; 10],
        ]);
        let q = vec![1.0f32; 10];
        assert_eq!(nearest_row_f32(&rows, &q).0, 3);

        let empty = MatrixF32::zeros(0, 0);
        let (i, d) = nearest_row_f32(&empty, &[]);
        assert_eq!(i, 0);
        assert!(d.is_infinite());
    }

    #[test]
    fn nearest_row_prunes_distant_candidates_without_changing_result() {
        // One near row among many far ones: every far row after the near
        // one abandons early, and the result still matches the full scan.
        let mut raw = vec![vec![100.0; 32]; 40];
        raw[7] = vec![0.5; 32];
        let rows = Matrix::from_rows(&raw);
        let q = vec![0.0; 32];
        assert_matches_reference(&rows, &q);
        assert_eq!(nearest_row(&rows, &q).0, 7);
    }
}
