//! Condensed pairwise-distance storage.
//!
//! HAC over `n` items needs all `n(n-1)/2` pairwise distances. Storing the
//! full square matrix doubles memory for no benefit, so this mirrors SciPy's
//! condensed form: a flat upper-triangle buffer with O(1) `(i, j)` indexing.
//! Distances are stored as `f32` — clustering decisions never need more than
//! single precision, and at a few thousand segments this halves a buffer
//! that is the dominant allocation of the coarse-clustering stage.

use rayon::prelude::*;

/// Condensed upper-triangular pairwise distance matrix over `n` items.
#[derive(Clone, Debug)]
pub struct CondensedDistance {
    n: usize,
    data: Vec<f32>,
}

impl CondensedDistance {
    /// Build from a per-pair distance function, computed in parallel row
    /// bands. `dist(i, j)` is only ever called with `i < j`.
    pub fn compute<F>(n: usize, dist: F) -> Self
    where
        F: Fn(usize, usize) -> f64 + Sync,
    {
        if n < 2 {
            return Self {
                n,
                data: Vec::new(),
            };
        }
        let mut data = vec![0.0f32; n * (n - 1) / 2];
        // Parallelise over i: row i owns the contiguous range of pairs
        // (i, i+1..n) in condensed order.
        let offsets: Vec<usize> = (0..n).map(|i| Self::row_offset(n, i)).collect();
        let mut bands: Vec<(usize, &mut [f32])> = Vec::with_capacity(n);
        {
            let mut rest: &mut [f32] = &mut data;
            for i in 0..n {
                let len = n - i - 1;
                let (band, tail) = rest.split_at_mut(len);
                bands.push((i, band));
                rest = tail;
            }
            debug_assert!(rest.is_empty());
        }
        let _ = &offsets; // offsets are implied by the split order
        bands.into_par_iter().for_each(|(i, band)| {
            for (k, slot) in band.iter_mut().enumerate() {
                let j = i + 1 + k;
                *slot = dist(i, j) as f32;
            }
        });
        Self { n, data }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.n
    }

    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    #[inline]
    fn row_offset(n: usize, i: usize) -> usize {
        // Start of row i's pairs in condensed order:
        // sum_{r<i} (n-r-1) = i*n - i(i-1)/2 - i; written as (i*i - i)/2
        // to avoid usize underflow at i = 0.
        i * n - (i * i - i) / 2 - i
    }

    #[inline]
    fn index(&self, i: usize, j: usize) -> usize {
        debug_assert!(i != j && i < self.n && j < self.n);
        let (a, b) = if i < j { (i, j) } else { (j, i) };
        Self::row_offset(self.n, a) + (b - a - 1)
    }

    /// Distance between items `i` and `j` (`i != j`).
    #[inline]
    pub fn get(&self, i: usize, j: usize) -> f64 {
        self.data[self.index(i, j)] as f64
    }

    /// Overwrite the stored distance between `i` and `j`.
    #[inline]
    pub fn set(&mut self, i: usize, j: usize, v: f64) {
        let idx = self.index(i, j);
        self.data[idx] = v as f32;
    }

    /// Flat condensed buffer (SciPy `pdist` order).
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexing_matches_manual_enumeration() {
        let n = 6;
        // dist(i,j) = 10*i + j encodes the pair uniquely.
        let d = CondensedDistance::compute(n, |i, j| (10 * i + j) as f64);
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let (a, b) = if i < j { (i, j) } else { (j, i) };
                assert_eq!(d.get(i, j), (10 * a + b) as f64, "pair ({i},{j})");
            }
        }
        assert_eq!(d.as_slice().len(), n * (n - 1) / 2);
    }

    #[test]
    fn symmetric_access_and_set() {
        let mut d = CondensedDistance::compute(4, |_, _| 1.0);
        d.set(2, 0, 7.0);
        assert_eq!(d.get(0, 2), 7.0);
        assert_eq!(d.get(2, 0), 7.0);
    }

    #[test]
    fn single_pair() {
        let d = CondensedDistance::compute(2, |_, _| 3.5);
        assert_eq!(d.get(0, 1), 3.5);
        assert_eq!(d.len(), 2);
    }
}
