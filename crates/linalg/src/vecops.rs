//! Slice-level vector helpers shared across the workspace.

/// Dot product of two equally-long slices (the 4-blocked kernel; same
/// strict ascending accumulation order as the naive fold).
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    crate::kernels::dot(a, b)
}

/// Euclidean (L2) norm.
#[inline]
pub fn norm(a: &[f64]) -> f64 {
    dot(a, a).sqrt()
}

/// Euclidean distance between two equally-long slices.
#[inline]
pub fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    euclidean_sq(a, b).sqrt()
}

/// Squared Euclidean distance (the 4-blocked kernel; same strict
/// ascending accumulation order as the naive fold).
#[inline]
pub fn euclidean_sq(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    crate::kernels::squared_distance(a, b)
}

/// Manhattan (L1) distance.
#[inline]
pub fn manhattan(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum()
}

/// Chebyshev (L∞) distance.
#[inline]
pub fn chebyshev(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .fold(0.0_f64, |m, (x, y)| m.max((x - y).abs()))
}

/// Cosine distance `1 - cos(a, b)`; returns 1 when either vector is zero.
pub fn cosine(a: &[f64], b: &[f64]) -> f64 {
    let na = norm(a);
    let nb = norm(b);
    if na == 0.0 || nb == 0.0 {
        return 1.0;
    }
    1.0 - dot(a, b) / (na * nb)
}

/// `out[i] = a[i] + k * b[i]`, in place on `a` (the 4-blocked kernel;
/// elementwise, so blocking cannot change results).
#[inline]
pub fn axpy(a: &mut [f64], k: f64, b: &[f64]) {
    debug_assert_eq!(a.len(), b.len());
    crate::kernels::axpy(a, k, b)
}

/// Scale a slice in place.
#[inline]
pub fn scale(a: &mut [f64], k: f64) {
    for x in a.iter_mut() {
        *x *= k;
    }
}

/// Linear interpolation between `a` and `b` at fraction `t`.
#[inline]
pub fn lerp(a: f64, b: f64, t: f64) -> f64 {
    a + (b - a) * t
}

/// Numerically-stable softmax of a slice.
pub fn softmax(x: &[f64]) -> Vec<f64> {
    if x.is_empty() {
        return Vec::new();
    }
    let m = x.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = x.iter().map(|&v| (v - m).exp()).collect();
    let s: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / s).collect()
}

/// Indices of the `k` largest values, ordered descending by value.
/// Ties resolve to the lower index first (deterministic).
pub fn top_k_indices(x: &[f64], k: usize) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..x.len()).collect();
    idx.sort_by(|&a, &b| {
        x[b].partial_cmp(&x[a])
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.cmp(&b))
    });
    idx.truncate(k.min(x.len()));
    idx
}

/// Index of the maximum value (first occurrence); `None` for empty input.
pub fn argmax(x: &[f64]) -> Option<usize> {
    let mut best: Option<(usize, f64)> = None;
    for (i, &v) in x.iter().enumerate() {
        match best {
            Some((_, bv)) if v <= bv => {}
            _ => best = Some((i, v)),
        }
    }
    best.map(|(i, _)| i)
}

/// Index of the minimum value (first occurrence); `None` for empty input.
pub fn argmin(x: &[f64]) -> Option<usize> {
    argmax(&x.iter().map(|v| -v).collect::<Vec<_>>())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distances_agree_on_simple_triangle() {
        let a = [0.0, 0.0];
        let b = [3.0, 4.0];
        assert_eq!(euclidean(&a, &b), 5.0);
        assert_eq!(euclidean_sq(&a, &b), 25.0);
        assert_eq!(manhattan(&a, &b), 7.0);
        assert_eq!(chebyshev(&a, &b), 4.0);
    }

    #[test]
    fn cosine_edge_cases() {
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 0.0]), 1.0);
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0])).abs() < 1e-12);
        assert!((cosine(&[1.0, 0.0], &[-1.0, 0.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn softmax_sums_to_one_and_orders() {
        let p = softmax(&[1.0, 2.0, 3.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[2] > p[1] && p[1] > p[0]);
        // Stability with huge inputs.
        let q = softmax(&[1e6, 1e6 + 1.0]);
        assert!(q.iter().all(|v| v.is_finite()));
        assert!((q.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn top_k_and_argmax() {
        let x = [0.1, 5.0, 3.0, 5.0];
        assert_eq!(top_k_indices(&x, 2), vec![1, 3]);
        assert_eq!(argmax(&x), Some(1));
        assert_eq!(argmin(&x), Some(0));
        assert_eq!(argmax(&[]), None);
        assert_eq!(top_k_indices(&x, 10).len(), 4);
    }

    #[test]
    fn axpy_scale_lerp() {
        let mut a = vec![1.0, 2.0];
        axpy(&mut a, 2.0, &[1.0, 1.0]);
        assert_eq!(a, vec![3.0, 4.0]);
        scale(&mut a, 0.5);
        assert_eq!(a, vec![1.5, 2.0]);
        assert_eq!(lerp(0.0, 10.0, 0.25), 2.5);
    }
}
