//! Autovectorization-contract micro-kernels.
//!
//! Every hot inner loop in the workspace — the blocked matmul, the
//! pre-transposed dot matmul, the probe matcher's early-abandon distance
//! scan, and the slice helpers in [`crate::vecops`] — bottoms out in one
//! of the functions below. Centralising them buys two things:
//!
//! 1. **One place to hold the codegen line.** Each kernel is written in
//!    the shape LLVM reliably autovectorises for f64 (4-wide blocks via
//!    `chunks_exact`, no bounds checks in the loop body after the split)
//!    and is `#[inline]` so it fuses into callers instead of paying a
//!    call per band. `bench_kernels` (ns-bench) asserts the resulting
//!    throughput so a regression in either property fails CI.
//! 2. **One place to state the bit-exactness contract.** Reduction
//!    kernels (`dot`, `dot4`, `squared_distance*`) accumulate in strict
//!    ascending element order into a *single* chain per output — blocking
//!    only unrolls the loads and multiplies, never reassociates the adds
//!    — so each is bit-identical to its naive rolled form. Elementwise
//!    kernels (`axpy`, `axpy4`) have no reduction at all and vectorise
//!    freely. That is what lets the matmuls, the matcher, and the
//!    parallel combinators above them promise bitwise determinism.
//!
//! The 4-wide block is deliberate: it matches one AVX2 f64 vector (or
//! two NEON lanes), and for the serial-chain reductions it still lets
//! LLVM vectorise the subtraction/multiplication half of the loop while
//! the adds retire in order.

/// `y[j] += a * x[j]` — the axpy row update of the blocked matmul.
///
/// Elementwise, so no loop shape can change results: each `y[j]` sees
/// exactly one fused `+= a * x[j]`. The plain zip loop is the shape
/// LLVM vectorises best here — a manually 4-blocked variant measured
/// ~2× *slower* on the bench container (the indexed chunk stores defeat
/// the widest vector lowering), and `bench_kernels`' blocked-vs-naive
/// parity floor now holds by construction.
#[inline]
pub fn axpy(y: &mut [f64], a: f64, x: &[f64]) {
    debug_assert_eq!(y.len(), x.len());
    for (yv, xv) in y.iter_mut().zip(x) {
        *yv += a * xv;
    }
}

/// Fused four-row axpy: `y[j] += a0·x0[j] + a1·x1[j] + a2·x2[j] + a3·x3[j]`,
/// with the four adds into each `y[j]` applied in ascending row order.
///
/// This is the k-unrolled inner body of the dense matmul: each output
/// element is loaded and stored once per four multiply-adds, and because
/// the per-element add order is exactly `a0, a1, a2, a3` it is
/// bit-identical to four sequential [`axpy`] calls.
#[inline]
pub fn axpy4(y: &mut [f64], a: [f64; 4], x0: &[f64], x1: &[f64], x2: &[f64], x3: &[f64]) {
    debug_assert!(y.len() <= x0.len() && y.len() <= x1.len());
    debug_assert!(y.len() <= x2.len() && y.len() <= x3.len());
    for ((((yv, &v0), &v1), &v2), &v3) in y.iter_mut().zip(x0).zip(x1).zip(x2).zip(x3) {
        let mut t = *yv;
        t += a[0] * v0;
        t += a[1] * v1;
        t += a[2] * v2;
        t += a[3] * v3;
        *yv = t;
    }
}

/// Strict ascending-order dot product — bit-identical to
/// `a.iter().zip(b).map(|(x, y)| x * y).sum::<f64>()`.
///
/// The adds form a single serial chain (the bit-exactness contract), so
/// the win here is unrolled loads/multiplies and no bounds checks, not
/// a reassociated reduction. Seeds the chain with `-0.0`, the same
/// additive identity `Sum<f64>` folds from — the seed is observable in
/// signed zeros (`-0.0 + -0.0` is `-0.0` but `0.0 + -0.0` is `0.0`).
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    dot_from(-0.0, a, b)
}

/// [`dot`] with an explicit accumulator seed.
///
/// Exists because the workspace has two dot conventions that must each
/// stay bit-stable: the slice helpers fold from `Sum`'s `-0.0`, while
/// the matmul kernels accumulate from `+0.0` (the value `Matrix::zeros`
/// initialises outputs to).
#[inline]
pub fn dot_from(seed: f64, a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len());
    let (a4, atail) = a[..n].split_at(n - n % 4);
    let (b4, btail) = b[..n].split_at(n - n % 4);
    let mut s = seed;
    for (ac, bc) in a4.chunks_exact(4).zip(b4.chunks_exact(4)) {
        s += ac[0] * bc[0];
        s += ac[1] * bc[1];
        s += ac[2] * bc[2];
        s += ac[3] * bc[3];
    }
    for (av, bv) in atail.iter().zip(btail) {
        s += av * bv;
    }
    s
}

/// Four interleaved dot products of one row against four columns:
/// `(dot(a, b0), dot(a, b1), dot(a, b2), dot(a, b3))`.
///
/// Each accumulator keeps its own strict ascending-k serial chain —
/// bit-identical to four `dot_from(0.0, …)` calls (matmul convention:
/// chains start from the `+0.0` that `Matrix::zeros` writes) — while
/// the four independent chains hide FP-add latency. This is the inner
/// body of [`crate::matrix::Matrix::matmul_pre_t_into`].
#[inline]
pub fn dot4(a: &[f64], b0: &[f64], b1: &[f64], b2: &[f64], b3: &[f64]) -> (f64, f64, f64, f64) {
    debug_assert!(a.len() <= b0.len() && a.len() <= b1.len());
    debug_assert!(a.len() <= b2.len() && a.len() <= b3.len());
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for (kk, &av) in a.iter().enumerate() {
        s0 += av * b0[kk];
        s1 += av * b1[kk];
        s2 += av * b2[kk];
        s3 += av * b3[kk];
    }
    (s0, s1, s2, s3)
}

/// Strict ascending-order squared Euclidean distance — bit-identical to
/// `a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>()`,
/// including `Sum`'s `-0.0` seed (squares are never `-0.0`, so the seed
/// is only observable on empty input).
#[inline]
pub fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len().min(b.len());
    let (a4, atail) = a[..n].split_at(n - n % 4);
    let (b4, btail) = b[..n].split_at(n - n % 4);
    let mut s = -0.0f64;
    for (ac, bc) in a4.chunks_exact(4).zip(b4.chunks_exact(4)) {
        let d0 = ac[0] - bc[0];
        let d1 = ac[1] - bc[1];
        let d2 = ac[2] - bc[2];
        let d3 = ac[3] - bc[3];
        s += d0 * d0;
        s += d1 * d1;
        s += d2 * d2;
        s += d3 * d3;
    }
    for (av, bv) in atail.iter().zip(btail) {
        let d = av - bv;
        s += d * d;
    }
    s
}

/// Early-abandon squared distance for the probe matcher: accumulates
/// `(a[i] - b[i])²` in strict ascending order, checking the running sum
/// against `bound` once per 8 elements. Returns the partial sum at the
/// point of abandonment (some value `≥ bound`) or the exact full
/// [`squared_distance`] when the row survives every check.
///
/// Why abandonment cannot change a strict-`<` argmin over these sums is
/// argued at the call site ([`crate::distance::nearest_row`]); the
/// contract this kernel owns is narrower: the accumulation order is
/// exactly the matcher's historical `+0.0`-seeded scan (squares are
/// never `-0.0`, so it matches [`squared_distance`] on every non-empty
/// row), a surviving row's sum is bit-identical to the full scan, and a
/// NaN sum (which compares false against any bound) always runs to
/// completion.
#[inline]
pub fn squared_distance_bounded(a: &[f64], b: &[f64], bound: f64) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut s = 0.0f64;
    let mut achunks = a.chunks_exact(8);
    let mut bchunks = b.chunks_exact(8);
    for (ac, bc) in (&mut achunks).zip(&mut bchunks) {
        for (av, bv) in ac.iter().zip(bc) {
            let d = av - bv;
            s += d * d;
        }
        if s >= bound {
            return s;
        }
    }
    for (av, bv) in achunks.remainder().iter().zip(bchunks.remainder()) {
        let d = av - bv;
        s += d * d;
    }
    s
}

// ---------------------------------------------------------------------------
// f32 twins — the precision-tiered scoring path.
//
// Two association contracts live here, chosen per call site:
//
// * The **matmul kernels** (`axpy_f32`, `axpy4_f32`, `dot_from_f32`,
//   `dot4_f32`) keep the f64 layer's strict ascending-k serial chains,
//   because `MatrixF32` pins `matmul_into` bit-identical to the rolled
//   triple loop and `matmul_pre_t_into` bit-identical to `matmul_into`
//   — the same elegance argument as f64, and elementwise/interleaved
//   chains vectorise fine without reassociation.
// * The **reduction kernels on the scoring hot path** (`dot_f32`,
//   `squared_distance_f32`, `squared_distance_bounded_f32`) use a
//   *fixed 8-lane association*: lane `j` accumulates elements `i` with
//   `i % 8 == j` over `chunks_exact(8)`, lanes reduce in one pinned
//   tree, the `< 8` tail folds serially after. A single serial chain is
//   FP-add-latency-bound — f32 runs it no faster than f64, which
//   forfeits exactly the bandwidth win the tier exists for — while
//   eight independent chains fill an AVX2 f32 vector and let f32
//   retire ~2× the elements per cycle (`bench_kernels` floors the
//   ratio at ≥1.5×). The lane structure is compiled in, never derived
//   from width or thread count, so the f32 pipeline stays bitwise
//   deterministic; it is simply a *different* pinned order than the
//   rolled form, which is fine because the f32 tier is new — there is
//   no historical f32 bit-stream to preserve, and nothing here is
//   bit-pinned against the f64 tier (that delta is measured in
//   `exp_deployment`, not asserted).
// ---------------------------------------------------------------------------

/// f32 twin of [`axpy`]: `y[j] += a * x[j]`. Elementwise — the zip loop
/// shape is bit-free and vectorises widest (see [`axpy`]).
#[inline]
pub fn axpy_f32(y: &mut [f32], a: f32, x: &[f32]) {
    debug_assert_eq!(y.len(), x.len());
    for (yv, xv) in y.iter_mut().zip(x) {
        *yv += a * xv;
    }
}

/// f32 twin of [`axpy4`]: fused four-row axpy with the per-element adds
/// applied in ascending row order — bit-identical to four sequential
/// [`axpy_f32`] calls.
#[inline]
pub fn axpy4_f32(y: &mut [f32], a: [f32; 4], x0: &[f32], x1: &[f32], x2: &[f32], x3: &[f32]) {
    debug_assert!(y.len() <= x0.len() && y.len() <= x1.len());
    debug_assert!(y.len() <= x2.len() && y.len() <= x3.len());
    for ((((yv, &v0), &v1), &v2), &v3) in y.iter_mut().zip(x0).zip(x1).zip(x2).zip(x3) {
        let mut t = *yv;
        t += a[0] * v0;
        t += a[1] * v1;
        t += a[2] * v2;
        t += a[3] * v3;
        *yv = t;
    }
}

/// f32 dot product in the fixed 8-lane association (see the module
/// section comment): lane `j` owns elements `i % 8 == j`, lanes seed
/// `-0.0` (so an all-`-0.0` product stream still folds to `-0.0`, like
/// `Sum`), reduce in the pinned tree
/// `((l0+l1)+(l2+l3)) + ((l4+l5)+(l6+l7))`, and the `< 8` tail folds
/// serially after. Deterministic, but deliberately *not* the rolled
/// `Iterator::sum` order — eight independent chains are what let f32
/// beat the latency-bound f64 serial chain.
#[inline]
pub fn dot_f32(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len().min(b.len());
    let (a8, atail) = a[..n].split_at(n - n % 8);
    let (b8, btail) = b[..n].split_at(n - n % 8);
    let mut l = [-0.0f32; 8];
    for (ac, bc) in a8.chunks_exact(8).zip(b8.chunks_exact(8)) {
        for j in 0..8 {
            l[j] += ac[j] * bc[j];
        }
    }
    let mut s = ((l[0] + l[1]) + (l[2] + l[3])) + ((l[4] + l[5]) + (l[6] + l[7]));
    for (av, bv) in atail.iter().zip(btail) {
        s += av * bv;
    }
    s
}

/// f32 twin of [`dot_from`]: strict ascending-order serial-chain dot
/// with an explicit accumulator seed. This is the **matmul-convention**
/// kernel (`+0.0` chains), kept serial so
/// [`crate::matrix_f32::MatrixF32::matmul_pre_t_into`] stays
/// bit-identical to the blocked axpy matmul; the lane-split fast dot is
/// [`dot_f32`].
#[inline]
pub fn dot_from_f32(seed: f32, a: &[f32], b: &[f32]) -> f32 {
    let n = a.len().min(b.len());
    let (a4, atail) = a[..n].split_at(n - n % 4);
    let (b4, btail) = b[..n].split_at(n - n % 4);
    let mut s = seed;
    for (ac, bc) in a4.chunks_exact(4).zip(b4.chunks_exact(4)) {
        s += ac[0] * bc[0];
        s += ac[1] * bc[1];
        s += ac[2] * bc[2];
        s += ac[3] * bc[3];
    }
    for (av, bv) in atail.iter().zip(btail) {
        s += av * bv;
    }
    s
}

/// f32 twin of [`dot4`]: four interleaved dots of one row against four
/// columns, each chain seeded `+0.0` (matmul convention) — bit-identical
/// to four `dot_from_f32(0.0, …)` calls.
#[inline]
pub fn dot4_f32(a: &[f32], b0: &[f32], b1: &[f32], b2: &[f32], b3: &[f32]) -> (f32, f32, f32, f32) {
    debug_assert!(a.len() <= b0.len() && a.len() <= b1.len());
    debug_assert!(a.len() <= b2.len() && a.len() <= b3.len());
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
    for (kk, &av) in a.iter().enumerate() {
        s0 += av * b0[kk];
        s1 += av * b1[kk];
        s2 += av * b2[kk];
        s3 += av * b3[kk];
    }
    (s0, s1, s2, s3)
}

/// f32 squared Euclidean distance in the fixed 8-lane association
/// (see the module section comment): lanes seed `-0.0` (observable
/// only on empty input — squares are never `-0.0`), pinned tree
/// reduction, serial `< 8` tail. Deterministic, not the rolled order.
#[inline]
pub fn squared_distance_f32(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len().min(b.len());
    let (a8, atail) = a[..n].split_at(n - n % 8);
    let (b8, btail) = b[..n].split_at(n - n % 8);
    let mut l = [-0.0f32; 8];
    for (ac, bc) in a8.chunks_exact(8).zip(b8.chunks_exact(8)) {
        for j in 0..8 {
            let d = ac[j] - bc[j];
            l[j] += d * d;
        }
    }
    let mut s = ((l[0] + l[1]) + (l[2] + l[3])) + ((l[4] + l[5]) + (l[6] + l[7]));
    for (av, bv) in atail.iter().zip(btail) {
        let d = av - bv;
        s += d * d;
    }
    s
}

/// Early-abandon twin of [`squared_distance_f32`]: the same 8-lane
/// accumulation (lanes seed `+0.0`, the matcher's historical
/// convention — indistinguishable from `-0.0` seeds on any non-empty
/// row, since squares are `≥ +0.0`), with the running tree-reduced sum
/// checked against `bound` once per **4 blocks (32 elements)**. The
/// horizontal lane reduction is the expensive step the serial f64 scan
/// never needed, so the check cadence is coarser than f64's 8; rows
/// shorter than 8 elements fold entirely in the serial tail, exactly
/// as before.
///
/// Contract, mirroring [`squared_distance_bounded`]: a surviving row's
/// sum is bit-identical to the full [`squared_distance_f32`] scan, an
/// abandoned row returns some partial sum `≥ bound`, and a NaN sum
/// (which compares false against any bound) always runs to completion.
#[inline]
pub fn squared_distance_bounded_f32(a: &[f32], b: &[f32], bound: f32) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let tree = |l: &[f32; 8]| ((l[0] + l[1]) + (l[2] + l[3])) + ((l[4] + l[5]) + (l[6] + l[7]));
    let mut l = [0.0f32; 8];
    let mut achunks = a.chunks_exact(8);
    let mut bchunks = b.chunks_exact(8);
    let mut blocks_since_check = 0usize;
    for (ac, bc) in (&mut achunks).zip(&mut bchunks) {
        for j in 0..8 {
            let d = ac[j] - bc[j];
            l[j] += d * d;
        }
        blocks_since_check += 1;
        if blocks_since_check == 4 {
            blocks_since_check = 0;
            let s = tree(&l);
            if s >= bound {
                return s;
            }
        }
    }
    let mut s = tree(&l);
    for (av, bv) in achunks.remainder().iter().zip(bchunks.remainder()) {
        let d = av - bv;
        s += d * d;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(seed: usize, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| ((i * 37 + seed * 11) as f64 * 0.173).sin() * 3.0)
            .collect()
    }

    /// Widths spanning remainder sizes 0..=3 around the 4-block and the
    /// matcher's 8-block.
    const WIDTHS: [usize; 9] = [0, 1, 3, 4, 7, 8, 11, 16, 129];

    #[test]
    fn dot_bit_identical_to_rolled() {
        for n in WIDTHS {
            let a = series(1, n);
            let b = series(2, n);
            let naive: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            assert_eq!(dot(&a, &b).to_bits(), naive.to_bits(), "n={n}");
        }
    }

    #[test]
    fn dot4_bit_identical_to_four_dots() {
        for n in WIDTHS {
            let a = series(0, n);
            let cols: Vec<Vec<f64>> = (1..=4).map(|s| series(s, n)).collect();
            let (s0, s1, s2, s3) = dot4(&a, &cols[0], &cols[1], &cols[2], &cols[3]);
            for (got, col) in [s0, s1, s2, s3].iter().zip(&cols) {
                assert_eq!(got.to_bits(), dot_from(0.0, &a, col).to_bits(), "n={n}");
            }
        }
    }

    #[test]
    fn dot_seed_matches_sum_on_signed_zeros() {
        // Every product is -0.0: `Sum` folds -0.0 + -0.0 + … = -0.0,
        // while a +0.0 seed would flip the result to +0.0.
        let a = vec![0.0; 5];
        let b = vec![-1.0; 5];
        let naive: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert_eq!(naive.to_bits(), (-0.0f64).to_bits());
        assert_eq!(dot(&a, &b).to_bits(), naive.to_bits());
        assert_eq!(dot_from(0.0, &a, &b).to_bits(), 0.0f64.to_bits());
    }

    #[test]
    fn axpy_bit_identical_to_rolled() {
        for n in WIDTHS {
            let x = series(3, n);
            let mut y = series(4, n);
            let mut want = y.clone();
            for (w, xv) in want.iter_mut().zip(&x) {
                *w += 0.37 * xv;
            }
            axpy(&mut y, 0.37, &x);
            for (got, want) in y.iter().zip(&want) {
                assert_eq!(got.to_bits(), want.to_bits(), "n={n}");
            }
        }
    }

    #[test]
    fn axpy4_bit_identical_to_sequential_axpys() {
        for n in WIDTHS {
            let rows: Vec<Vec<f64>> = (0..4).map(|s| series(s + 5, n)).collect();
            let coeffs = [0.31, -1.7, 0.009, 2.5];
            let mut y = series(9, n);
            let mut want = y.clone();
            for (a, x) in coeffs.iter().zip(&rows) {
                axpy(&mut want, *a, x);
            }
            axpy4(&mut y, coeffs, &rows[0], &rows[1], &rows[2], &rows[3]);
            for (got, want) in y.iter().zip(&want) {
                assert_eq!(got.to_bits(), want.to_bits(), "n={n}");
            }
        }
    }

    #[test]
    fn squared_distance_bit_identical_to_rolled() {
        for n in WIDTHS {
            let a = series(6, n);
            let b = series(7, n);
            let naive: f64 = a
                .iter()
                .zip(&b)
                .map(|(x, y)| {
                    let d = x - y;
                    d * d
                })
                .sum();
            assert_eq!(squared_distance(&a, &b).to_bits(), naive.to_bits(), "n={n}");
        }
    }

    #[test]
    fn bounded_distance_exact_when_surviving() {
        for n in WIDTHS {
            if n == 0 {
                // The seeds are the one place the conventions split:
                // bounded keeps the matcher's historical +0.0, the full
                // kernel keeps `Sum`'s -0.0.
                let z = squared_distance_bounded(&[], &[], f64::INFINITY);
                assert_eq!(z.to_bits(), 0.0f64.to_bits());
                assert_eq!(squared_distance(&[], &[]).to_bits(), (-0.0f64).to_bits());
                continue;
            }
            let a = series(8, n);
            let b = series(9, n);
            let full = squared_distance(&a, &b);
            let got = squared_distance_bounded(&a, &b, f64::INFINITY);
            assert_eq!(got.to_bits(), full.to_bits(), "n={n}");
        }
    }

    #[test]
    fn bounded_distance_abandons_at_or_over_bound() {
        let a = vec![10.0; 64];
        let b = vec![0.0; 64];
        let s = squared_distance_bounded(&a, &b, 150.0);
        // Abandoned: the partial sum must already disqualify the row …
        assert!(s >= 150.0);
        // … after the first 8-block (8 × 100), not the full row.
        assert_eq!(s, 800.0);
    }

    #[test]
    fn bounded_distance_runs_nan_rows_to_completion() {
        let mut a = vec![0.0; 16];
        a[0] = f64::NAN;
        let b = vec![1.0; 16];
        let s = squared_distance_bounded(&a, &b, 0.5);
        assert!(s.is_nan());
    }

    fn series32(seed: usize, n: usize) -> Vec<f32> {
        series(seed, n).into_iter().map(|v| v as f32).collect()
    }

    /// Rolled reference for the fixed 8-lane association the f32
    /// reduction kernels pin: lane `j` folds elements `i % 8 == j`,
    /// lanes reduce in the `((0+1)+(2+3))+((4+5)+(6+7))` tree, the
    /// `< 8` tail folds serially. `seed` seeds every lane (`-0.0` for
    /// the `Sum`-flavoured kernels, `+0.0` for the matcher's bounded
    /// scan).
    fn lane8_reduce(seed: f32, n: usize, term: impl Fn(usize) -> f32) -> f32 {
        let full = n - n % 8;
        let mut l = [seed; 8];
        for i in 0..full {
            l[i % 8] += term(i);
        }
        let mut s = ((l[0] + l[1]) + (l[2] + l[3])) + ((l[4] + l[5]) + (l[6] + l[7]));
        for i in full..n {
            s += term(i);
        }
        s
    }

    #[test]
    fn f32_dot_bit_identical_to_lane8_reference() {
        for n in WIDTHS {
            let a = series32(1, n);
            let b = series32(2, n);
            let want = lane8_reduce(-0.0, n, |i| a[i] * b[i]);
            assert_eq!(dot_f32(&a, &b).to_bits(), want.to_bits(), "n={n}");
        }
    }

    #[test]
    fn f32_dot4_bit_identical_to_four_dots() {
        for n in WIDTHS {
            let a = series32(0, n);
            let cols: Vec<Vec<f32>> = (1..=4).map(|s| series32(s, n)).collect();
            let (s0, s1, s2, s3) = dot4_f32(&a, &cols[0], &cols[1], &cols[2], &cols[3]);
            for (got, col) in [s0, s1, s2, s3].iter().zip(&cols) {
                assert_eq!(got.to_bits(), dot_from_f32(0.0, &a, col).to_bits(), "n={n}");
            }
        }
    }

    #[test]
    fn f32_dot_seed_matches_sum_on_signed_zeros() {
        let a = vec![0.0f32; 5];
        let b = vec![-1.0f32; 5];
        let naive: f32 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert_eq!(naive.to_bits(), (-0.0f32).to_bits());
        assert_eq!(dot_f32(&a, &b).to_bits(), naive.to_bits());
        assert_eq!(dot_from_f32(0.0, &a, &b).to_bits(), 0.0f32.to_bits());
    }

    #[test]
    fn f32_axpy_bit_identical_to_rolled() {
        for n in WIDTHS {
            let x = series32(3, n);
            let mut y = series32(4, n);
            let mut want = y.clone();
            for (w, xv) in want.iter_mut().zip(&x) {
                *w += 0.37 * xv;
            }
            axpy_f32(&mut y, 0.37, &x);
            for (got, want) in y.iter().zip(&want) {
                assert_eq!(got.to_bits(), want.to_bits(), "n={n}");
            }
        }
    }

    #[test]
    fn f32_axpy4_bit_identical_to_sequential_axpys() {
        for n in WIDTHS {
            let rows: Vec<Vec<f32>> = (0..4).map(|s| series32(s + 5, n)).collect();
            let coeffs = [0.31f32, -1.7, 0.009, 2.5];
            let mut y = series32(9, n);
            let mut want = y.clone();
            for (a, x) in coeffs.iter().zip(&rows) {
                axpy_f32(&mut want, *a, x);
            }
            axpy4_f32(&mut y, coeffs, &rows[0], &rows[1], &rows[2], &rows[3]);
            for (got, want) in y.iter().zip(&want) {
                assert_eq!(got.to_bits(), want.to_bits(), "n={n}");
            }
        }
    }

    #[test]
    fn f32_squared_distance_bit_identical_to_lane8_reference() {
        for n in WIDTHS {
            let a = series32(6, n);
            let b = series32(7, n);
            let want = lane8_reduce(-0.0, n, |i| {
                let d = a[i] - b[i];
                d * d
            });
            assert_eq!(
                squared_distance_f32(&a, &b).to_bits(),
                want.to_bits(),
                "n={n}"
            );
        }
    }

    #[test]
    fn f32_bounded_distance_exact_when_surviving() {
        for n in WIDTHS {
            if n == 0 {
                let z = squared_distance_bounded_f32(&[], &[], f32::INFINITY);
                assert_eq!(z.to_bits(), 0.0f32.to_bits());
                assert_eq!(
                    squared_distance_f32(&[], &[]).to_bits(),
                    (-0.0f32).to_bits()
                );
                continue;
            }
            let a = series32(8, n);
            let b = series32(9, n);
            let full = squared_distance_f32(&a, &b);
            let got = squared_distance_bounded_f32(&a, &b, f32::INFINITY);
            assert_eq!(got.to_bits(), full.to_bits(), "n={n}");
        }
    }

    #[test]
    fn f32_bounded_distance_abandons_at_or_over_bound() {
        let a = vec![10.0f32; 64];
        let b = vec![0.0f32; 64];
        let s = squared_distance_bounded_f32(&a, &b, 150.0);
        // Abandoned: the partial sum must already disqualify the row …
        assert!(s >= 150.0);
        // … at the first check point (4 blocks = 32 × 100), not the
        // full row.
        assert_eq!(s, 3200.0);
    }

    #[test]
    fn f32_bounded_distance_runs_nan_rows_to_completion() {
        let mut a = vec![0.0f32; 16];
        a[0] = f32::NAN;
        let b = vec![1.0f32; 16];
        let s = squared_distance_bounded_f32(&a, &b, 0.5);
        assert!(s.is_nan());
    }
}
