//! Autovectorization-contract micro-kernels.
//!
//! Every hot inner loop in the workspace — the blocked matmul, the
//! pre-transposed dot matmul, the probe matcher's early-abandon distance
//! scan, and the slice helpers in [`crate::vecops`] — bottoms out in one
//! of the functions below. Centralising them buys two things:
//!
//! 1. **One place to hold the codegen line.** Each kernel is written in
//!    the shape LLVM reliably autovectorises for f64 (4-wide blocks via
//!    `chunks_exact`, no bounds checks in the loop body after the split)
//!    and is `#[inline]` so it fuses into callers instead of paying a
//!    call per band. `bench_kernels` (ns-bench) asserts the resulting
//!    throughput so a regression in either property fails CI.
//! 2. **One place to state the bit-exactness contract.** Reduction
//!    kernels (`dot`, `dot4`, `squared_distance*`) accumulate in strict
//!    ascending element order into a *single* chain per output — blocking
//!    only unrolls the loads and multiplies, never reassociates the adds
//!    — so each is bit-identical to its naive rolled form. Elementwise
//!    kernels (`axpy`, `axpy4`) have no reduction at all and vectorise
//!    freely. That is what lets the matmuls, the matcher, and the
//!    parallel combinators above them promise bitwise determinism.
//!
//! The 4-wide block is deliberate: it matches one AVX2 f64 vector (or
//! two NEON lanes), and for the serial-chain reductions it still lets
//! LLVM vectorise the subtraction/multiplication half of the loop while
//! the adds retire in order.

/// `y[j] += a * x[j]` — the axpy row update of the blocked matmul.
///
/// Elementwise, so vectorisation cannot change results. 4-blocked to
/// keep the vector body free of bounds checks.
#[inline]
pub fn axpy(y: &mut [f64], a: f64, x: &[f64]) {
    debug_assert_eq!(y.len(), x.len());
    let n = y.len().min(x.len());
    let (y4, ytail) = y[..n].split_at_mut(n - n % 4);
    let (x4, xtail) = x[..n].split_at(n - n % 4);
    for (yc, xc) in y4.chunks_exact_mut(4).zip(x4.chunks_exact(4)) {
        yc[0] += a * xc[0];
        yc[1] += a * xc[1];
        yc[2] += a * xc[2];
        yc[3] += a * xc[3];
    }
    for (yv, xv) in ytail.iter_mut().zip(xtail) {
        *yv += a * xv;
    }
}

/// Fused four-row axpy: `y[j] += a0·x0[j] + a1·x1[j] + a2·x2[j] + a3·x3[j]`,
/// with the four adds into each `y[j]` applied in ascending row order.
///
/// This is the k-unrolled inner body of the dense matmul: each output
/// element is loaded and stored once per four multiply-adds, and because
/// the per-element add order is exactly `a0, a1, a2, a3` it is
/// bit-identical to four sequential [`axpy`] calls.
#[inline]
pub fn axpy4(y: &mut [f64], a: [f64; 4], x0: &[f64], x1: &[f64], x2: &[f64], x3: &[f64]) {
    debug_assert!(y.len() <= x0.len() && y.len() <= x1.len());
    debug_assert!(y.len() <= x2.len() && y.len() <= x3.len());
    for ((((yv, &v0), &v1), &v2), &v3) in y.iter_mut().zip(x0).zip(x1).zip(x2).zip(x3) {
        let mut t = *yv;
        t += a[0] * v0;
        t += a[1] * v1;
        t += a[2] * v2;
        t += a[3] * v3;
        *yv = t;
    }
}

/// Strict ascending-order dot product — bit-identical to
/// `a.iter().zip(b).map(|(x, y)| x * y).sum::<f64>()`.
///
/// The adds form a single serial chain (the bit-exactness contract), so
/// the win here is unrolled loads/multiplies and no bounds checks, not
/// a reassociated reduction. Seeds the chain with `-0.0`, the same
/// additive identity `Sum<f64>` folds from — the seed is observable in
/// signed zeros (`-0.0 + -0.0` is `-0.0` but `0.0 + -0.0` is `0.0`).
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    dot_from(-0.0, a, b)
}

/// [`dot`] with an explicit accumulator seed.
///
/// Exists because the workspace has two dot conventions that must each
/// stay bit-stable: the slice helpers fold from `Sum`'s `-0.0`, while
/// the matmul kernels accumulate from `+0.0` (the value `Matrix::zeros`
/// initialises outputs to).
#[inline]
pub fn dot_from(seed: f64, a: &[f64], b: &[f64]) -> f64 {
    let n = a.len().min(b.len());
    let (a4, atail) = a[..n].split_at(n - n % 4);
    let (b4, btail) = b[..n].split_at(n - n % 4);
    let mut s = seed;
    for (ac, bc) in a4.chunks_exact(4).zip(b4.chunks_exact(4)) {
        s += ac[0] * bc[0];
        s += ac[1] * bc[1];
        s += ac[2] * bc[2];
        s += ac[3] * bc[3];
    }
    for (av, bv) in atail.iter().zip(btail) {
        s += av * bv;
    }
    s
}

/// Four interleaved dot products of one row against four columns:
/// `(dot(a, b0), dot(a, b1), dot(a, b2), dot(a, b3))`.
///
/// Each accumulator keeps its own strict ascending-k serial chain —
/// bit-identical to four `dot_from(0.0, …)` calls (matmul convention:
/// chains start from the `+0.0` that `Matrix::zeros` writes) — while
/// the four independent chains hide FP-add latency. This is the inner
/// body of [`crate::matrix::Matrix::matmul_pre_t_into`].
#[inline]
pub fn dot4(a: &[f64], b0: &[f64], b1: &[f64], b2: &[f64], b3: &[f64]) -> (f64, f64, f64, f64) {
    debug_assert!(a.len() <= b0.len() && a.len() <= b1.len());
    debug_assert!(a.len() <= b2.len() && a.len() <= b3.len());
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for (kk, &av) in a.iter().enumerate() {
        s0 += av * b0[kk];
        s1 += av * b1[kk];
        s2 += av * b2[kk];
        s3 += av * b3[kk];
    }
    (s0, s1, s2, s3)
}

/// Strict ascending-order squared Euclidean distance — bit-identical to
/// `a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum::<f64>()`,
/// including `Sum`'s `-0.0` seed (squares are never `-0.0`, so the seed
/// is only observable on empty input).
#[inline]
pub fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let n = a.len().min(b.len());
    let (a4, atail) = a[..n].split_at(n - n % 4);
    let (b4, btail) = b[..n].split_at(n - n % 4);
    let mut s = -0.0f64;
    for (ac, bc) in a4.chunks_exact(4).zip(b4.chunks_exact(4)) {
        let d0 = ac[0] - bc[0];
        let d1 = ac[1] - bc[1];
        let d2 = ac[2] - bc[2];
        let d3 = ac[3] - bc[3];
        s += d0 * d0;
        s += d1 * d1;
        s += d2 * d2;
        s += d3 * d3;
    }
    for (av, bv) in atail.iter().zip(btail) {
        let d = av - bv;
        s += d * d;
    }
    s
}

/// Early-abandon squared distance for the probe matcher: accumulates
/// `(a[i] - b[i])²` in strict ascending order, checking the running sum
/// against `bound` once per 8 elements. Returns the partial sum at the
/// point of abandonment (some value `≥ bound`) or the exact full
/// [`squared_distance`] when the row survives every check.
///
/// Why abandonment cannot change a strict-`<` argmin over these sums is
/// argued at the call site ([`crate::distance::nearest_row`]); the
/// contract this kernel owns is narrower: the accumulation order is
/// exactly the matcher's historical `+0.0`-seeded scan (squares are
/// never `-0.0`, so it matches [`squared_distance`] on every non-empty
/// row), a surviving row's sum is bit-identical to the full scan, and a
/// NaN sum (which compares false against any bound) always runs to
/// completion.
#[inline]
pub fn squared_distance_bounded(a: &[f64], b: &[f64], bound: f64) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let mut s = 0.0f64;
    let mut achunks = a.chunks_exact(8);
    let mut bchunks = b.chunks_exact(8);
    for (ac, bc) in (&mut achunks).zip(&mut bchunks) {
        for (av, bv) in ac.iter().zip(bc) {
            let d = av - bv;
            s += d * d;
        }
        if s >= bound {
            return s;
        }
    }
    for (av, bv) in achunks.remainder().iter().zip(bchunks.remainder()) {
        let d = av - bv;
        s += d * d;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series(seed: usize, n: usize) -> Vec<f64> {
        (0..n)
            .map(|i| ((i * 37 + seed * 11) as f64 * 0.173).sin() * 3.0)
            .collect()
    }

    /// Widths spanning remainder sizes 0..=3 around the 4-block and the
    /// matcher's 8-block.
    const WIDTHS: [usize; 9] = [0, 1, 3, 4, 7, 8, 11, 16, 129];

    #[test]
    fn dot_bit_identical_to_rolled() {
        for n in WIDTHS {
            let a = series(1, n);
            let b = series(2, n);
            let naive: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
            assert_eq!(dot(&a, &b).to_bits(), naive.to_bits(), "n={n}");
        }
    }

    #[test]
    fn dot4_bit_identical_to_four_dots() {
        for n in WIDTHS {
            let a = series(0, n);
            let cols: Vec<Vec<f64>> = (1..=4).map(|s| series(s, n)).collect();
            let (s0, s1, s2, s3) = dot4(&a, &cols[0], &cols[1], &cols[2], &cols[3]);
            for (got, col) in [s0, s1, s2, s3].iter().zip(&cols) {
                assert_eq!(got.to_bits(), dot_from(0.0, &a, col).to_bits(), "n={n}");
            }
        }
    }

    #[test]
    fn dot_seed_matches_sum_on_signed_zeros() {
        // Every product is -0.0: `Sum` folds -0.0 + -0.0 + … = -0.0,
        // while a +0.0 seed would flip the result to +0.0.
        let a = vec![0.0; 5];
        let b = vec![-1.0; 5];
        let naive: f64 = a.iter().zip(&b).map(|(x, y)| x * y).sum();
        assert_eq!(naive.to_bits(), (-0.0f64).to_bits());
        assert_eq!(dot(&a, &b).to_bits(), naive.to_bits());
        assert_eq!(dot_from(0.0, &a, &b).to_bits(), 0.0f64.to_bits());
    }

    #[test]
    fn axpy_bit_identical_to_rolled() {
        for n in WIDTHS {
            let x = series(3, n);
            let mut y = series(4, n);
            let mut want = y.clone();
            for (w, xv) in want.iter_mut().zip(&x) {
                *w += 0.37 * xv;
            }
            axpy(&mut y, 0.37, &x);
            for (got, want) in y.iter().zip(&want) {
                assert_eq!(got.to_bits(), want.to_bits(), "n={n}");
            }
        }
    }

    #[test]
    fn axpy4_bit_identical_to_sequential_axpys() {
        for n in WIDTHS {
            let rows: Vec<Vec<f64>> = (0..4).map(|s| series(s + 5, n)).collect();
            let coeffs = [0.31, -1.7, 0.009, 2.5];
            let mut y = series(9, n);
            let mut want = y.clone();
            for (a, x) in coeffs.iter().zip(&rows) {
                axpy(&mut want, *a, x);
            }
            axpy4(&mut y, coeffs, &rows[0], &rows[1], &rows[2], &rows[3]);
            for (got, want) in y.iter().zip(&want) {
                assert_eq!(got.to_bits(), want.to_bits(), "n={n}");
            }
        }
    }

    #[test]
    fn squared_distance_bit_identical_to_rolled() {
        for n in WIDTHS {
            let a = series(6, n);
            let b = series(7, n);
            let naive: f64 = a
                .iter()
                .zip(&b)
                .map(|(x, y)| {
                    let d = x - y;
                    d * d
                })
                .sum();
            assert_eq!(squared_distance(&a, &b).to_bits(), naive.to_bits(), "n={n}");
        }
    }

    #[test]
    fn bounded_distance_exact_when_surviving() {
        for n in WIDTHS {
            if n == 0 {
                // The seeds are the one place the conventions split:
                // bounded keeps the matcher's historical +0.0, the full
                // kernel keeps `Sum`'s -0.0.
                let z = squared_distance_bounded(&[], &[], f64::INFINITY);
                assert_eq!(z.to_bits(), 0.0f64.to_bits());
                assert_eq!(squared_distance(&[], &[]).to_bits(), (-0.0f64).to_bits());
                continue;
            }
            let a = series(8, n);
            let b = series(9, n);
            let full = squared_distance(&a, &b);
            let got = squared_distance_bounded(&a, &b, f64::INFINITY);
            assert_eq!(got.to_bits(), full.to_bits(), "n={n}");
        }
    }

    #[test]
    fn bounded_distance_abandons_at_or_over_bound() {
        let a = vec![10.0; 64];
        let b = vec![0.0; 64];
        let s = squared_distance_bounded(&a, &b, 150.0);
        // Abandoned: the partial sum must already disqualify the row …
        assert!(s >= 150.0);
        // … after the first 8-block (8 × 100), not the full row.
        assert_eq!(s, 800.0);
    }

    #[test]
    fn bounded_distance_runs_nan_rows_to_completion() {
        let mut a = vec![0.0; 16];
        a[0] = f64::NAN;
        let b = vec![1.0; 16];
        let s = squared_distance_bounded(&a, &b, 0.5);
        assert!(s.is_nan());
    }
}
