//! Row-major dense `f64` matrix with blocked, rayon-parallel matmul.

use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Index, IndexMut};

/// Row-major dense matrix of `f64`.
///
/// Invariant: `data.len() == rows * cols`.
#[derive(Clone, PartialEq, Serialize, Deserialize)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Default for Matrix {
    /// An empty `0 × 0` matrix — a placeholder for scratch buffers that
    /// are reshaped in place (see [`Matrix::resize`]) before first use.
    fn default() -> Self {
        Matrix {
            rows: 0,
            cols: 0,
            data: Vec::new(),
        }
    }
}

/// Block edge (in elements) for the cache-blocked matmul kernel. 64×64 f64
/// tiles (32 KiB per operand tile) fit comfortably in L1/L2 on commodity
/// hardware.
const BLOCK: usize = 64;

/// Row-count threshold below which matmul stays single-threaded; tiny
/// products are dominated by rayon dispatch otherwise.
const PAR_MIN_ROWS: usize = 32;

impl Matrix {
    /// Create a `rows × cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Create a `rows × cols` matrix filled with `value`.
    pub fn filled(rows: usize, cols: usize, value: f64) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Identity matrix of size `n × n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from an element function `f(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Build from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length must equal rows*cols"
        );
        Self { rows, cols, data }
    }

    /// Build from row slices; all rows must have equal length.
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        if rows.is_empty() {
            return Self::zeros(0, 0);
        }
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            assert_eq!(r.len(), cols, "all rows must have the same length");
            data.extend_from_slice(r);
        }
        Self {
            rows: rows.len(),
            cols,
            data,
        }
    }

    /// Append one row at the bottom, growing the matrix in place.
    ///
    /// An empty (`0 × 0`) matrix adopts the row's length as its column
    /// count; afterwards every pushed row must match `cols()`.
    pub fn push_row(&mut self, row: &[f64]) {
        if self.rows == 0 {
            self.cols = row.len();
        }
        assert_eq!(row.len(), self.cols, "pushed row must match column count");
        self.data.extend_from_slice(row);
        self.rows += 1;
    }

    /// A `1 × n` row vector.
    pub fn row_vector(v: &[f64]) -> Self {
        Self {
            rows: 1,
            cols: v.len(),
            data: v.to_vec(),
        }
    }

    /// An `n × 1` column vector.
    pub fn col_vector(v: &[f64]) -> Self {
        Self {
            rows: v.len(),
            cols: 1,
            data: v.to_vec(),
        }
    }

    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat row-major view of the data.
    #[inline]
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable flat row-major view of the data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consume into the flat buffer.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Borrow row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrow row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copy column `c` out into a `Vec`.
    pub fn col(&self, c: usize) -> Vec<f64> {
        assert!(c < self.cols);
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// Iterator over row slices.
    pub fn rows_iter(&self) -> impl Iterator<Item = &[f64]> {
        self.data.chunks_exact(self.cols.max(1))
    }

    /// Transposed copy.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            let row = self.row(r);
            for (c, &v) in row.iter().enumerate() {
                out[(c, r)] = v;
            }
        }
        out
    }

    /// Elementwise map into a new matrix.
    pub fn map(&self, f: impl Fn(f64) -> f64 + Sync) -> Matrix {
        let data = self.data.iter().map(|&x| f(x)).collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// In-place elementwise map.
    pub fn map_inplace(&mut self, f: impl Fn(f64) -> f64) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Elementwise binary zip into a new matrix. Shapes must match.
    pub fn zip(&self, other: &Matrix, f: impl Fn(f64, f64) -> f64) -> Matrix {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in zip");
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(&a, &b)| f(a, b))
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }

    /// `self + other`.
    pub fn add(&self, other: &Matrix) -> Matrix {
        self.zip(other, |a, b| a + b)
    }

    /// `self - other`.
    pub fn sub(&self, other: &Matrix) -> Matrix {
        self.zip(other, |a, b| a - b)
    }

    /// Hadamard (elementwise) product.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        self.zip(other, |a, b| a * b)
    }

    /// Scalar multiple.
    pub fn scale(&self, k: f64) -> Matrix {
        self.map(|x| x * k)
    }

    /// In-place `self += other`.
    pub fn add_assign(&mut self, other: &Matrix) {
        assert_eq!(self.shape(), other.shape());
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place `self += k * other` (axpy).
    pub fn axpy(&mut self, k: f64, other: &Matrix) {
        assert_eq!(self.shape(), other.shape());
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += k * b;
        }
    }

    /// Add a `1 × cols` row vector to every row (bias broadcast).
    pub fn add_row_broadcast(&self, row: &Matrix) -> Matrix {
        let mut out = self.clone();
        out.add_row_broadcast_inplace(row);
        out
    }

    /// In-place bias broadcast: `self[r] += row` for every row. The
    /// allocation-free counterpart of [`Matrix::add_row_broadcast`].
    pub fn add_row_broadcast_inplace(&mut self, row: &Matrix) {
        assert_eq!(row.rows, 1, "broadcast operand must be a row vector");
        assert_eq!(row.cols, self.cols, "broadcast width mismatch");
        for r in 0..self.rows {
            for (a, b) in self.row_mut(r).iter_mut().zip(&row.data) {
                *a += b;
            }
        }
    }

    /// Reshape in place to `rows × cols`, resetting every element to zero.
    /// Reuses the existing allocation whenever the capacity suffices, so
    /// scratch matrices cycled through shapes no larger than their first
    /// use never touch the heap again.
    pub fn resize(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.clear();
        self.data.resize(rows * cols, 0.0);
    }

    /// Transpose into a caller-provided matrix (reshaped as needed). The
    /// allocation-free counterpart of [`Matrix::transpose`].
    pub fn transpose_into(&self, out: &mut Matrix) {
        out.resize(self.cols, self.rows);
        for r in 0..self.rows {
            for (c, &v) in self.row(r).iter().enumerate() {
                out.data[c * self.rows + r] = v;
            }
        }
    }

    /// Matrix product `self × other`, cache-blocked, parallel over row bands.
    ///
    /// # Panics
    /// Panics if `self.cols != other.rows`.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.cols);
        self.matmul_dispatch::<false>(other, &mut out);
        out
    }

    /// Matrix product with an explicit sparsity skip on the left operand:
    /// rows of `self` holding exact zeros (e.g. post-ReLU activations)
    /// skip their axpy entirely. Bit-identical to [`Matrix::matmul`] for
    /// finite inputs — the accumulator starts at `+0.0` and can never
    /// become `-0.0`, so adding `aik * bv == ±0.0` is a no-op — but much
    /// faster when A is genuinely sparse. Use only where that sparsity is
    /// structural; on dense inputs the extra branch defeats
    /// autovectorisation of the inner loop.
    pub fn matmul_sparse_lhs(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(self.rows, other.cols);
        self.matmul_dispatch::<true>(other, &mut out);
        out
    }

    /// `self × other` into a caller-provided matrix (reshaped + zeroed in
    /// place). Bit-identical to [`Matrix::matmul`]; the allocation-free
    /// variant for scratch-buffer reuse.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        out.resize(self.rows, other.cols);
        self.matmul_dispatch::<false>(other, out);
    }

    fn matmul_dispatch<const SKIP_ZEROS: bool>(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, other.rows,
            "matmul dimension mismatch: {}×{} by {}×{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, k, n) = (self.rows, self.cols, other.cols);
        debug_assert_eq!(out.shape(), (m, n));
        if m == 0 || k == 0 || n == 0 {
            return;
        }
        let a = &self.data;
        let b = &other.data;

        let kernel = |row_band: &mut [f64], r0: usize, rows_in_band: usize| {
            // i-k-j loop order with k-blocking: the inner j loop is a
            // contiguous axpy over the output row, which autovectorises.
            // Per output element the k-sum always runs in plain ascending
            // order, which the pre-transposed dot kernel below relies on
            // for bit-identical results.
            for kb in (0..k).step_by(BLOCK) {
                let kend = (kb + BLOCK).min(k);
                for i in 0..rows_in_band {
                    let arow = &a[(r0 + i) * k..(r0 + i) * k + k];
                    let crow = &mut row_band[i * n..(i + 1) * n];
                    if SKIP_ZEROS {
                        for kk in kb..kend {
                            let aik = arow[kk];
                            if aik == 0.0 {
                                continue;
                            }
                            crate::kernels::axpy(crow, aik, &b[kk * n..kk * n + n]);
                        }
                    } else {
                        // Dense: the fused 4-k axpy kernel loads/stores
                        // each output element once per four multiply-adds
                        // while keeping the per-element adds in
                        // ascending-k order — bit-identical to the
                        // rolled loop (see `kernels::axpy4`).
                        let mut kk = kb;
                        while kk + 4 <= kend {
                            crate::kernels::axpy4(
                                crow,
                                [arow[kk], arow[kk + 1], arow[kk + 2], arow[kk + 3]],
                                &b[kk * n..kk * n + n],
                                &b[(kk + 1) * n..(kk + 1) * n + n],
                                &b[(kk + 2) * n..(kk + 2) * n + n],
                                &b[(kk + 3) * n..(kk + 3) * n + n],
                            );
                            kk += 4;
                        }
                        for kk in kk..kend {
                            crate::kernels::axpy(crow, arow[kk], &b[kk * n..kk * n + n]);
                        }
                    }
                }
            }
        };

        let threads = rayon::current_num_threads().max(1);
        if m >= PAR_MIN_ROWS && threads > 1 {
            let band = (m / threads).max(8);
            out.data
                .par_chunks_mut(band * n)
                .enumerate()
                .for_each(|(bi, chunk)| {
                    let r0 = bi * band;
                    let rows_in_band = chunk.len() / n;
                    kernel(chunk, r0, rows_in_band);
                });
        } else {
            // One band is the whole matrix — identical arithmetic, none
            // of the parallel dispatch overhead.
            kernel(&mut out.data, 0, m);
        }
    }

    /// `self × bt.transpose()` into a caller-provided matrix, with the
    /// right operand supplied **already transposed** (`bt` is `n × k` for
    /// an `m × k` left operand). Every output element is a contiguous dot
    /// product of two rows, summed over ascending `k` — exactly the order
    /// the blocked axpy kernel accumulates in — so the result is
    /// bit-identical to `self.matmul(&bt.transpose())` while touching
    /// only prepacked row-major data and performing zero allocations.
    pub fn matmul_pre_t_into(&self, bt: &Matrix, out: &mut Matrix) {
        assert_eq!(
            self.cols, bt.cols,
            "matmul_pre_t dimension mismatch: {}×{} by ({}×{})ᵀ",
            self.rows, self.cols, bt.rows, bt.cols
        );
        let (m, k, n) = (self.rows, self.cols, bt.rows);
        out.resize(m, n);
        if m == 0 || k == 0 || n == 0 {
            return;
        }
        let a = &self.data;
        let b = &bt.data;
        // Each output element is a strict ascending-k dot product (the
        // bit-exactness contract). A single dot is a serial FP-add
        // dependency chain, so the kernel interleaves four *independent*
        // output columns per pass (`kernels::dot4`) — each element's own
        // summation order is untouched, but the four chains hide the add
        // latency.
        let kernel = |row_band: &mut [f64], r0: usize| {
            for (i, crow) in row_band.chunks_exact_mut(n).enumerate() {
                let arow = &a[(r0 + i) * k..(r0 + i) * k + k];
                let mut j = 0;
                while j + 4 <= n {
                    let (s0, s1, s2, s3) = crate::kernels::dot4(
                        arow,
                        &b[j * k..j * k + k],
                        &b[(j + 1) * k..(j + 1) * k + k],
                        &b[(j + 2) * k..(j + 2) * k + k],
                        &b[(j + 3) * k..(j + 3) * k + k],
                    );
                    crow[j] = s0;
                    crow[j + 1] = s1;
                    crow[j + 2] = s2;
                    crow[j + 3] = s3;
                    j += 4;
                }
                for (jj, cv) in crow.iter_mut().enumerate().skip(j) {
                    // Seed +0.0: the matmul convention (see `kernels::dot_from`).
                    *cv = crate::kernels::dot_from(0.0, arow, &b[jj * k..jj * k + k]);
                }
            }
        };
        let threads = rayon::current_num_threads().max(1);
        if m >= PAR_MIN_ROWS && threads > 1 {
            let band = (m / threads).max(8);
            out.data
                .par_chunks_mut(band * n)
                .enumerate()
                .for_each(|(bi, chunk)| kernel(chunk, bi * band));
        } else {
            kernel(&mut out.data, 0);
        }
    }

    /// Frobenius inner product `⟨self, other⟩`.
    pub fn dot(&self, other: &Matrix) -> f64 {
        assert_eq!(self.shape(), other.shape());
        self.data.iter().zip(&other.data).map(|(a, b)| a * b).sum()
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for empty).
    pub fn mean(&self) -> f64 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f64
        }
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute element (0 for empty).
    pub fn max_abs(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
    }

    /// Per-row sums as a column vector (`rows × 1`).
    pub fn row_sums(&self) -> Matrix {
        let data = self.rows_iter().map(|r| r.iter().sum()).collect();
        Matrix {
            rows: self.rows,
            cols: 1,
            data,
        }
    }

    /// Per-column sums as a row vector (`1 × cols`).
    pub fn col_sums(&self) -> Matrix {
        let mut data = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (acc, &v) in data.iter_mut().zip(self.row(r)) {
                *acc += v;
            }
        }
        Matrix {
            rows: 1,
            cols: self.cols,
            data,
        }
    }

    /// Per-column means as a row vector.
    pub fn col_means(&self) -> Matrix {
        let mut s = self.col_sums();
        if self.rows > 0 {
            s.map_inplace(|x| x / self.rows as f64);
        }
        s
    }

    /// Extract rows `[start, end)` into a new matrix.
    pub fn slice_rows(&self, start: usize, end: usize) -> Matrix {
        assert!(start <= end && end <= self.rows, "row slice out of bounds");
        let data = self.data[start * self.cols..end * self.cols].to_vec();
        Matrix {
            rows: end - start,
            cols: self.cols,
            data,
        }
    }

    /// Gather the given rows (with repetition allowed) into a new matrix.
    pub fn gather_rows(&self, idx: &[usize]) -> Matrix {
        let mut data = Vec::with_capacity(idx.len() * self.cols);
        for &i in idx {
            data.extend_from_slice(self.row(i));
        }
        Matrix {
            rows: idx.len(),
            cols: self.cols,
            data,
        }
    }

    /// Vertically stack matrices (all must share the column count).
    pub fn vstack(parts: &[&Matrix]) -> Matrix {
        if parts.is_empty() {
            return Matrix::zeros(0, 0);
        }
        let cols = parts[0].cols;
        let rows = parts.iter().map(|p| p.rows).sum();
        let mut data = Vec::with_capacity(rows * cols);
        for p in parts {
            assert_eq!(p.cols, cols, "vstack column mismatch");
            data.extend_from_slice(&p.data);
        }
        Matrix { rows, cols, data }
    }

    /// Horizontally stack matrices (all must share the row count).
    pub fn hstack(parts: &[&Matrix]) -> Matrix {
        if parts.is_empty() {
            return Matrix::zeros(0, 0);
        }
        let rows = parts[0].rows;
        let cols = parts.iter().map(|p| p.cols).sum();
        let mut out = Matrix::zeros(rows, cols);
        for r in 0..rows {
            let mut off = 0;
            for p in parts {
                assert_eq!(p.rows, rows, "hstack row mismatch");
                out.row_mut(r)[off..off + p.cols].copy_from_slice(p.row(r));
                off += p.cols;
            }
        }
        out
    }

    /// Squared Euclidean distance between row `r` of `self` and row `s` of
    /// `other` (widths must match).
    pub fn row_dist_sq(&self, r: usize, other: &Matrix, s: usize) -> f64 {
        debug_assert_eq!(self.cols, other.cols);
        self.row(r)
            .iter()
            .zip(other.row(s))
            .map(|(a, b)| {
                let d = a - b;
                d * d
            })
            .sum()
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(
            r < self.rows && c < self.cols,
            "index ({r},{c}) out of bounds"
        );
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "Matrix {}×{} [", self.rows, self.cols)?;
        let show = self.rows.min(6);
        for r in 0..show {
            write!(f, "  [")?;
            for (c, v) in self.row(r).iter().take(8).enumerate() {
                if c > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{v:.4}")?;
            }
            if self.cols > 8 {
                write!(f, ", …")?;
            }
            writeln!(f, "]")?;
        }
        if self.rows > show {
            writeln!(f, "  …")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut c = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut s = 0.0;
                for k in 0..a.cols() {
                    s += a[(i, k)] * b[(k, j)];
                }
                c[(i, j)] = s;
            }
        }
        c
    }

    #[test]
    fn zeros_and_shape() {
        let m = Matrix::zeros(3, 4);
        assert_eq!(m.shape(), (3, 4));
        assert_eq!(m.len(), 12);
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn push_row_grows_and_matches_from_rows() {
        let rows = vec![vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]];
        let mut m = Matrix::zeros(0, 0);
        for r in &rows {
            m.push_row(r);
        }
        assert_eq!(m, Matrix::from_rows(&rows));
        m.push_row(&[7.0, 8.0]);
        assert_eq!(m.shape(), (4, 2));
        assert_eq!(m.row(3), &[7.0, 8.0]);
    }

    #[test]
    #[should_panic(expected = "pushed row must match column count")]
    fn push_row_rejects_width_mismatch() {
        let mut m = Matrix::zeros(1, 3);
        m.push_row(&[1.0, 2.0]);
    }

    #[test]
    fn identity_matmul_is_noop() {
        let a = Matrix::from_fn(5, 5, |r, c| (r * 5 + c) as f64);
        let i = Matrix::identity(5);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matmul_matches_naive_small() {
        let a = Matrix::from_fn(7, 3, |r, c| (r as f64) - 0.5 * c as f64);
        let b = Matrix::from_fn(3, 9, |r, c| (c as f64) * 0.25 + r as f64);
        let got = a.matmul(&b);
        let want = naive_matmul(&a, &b);
        for (x, y) in got.as_slice().iter().zip(want.as_slice()) {
            assert!((x - y).abs() < 1e-12);
        }
    }

    #[test]
    fn matmul_matches_naive_large_parallel_path() {
        // Exceeds PAR_MIN_ROWS and BLOCK so the blocked, banded path runs.
        let a = Matrix::from_fn(97, 70, |r, c| ((r * 31 + c * 17) % 13) as f64 - 6.0);
        let b = Matrix::from_fn(70, 83, |r, c| ((r * 7 + c * 3) % 11) as f64 * 0.5);
        let got = a.matmul(&b);
        let want = naive_matmul(&a, &b);
        for (x, y) in got.as_slice().iter().zip(want.as_slice()) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn matmul_zero_dims() {
        let a = Matrix::zeros(0, 5);
        let b = Matrix::zeros(5, 4);
        assert_eq!(a.matmul(&b).shape(), (0, 4));
        let c = Matrix::zeros(3, 0);
        let d = Matrix::zeros(0, 2);
        assert_eq!(c.matmul(&d).shape(), (3, 2));
    }

    #[test]
    #[should_panic(expected = "matmul dimension mismatch")]
    fn matmul_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        let _ = a.matmul(&b);
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_fn(4, 6, |r, c| (r * 10 + c) as f64);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(2, 3)], a[(3, 2)]);
    }

    #[test]
    fn broadcast_add_row() {
        let a = Matrix::filled(3, 2, 1.0);
        let b = Matrix::row_vector(&[10.0, 20.0]);
        let c = a.add_row_broadcast(&b);
        assert_eq!(c[(0, 0)], 11.0);
        assert_eq!(c[(2, 1)], 21.0);
    }

    #[test]
    fn stack_and_slice() {
        let a = Matrix::filled(2, 3, 1.0);
        let b = Matrix::filled(1, 3, 2.0);
        let v = Matrix::vstack(&[&a, &b]);
        assert_eq!(v.shape(), (3, 3));
        assert_eq!(v[(2, 0)], 2.0);
        let s = v.slice_rows(1, 3);
        assert_eq!(s.shape(), (2, 3));
        assert_eq!(s[(1, 2)], 2.0);

        let h = Matrix::hstack(&[&a, &Matrix::filled(2, 1, 5.0)]);
        assert_eq!(h.shape(), (2, 4));
        assert_eq!(h[(1, 3)], 5.0);
    }

    #[test]
    fn gather_rows_with_repetition() {
        let a = Matrix::from_fn(4, 2, |r, _| r as f64);
        let g = a.gather_rows(&[3, 0, 3]);
        assert_eq!(g.shape(), (3, 2));
        assert_eq!(g[(0, 0)], 3.0);
        assert_eq!(g[(1, 0)], 0.0);
        assert_eq!(g[(2, 1)], 3.0);
    }

    #[test]
    fn reductions() {
        let a = Matrix::from_rows(&[vec![1.0, 2.0], vec![3.0, 4.0]]);
        assert_eq!(a.sum(), 10.0);
        assert_eq!(a.mean(), 2.5);
        assert_eq!(a.row_sums().as_slice(), &[3.0, 7.0]);
        assert_eq!(a.col_sums().as_slice(), &[4.0, 6.0]);
        assert_eq!(a.col_means().as_slice(), &[2.0, 3.0]);
        assert!((a.norm() - (30.0f64).sqrt()).abs() < 1e-12);
        assert_eq!(a.max_abs(), 4.0);
    }

    #[test]
    fn row_dist_sq_matches_manual() {
        let a = Matrix::from_rows(&[vec![0.0, 0.0], vec![3.0, 4.0]]);
        assert_eq!(a.row_dist_sq(0, &a, 1), 25.0);
    }

    /// Shapes spanning the sequential and parallel-band paths, with
    /// zero-laden left operands so the sparse skip actually fires.
    fn kernel_cases() -> Vec<(Matrix, Matrix)> {
        let zeroy = |r: usize, c: usize| {
            let v = ((r * 31 + c * 17) % 13) as f64 - 6.0;
            if (r + c).is_multiple_of(3) {
                0.0
            } else {
                v * 0.37
            }
        };
        vec![
            (
                Matrix::from_fn(7, 3, zeroy),
                Matrix::from_fn(3, 9, |r, c| (c as f64) * 0.25 + r as f64),
            ),
            (
                Matrix::from_fn(1, 1, |_, _| 0.0),
                Matrix::from_fn(1, 1, |_, _| 3.5),
            ),
            (
                Matrix::from_fn(97, 70, zeroy),
                Matrix::from_fn(70, 83, |r, c| ((r * 7 + c * 3) % 11) as f64 * 0.5 - 2.0),
            ),
        ]
    }

    #[test]
    fn sparse_lhs_bit_identical_to_dense_matmul() {
        for (a, b) in kernel_cases() {
            let dense = a.matmul(&b);
            let sparse = a.matmul_sparse_lhs(&b);
            for (x, y) in dense.as_slice().iter().zip(sparse.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn matmul_into_bit_identical_and_reuses_buffer() {
        let mut out = Matrix::zeros(0, 0);
        for (a, b) in kernel_cases() {
            a.matmul_into(&b, &mut out);
            let want = a.matmul(&b);
            assert_eq!(out.shape(), want.shape());
            for (x, y) in out.as_slice().iter().zip(want.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn matmul_pre_t_into_bit_identical_to_transposed_matmul() {
        let mut out = Matrix::zeros(0, 0);
        for (a, b) in kernel_cases() {
            let bt = b.transpose();
            a.matmul_pre_t_into(&bt, &mut out);
            let want = a.matmul(&b);
            assert_eq!(out.shape(), want.shape());
            for (x, y) in out.as_slice().iter().zip(want.as_slice()) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn transpose_into_matches_transpose() {
        let a = Matrix::from_fn(4, 6, |r, c| (r * 10 + c) as f64);
        let mut out = Matrix::zeros(1, 1);
        a.transpose_into(&mut out);
        assert_eq!(out, a.transpose());
    }

    #[test]
    fn add_row_broadcast_inplace_matches_cloning_variant() {
        let a = Matrix::from_fn(5, 4, |r, c| (r as f64) - 0.3 * c as f64);
        let row = Matrix::row_vector(&[0.5, -1.0, 2.0, 0.0]);
        let want = a.add_row_broadcast(&row);
        let mut got = a.clone();
        got.add_row_broadcast_inplace(&row);
        assert_eq!(got, want);
    }

    #[test]
    fn resize_reuses_capacity_and_zeroes() {
        let mut m = Matrix::filled(4, 4, 7.0);
        let ptr = m.as_slice().as_ptr();
        m.resize(2, 3);
        assert_eq!(m.shape(), (2, 3));
        assert!(m.as_slice().iter().all(|&x| x == 0.0));
        assert_eq!(m.as_slice().as_ptr(), ptr, "shrinking must not reallocate");
    }

    #[test]
    fn axpy_and_add_assign() {
        let mut a = Matrix::filled(2, 2, 1.0);
        let b = Matrix::filled(2, 2, 2.0);
        a.add_assign(&b);
        assert_eq!(a[(0, 0)], 3.0);
        a.axpy(0.5, &b);
        assert_eq!(a[(1, 1)], 4.0);
    }
}
