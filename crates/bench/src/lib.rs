//! `ns-bench` — shared experiment harness behind the per-table /
//! per-figure binaries in `src/bin/` (see `DESIGN.md` §3 for the index)
//! and the criterion micro-benchmarks in `benches/`.

pub mod harness;

pub use harness::*;
