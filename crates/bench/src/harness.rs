//! Experiment harness: dataset adapters, the shared evaluation protocol,
//! and runners for NodeSentry, its ablation variants, and the baselines.
//!
//! Every experiment binary prints the paper's rows to stdout and writes
//! a JSON record to `target/experiments/<name>.json` for EXPERIMENTS.md.

use nodesentry_core::{NodeSentry, NodeSentryConfig, NodeSource, Variant};
use ns_baselines::Detector;
use ns_eval::metrics::{
    adjusted_confusion, aggregate, roc_auc_adjusted, transition_mask, AggregateScores, NodeScores,
};
use ns_eval::threshold::{ksigma_detect, smooth_scores};

/// Smoothing window (points) applied to every method's score series
/// before thresholding and AUC — single-point spikes are noise at 30 s
/// sampling; real events last ≥ 15 steps.
pub const SMOOTH_WINDOW: usize = 5;
use ns_linalg::matrix::Matrix;
use ns_telemetry::{Dataset, DatasetProfile};
use serde::Serialize;

/// Boundary-exclusion radius in steps: the paper excludes 1 minute on
/// each side of pattern transitions; at 30 s sampling that is 2 steps.
pub const BOUNDARY_RADIUS: usize = 2;

/// Adapter exposing a generated [`Dataset`] through [`NodeSource`]
/// (raw matrices expand lazily per node).
pub struct DatasetSource<'a>(pub &'a Dataset);

impl NodeSource for DatasetSource<'_> {
    fn n_nodes(&self) -> usize {
        self.0.n_nodes()
    }

    fn raw(&self, node: usize) -> Matrix {
        self.0.raw_node(node)
    }

    fn transitions(&self, node: usize) -> Vec<usize> {
        transitions_of(self.0, node)
    }
}

/// Job-transition steps of a node (segment starts, excluding 0).
pub fn transitions_of(ds: &Dataset, node: usize) -> Vec<usize> {
    ds.schedule
        .node_timeline(node)
        .iter()
        .map(|seg| seg.start)
        .filter(|&s| s > 0)
        .collect()
}

/// One method's evaluated outcome (Table 4 row).
#[derive(Clone, Debug, Serialize)]
pub struct MethodResult {
    pub method: String,
    pub dataset: String,
    pub precision: f64,
    pub recall: f64,
    pub auc: f64,
    pub f1: f64,
    /// Offline training wall-clock (seconds).
    pub offline_s: f64,
    /// Online detection wall-clock per node (seconds).
    pub online_s_per_node: f64,
}

/// Evaluate per-node score series against the dataset's ground truth
/// with the paper's protocol: k-sigma thresholding, point adjustment,
/// transition-boundary exclusion, per-node averaging.
pub fn evaluate_scores(
    ds: &Dataset,
    per_node_scores: &[Vec<f64>],
    threshold: &ns_eval::threshold::KSigmaConfig,
) -> AggregateScores {
    let split = ds.split;
    let nodes: Vec<NodeScores> = per_node_scores
        .iter()
        .enumerate()
        .filter(|(n, _)| {
            // Nodes that saw no anomaly contribute nothing to recall and
            // would read as F1 = 0; average over affected nodes only
            // (their false positives still show up in Table 4's
            // deployment-precision row via the affected nodes' windows).
            ds.labels(*n)[ds.split..].iter().any(|&b| b)
        })
        .map(|(n, raw_scores)| {
            let scores = smooth_scores(raw_scores, SMOOTH_WINDOW);
            let scores = &scores;
            let truth_full = ds.labels(n);
            let truth = &truth_full[split..];
            let pred = ksigma_detect(scores, threshold);
            let transitions: Vec<usize> = transitions_of(ds, n)
                .into_iter()
                .filter(|&t| t >= split)
                .map(|t| t - split)
                .collect();
            let mask = transition_mask(scores.len(), &transitions, BOUNDARY_RADIUS);
            let c = adjusted_confusion(&pred, truth, Some(&mask));
            let auc = roc_auc_adjusted(scores, truth, Some(&mask));
            NodeScores {
                precision: c.precision(),
                recall: c.recall(),
                auc,
            }
        })
        .collect();
    aggregate(&nodes)
}

/// Train + evaluate NodeSentry (or a variant) on a dataset.
pub fn run_nodesentry(ds: &Dataset, cfg: NodeSentryConfig) -> (MethodResult, NodeSentry) {
    let threshold = cfg.threshold;
    let variant = cfg.variant;
    // Timed via ns-obs spans: the durations come back directly from the
    // guard, and with tracing enabled the core pipeline's own `fit/...`
    // stage spans nest under `offline` in `ns_obs::trace::report()`.
    let offline_span = ns_obs::trace::span("offline");
    let groups = ds.catalog.group_ids();
    let model = NodeSentry::fit_from_source(cfg, &DatasetSource(ds), &groups, ds.split);
    let offline_s = offline_span.finish_seconds();

    let online_span = ns_obs::trace::span("online");
    // Nodes score independently; parallelize with order-preserving
    // collection so results are identical to the serial loop.
    let per_node: Vec<Vec<f64>> = {
        use rayon::prelude::*;
        (0..ds.n_nodes())
            .into_par_iter()
            .map(|n| {
                let raw = ds.raw_node(n);
                let (scores, _) = model.score_node(&raw, &transitions_of(ds, n), ds.split);
                scores
            })
            .collect()
    };
    let online_s_per_node = online_span.finish_seconds() / ds.n_nodes().max(1) as f64;

    let agg = evaluate_scores(ds, &per_node, &threshold);
    (
        MethodResult {
            method: variant.name().to_string(),
            dataset: ds.profile.name.clone(),
            precision: agg.precision,
            recall: agg.recall,
            auc: agg.auc,
            f1: agg.f1,
            offline_s,
            online_s_per_node,
        },
        model,
    )
}

/// Preprocess every node once with a NodeSentry-style preprocessor (the
/// baselines consume the same reduced representation).
pub fn preprocessed_nodes(ds: &Dataset) -> Vec<Matrix> {
    ns_obs::span!("preprocess_nodes");
    let groups = ds.catalog.group_ids();
    let sample_n = 4.min(ds.n_nodes());
    let sample: Vec<Matrix> = (0..sample_n)
        .map(|n| ds.raw_node(n).slice_rows(0, ds.split))
        .collect();
    let stacked = Matrix::vstack(&sample.iter().collect::<Vec<_>>());
    let pp = nodesentry_core::Preprocessor::fit(&stacked, &groups, 0.99, 0.05);
    {
        use rayon::prelude::*;
        (0..ds.n_nodes())
            .into_par_iter()
            .map(|n| pp.transform(&ds.raw_node(n)))
            .collect()
    }
}

/// Train + evaluate one baseline detector.
pub fn run_baseline(
    ds: &Dataset,
    det: &mut dyn Detector,
    threshold: &ns_eval::threshold::KSigmaConfig,
) -> MethodResult {
    let offline_span = ns_obs::trace::span("baseline_offline");
    let nodes = preprocessed_nodes(ds);
    det.fit(&nodes, ds.split);
    let offline_s = offline_span.finish_seconds();

    let online_span = ns_obs::trace::span("baseline_online");
    let per_node: Vec<Vec<f64>> = nodes
        .iter()
        .enumerate()
        .map(|(n, data)| det.score_node(n, data, ds.split))
        .collect();
    let online_s_per_node = online_span.finish_seconds() / ds.n_nodes().max(1) as f64;

    let agg = evaluate_scores(ds, &per_node, threshold);
    MethodResult {
        method: det.name().to_string(),
        dataset: ds.profile.name.clone(),
        precision: agg.precision,
        recall: agg.recall,
        auc: agg.auc,
        f1: agg.f1,
        offline_s,
        online_s_per_node,
    }
}

/// Default NodeSentry configuration used across experiments (artifact
/// hyperparameters at laptop scale).
pub fn default_ns_config() -> NodeSentryConfig {
    NodeSentryConfig::default()
}

/// A reduced-size dataset profile for the hyperparameter sweeps of
/// Fig. 6 (each sweep retrains NodeSentry several times).
pub fn sweep_profile_d1() -> DatasetProfile {
    let mut p = DatasetProfile::d1_prime();
    p.name = "D1'-sweep".into();
    p.schedule.n_nodes = 10;
    p.schedule.horizon = 2880;
    p
}

/// Reduced D2 profile for sweeps.
pub fn sweep_profile_d2() -> DatasetProfile {
    let mut p = DatasetProfile::d2_prime();
    p.name = "D2'-sweep".into();
    p.schedule.n_nodes = 6;
    p.schedule.horizon = 2880;
    p
}

/// Variant runner over a dataset with the default config.
pub fn run_variant(ds: &Dataset, variant: Variant) -> MethodResult {
    let cfg = default_ns_config().with_variant(variant);
    run_nodesentry(ds, cfg).0
}

/// Write an experiment record under `target/experiments/<name>.json`.
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let dir = std::path::Path::new("target/experiments");
    if let Err(e) = std::fs::create_dir_all(dir) {
        eprintln!("warn: cannot create {dir:?}: {e}");
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(s) => {
            if let Err(e) = std::fs::write(&path, s) {
                eprintln!("warn: cannot write {path:?}: {e}");
            } else {
                eprintln!("[json] wrote {}", path.display());
            }
        }
        Err(e) => eprintln!("warn: serialisation failed: {e}"),
    }
}

/// Write a machine-readable benchmark record as `BENCH_<name>.json` in
/// the current working directory. Unlike [`write_json`] (which files
/// experiment records under `target/experiments/` for EXPERIMENTS.md),
/// these land where CI and regression tooling can pick them up by the
/// `BENCH_` prefix alone.
pub fn write_bench_json<T: Serialize>(name: &str, value: &T) {
    let path = std::path::PathBuf::from(format!("BENCH_{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(s) => {
            if let Err(e) = std::fs::write(&path, s) {
                eprintln!("warn: cannot write {path:?}: {e}");
            } else {
                eprintln!("[bench] wrote {}", path.display());
            }
        }
        Err(e) => eprintln!("warn: serialisation failed: {e}"),
    }
}

/// Print a Table 4-style row.
pub fn print_method_row(r: &MethodResult) {
    println!(
        "{:<12} {:<10} P={:.3} R={:.3} AUC={:.3} F1={:.3}  offline={}  online/node={}",
        r.method,
        r.dataset,
        r.precision,
        r.recall,
        r.auc,
        r.f1,
        ns_eval::timing::format_duration(r.offline_s),
        ns_eval::timing::format_duration(r.online_s_per_node),
    );
}
