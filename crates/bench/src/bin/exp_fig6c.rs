//! Fig. 6(c) — F1 vs number of MoE experts (1–5). The paper finds 3
//! optimal: fewer under-represent the sub-patterns, more overfit.

use ns_bench::{default_ns_config, run_nodesentry, write_json};
use serde_json::json;

fn main() {
    println!("=== Fig. 6(c): F1 vs number of experts ===\n");
    let mut out = Vec::new();
    for profile in [ns_bench::sweep_profile_d1(), ns_bench::sweep_profile_d2()] {
        let ds = profile.generate();
        print!("{:<10}", ds.profile.name);
        let mut series = Vec::new();
        for n_experts in 1..=5usize {
            let mut cfg = default_ns_config();
            cfg.sharing.n_experts = n_experts;
            cfg.sharing.top_k = 1;
            let (r, _) = run_nodesentry(&ds, cfg);
            print!("  {n_experts}: {:.3}", r.f1);
            series.push(json!({ "experts": n_experts, "f1": r.f1 }));
        }
        println!();
        out.push(json!({ "dataset": ds.profile.name, "series": series }));
    }
    println!("\npaper shape: best at 3 experts");
    write_json("fig6c", &out);
}
