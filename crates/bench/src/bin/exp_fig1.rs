//! Fig. 1 — example node MTS with the paper's structural claims:
//! gang-scheduled nodes share patterns (a)–(f); different jobs can look
//! alike or differ; sub-patterns vary inside one segment. This binary
//! dumps aligned traces for three nodes and verifies the pattern-pair
//! relationships quantitatively.

use ns_bench::write_json;
use ns_linalg::stats;
use ns_telemetry::{DatasetProfile, Signal};
use serde_json::json;

fn main() {
    let ds = DatasetProfile::d1_prime().generate();
    // Find a gang job with ≥ 2 nodes for the (a)–(f) similarity pair.
    let gang = ds
        .schedule
        .jobs
        .iter()
        .find(|j| j.nodes.len() >= 2 && j.duration() >= 100)
        .expect("a wide job exists");
    let (na, nb) = (gang.nodes[0], gang.nodes[1]);
    let sig = Signal::CpuUser as usize;
    let trace = |node: usize, lo: usize, hi: usize| -> Vec<f64> {
        (lo..hi).map(|t| ds.latent[node][t][sig]).collect()
    };
    let a = trace(na, gang.start, gang.end);
    let b = trace(nb, gang.start, gang.end);
    let r_same_job = stats::pearson(&a, &b);

    // A different archetype's segment on a third node for the contrast.
    let other = ds
        .schedule
        .jobs
        .iter()
        .find(|j| j.archetype != gang.archetype && j.duration() >= 100 && !j.nodes.contains(&na))
        .expect("a contrasting job exists");
    let len = a.len().min(other.duration());
    let c = trace(other.nodes[0], other.start, other.start + len);
    let r_diff_job = stats::pearson(&a[..len], &c);

    println!("=== Fig. 1: MTS examples and pattern-pair structure ===");
    println!(
        "gang job {} ({:?}) on nodes {} and {}: cpu_user Pearson r = {:.3} (similar pair, like (a)-(f))",
        gang.job_id, gang.archetype, na, nb, r_same_job
    );
    println!(
        "vs job {} ({:?}) on node {}: r = {:.3} (different pair, like (b)-(g))",
        other.job_id, other.archetype, other.nodes[0], r_diff_job
    );

    // Sub-pattern variation inside one job (Characteristic 3): compare
    // the first and last thirds of the gang job.
    let third = a.len() / 3;
    let head_mean = stats::mean(&a[..third]);
    let tail_mean = stats::mean(&a[a.len() - third..]);
    println!(
        "sub-pattern variation within job {}: head mean {:.3} vs tail mean {:.3}",
        gang.job_id, head_mean, tail_mean
    );

    // Dump a 1.5-day 6-signal trace for three nodes (CSV to stdout tail).
    let signals = [
        Signal::CpuUser,
        Signal::MemUsed,
        Signal::NetRxBytes,
        Signal::DiskWriteBytes,
        Signal::LoadAvg,
        Signal::CtxSwitches,
    ];
    let span = ds.horizon().min(4320);
    let sample_every = 60; // thin the dump
    println!(
        "\n--- trace dump (t, node, {}) every {} steps ---",
        signals
            .iter()
            .map(|s| s.name())
            .collect::<Vec<_>>()
            .join(", "),
        sample_every
    );
    for t in (0..span).step_by(sample_every) {
        for node in [na, nb, other.nodes[0]] {
            let vals: Vec<String> = signals
                .iter()
                .map(|&s| format!("{:.3}", ds.latent[node][t][s as usize]))
                .collect();
            println!("{t},{node},{}", vals.join(","));
        }
    }
    write_json(
        "fig1",
        &json!({
            "gang_job": gang.job_id,
            "r_same_job": r_same_job,
            "r_diff_job": r_diff_job,
            "head_mean": head_mean,
            "tail_mean": tail_mean,
        }),
    );
    assert!(
        r_same_job > r_diff_job,
        "similar pair must beat different pair"
    );
}
