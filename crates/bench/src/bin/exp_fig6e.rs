//! Fig. 6(e) — F1 vs the pattern-matching period (0.5–2 h of
//! post-transition data used for online cluster matching). Short periods
//! lack context; ~1 h is the recommended operating point.

use ns_bench::{default_ns_config, run_nodesentry, write_json};
use serde_json::json;

fn main() {
    println!("=== Fig. 6(e): F1 vs pattern-matching period ===\n");
    let steps_per_hour = 3600.0 / 30.0; // 30 s sampling
    let mut out = Vec::new();
    for profile in [ns_bench::sweep_profile_d1(), ns_bench::sweep_profile_d2()] {
        let ds = profile.generate();
        print!("{:<10}", ds.profile.name);
        let mut series = Vec::new();
        for hours in [0.5, 1.0, 1.5, 2.0] {
            let mut cfg = default_ns_config();
            cfg.match_period = (hours * steps_per_hour) as usize;
            let (r, _) = run_nodesentry(&ds, cfg);
            print!("  {hours}h: {:.3}", r.f1);
            series.push(json!({ "hours": hours, "f1": r.f1 }));
        }
        println!();
        out.push(json!({ "dataset": ds.profile.name, "series": series }));
    }
    println!("\npaper shape: rises to ~1 h, then flat — 1 h recommended");
    write_json("fig6e", &out);
}
