//! Table 4 — overall effectiveness: NodeSentry vs Prodigy, RUAD, ExaMon
//! and ISC'20 on D1′ and D2′ (P / R / AUC / F1 + offline/online cost).
//!
//! Pass `--sweep-profiles` to run on the smaller sweep datasets instead
//! (faster smoke run).

use ns_baselines::{Detector, Examon, Isc20, Prodigy, Ruad};
use ns_bench::{
    default_ns_config, print_method_row, run_baseline, run_nodesentry, sweep_profile_d1,
    sweep_profile_d2, write_json, MethodResult,
};
use ns_telemetry::DatasetProfile;

fn main() {
    let quick = std::env::args().any(|a| a == "--sweep-profiles");
    let profiles = if quick {
        vec![sweep_profile_d1(), sweep_profile_d2()]
    } else {
        vec![DatasetProfile::d1_prime(), DatasetProfile::d2_prime()]
    };
    println!("=== Table 4: effectiveness of anomaly detection ===\n");
    let mut results: Vec<MethodResult> = Vec::new();
    for profile in profiles {
        println!(
            "--- dataset {} ({} nodes, {} steps) ---",
            profile.name, profile.schedule.n_nodes, profile.schedule.horizon
        );
        let ds = profile.generate();
        let threshold = default_ns_config().threshold;

        let (r, _model) = run_nodesentry(&ds, default_ns_config());
        print_method_row(&r);
        results.push(r);

        let mut baselines: Vec<Box<dyn Detector>> = vec![
            Box::new(Prodigy::default()),
            Box::new(Ruad::default()),
            Box::new(Examon::default()),
            Box::new(Isc20::default()),
        ];
        for det in baselines.iter_mut() {
            let r = run_baseline(&ds, det.as_mut(), &threshold);
            print_method_row(&r);
            results.push(r);
        }
        println!();
    }
    println!("paper reference (D1): NodeSentry F1 0.876 | Prodigy 0.167 | RUAD 0.314 | ExaMon 0.210 | ISC20 0.045");
    println!("paper reference (D2): NodeSentry F1 0.891 | Prodigy 0.199 | RUAD 0.333 | ExaMon 0.282 | ISC20 0.012");
    write_json("table4", &results);
}
