//! Table 3 — monitoring-metric catalog overview by category, at the
//! paper's full hardware shape (exactly 3,014 metrics) and at the scaled
//! experiment shape.

use ns_bench::write_json;
use ns_telemetry::{CatalogSpec, MetricCatalog};
use serde_json::json;

fn print_catalog(title: &str, spec: CatalogSpec) -> serde_json::Value {
    let cat = MetricCatalog::build(spec);
    println!("--- {title} ({} metrics total) ---", cat.len());
    println!("{:<12} {:<58} {:>7}", "Category", "Example", "Number");
    let mut rows = Vec::new();
    for (category, count, examples) in cat.category_table() {
        println!(
            "{:<12} {:<58} {:>7}",
            category.name(),
            format!("{}, etc.", examples.join(", ")),
            count
        );
        rows.push(json!({ "category": category.name(), "count": count, "examples": examples }));
    }
    println!();
    json!({ "title": title, "total": cat.len(), "rows": rows })
}

fn main() {
    println!("=== Table 3: monitoring metric catalog ===\n");
    let full = print_catalog("full hardware shape (paper Table 3)", CatalogSpec::full());
    let scaled = print_catalog("scaled experiment shape (D1')", CatalogSpec::scaled());
    let small = print_catalog("small experiment shape (D2')", CatalogSpec::small());
    println!("paper reference counts: CPU 1378, Memory 945, Filesystem 254, Network 381, Process 12, System 44 (total 3014)");
    write_json("table3", &json!([full, scaled, small]));
}
