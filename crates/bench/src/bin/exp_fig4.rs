//! Fig. 4 — distribution of job durations: the paper reports ~94.9% of
//! job segments last under one day. We print the duration CDF of the D1′
//! schedule at the paper's reference points.

use ns_bench::write_json;
use ns_telemetry::DatasetProfile;
use serde_json::json;

fn main() {
    let profile = DatasetProfile::d1_prime();
    let ds = profile.generate();
    let step_s = profile.interval_s;
    let mut durations_s: Vec<f64> = ds
        .schedule
        .durations()
        .iter()
        .map(|&d| d as f64 * step_s)
        .collect();
    durations_s.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let n = durations_s.len() as f64;

    println!(
        "=== Fig. 4: distribution of job durations (D1', {} jobs) ===",
        ds.schedule.jobs.len()
    );
    println!("{:>14} {:>10}", "duration ≤", "CDF");
    // Report the CDF at log-spaced duration marks, scaled to the profile
    // horizon the way the paper's marks scale to a week.
    let horizon_s = ds.horizon() as f64 * step_s;
    let marks: Vec<f64> = [0.01, 0.02, 0.05, 0.1, 0.2, 0.35, 0.5, 0.75, 1.0]
        .iter()
        .map(|f| f * horizon_s)
        .collect();
    let mut series = Vec::new();
    for &m in &marks {
        let cdf = durations_s.iter().filter(|&&d| d <= m).count() as f64 / n;
        println!("{:>12.1} h {:>9.1}%", m / 3600.0, cdf * 100.0);
        series.push(json!({ "duration_s": m, "cdf": cdf }));
    }
    // The paper's headline number, transposed to our horizon: fraction of
    // jobs shorter than 2/3 of the horizon ("under one day" of a 1.5-day
    // window).
    let short = durations_s
        .iter()
        .filter(|&&d| d <= horizon_s * 2.0 / 3.0)
        .count() as f64
        / n;
    println!();
    println!(
        "fraction of segments shorter than 2/3 horizon: {:.1}%  (paper: 94.9% under one day)",
        short * 100.0
    );
    write_json(
        "fig4",
        &json!({ "jobs": ds.schedule.jobs.len(), "cdf": series, "short_fraction": short }),
    );
}
