//! Diagnostic: which anomaly kinds remain pointwise-visible to ISC'20?

use ns_baselines::{Detector, Isc20};
use ns_bench::{preprocessed_nodes, SMOOTH_WINDOW};
use ns_eval::threshold::{ksigma_detect, smooth_scores, KSigmaConfig};
use ns_telemetry::DatasetProfile;
use std::collections::BTreeMap;

fn main() {
    let ds = DatasetProfile::d1_prime().generate();
    let nodes = preprocessed_nodes(&ds);
    let mut det = Isc20::default();
    det.fit(&nodes, ds.split);
    let threshold = KSigmaConfig::default();
    let mut per_kind: BTreeMap<&str, (usize, usize)> = BTreeMap::new();
    let mut fp = 0usize;
    for (n, data) in nodes.iter().enumerate() {
        let scores = det.score_node(n, data, ds.split);
        let sm = smooth_scores(&scores, SMOOTH_WINDOW);
        let pred = ksigma_detect(&sm, &threshold);
        let truth = ds.labels(n);
        for (i, &p) in pred.iter().enumerate() {
            if p && !truth[i + ds.split] {
                fp += 1;
            }
        }
        for e in ds.events.iter().filter(|e| e.node == n) {
            let hit =
                (e.start..e.end.min(ds.horizon())).any(|t| t >= ds.split && pred[t - ds.split]);
            let entry = per_kind.entry(e.kind.name()).or_default();
            entry.1 += 1;
            if hit {
                entry.0 += 1;
            }
        }
    }
    println!("ISC20 FP points: {fp}");
    for (k, (hit, tot)) in per_kind {
        println!("  {k:<24} {hit}/{tot}");
    }
}
