//! Fig. 8 / §5.2 — the out-of-memory case study: a memory-level failure
//! degrades node metrics; NodeSentry matches the job against its pattern
//! library and flags the anomaly *before* the job fails, giving
//! operators lead time (paper: 54 minutes).

use ns_bench::{default_ns_config, run_nodesentry, transitions_of, write_json};
use ns_telemetry::{AnomalyEvent, AnomalyKind};
use serde_json::json;

fn main() {
    // A dedicated scenario: the sweep profile plus one long memory
    // exhaustion injected into a running job on node 0.
    let mut profile = ns_bench::sweep_profile_d1();
    profile.name = "case-study".into();
    profile.events_per_node = 0.0; // we inject the single case manually
    let mut ds = profile.generate();

    // Find a job on node 0 running inside the test window.
    let split = ds.split;
    let job = ds
        .schedule
        .jobs
        .iter()
        .find(|j| j.nodes.contains(&0) && j.start >= split && j.duration() >= 120)
        .cloned()
        .expect("a long test-window job on node 0");
    // Memory exhaustion starting a third into the job; the job "fails"
    // when the event ends (or the job ends, whichever first).
    let ev_start = job.start + job.duration() / 3;
    let event = AnomalyEvent {
        node: 0,
        kind: AnomalyKind::MemoryExhaustion,
        start: ev_start,
        end: job.end,
    };
    // Re-simulate with the single event.
    ds = {
        let mut p = profile.clone();
        p.events_per_node = 0.0;
        let mut d = p.generate();
        let events = vec![event.clone()];
        d.latent =
            ns_telemetry::simulator::simulate_cluster(&d.schedule, &events, p.interval_s, p.seed);
        d.events = events;
        d
    };
    let failure_step = ds.failure_step(&event).expect("event overlaps the job");

    println!("=== Fig. 8 case study: memory exhaustion on node 0 ===");
    println!(
        "job {} ({:?}) on nodes {:?}: steps {}..{}",
        job.job_id, job.archetype, job.nodes, job.start, job.end
    );
    println!("anomaly onset step {ev_start}, job failure step {failure_step}");

    let (result, model) = run_nodesentry(&ds, default_ns_config());
    println!(
        "detector trained: {} clusters, F1 on this scenario {:.3}",
        model.n_clusters(),
        result.f1
    );

    let raw = ds.raw_node(0);
    let pred = model.detect_node(&raw, &transitions_of(&ds, 0), split);
    let first_detection = pred
        .iter()
        .enumerate()
        .filter(|(t, &p)| p && t + split >= ev_start)
        .map(|(t, _)| t + split)
        .next();

    match first_detection {
        Some(step) => {
            let lead_steps = failure_step.saturating_sub(step);
            let lead_min = lead_steps as f64 * ds.profile.interval_s / 60.0;
            println!(
                "first detection at step {step} → lead time before job failure: {lead_min:.1} minutes"
            );
            println!("(paper case study: detected 54 minutes before the job failure)");
            write_json(
                "fig8_case_study",
                &json!({
                    "onset": ev_start,
                    "failure": failure_step,
                    "first_detection": step,
                    "lead_minutes": lead_min,
                }),
            );
            assert!(step < failure_step, "detection must precede failure");
        }
        None => {
            println!("anomaly NOT detected — case study failed");
            write_json("fig8_case_study", &json!({ "detected": false }));
            std::process::exit(1);
        }
    }
}
