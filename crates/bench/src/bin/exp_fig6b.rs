//! Fig. 6(b) — F1 vs number of clusters, swept as multiples ×0.1–×2 of
//! the silhouette-selected count. Too few clusters hurt badly; extra
//! clusters plateau.

use ns_bench::{default_ns_config, run_nodesentry, write_json};
use serde_json::json;

fn main() {
    println!("=== Fig. 6(b): F1 vs number of clusters (x of auto-k) ===\n");
    let mut out = Vec::new();
    for profile in [ns_bench::sweep_profile_d1(), ns_bench::sweep_profile_d2()] {
        let ds = profile.generate();
        // Discover the auto-selected k first.
        let (auto, model) = run_nodesentry(&ds, default_ns_config());
        let k_auto = model.n_clusters();
        println!("{}: auto k = {k_auto} (F1 {:.3})", ds.profile.name, auto.f1);
        let mut series = vec![json!({ "factor": 1.0, "k": k_auto, "f1": auto.f1 })];
        for factor in [0.1, 0.5, 1.5, 2.0] {
            let k = ((k_auto as f64 * factor).round() as usize).max(1);
            let mut cfg = default_ns_config();
            cfg.coarse.force_k = Some(k);
            let (r, _) = run_nodesentry(&ds, cfg);
            println!("  x{factor:<4} (k={k}): F1 {:.3}", r.f1);
            series.push(json!({ "factor": factor, "k": k, "f1": r.f1 }));
        }
        out.push(json!({ "dataset": ds.profile.name, "k_auto": k_auto, "series": series }));
        println!();
    }
    println!("paper shape: performance collapses below the optimal k, stabilises above it");
    write_json("fig6b", &out);
}
