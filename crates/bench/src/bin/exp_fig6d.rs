//! Fig. 6(d) — F1 vs number of experts assigned per token (top-k 1–5,
//! with a 5-expert pool). The paper finds top-1 optimal: blending
//! specialists adds complexity without accuracy.

use ns_bench::{default_ns_config, run_nodesentry, write_json};
use serde_json::json;

fn main() {
    println!("=== Fig. 6(d): F1 vs experts assigned per token (5-expert pool) ===\n");
    let mut out = Vec::new();
    for profile in [ns_bench::sweep_profile_d1(), ns_bench::sweep_profile_d2()] {
        let ds = profile.generate();
        print!("{:<10}", ds.profile.name);
        let mut series = Vec::new();
        for top_k in 1..=5usize {
            let mut cfg = default_ns_config();
            cfg.sharing.n_experts = 5;
            cfg.sharing.top_k = top_k;
            let (r, _) = run_nodesentry(&ds, cfg);
            print!("  k={top_k}: {:.3}", r.f1);
            series.push(json!({ "top_k": top_k, "f1": r.f1 }));
        }
        println!();
        out.push(json!({ "dataset": ds.profile.name, "series": series }));
    }
    println!("\npaper shape: best with a single expert per token");
    write_json("fig6d", &out);
}
