//! Diagnostic: per-test-segment matching quality and scores.

use nodesentry_core::NodeSentry;
use ns_bench::{default_ns_config, transitions_of, DatasetSource};

fn main() {
    let ds = ns_bench::sweep_profile_d1().generate();
    let cfg = default_ns_config();
    let groups = ds.catalog.group_ids();
    let model = NodeSentry::fit_from_source(cfg, &DatasetSource(&ds), &groups, ds.split);
    eprintln!("clusters: {}", model.n_clusters());
    // Map training segments to archetypes for reference.
    let arch_of = |node: usize, start: usize| {
        ds.schedule
            .job_at(node, start)
            .map(|j| format!("{:?}", ds.schedule.jobs[j].archetype))
            .unwrap_or_else(|| "Idle".into())
    };
    // Cluster → archetype histogram of training segments.
    for c in 0..model.n_clusters() {
        let mut hist: std::collections::BTreeMap<String, usize> = Default::default();
        for (i, seg) in model.train_segments.iter().enumerate() {
            if model.cluster_model.labels[i] == c {
                *hist.entry(arch_of(seg.node, seg.start)).or_default() += 1;
            }
        }
        eprintln!("cluster {c}: {hist:?}");
    }
    for node in 0..2 {
        let raw = ds.raw_node(node);
        let (scores, matches) = model.score_node(&raw, &transitions_of(&ds, node), ds.split);
        let labels = ds.labels(node);
        eprintln!("--- node {node} test segments ---");
        for (start, end, cluster) in matches {
            let arch = arch_of(node, start);
            let lo = start - ds.split;
            let hi = end - ds.split;
            let seg_scores = &scores[lo..hi];
            let n_anom = (start..end).filter(|&t| labels[t]).count();
            let mean_normal: f64 = {
                let v: Vec<f64> = (lo..hi)
                    .filter(|&i| !labels[i + ds.split])
                    .map(|i| scores[i])
                    .collect();
                if v.is_empty() {
                    0.0
                } else {
                    v.iter().sum::<f64>() / v.len() as f64
                }
            };
            let max_s = seg_scores.iter().cloned().fold(0.0f64, f64::max);
            eprintln!(
                "  seg {start}..{end} ({arch}) → cluster {cluster} | normal-mean {mean_normal:.2} max {max_s:.2} anom_pts {n_anom}"
            );
        }
    }
}
