//! Fig. 6(f) — F1 vs the k-sigma threshold time window (15–45 min).
//! NodeSentry is robust across window lengths; shorter windows are
//! recommended for cost.

use ns_bench::{default_ns_config, run_nodesentry, write_json};
use serde_json::json;

fn main() {
    println!("=== Fig. 6(f): F1 vs threshold-selection time window ===\n");
    let steps_per_minute = 2.0; // 30 s sampling
    let mut out = Vec::new();
    for profile in [ns_bench::sweep_profile_d1(), ns_bench::sweep_profile_d2()] {
        let ds = profile.generate();
        print!("{:<10}", ds.profile.name);
        let mut series = Vec::new();
        for minutes in [15.0, 20.0, 30.0, 45.0] {
            let mut cfg = default_ns_config();
            cfg.threshold.window = (minutes * steps_per_minute) as usize;
            let (r, _) = run_nodesentry(&ds, cfg);
            print!("  {minutes}min: {:.3}", r.f1);
            series.push(json!({ "minutes": minutes, "f1": r.f1 }));
        }
        println!();
        out.push(json!({ "dataset": ds.profile.name, "series": series }));
    }
    println!("\npaper shape: flat — robust to the window; short windows suffice");
    write_json("fig6f", &out);
}
