//! Fig. 6(a) / RQ3 — F1 vs training-set size (20%–100% of the training
//! window). Also the incremental-training experiment of §4.5: smaller
//! training sets degrade performance, recovering as data accumulates.

use nodesentry_core::NodeSentry;
use ns_bench::{default_ns_config, evaluate_scores, transitions_of, write_json, DatasetSource};
use ns_telemetry::Dataset;
use serde_json::json;

fn f1_with_fraction(ds: &Dataset, frac: f64) -> f64 {
    let cfg = default_ns_config();
    let threshold = cfg.threshold;
    let fit_split = ((ds.split as f64) * frac) as usize;
    let groups = ds.catalog.group_ids();
    let model = NodeSentry::fit_from_source(cfg, &DatasetSource(ds), &groups, fit_split.max(100));
    let per_node: Vec<Vec<f64>> = (0..ds.n_nodes())
        .map(|n| {
            let raw = ds.raw_node(n);
            model.score_node(&raw, &transitions_of(ds, n), ds.split).0
        })
        .collect();
    evaluate_scores(ds, &per_node, &threshold).f1
}

fn main() {
    println!("=== Fig. 6(a): F1 vs training set size ===\n");
    let mut out = Vec::new();
    for profile in [ns_bench::sweep_profile_d1(), ns_bench::sweep_profile_d2()] {
        let ds = profile.generate();
        print!("{:<10}", ds.profile.name);
        let mut series = Vec::new();
        for frac in [0.2, 0.4, 0.6, 0.8, 1.0] {
            let f1 = f1_with_fraction(&ds, frac);
            print!("  {:.0}%: {:.3}", frac * 100.0, f1);
            series.push(json!({ "fraction": frac, "f1": f1 }));
        }
        println!();
        out.push(json!({ "dataset": ds.profile.name, "series": series }));
    }
    println!("\npaper shape: F1 rises steeply with training size, saturating near 100%");
    write_json("fig6a", &out);
}
