//! Robustness experiment: how much detection quality does each telemetry
//! fault class cost, as a function of fault rate?
//!
//! A detector is trained once on a clean simulated cluster. The held-out
//! window is then replayed through the hardened `ns-stream` engine — once
//! clean (baseline) and once per (fault class × fault rate) cell, with
//! faults injected by `ns-telemetry::faults`. Missing verdicts (dropped
//! ticks, blackout gaps) count as "not flagged", exactly what an operator
//! dashboard would show. For every cell the experiment reports:
//!
//! * adjusted precision/recall against the injected anomaly ground
//!   truth, overall and restricted to steps *outside* the fault windows
//!   (via `interval_mask`) — the latter shows the engine's containment:
//!   outside the windows, quality should stay at baseline;
//! * the engine's fault counters (synthesized rows, blackouts,
//!   degraded/suppressed verdicts, …), which is how a deployment
//!   observes its own degradation.
//!
//! Results land in `target/experiments/faults.json`.

use nodesentry_core::{NodeSentry, NodeSentryConfig};
use ns_bench::{transitions_of, write_bench_json, write_json, DatasetSource};
use ns_eval::metrics::{adjusted_confusion, aggregate, interval_mask, NodeScores};
use ns_stream::{Engine, EngineConfig, Tick};
use ns_telemetry::{DatasetProfile, FaultInjector, FaultPlan, FaultPlanSpec, ALL_FAULTS};
use serde_json::json;
use std::collections::HashSet;
use std::sync::Arc;

const RATES: [f64; 3] = [0.02, 0.05, 0.10];
const N_SHARDS: usize = 3;

fn engine_cfg(split: usize) -> EngineConfig {
    let mut cfg = EngineConfig::new(split);
    cfg.n_shards = N_SHARDS;
    cfg.smooth_window = 1;
    cfg.reorder_bound = 16;
    cfg.blackout_gap = 60;
    cfg
}

struct Cell {
    precision: f64,
    recall: f64,
    outside_precision: f64,
    outside_recall: f64,
}

/// Replay `stream` through a fresh engine and score the verdicts against
/// ground truth, overall and outside the per-node `dirty` windows.
fn run_cell(
    model: &Arc<NodeSentry>,
    ds: &ns_telemetry::Dataset,
    stream: &[Tick],
    dirty: &[Vec<(usize, usize)>],
) -> (Cell, ns_stream::FaultCounters) {
    let engine = Engine::new(Arc::clone(model), engine_cfg(ds.split));
    for chunk in stream.chunks(512) {
        engine.ingest(chunk.to_vec()).expect("stream shard alive");
    }
    let report = engine.finish();
    let span = ds.horizon() - ds.split;
    let mut overall = Vec::new();
    let mut outside = Vec::new();
    for (n, node_dirty) in dirty.iter().enumerate() {
        // Missing verdicts (dropped ticks, blackouts) read as "not
        // flagged" — the operator-visible default.
        let mut pred = vec![false; span];
        for v in report.verdicts.iter().filter(|v| v.node == n) {
            pred[v.step - ds.split] = v.anomalous;
        }
        let truth_full = ds.labels(n);
        let truth = &truth_full[ds.split..];
        let c = adjusted_confusion(&pred, truth, None);
        overall.push(NodeScores {
            precision: c.precision(),
            recall: c.recall(),
            auc: 0.0,
        });
        let local: Vec<(usize, usize)> = node_dirty
            .iter()
            .map(|&(s, e)| (s.saturating_sub(ds.split), e.saturating_sub(ds.split)))
            .collect();
        let mask = interval_mask(span, &local);
        let c = adjusted_confusion(&pred, truth, Some(&mask));
        outside.push(NodeScores {
            precision: c.precision(),
            recall: c.recall(),
            auc: 0.0,
        });
    }
    let all = aggregate(&overall);
    let out = aggregate(&outside);
    (
        Cell {
            precision: all.precision,
            recall: all.recall,
            outside_precision: out.precision,
            outside_recall: out.recall,
        },
        report.faults,
    )
}

fn main() {
    // Live metrics + spans; verdict equivalence with observability off is
    // pinned by tests/obs_equivalence.rs.
    ns_obs::enable_all();
    let sweep_span = ns_obs::trace::span("fault_sweep");
    let mut profile = DatasetProfile::tiny();
    profile.name = "faults".into();
    profile.schedule.n_nodes = 6;
    profile.schedule.horizon = 1200;
    profile.events_per_node = 2.0;
    let ds = profile.generate();

    // Trimmed hyperparameters: the experiment needs a competent detector,
    // not a paper-scale one, and it replays the stream 25 times.
    let mut cfg = NodeSentryConfig::default();
    cfg.sharing.epochs = 8;
    cfg.sharing.n_experts = 2;
    let groups = ds.catalog.group_ids();
    let model = NodeSentry::fit_from_source(cfg, &DatasetSource(&ds), &groups, ds.split);
    println!(
        "=== fault robustness: {} nodes × {} steps, {} clusters ===",
        ds.n_nodes(),
        ds.horizon(),
        model.n_clusters()
    );
    let model = Arc::new(model);

    let transition_sets: Vec<HashSet<usize>> = (0..ds.n_nodes())
        .map(|n| transitions_of(&ds, n).into_iter().collect())
        .collect();
    let mut clean = Vec::new();
    for step in 0..ds.horizon() {
        for (node, transitions) in transition_sets.iter().enumerate() {
            clean.push(Tick {
                node,
                step,
                values: ds.raw_node(node).row(step).to_vec(),
                transition: transitions.contains(&step),
            });
        }
    }

    let pp = &model.preprocessor;
    let n_cols = pp.groups.len();
    let counter_cols: Vec<usize> = (0..n_cols)
        .filter(|&c| pp.counters[pp.groups[c]] && pp.kept.contains(&pp.groups[c]))
        .collect();

    let no_dirty = vec![Vec::new(); ds.n_nodes()];
    let (base, base_faults) = run_cell(&model, &ds, &clean, &no_dirty);
    assert!(base_faults.is_clean(), "clean replay must trip no counters");
    println!(
        "baseline (clean stream): precision {:.3} / recall {:.3}",
        base.precision, base.recall
    );
    println!(
        "{:<14} {:>5}  {:>6} {:>6}  {:>6} {:>6}  {:>6} {:>6}  engine counters",
        "class", "rate", "prec", "rec", "Δprec", "Δrec", "o.prec", "o.rec"
    );

    let mut records = Vec::new();
    let mut total_faults = ns_stream::FaultCounters::default();
    let mut n_cells = 0usize;
    for (ki, kind) in ALL_FAULTS.iter().enumerate() {
        for (ri, &rate) in RATES.iter().enumerate() {
            let spec = FaultPlanSpec {
                seed: 0x0FA17 + (ki as u64) * 31 + ri as u64,
                window: (ds.split, ds.horizon()),
                kinds: vec![*kind],
                rate,
                event_len: (4, 40),
                n_cols,
                counter_cols: counter_cols.clone(),
            };
            let plan = FaultPlan::random(&spec, ds.n_nodes());
            if plan.events.is_empty() {
                // CounterReset is skipped when the catalog keeps no
                // counter groups; keep the sweep honest about it.
                println!(
                    "{:<14} {:>5.2}  (no events generated, skipped)",
                    format!("{kind:?}"),
                    rate
                );
                continue;
            }
            let dirty: Vec<Vec<(usize, usize)>> =
                (0..ds.n_nodes()).map(|n| plan.dirty_windows(n)).collect();
            let outcome = FaultInjector::new(plan).apply(&clean);
            let (cell, faults) = run_cell(&model, &ds, &outcome.stream, &dirty);
            total_faults.merge(&faults);
            n_cells += 1;
            println!(
                "{:<14} {:>5.2}  {:>6.3} {:>6.3}  {:>+6.3} {:>+6.3}  {:>6.3} {:>6.3}  syn {} nan {} rst {} stk {} blk {} degr {} supp {} quar {}",
                format!("{kind:?}"),
                rate,
                cell.precision,
                cell.recall,
                cell.precision - base.precision,
                cell.recall - base.recall,
                cell.outside_precision,
                cell.outside_recall,
                faults.synthesized_rows,
                faults.nan_rows,
                faults.counter_resets,
                faults.stuck_rows,
                faults.blackouts,
                faults.degraded_verdicts,
                faults.suppressed_verdicts,
                faults.quarantined_nodes,
            );
            let counters = json!({
                "late_ticks": faults.late_ticks,
                "duplicate_ticks": faults.duplicate_ticks,
                "reordered_ticks": faults.reordered_ticks,
                "synthesized_rows": faults.synthesized_rows,
                "nan_rows": faults.nan_rows,
                "counter_resets": faults.counter_resets,
                "stuck_rows": faults.stuck_rows,
                "blackouts": faults.blackouts,
                "degraded_verdicts": faults.degraded_verdicts,
                "suppressed_verdicts": faults.suppressed_verdicts,
            });
            records.push(json!({
                "class": format!("{kind:?}"),
                "rate": rate,
                "precision": cell.precision,
                "recall": cell.recall,
                "precision_drop": base.precision - cell.precision,
                "recall_drop": base.recall - cell.recall,
                "outside_precision": cell.outside_precision,
                "outside_recall": cell.outside_recall,
                "counters": counters,
            }));
        }
    }
    let baseline = json!({ "precision": base.precision, "recall": base.recall });
    write_json(
        "faults",
        &json!({
            "baseline": baseline,
            "rates": RATES.to_vec(),
            "cells": records,
            "n_shards": N_SHARDS,
        }),
    );

    // Machine-readable benchmark record: sweep wall time, the per-point
    // latency distribution accumulated across every replay (read back
    // from the live ns-obs histograms), and summed fault counters.
    let wall_s = sweep_span.finish_seconds();
    let reg = ns_obs::metrics::global();
    let q = |q: f64| {
        reg.histogram_quantile(ns_stream::metrics::POINT_SECONDS, &[], q)
            .unwrap_or(0.0)
    };
    let faults = serde_json::Value::Object(
        total_faults
            .as_pairs()
            .iter()
            .map(|&(class, v)| (class.to_string(), serde_json::to_value(&v)))
            .collect(),
    );
    let point_latency = json!({
        "p50_ms": q(0.50) * 1e3,
        "p90_ms": q(0.90) * 1e3,
        "p99_ms": q(0.99) * 1e3,
    });
    write_bench_json(
        "faults",
        &json!({
            "wall_s": wall_s,
            "n_cells": n_cells,
            "n_shards": N_SHARDS,
            "baseline": baseline,
            "point_latency": point_latency,
            "faults": faults,
        }),
    );

    println!("\n--- span report ---");
    print!("{}", ns_obs::trace::report());
}
