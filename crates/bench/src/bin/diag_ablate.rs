//! Diagnostic: isolate which scale dimension degrades precision.

use ns_bench::{default_ns_config, run_nodesentry};
use ns_telemetry::DatasetProfile;

fn main() {
    for (label, nodes, horizon) in [
        ("10n-2880h", 10usize, 2880usize),
        ("24n-2880h", 24, 2880),
        ("10n-4320h", 10, 4320),
    ] {
        let mut p = DatasetProfile::d1_prime();
        p.name = label.into();
        p.schedule.n_nodes = nodes;
        p.schedule.horizon = horizon;
        let ds = p.generate();
        let (r, _) = run_nodesentry(&ds, default_ns_config());
        println!(
            "{label}: P={:.3} R={:.3} AUC={:.3} F1={:.3} (offline {:.0}s)",
            r.precision, r.recall, r.auc, r.f1, r.offline_s
        );
    }
}
