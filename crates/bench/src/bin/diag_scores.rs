//! Diagnostic: inspect NodeSentry score distributions on one sweep node.

use nodesentry_core::NodeSentry;
use ns_bench::{default_ns_config, transitions_of, DatasetSource};

fn main() {
    let ds = ns_bench::sweep_profile_d1().generate();
    let cfg = default_ns_config();
    let groups = ds.catalog.group_ids();
    let model = NodeSentry::fit_from_source(cfg, &DatasetSource(&ds), &groups, ds.split);
    eprintln!(
        "clusters: {} silhouette {:.3}",
        model.n_clusters(),
        model.cluster_model.silhouette
    );
    eprintln!("segments: {}", model.train_segments.len());
    for (c, m) in model.shared_models.iter().enumerate() {
        eprintln!(
            "cluster {c}: members {} loss history {:?}",
            model
                .cluster_model
                .labels
                .iter()
                .filter(|&&l| l == c)
                .count(),
            m.loss_history
        );
    }
    for node in 0..3 {
        let raw = ds.raw_node(node);
        let (scores, matches) = model.score_node(&raw, &transitions_of(&ds, node), ds.split);
        let labels = ds.labels(node);
        let truth = &labels[ds.split..];
        let mut normal = Vec::new();
        let mut anom = Vec::new();
        for (i, &s) in scores.iter().enumerate() {
            if truth[i] {
                anom.push(s);
            } else {
                normal.push(s);
            }
        }
        let mean = |v: &[f64]| {
            if v.is_empty() {
                0.0
            } else {
                v.iter().sum::<f64>() / v.len() as f64
            }
        };
        let mx = |v: &[f64]| v.iter().cloned().fold(0.0f64, f64::max);
        eprintln!(
            "node {node}: segments {} | normal mean {:.4} p99 {:.4} max {:.4} | anomaly mean {:.4} max {:.4} (n={})",
            matches.len(),
            mean(&normal),
            {
                let mut v = normal.clone();
                v.sort_by(|a, b| a.partial_cmp(b).unwrap());
                ns_linalg::stats::quantile_sorted(&v, 0.99)
            },
            mx(&normal),
            mean(&anom),
            mx(&anom),
            anom.len()
        );
        // Score profile around each event of this node.
        for e in ds.events.iter().filter(|e| e.node == node) {
            let lo = e.start - ds.split;
            let hi = (e.end - ds.split).min(scores.len());
            eprintln!(
                "  event {:?} {}..{}: mean score {:.4}",
                e.kind,
                e.start,
                e.end,
                mean(&scores[lo..hi])
            );
        }
    }
}
