//! Diagnostic: where do NodeSentry's false positives come from on the
//! full profiles, and which anomaly kinds get missed?

use nodesentry_core::NodeSentry;
use ns_bench::{default_ns_config, transitions_of, DatasetSource, SMOOTH_WINDOW};
use ns_eval::threshold::{ksigma_detect, smooth_scores};
use ns_telemetry::DatasetProfile;
use std::collections::BTreeMap;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let ds = if full {
        DatasetProfile::d1_prime().generate()
    } else {
        ns_bench::sweep_profile_d1().generate()
    };
    let cfg = default_ns_config();
    let threshold = cfg.threshold;
    let groups = ds.catalog.group_ids();
    let model = NodeSentry::fit_from_source(cfg, &DatasetSource(&ds), &groups, ds.split);
    eprintln!(
        "clusters: {} segments {}",
        model.n_clusters(),
        model.train_segments.len()
    );

    let mut fp_by_arch: BTreeMap<String, usize> = BTreeMap::new();
    let mut events_hit: BTreeMap<String, (usize, usize)> = BTreeMap::new();
    let mut total_fp = 0usize;
    let mut total_tp = 0usize;
    for node in 0..ds.n_nodes() {
        let raw = ds.raw_node(node);
        let (scores, _matches) = model.score_node(&raw, &transitions_of(&ds, node), ds.split);
        let sm = smooth_scores(&scores, SMOOTH_WINDOW);
        let pred = ksigma_detect(&sm, &threshold);
        let truth = ds.labels(node);
        for (i, &p) in pred.iter().enumerate() {
            let t = i + ds.split;
            if p && !truth[t] {
                total_fp += 1;
                let arch = ds
                    .schedule
                    .job_at(node, t)
                    .map(|j| format!("{:?}", ds.schedule.jobs[j].archetype))
                    .unwrap_or_else(|| "Idle".into());
                *fp_by_arch.entry(arch).or_default() += 1;
            }
            if p && truth[t] {
                total_tp += 1;
            }
        }
        for e in ds.events.iter().filter(|e| e.node == node) {
            let hit =
                (e.start..e.end.min(ds.horizon())).any(|t| t >= ds.split && pred[t - ds.split]);
            let entry = events_hit.entry(e.kind.name().to_string()).or_default();
            entry.1 += 1;
            if hit {
                entry.0 += 1;
            }
        }
    }
    eprintln!("total flagged: TP {total_tp} FP {total_fp}");
    eprintln!("FP points by running archetype: {fp_by_arch:?}");
    eprintln!("event detection by kind:");
    for (k, (hit, tot)) in events_hit {
        eprintln!("  {k:<24} {hit}/{tot}");
    }
}
