//! §5.1 deployment — the month-long online monitoring loop in miniature:
//! a LAMMPS-like compute workload runs while ChaosBlade-style faults are
//! injected; telemetry streams tick by tick through the sharded
//! `ns-stream` engine, which pattern-matches each post-transition probe
//! and emits per-point verdicts. Reports matching latency, per-point
//! detection latency, streaming throughput, and precision/recall on the
//! injections.

use nodesentry_core::{NodeInput, NodeSentry};
use ns_bench::{default_ns_config, transitions_of, write_bench_json, write_json, DatasetSource};
use ns_eval::metrics::{adjusted_confusion, aggregate, NodeScores};
use ns_stream::{Engine, EngineConfig, EngineReport, ScoringPrecision, Tick};
use ns_telemetry::{DatasetProfile, IngestClient, TickReplay};
use serde_json::json;
use std::collections::HashSet;
use std::sync::Arc;
use std::time::Instant;

/// Peak resident set (VmHWM) in MiB, from `/proc/self/status` — the
/// memory ceiling of everything run so far. `None` off Linux.
fn vm_hwm_mib() -> Option<f64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    let kb: f64 = line.split_whitespace().nth(1)?.parse().ok()?;
    Some(kb / 1024.0)
}

/// §5.1 at deployment scale: a D1′-shaped cluster of `NS_DEPLOY_NODES`
/// (default 1,000) nodes streamed through the engine with a full
/// elastic lifecycle mid-run — checkpoint, teardown, restore from the
/// snapshot bytes at a *smaller* shard count, and replay of the tail.
/// Ticks come from [`TickReplay`], which synthesizes raw rows in small
/// step chunks instead of materializing a thousand node matrices, so
/// the measured memory ceiling is the engine's, not the harness's.
fn elastic_lifecycle() -> serde_json::Value {
    let n_nodes: usize = std::env::var("NS_DEPLOY_NODES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1000);
    let mut profile = DatasetProfile::d1_prime();
    profile.name = format!("deployment-elastic-{n_nodes}");
    profile.schedule.n_nodes = n_nodes;
    profile.schedule.horizon = 480; // 4 simulated hours at 30 s
    profile.schedule.max_width = 16;
    profile.events_per_node = 0.0; // clean feed: lifecycle cost, not accuracy
    profile.missing_rate = 0.0;
    let ds = profile.generate();
    println!(
        "\n=== elastic lifecycle at deployment scale ({} nodes x {} steps) ===",
        ds.n_nodes(),
        ds.horizon()
    );

    // Fit on a node subsample: the library generalizes across nodes by
    // construction, and this phase benchmarks the lifecycle, not
    // training. Trimmed epochs for the same reason.
    let fit_nodes = ds.n_nodes().min(16);
    let groups = ds.catalog.group_ids();
    let inputs: Vec<NodeInput> = (0..fit_nodes)
        .map(|n| NodeInput {
            raw: ds.raw_node(n),
            transitions: transitions_of(&ds, n),
        })
        .collect();
    let mut cfg = default_ns_config();
    cfg.sharing.epochs = 10;
    let model = Arc::new(NodeSentry::fit(cfg, &inputs, &groups, ds.split));
    drop(inputs);
    println!(
        "fit on {fit_nodes}-node subsample: {} clusters",
        model.n_clusters()
    );

    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let pre_shards = cores.clamp(2, 8);
    let post_shards = (pre_shards / 2).max(1);
    let mut ecfg = EngineConfig::new(ds.split);
    ecfg.n_shards = pre_shards;
    ecfg.smooth_window = 1;
    // Bound in-flight batches: at a thousand wide-catalog nodes the
    // default queue depth would let backpressure admit gigabytes.
    ecfg.queue_depth = 8;

    let cut_step = ds.split + (ds.horizon() - ds.split) / 2;
    let mut replay = TickReplay::new(&ds, 12);
    let engine = Engine::new(Arc::clone(&model), ecfg);
    let t0 = Instant::now();
    for _ in 0..cut_step {
        let cycle = replay.next_cycle().expect("steps before the cut");
        engine.ingest(cycle).expect("stream shard alive");
    }
    let ck_t = Instant::now();
    let ckpt = engine.checkpoint().expect("checkpoint");
    let checkpoint_ms = ck_t.elapsed().as_secs_f64() * 1e3;
    let snapshot_mib = ckpt.bytes.len() as f64 / (1024.0 * 1024.0);
    // Teardown: the tail must come from the restored engine alone.
    drop(engine);

    let mut post_cfg = ecfg;
    post_cfg.n_shards = post_shards;
    let rs_t = Instant::now();
    let restored =
        Engine::restore_bytes(Arc::clone(&model), post_cfg, &ckpt.bytes).expect("restore");
    let restore_ms = rs_t.elapsed().as_secs_f64() * 1e3;
    while let Some(cycle) = replay.next_cycle() {
        restored.ingest(cycle).expect("restored shard alive");
    }
    let report = restored.finish();
    let wall_s = t0.elapsed().as_secs_f64();

    // Scale-level conformance: on a clean feed, prefix + tail verdicts
    // cover the whole test span exactly once per node — nothing dropped
    // at the cut, nothing duplicated across the reshard.
    let expected = ds.n_nodes() * (ds.horizon() - ds.split);
    assert_eq!(
        ckpt.verdicts.len() + report.verdicts.len(),
        expected,
        "elastic lifecycle lost or duplicated verdicts"
    );
    assert_eq!(report.n_shards, post_shards);

    let ticks_total = report.stats.n_ticks;
    let throughput = ticks_total as f64 / wall_s.max(1e-9);
    let shares: Vec<u64> = report.per_shard.iter().map(|s| s.n_ticks).collect();
    let mean_share = ticks_total as f64 / report.n_shards as f64;
    let imbalance = shares
        .iter()
        .map(|&s| s as f64 / mean_share.max(1e-9))
        .fold(0.0f64, f64::max);
    let hwm = vm_hwm_mib();

    println!(
        "streamed {ticks_total} ticks in {wall_s:.1} s ({throughput:.0} ticks/s), \
         {pre_shards} -> {post_shards} shards across the cut"
    );
    println!(
        "checkpoint {checkpoint_ms:.1} ms ({snapshot_mib:.2} MiB snapshot), restore {restore_ms:.1} ms"
    );
    println!(
        "per-shard tick shares {shares:?} (max/mean {imbalance:.3}); peak RSS {} MiB",
        hwm.map(|m| format!("{m:.0}"))
            .unwrap_or_else(|| "n/a".into())
    );

    json!({
        "n_nodes": ds.n_nodes(),
        "horizon": ds.horizon(),
        "ticks_total": ticks_total,
        "wall_s": wall_s,
        "ticks_per_s": throughput,
        "pre_shards": pre_shards,
        "post_shards": report.n_shards,
        "checkpoint_ms": checkpoint_ms,
        "restore_ms": restore_ms,
        "snapshot_mib": snapshot_mib,
        "per_shard_ticks": shares,
        "shard_imbalance_max_over_mean": imbalance,
        "vm_hwm_mib": hwm,
        "verdicts": expected,
    })
}

/// Percentile of an unsorted sample, in place.
fn pctl(samples: &mut [f64], q: f64) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let idx = ((samples.len() - 1) as f64 * q).round() as usize;
    samples[idx]
}

/// The same D2′ replay, but over TCP: the engine sits behind
/// [`Engine::serve_ingest`], every tick crosses the `ns-wire` framed
/// protocol through the blocking [`IngestClient`], and one ping per
/// monitoring cycle measures end-to-end ingestion RTT (a pong proves
/// every frame sent before it was consumed by the engine, so the RTT
/// covers framing, TCP, reassembly, and the sharded ingest — not just
/// the socket). Asserts the verdict stream is bit-identical to the
/// in-process baseline before reporting any numbers.
#[allow(clippy::too_many_arguments)]
fn over_the_wire(
    model: &Arc<NodeSentry>,
    baseline: &EngineReport,
    baseline_ticks_per_s: f64,
    engine_cfg: EngineConfig,
    raws: &[ns_linalg::Matrix],
    transition_sets: &[HashSet<usize>],
    horizon: usize,
    steps_per_hour: usize,
) -> serde_json::Value {
    let engine = Engine::new(Arc::clone(model), engine_cfg);
    let server = engine
        .serve_ingest("127.0.0.1:0")
        .expect("bind ingest server");
    let mut client = IngestClient::connect(server.local_addr()).expect("connect ingest client");

    let t0 = Instant::now();
    let mut rtts_ms: Vec<f64> = Vec::new();
    // Send + ping cadence: fine enough that the RTT p99 is backed by
    // >=100 samples across the horizon. One ping per monitoring hour
    // gave ~24, so the reported p99 was whichever single RTT happened
    // to be slowest that run.
    let wire_cadence = (horizon / 120).max(1).min(steps_per_hour.max(1));
    let mut cycle: Vec<Tick> = Vec::with_capacity(raws.len() * wire_cadence);
    for step in 0..horizon {
        for (n, raw) in raws.iter().enumerate() {
            cycle.push(Tick {
                node: n,
                step,
                values: raw.row(step).to_vec(),
                transition: transition_sets[n].contains(&step),
            });
        }
        if (step + 1) % wire_cadence == 0 {
            client
                .send_cycle(&std::mem::take(&mut cycle))
                .expect("send cycle over the wire");
            let rtt = client.ping().expect("ping");
            rtts_ms.push(rtt.as_secs_f64() * 1e3);
        }
    }
    client.send_cycle(&cycle).expect("send tail cycle");
    let (verdicts, wire_report) = client.finish().expect("finish over the wire");
    let wall_s = t0.elapsed().as_secs_f64();
    server.shutdown();

    // Hard bit-identity gate: the transport must be invisible.
    assert_eq!(
        verdicts.len(),
        baseline.verdicts.len(),
        "over-the-wire verdict count diverged"
    );
    for (w, b) in verdicts.iter().zip(&baseline.verdicts) {
        assert_eq!(w.node, b.node as u64, "wire verdict node diverged");
        assert_eq!(w.step, b.step as u64, "wire verdict step diverged");
        assert_eq!(
            w.score_bits,
            b.score.to_bits(),
            "wire verdict score bits diverged at node {} step {}",
            b.node,
            b.step
        );
        assert_eq!(w.anomalous, b.anomalous, "wire verdict flag diverged");
    }

    let ticks_per_s = wire_report.n_ticks as f64 / wall_s.max(1e-9);
    let (p50, p90, p99) = (
        pctl(&mut rtts_ms, 0.50),
        pctl(&mut rtts_ms, 0.90),
        pctl(&mut rtts_ms, 0.99),
    );
    println!(
        "over the wire: {} ticks in {:.1} s ({:.0} ticks/s, {:.2}x in-process), \
         e2e ingest RTT p50 {:.2} ms / p90 {:.2} ms / p99 {:.2} ms",
        wire_report.n_ticks,
        wall_s,
        ticks_per_s,
        baseline_ticks_per_s / ticks_per_s.max(1e-9),
        p50,
        p90,
        p99,
    );
    println!(
        "over the wire: verdict stream bit-identical to in-process ({} verdicts)",
        verdicts.len()
    );

    json!({
        "wall_s": wall_s,
        "ticks_per_s": ticks_per_s,
        "n_ticks": wire_report.n_ticks,
        "n_verdicts": wire_report.n_verdicts,
        "n_shards": wire_report.n_shards,
        "in_process_over_wire_speedup": baseline_ticks_per_s / ticks_per_s.max(1e-9),
        "e2e_rtt_ms": json!({ "p50_ms": p50, "p90_ms": p90, "p99_ms": p99 }),
        "rtt_samples": rtts_ms.len(),
        "bit_identical": true,
    })
}

/// Shard scaling sweep: the same monitoring feed replayed through a
/// fresh engine at every shard count from 1 to the machine's effective
/// parallelism (at least 2, so the multi-shard machinery is exercised
/// even on one core — the speedup there is just ~1x). Each point
/// records throughput, the score/match p50 read back from the ns-obs
/// histograms, and the thread-pool counter deltas (jobs, tasks, steals,
/// queue depth) from the `ns-obs` pool provider the engine installs.
/// `NS_SCALING_MAX_SHARDS` caps the sweep for CI smoke runs.
fn shard_scaling(
    model: &Arc<NodeSentry>,
    split: usize,
    raws: &[ns_linalg::Matrix],
    transition_sets: &[HashSet<usize>],
    horizon: usize,
    steps_per_hour: usize,
) -> serde_json::Value {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let max_shards: usize = std::env::var("NS_SCALING_MAX_SHARDS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| cores.max(2));
    let reg = ns_obs::metrics::global();
    let q = |name: &str, q: f64| reg.histogram_quantile(name, &[], q).unwrap_or(0.0);

    println!("\n=== shard scaling sweep (1..={max_shards} shards, {cores} cores) ===");
    let mut points = Vec::new();
    let mut speedups: Vec<(usize, f64)> = Vec::new();
    let mut base_ticks_per_s = 0.0f64;
    for n_shards in 1..=max_shards {
        reg.reset();
        let pool_before = ns_obs::poolstats::snapshot().unwrap_or_default();
        let mut engine_cfg = EngineConfig::new(split);
        engine_cfg.n_shards = n_shards;
        engine_cfg.smooth_window = 1;
        engine_cfg.batch_scoring = true;
        let engine = Engine::new(Arc::clone(model), engine_cfg);
        let t0 = Instant::now();
        let mut cycle: Vec<Tick> = Vec::with_capacity(raws.len() * steps_per_hour);
        for step in 0..horizon {
            for (n, raw) in raws.iter().enumerate() {
                cycle.push(Tick {
                    node: n,
                    step,
                    values: raw.row(step).to_vec(),
                    transition: transition_sets[n].contains(&step),
                });
            }
            if (step + 1) % steps_per_hour == 0 {
                engine
                    .ingest(std::mem::take(&mut cycle))
                    .expect("stream shard alive");
            }
        }
        engine.ingest(cycle).expect("stream shard alive");
        let report = engine.finish();
        let wall_s = t0.elapsed().as_secs_f64();
        let pool_after = ns_obs::poolstats::snapshot().unwrap_or_default();

        let ticks_per_s = report.stats.n_ticks as f64 / wall_s.max(1e-9);
        if n_shards == 1 {
            base_ticks_per_s = ticks_per_s;
        }
        let score_p50 = q(ns_stream::metrics::SCORE_SECONDS, 0.50) * 1e3;
        let match_p50 = q(ns_stream::metrics::MATCH_SECONDS, 0.50) * 1e3;
        let steals = pool_after.steals.saturating_sub(pool_before.steals);
        let jobs = pool_after
            .jobs_submitted
            .saturating_sub(pool_before.jobs_submitted);
        let tasks = pool_after
            .tasks_executed
            .saturating_sub(pool_before.tasks_executed);
        println!(
            "  {n_shards} shard{}: {:.0} ticks/s ({:.2}x vs 1), score p50 {score_p50:.2} ms, \
             match p50 {match_p50:.3} ms, pool jobs {jobs} tasks {tasks} steals {steals}",
            if n_shards == 1 { "" } else { "s" },
            ticks_per_s,
            ticks_per_s / base_ticks_per_s.max(1e-9),
        );
        speedups.push((report.n_shards, ticks_per_s / base_ticks_per_s.max(1e-9)));
        points.push(json!({
            "n_shards": report.n_shards,
            "wall_s": wall_s,
            "ticks_per_s": ticks_per_s,
            "speedup_vs_1": ticks_per_s / base_ticks_per_s.max(1e-9),
            "score_p50_ms": score_p50,
            "match_p50_ms": match_p50,
            "pool": json!({
                "jobs": jobs,
                "tasks": tasks,
                "steals": steals,
                "queued_jobs": pool_after.queued_jobs,
                "workers": pool_after.workers,
            }),
        }));
    }
    reg.reset();

    let (best_shards, best_speedup) = speedups
        .iter()
        .skip(1)
        .copied()
        .fold((1, 1.0), |acc, (s, v)| if v > acc.1 { (s, v) } else { acc });
    println!("  best multi-shard point: {best_shards} shards at {best_speedup:.2}x");

    json!({
        "available_parallelism": cores,
        "max_shards_swept": max_shards,
        "points": points,
        "best_shards": best_shards,
        "best_speedup_vs_1": best_speedup,
    })
}

fn main() {
    // Full observability: stage spans for the offline fit, live latency
    // histograms + fault bridging for the online loop. Equivalence with
    // the disabled path is pinned by tests/obs_equivalence.rs.
    ns_obs::enable_all();
    // `enable_all` now brings the event journal along; keep it off for
    // the baseline replays so they measure the recorder-off path. A
    // dedicated recorder-on replay below measures the journal's cost.
    ns_obs::events::set_enabled(false);
    // D2-like cluster (the deployment monitored a D2-sized system).
    let mut profile = DatasetProfile::d2_prime();
    profile.name = "deployment".into();
    profile.events_per_node = 3.0;
    let ds = profile.generate();
    let cfg = default_ns_config();
    let steps_per_hour = (3600.0 / profile.interval_s) as usize;

    println!(
        "=== §5.1 deployment simulation ({} nodes, {:.1} simulated days) ===",
        ds.n_nodes(),
        ds.horizon() as f64 * profile.interval_s / 86_400.0
    );
    let groups = ds.catalog.group_ids();
    let model = NodeSentry::fit_from_source(cfg, &DatasetSource(&ds), &groups, ds.split);
    println!("offline phase done: {} clusters", model.n_clusters());

    // Online loop through the streaming engine: nodes are sharded across
    // workers, ticks arrive in step-major monitoring cycles (every
    // node's sample for one step in one batch — the collector's real
    // cadence), so job-transition bursts across nodes land in the same
    // scoring phase and exercise the batched forward.
    // Shards cap at the machine's actual parallelism: oversubscribed
    // worker threads preempt each other mid-measurement and inflate the
    // wall-clock latency histograms (worst for the batched mode, whose
    // scoring phases align across shards at tick-batch boundaries).
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let n_shards = ds.n_nodes().clamp(2, 4).min(cores.max(1));
    let model = Arc::new(model);
    let raws: Vec<_> = (0..ds.n_nodes()).map(|n| ds.raw_node(n)).collect();
    let transition_sets: Vec<HashSet<usize>> = (0..ds.n_nodes())
        .map(|n| transitions_of(&ds, n).into_iter().collect())
        .collect();
    let replay = |span_name: &'static str, batch_scoring: bool, precision: ScoringPrecision| {
        let mut engine_cfg = EngineConfig::new(ds.split);
        engine_cfg.n_shards = n_shards;
        engine_cfg.smooth_window = 1; // raw k-sigma verdicts, as in the paper's loop
        engine_cfg.batch_scoring = batch_scoring;
        engine_cfg.scoring_precision = precision;
        let engine = Engine::new(Arc::clone(&model), engine_cfg);
        let replay_span = ns_obs::trace::span(span_name);
        let mut cycle: Vec<Tick> = Vec::with_capacity(ds.n_nodes() * steps_per_hour);
        for step in 0..ds.horizon() {
            for (n, raw) in raws.iter().enumerate() {
                cycle.push(Tick {
                    node: n,
                    step,
                    values: raw.row(step).to_vec(),
                    transition: transition_sets[n].contains(&step),
                });
            }
            if (step + 1) % steps_per_hour == 0 {
                engine
                    .ingest(std::mem::take(&mut cycle))
                    .expect("stream shard alive");
            }
        }
        engine.ingest(cycle).expect("stream shard alive");
        let report = engine.finish();
        (report, replay_span.finish_seconds())
    };
    let reg = ns_obs::metrics::global();
    let q = |name: &str, q: f64| reg.histogram_quantile(name, &[], q).unwrap_or(0.0);

    // Baseline replay through the taped autodiff forward (the engine's
    // only scoring path before the inference fast path existed), so the
    // benchmark record carries the before/after delta. Verdicts are
    // bit-identical either way (tests/fastpath_equivalence.rs).
    ns_nn::set_fast_path(false);
    let (_taped_report, taped_wall) = replay("stream_replay_taped", true, ScoringPrecision::F64);
    let taped_score_p50 = q(ns_stream::metrics::SCORE_SECONDS, 0.50) * 1e3;
    let taped_match_p50 = q(ns_stream::metrics::MATCH_SECONDS, 0.50) * 1e3;
    reg.reset();

    // Unbatched fast-path replay: eager per-segment scoring, so the
    // record carries the batched-vs-unbatched delta on the same feed.
    // Verdicts are bit-identical (tests/batch_equivalence.rs).
    ns_nn::set_fast_path(true);
    let (_unbatched_report, unbatched_wall) =
        replay("stream_replay_unbatched", false, ScoringPrecision::F64);
    let unbatched = |name: &str| (q(name, 0.50) * 1e3, q(name, 0.99) * 1e3);
    let (unbatched_score_p50, unbatched_score_p99) = unbatched(ns_stream::metrics::SCORE_SECONDS);
    let (unbatched_match_p50, unbatched_match_p99) = unbatched(ns_stream::metrics::MATCH_SECONDS);
    let samples = |name: &str| {
        reg.find_histogram(name, &[])
            .map(|h| h.count())
            .unwrap_or(0)
    };
    let unbatched_score_n = samples(ns_stream::metrics::SCORE_SECONDS);
    let unbatched_match_n = samples(ns_stream::metrics::MATCH_SECONDS);
    reg.reset();

    let (report, stream_wall) = replay("stream_replay", true, ScoringPrecision::F64);

    // Evaluate verdicts against the injected ground truth — shared by
    // the headline replay and the precision-tier pass below.
    let eval_verdicts = |report: &EngineReport| {
        let mut node_scores = Vec::new();
        for n in 0..ds.n_nodes() {
            let pred: Vec<bool> = report
                .verdicts
                .iter()
                .filter(|v| v.node == n)
                .map(|v| v.anomalous)
                .collect();
            assert_eq!(pred.len(), ds.horizon() - ds.split);
            let truth_full = ds.labels(n);
            let c = adjusted_confusion(&pred, &truth_full[ds.split..], None);
            node_scores.push(NodeScores {
                precision: c.precision(),
                recall: c.recall(),
                auc: 0.0,
            });
        }
        aggregate(&node_scores)
    };
    let agg = eval_verdicts(&report);
    let match_avg = report.stats.match_s_per_cycle();
    let point_ms = report.stats.point_latency_ms();
    let throughput = report.stats.n_ticks as f64 / stream_wall.max(1e-9);

    println!(
        "streaming engine: {} shards, {} ticks in {:.1} s ({:.0} ticks/s)",
        report.n_shards, report.stats.n_ticks, stream_wall, throughput
    );
    println!(
        "pattern matching per cycle: {:.2} s   ({} cycles; paper: 5.11 s)",
        match_avg, report.stats.n_matches
    );
    println!(
        "detection latency per sampling point: {:.2} ms (paper: 36 ms)",
        point_ms
    );
    println!(
        "precision {:.3} / recall {:.3}            (paper: 0.857 / 0.923)",
        agg.precision, agg.recall
    );
    write_json(
        "deployment",
        &json!({
            "match_s_per_cycle": match_avg,
            "point_latency_ms": point_ms,
            "precision": agg.precision,
            "recall": agg.recall,
            // Effective worker count from the report — the config ask and
            // the spawned pool can differ (max(1) clamp), and only the
            // engine knows what it actually ran with.
            "n_shards": report.n_shards,
            "ticks_per_s": throughput,
            "stream_wall_s": stream_wall,
        }),
    );

    // Machine-readable benchmark record: wall time, the per-point and
    // per-match latency distribution read back from the live ns-obs
    // histograms (fast-path run), the taped-baseline deltas, and every
    // fault counter (all zero on this clean feed).
    let latency = |name: &str| {
        json!({
            "p50_ms": q(name, 0.50) * 1e3,
            "p90_ms": q(name, 0.90) * 1e3,
            "p99_ms": q(name, 0.99) * 1e3,
        })
    };
    let fast_score_p50 = q(ns_stream::metrics::SCORE_SECONDS, 0.50) * 1e3;
    let fast_score_p99 = q(ns_stream::metrics::SCORE_SECONDS, 0.99) * 1e3;
    let fast_match_p50 = q(ns_stream::metrics::MATCH_SECONDS, 0.50) * 1e3;
    let fast_match_p99 = q(ns_stream::metrics::MATCH_SECONDS, 0.99) * 1e3;
    let fast_score_n = samples(ns_stream::metrics::SCORE_SECONDS);
    let fast_match_n = samples(ns_stream::metrics::MATCH_SECONDS);
    // A p99 speedup ratio is reported only when both legs back their
    // tail with at least 64 samples; below that the p99 is a single
    // straggler and the ratio is noise (the curated record once carried
    // a 0.5x "regression" from exactly this).
    let p99_ratio = |slow: f64, fast: f64, n_slow: u64, n_fast: u64| {
        if n_slow >= 64 && n_fast >= 64 {
            json!(slow / fast.max(1e-12))
        } else {
            json!(null)
        }
    };
    println!(
        "fast-path p50: score {:.2} ms (taped {:.2} ms, {:.2}x), match {:.2} ms (taped {:.2} ms, {:.2}x)",
        fast_score_p50,
        taped_score_p50,
        taped_score_p50 / fast_score_p50.max(1e-12),
        fast_match_p50,
        taped_match_p50,
        taped_match_p50 / fast_match_p50.max(1e-12),
    );
    println!(
        "batched vs eager: score p50 {:.2} ms vs {:.2} ms, p99 {:.2} ms vs {:.2} ms",
        fast_score_p50, unbatched_score_p50, fast_score_p99, unbatched_score_p99,
    );
    println!(
        "                  match p50 {:.3} ms vs {:.3} ms, p99 {:.3} ms vs {:.3} ms",
        fast_match_p50, unbatched_match_p50, fast_match_p99, unbatched_match_p99,
    );
    let occupancy = |name: &str| {
        json!({
            "p50": q(name, 0.50),
            "p90": q(name, 0.90),
            "p99": q(name, 0.99),
        })
    };
    println!(
        "batch occupancy: p50 {:.1} / p90 {:.1} / p99 {:.1} segments per batched forward",
        q(ns_stream::metrics::SCORE_BATCH_SEGMENTS, 0.50),
        q(ns_stream::metrics::SCORE_BATCH_SEGMENTS, 0.90),
        q(ns_stream::metrics::SCORE_BATCH_SEGMENTS, 0.99),
    );
    let faults = serde_json::Value::Object(
        report
            .faults
            .as_pairs()
            .iter()
            .map(|&(class, v)| (class.to_string(), serde_json::to_value(&v)))
            .collect(),
    );

    // The same feed once more, over TCP through the ns-wire protocol —
    // bit-identity against the in-process report is asserted inside.
    let mut wire_cfg = EngineConfig::new(ds.split);
    wire_cfg.n_shards = n_shards;
    wire_cfg.smooth_window = 1;
    wire_cfg.batch_scoring = true;
    let wire = over_the_wire(
        &model,
        &report,
        throughput,
        wire_cfg,
        &raws,
        &transition_sets,
        ds.horizon(),
        steps_per_hour,
    );

    // Flight-recorder overhead: the same feed twice more, back to back —
    // once recorder-off, once with the event journal on and incident
    // triggers armed (the full operational posture). The pairing matters:
    // the replay window is sub-second, so comparing against the headline
    // replay from minutes earlier would measure machine drift, not the
    // journal. Verdict bit-identity under the recorder is pinned by
    // tests/obs_equivalence.rs; here we measure what it costs.
    let (off_report, off_wall) = replay("stream_replay_recorder_off", true, ScoringPrecision::F64);
    let recorder_off_throughput = off_report.stats.n_ticks as f64 / off_wall.max(1e-9);
    ns_obs::events::set_enabled(true);
    ns_obs::incident::set_armed(true);
    let (recorder_report, recorder_wall) =
        replay("stream_replay_recorder", true, ScoringPrecision::F64);
    ns_obs::incident::set_armed(false);
    ns_obs::events::set_enabled(false);
    let recorder_throughput = recorder_report.stats.n_ticks as f64 / recorder_wall.max(1e-9);
    let recorder_overhead_pct =
        (recorder_off_throughput / recorder_throughput.max(1e-9) - 1.0) * 100.0;
    let journal = ns_obs::events::stats();
    let recorder = ns_obs::incident::stats();
    println!(
        "flight recorder on: {:.0} ticks/s vs {:.0} off ({:+.1}% overhead), {} events journaled ({} dropped), {} incidents",
        recorder_throughput,
        recorder_off_throughput,
        recorder_overhead_pct,
        journal.recorded,
        journal.dropped,
        recorder.captured,
    );

    // Freeze the latency blocks before the scaling sweep: the sweep
    // resets the registry per point, which would empty these histograms.
    let point_latency = latency(ns_stream::metrics::POINT_SECONDS);
    let score_latency = latency(ns_stream::metrics::SCORE_SECONDS);
    let match_latency = latency(ns_stream::metrics::MATCH_SECONDS);
    let batch_occupancy = json!({
        "score_segments": occupancy(ns_stream::metrics::SCORE_BATCH_SEGMENTS),
        "match_probes": occupancy(ns_stream::metrics::MATCH_BATCH_PROBES),
    });
    // Precision-tier pass: the same feed under both scoring tiers, back
    // to back so the ratio is not machine drift (the f64 leg re-runs
    // rather than reusing the headline numbers for the same reason).
    // The f32 tier trades bit-stability for kernel bandwidth, so its
    // verdicts may legitimately differ from the f64 oracle; the record
    // carries the agreement rate and the precision/recall delta right
    // next to the speedup that buys them.
    println!("\n=== precision tiers (f64 vs f32 scoring) ===");
    reg.reset();
    let (tier64_report, tier64_wall) =
        replay("stream_replay_tier_f64", true, ScoringPrecision::F64);
    let tier64_tp = tier64_report.stats.n_ticks as f64 / tier64_wall.max(1e-9);
    let tier_lat = |name: &str| (q(name, 0.50) * 1e3, q(name, 0.99) * 1e3);
    let (t64_score_p50, t64_score_p99) = tier_lat(ns_stream::metrics::SCORE_SECONDS);
    let (t64_match_p50, t64_match_p99) = tier_lat(ns_stream::metrics::MATCH_SECONDS);
    reg.reset();
    let (tier32_report, tier32_wall) =
        replay("stream_replay_tier_f32", true, ScoringPrecision::F32);
    let tier32_tp = tier32_report.stats.n_ticks as f64 / tier32_wall.max(1e-9);
    let (t32_score_p50, t32_score_p99) = tier_lat(ns_stream::metrics::SCORE_SECONDS);
    let (t32_match_p50, t32_match_p99) = tier_lat(ns_stream::metrics::MATCH_SECONDS);
    reg.reset();

    assert_eq!(
        tier64_report.verdicts.len(),
        tier32_report.verdicts.len(),
        "tier passes emitted different verdict counts"
    );
    let mut agree = 0usize;
    for (a, b) in tier64_report.verdicts.iter().zip(&tier32_report.verdicts) {
        assert_eq!(
            (a.node, a.step),
            (b.node, b.step),
            "tier verdict streams misaligned"
        );
        agree += (a.anomalous == b.anomalous) as usize;
    }
    let agreement = agree as f64 / tier64_report.verdicts.len().max(1) as f64;
    let agg64 = eval_verdicts(&tier64_report);
    let agg32 = eval_verdicts(&tier32_report);
    println!(
        "f64: {:.0} ticks/s, score p50 {:.3} ms | f32: {:.0} ticks/s, score p50 {:.3} ms \
         ({:.2}x score stage)",
        tier64_tp,
        t64_score_p50,
        tier32_tp,
        t32_score_p50,
        t64_score_p50 / t32_score_p50.max(1e-12),
    );
    println!(
        "verdict agreement {:.4} ({agree} of {}), precision {:+.4} / recall {:+.4} vs the f64 oracle",
        agreement,
        tier64_report.verdicts.len(),
        agg32.precision - agg64.precision,
        agg32.recall - agg64.recall,
    );
    let precision_tiers = json!({
        "f64": json!({
            "wall_s": tier64_wall,
            "ticks_per_s": tier64_tp,
            "score_p50_ms": t64_score_p50,
            "score_p99_ms": t64_score_p99,
            "match_p50_ms": t64_match_p50,
            "match_p99_ms": t64_match_p99,
            "precision": agg64.precision,
            "recall": agg64.recall,
        }),
        "f32": json!({
            "wall_s": tier32_wall,
            "ticks_per_s": tier32_tp,
            "score_p50_ms": t32_score_p50,
            "score_p99_ms": t32_score_p99,
            "match_p50_ms": t32_match_p50,
            "match_p99_ms": t32_match_p99,
            "precision": agg32.precision,
            "recall": agg32.recall,
        }),
        "score_stage_speedup_p50": t64_score_p50 / t32_score_p50.max(1e-12),
        "score_stage_speedup_p99": t64_score_p99 / t32_score_p99.max(1e-12),
        "match_stage_speedup_p50": t64_match_p50 / t32_match_p50.max(1e-12),
        "throughput_ratio_f32_over_f64": tier32_tp / tier64_tp.max(1e-9),
        "n_verdicts": tier64_report.verdicts.len(),
        "verdict_agreement": agreement,
        "precision_delta": agg32.precision - agg64.precision,
        "recall_delta": agg32.recall - agg64.recall,
    });

    let scaling = shard_scaling(
        &model,
        ds.split,
        &raws,
        &transition_sets,
        ds.horizon(),
        steps_per_hour,
    );
    let elastic = elastic_lifecycle();
    write_bench_json(
        "stream",
        &json!({
            "wall_s": stream_wall,
            "ticks_per_s": throughput,
            "n_shards": report.n_shards,
            "per_shard_ticks":
                report.per_shard.iter().map(|s| s.n_ticks).collect::<Vec<_>>(),
            "n_ticks": report.stats.n_ticks,
            "point_latency": point_latency,
            "score_latency": score_latency,
            "match_latency": match_latency,
            "batch_occupancy": batch_occupancy,
            "unbatched_baseline": json!({
                "wall_s": unbatched_wall,
                "score_p50_ms": unbatched_score_p50,
                "score_p99_ms": unbatched_score_p99,
                "match_p50_ms": unbatched_match_p50,
                "match_p99_ms": unbatched_match_p99,
                "score_samples": unbatched_score_n,
                "match_samples": unbatched_match_n,
                "score_speedup_p50":
                    unbatched_score_p50 / fast_score_p50.max(1e-12),
                "score_speedup_p99":
                    p99_ratio(unbatched_score_p99, fast_score_p99, unbatched_score_n, fast_score_n),
                "match_speedup_p50":
                    unbatched_match_p50 / fast_match_p50.max(1e-12),
                "match_speedup_p99":
                    p99_ratio(unbatched_match_p99, fast_match_p99, unbatched_match_n, fast_match_n),
            }),
            "taped_baseline": json!({
                "wall_s": taped_wall,
                "score_p50_ms": taped_score_p50,
                "match_p50_ms": taped_match_p50,
                "score_speedup_p50":
                    taped_score_p50 / fast_score_p50.max(1e-12),
                "match_speedup_p50":
                    taped_match_p50 / fast_match_p50.max(1e-12),
            }),
            "precision": agg.precision,
            "recall": agg.recall,
            "faults": faults,
            "over_the_wire": wire,
            "precision_tiers": precision_tiers,
            "shard_scaling": scaling,
            "observability": json!({
                "recorder_off_ticks_per_s": recorder_off_throughput,
                "recorder_on_ticks_per_s": recorder_throughput,
                "overhead_pct": recorder_overhead_pct,
                "events_recorded": journal.recorded,
                "events_dropped": journal.dropped,
                "incidents_captured": recorder.captured,
            }),
            "elastic": elastic,
        }),
    );

    println!("\n--- span report ---");
    print!("{}", ns_obs::trace::report());
}
