//! §5.1 deployment — the month-long online monitoring loop in miniature:
//! a LAMMPS-like compute workload runs while ChaosBlade-style faults are
//! injected; NodeSentry streams hourly monitoring cycles through pattern
//! matching and real-time per-point detection. Reports matching latency,
//! per-point detection latency, and precision/recall on the injections.

use ns_bench::{default_ns_config, transitions_of, write_json, DatasetSource};
use ns_eval::metrics::{adjusted_confusion, aggregate, NodeScores};
use ns_eval::threshold::ksigma_detect;
use ns_eval::timing::Stopwatch;
use ns_telemetry::DatasetProfile;
use nodesentry_core::NodeSentry;
use serde_json::json;

fn main() {
    // D2-like cluster (the deployment monitored a D2-sized system).
    let mut profile = DatasetProfile::d2_prime();
    profile.name = "deployment".into();
    profile.events_per_node = 3.0;
    let ds = profile.generate();
    let cfg = default_ns_config();
    let threshold = cfg.threshold;
    let steps_per_hour = (3600.0 / profile.interval_s) as usize;

    println!("=== §5.1 deployment simulation ({} nodes, {:.1} simulated days) ===",
        ds.n_nodes(), ds.horizon() as f64 * profile.interval_s / 86_400.0);
    let groups = ds.catalog.group_ids();
    let model = NodeSentry::fit_from_source(cfg, &DatasetSource(&ds), &groups, ds.split);
    println!("offline phase done: {} clusters", model.n_clusters());

    // Online loop: hourly cycles over the test window, per node.
    let mut match_latencies = Vec::new();
    let mut point_latencies = Vec::new();
    let mut node_scores = Vec::new();
    for n in 0..ds.n_nodes() {
        let raw = ds.raw_node(n);
        let transitions = transitions_of(&ds, n);
        // Pattern-matching latency: time to preprocess + feature-match
        // one hourly window.
        let sw = Stopwatch::start();
        let hour = raw.slice_rows(ds.split, (ds.split + steps_per_hour).min(raw.rows()));
        let processed = model.preprocess(&hour);
        let feat = nodesentry_core::coarse::segment_features(&model.cfg.coarse, &processed);
        let _ = model.cluster_model.match_pattern(&feat);
        match_latencies.push(sw.seconds());

        // Full scoring + per-point latency.
        let sw = Stopwatch::start();
        let (scores, _) = model.score_node(&raw, &transitions, ds.split);
        point_latencies.push(sw.seconds() / scores.len().max(1) as f64);

        let pred = ksigma_detect(&scores, &threshold);
        let truth_full = ds.labels(n);
        let c = adjusted_confusion(&pred, &truth_full[ds.split..], None);
        node_scores.push(NodeScores { precision: c.precision(), recall: c.recall(), auc: 0.0 });
    }
    let agg = aggregate(&node_scores);
    let match_avg = match_latencies.iter().sum::<f64>() / match_latencies.len() as f64;
    let point_avg = point_latencies.iter().sum::<f64>() / point_latencies.len() as f64;

    println!("pattern matching per hourly cycle: {:.2} s   (paper: 5.11 s)", match_avg);
    println!("detection latency per sampling point: {:.2} ms (paper: 36 ms)", point_avg * 1e3);
    println!("precision {:.3} / recall {:.3}            (paper: 0.857 / 0.923)", agg.precision, agg.recall);
    write_json(
        "deployment",
        &json!({
            "match_s_per_cycle": match_avg,
            "point_latency_ms": point_avg * 1e3,
            "precision": agg.precision,
            "recall": agg.recall,
        }),
    );
}
