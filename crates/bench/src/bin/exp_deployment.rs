//! §5.1 deployment — the month-long online monitoring loop in miniature:
//! a LAMMPS-like compute workload runs while ChaosBlade-style faults are
//! injected; telemetry streams tick by tick through the sharded
//! `ns-stream` engine, which pattern-matches each post-transition probe
//! and emits per-point verdicts. Reports matching latency, per-point
//! detection latency, streaming throughput, and precision/recall on the
//! injections.

use nodesentry_core::NodeSentry;
use ns_bench::{default_ns_config, transitions_of, write_bench_json, write_json, DatasetSource};
use ns_eval::metrics::{adjusted_confusion, aggregate, NodeScores};
use ns_stream::{Engine, EngineConfig, Tick};
use ns_telemetry::DatasetProfile;
use serde_json::json;
use std::collections::HashSet;
use std::sync::Arc;

fn main() {
    // Full observability: stage spans for the offline fit, live latency
    // histograms + fault bridging for the online loop. Equivalence with
    // the disabled path is pinned by tests/obs_equivalence.rs.
    ns_obs::enable_all();
    // D2-like cluster (the deployment monitored a D2-sized system).
    let mut profile = DatasetProfile::d2_prime();
    profile.name = "deployment".into();
    profile.events_per_node = 3.0;
    let ds = profile.generate();
    let cfg = default_ns_config();
    let steps_per_hour = (3600.0 / profile.interval_s) as usize;

    println!(
        "=== §5.1 deployment simulation ({} nodes, {:.1} simulated days) ===",
        ds.n_nodes(),
        ds.horizon() as f64 * profile.interval_s / 86_400.0
    );
    let groups = ds.catalog.group_ids();
    let model = NodeSentry::fit_from_source(cfg, &DatasetSource(&ds), &groups, ds.split);
    println!("offline phase done: {} clusters", model.n_clusters());

    // Online loop through the streaming engine: nodes are sharded across
    // workers, ticks arrive in step-major monitoring cycles (every
    // node's sample for one step in one batch — the collector's real
    // cadence), so job-transition bursts across nodes land in the same
    // scoring phase and exercise the batched forward.
    // Shards cap at the machine's actual parallelism: oversubscribed
    // worker threads preempt each other mid-measurement and inflate the
    // wall-clock latency histograms (worst for the batched mode, whose
    // scoring phases align across shards at tick-batch boundaries).
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let n_shards = ds.n_nodes().clamp(2, 4).min(cores.max(1));
    let model = Arc::new(model);
    let raws: Vec<_> = (0..ds.n_nodes()).map(|n| ds.raw_node(n)).collect();
    let transition_sets: Vec<HashSet<usize>> = (0..ds.n_nodes())
        .map(|n| transitions_of(&ds, n).into_iter().collect())
        .collect();
    let replay = |span_name: &'static str, batch_scoring: bool| {
        let mut engine_cfg = EngineConfig::new(ds.split);
        engine_cfg.n_shards = n_shards;
        engine_cfg.smooth_window = 1; // raw k-sigma verdicts, as in the paper's loop
        engine_cfg.batch_scoring = batch_scoring;
        let engine = Engine::new(Arc::clone(&model), engine_cfg);
        let replay_span = ns_obs::trace::span(span_name);
        let mut cycle: Vec<Tick> = Vec::with_capacity(ds.n_nodes() * steps_per_hour);
        for step in 0..ds.horizon() {
            for (n, raw) in raws.iter().enumerate() {
                cycle.push(Tick {
                    node: n,
                    step,
                    values: raw.row(step).to_vec(),
                    transition: transition_sets[n].contains(&step),
                });
            }
            if (step + 1) % steps_per_hour == 0 {
                engine
                    .ingest(std::mem::take(&mut cycle))
                    .expect("stream shard alive");
            }
        }
        engine.ingest(cycle).expect("stream shard alive");
        let report = engine.finish();
        (report, replay_span.finish_seconds())
    };
    let reg = ns_obs::metrics::global();
    let q = |name: &str, q: f64| reg.histogram_quantile(name, &[], q).unwrap_or(0.0);

    // Baseline replay through the taped autodiff forward (the engine's
    // only scoring path before the inference fast path existed), so the
    // benchmark record carries the before/after delta. Verdicts are
    // bit-identical either way (tests/fastpath_equivalence.rs).
    ns_nn::set_fast_path(false);
    let (_taped_report, taped_wall) = replay("stream_replay_taped", true);
    let taped_score_p50 = q(ns_stream::metrics::SCORE_SECONDS, 0.50) * 1e3;
    let taped_match_p50 = q(ns_stream::metrics::MATCH_SECONDS, 0.50) * 1e3;
    reg.reset();

    // Unbatched fast-path replay: eager per-segment scoring, so the
    // record carries the batched-vs-unbatched delta on the same feed.
    // Verdicts are bit-identical (tests/batch_equivalence.rs).
    ns_nn::set_fast_path(true);
    let (_unbatched_report, unbatched_wall) = replay("stream_replay_unbatched", false);
    let unbatched = |name: &str| (q(name, 0.50) * 1e3, q(name, 0.99) * 1e3);
    let (unbatched_score_p50, unbatched_score_p99) = unbatched(ns_stream::metrics::SCORE_SECONDS);
    let (unbatched_match_p50, unbatched_match_p99) = unbatched(ns_stream::metrics::MATCH_SECONDS);
    reg.reset();

    let (report, stream_wall) = replay("stream_replay", true);

    // Evaluate the verdicts against the injected ground truth.
    let mut node_scores = Vec::new();
    for n in 0..ds.n_nodes() {
        let pred: Vec<bool> = report
            .verdicts
            .iter()
            .filter(|v| v.node == n)
            .map(|v| v.anomalous)
            .collect();
        assert_eq!(pred.len(), ds.horizon() - ds.split);
        let truth_full = ds.labels(n);
        let c = adjusted_confusion(&pred, &truth_full[ds.split..], None);
        node_scores.push(NodeScores {
            precision: c.precision(),
            recall: c.recall(),
            auc: 0.0,
        });
    }
    let agg = aggregate(&node_scores);
    let match_avg = report.stats.match_s_per_cycle();
    let point_ms = report.stats.point_latency_ms();
    let throughput = report.stats.n_ticks as f64 / stream_wall.max(1e-9);

    println!(
        "streaming engine: {} shards, {} ticks in {:.1} s ({:.0} ticks/s)",
        n_shards, report.stats.n_ticks, stream_wall, throughput
    );
    println!(
        "pattern matching per cycle: {:.2} s   ({} cycles; paper: 5.11 s)",
        match_avg, report.stats.n_matches
    );
    println!(
        "detection latency per sampling point: {:.2} ms (paper: 36 ms)",
        point_ms
    );
    println!(
        "precision {:.3} / recall {:.3}            (paper: 0.857 / 0.923)",
        agg.precision, agg.recall
    );
    write_json(
        "deployment",
        &json!({
            "match_s_per_cycle": match_avg,
            "point_latency_ms": point_ms,
            "precision": agg.precision,
            "recall": agg.recall,
            "n_shards": n_shards,
            "ticks_per_s": throughput,
            "stream_wall_s": stream_wall,
        }),
    );

    // Machine-readable benchmark record: wall time, the per-point and
    // per-match latency distribution read back from the live ns-obs
    // histograms (fast-path run), the taped-baseline deltas, and every
    // fault counter (all zero on this clean feed).
    let latency = |name: &str| {
        json!({
            "p50_ms": q(name, 0.50) * 1e3,
            "p90_ms": q(name, 0.90) * 1e3,
            "p99_ms": q(name, 0.99) * 1e3,
        })
    };
    let fast_score_p50 = q(ns_stream::metrics::SCORE_SECONDS, 0.50) * 1e3;
    let fast_score_p99 = q(ns_stream::metrics::SCORE_SECONDS, 0.99) * 1e3;
    let fast_match_p50 = q(ns_stream::metrics::MATCH_SECONDS, 0.50) * 1e3;
    let fast_match_p99 = q(ns_stream::metrics::MATCH_SECONDS, 0.99) * 1e3;
    println!(
        "fast-path p50: score {:.2} ms (taped {:.2} ms, {:.2}x), match {:.2} ms (taped {:.2} ms, {:.2}x)",
        fast_score_p50,
        taped_score_p50,
        taped_score_p50 / fast_score_p50.max(1e-12),
        fast_match_p50,
        taped_match_p50,
        taped_match_p50 / fast_match_p50.max(1e-12),
    );
    println!(
        "batched vs eager: score p50 {:.2} ms vs {:.2} ms, p99 {:.2} ms vs {:.2} ms",
        fast_score_p50, unbatched_score_p50, fast_score_p99, unbatched_score_p99,
    );
    println!(
        "                  match p50 {:.3} ms vs {:.3} ms, p99 {:.3} ms vs {:.3} ms",
        fast_match_p50, unbatched_match_p50, fast_match_p99, unbatched_match_p99,
    );
    let occupancy = |name: &str| {
        json!({
            "p50": q(name, 0.50),
            "p90": q(name, 0.90),
            "p99": q(name, 0.99),
        })
    };
    println!(
        "batch occupancy: p50 {:.1} / p90 {:.1} / p99 {:.1} segments per batched forward",
        q(ns_stream::metrics::SCORE_BATCH_SEGMENTS, 0.50),
        q(ns_stream::metrics::SCORE_BATCH_SEGMENTS, 0.90),
        q(ns_stream::metrics::SCORE_BATCH_SEGMENTS, 0.99),
    );
    let faults = serde_json::Value::Object(
        report
            .faults
            .as_pairs()
            .iter()
            .map(|&(class, v)| (class.to_string(), serde_json::to_value(&v)))
            .collect(),
    );
    write_bench_json(
        "stream",
        &json!({
            "wall_s": stream_wall,
            "ticks_per_s": throughput,
            "n_shards": n_shards,
            "n_ticks": report.stats.n_ticks,
            "point_latency": latency(ns_stream::metrics::POINT_SECONDS),
            "score_latency": latency(ns_stream::metrics::SCORE_SECONDS),
            "match_latency": latency(ns_stream::metrics::MATCH_SECONDS),
            "batch_occupancy": json!({
                "score_segments": occupancy(ns_stream::metrics::SCORE_BATCH_SEGMENTS),
                "match_probes": occupancy(ns_stream::metrics::MATCH_BATCH_PROBES),
            }),
            "unbatched_baseline": json!({
                "wall_s": unbatched_wall,
                "score_p50_ms": unbatched_score_p50,
                "score_p99_ms": unbatched_score_p99,
                "match_p50_ms": unbatched_match_p50,
                "match_p99_ms": unbatched_match_p99,
                "score_speedup_p50":
                    unbatched_score_p50 / fast_score_p50.max(1e-12),
                "score_speedup_p99":
                    unbatched_score_p99 / fast_score_p99.max(1e-12),
                "match_speedup_p50":
                    unbatched_match_p50 / fast_match_p50.max(1e-12),
                "match_speedup_p99":
                    unbatched_match_p99 / fast_match_p99.max(1e-12),
            }),
            "taped_baseline": json!({
                "wall_s": taped_wall,
                "score_p50_ms": taped_score_p50,
                "match_p50_ms": taped_match_p50,
                "score_speedup_p50":
                    taped_score_p50 / fast_score_p50.max(1e-12),
                "match_speedup_p50":
                    taped_match_p50 / fast_match_p50.max(1e-12),
            }),
            "precision": agg.precision,
            "recall": agg.recall,
            "faults": faults,
        }),
    );

    println!("\n--- span report ---");
    print!("{}", ns_obs::trace::report());
}
