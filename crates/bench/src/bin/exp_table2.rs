//! Table 2 — dataset statistics: nodes, jobs, metrics, total points,
//! anomaly ratio, for the D1′ and D2′ profiles.

use ns_bench::write_json;
use ns_telemetry::DatasetProfile;
use serde_json::json;

fn main() {
    println!("=== Table 2: dataset statistics (paper: D1/D2 from NG-Tianhe; ours: simulated D1'/D2') ===");
    println!(
        "{:<8} {:>6} {:>7} {:>8} {:>14} {:>14}",
        "Dataset", "#Node", "#Job", "#Metric", "Total Points", "Anomaly Ratio"
    );
    let mut rows = Vec::new();
    for profile in [DatasetProfile::d1_prime(), DatasetProfile::d2_prime()] {
        let ds = profile.generate();
        let st = ds.stats();
        println!(
            "{:<8} {:>6} {:>7} {:>8} {:>14} {:>13.2}%",
            st.name,
            st.nodes,
            st.jobs,
            st.metrics,
            st.total_points,
            st.anomaly_ratio * 100.0
        );
        rows.push(json!({
            "name": st.name,
            "nodes": st.nodes,
            "jobs": st.jobs,
            "metrics": st.metrics,
            "total_points": st.total_points,
            "anomaly_ratio": st.anomaly_ratio,
        }));
    }
    println!();
    println!(
        "paper reference: D1 = 1294 nodes / 13379 jobs / 3014 metrics / 106.9M points / 0.16%"
    );
    println!(
        "                 D2 =   30 nodes /  1430 jobs /  773 metrics /   1.6M points / 0.04%"
    );
    write_json("table2", &rows);
}
