//! Table 5 — ablation study: the full pipeline vs variants C1–C5 on D1′
//! and D2′ (paper §4.4).

use nodesentry_core::Variant;
use ns_bench::{print_method_row, run_variant, write_json, MethodResult};
use ns_telemetry::DatasetProfile;

fn main() {
    let quick = std::env::args().any(|a| a == "--sweep-profiles");
    let profiles = if quick {
        vec![ns_bench::sweep_profile_d1(), ns_bench::sweep_profile_d2()]
    } else {
        vec![DatasetProfile::d1_prime(), DatasetProfile::d2_prime()]
    };
    println!("=== Table 5: ablation study (C1 no clustering, C2 random groups, C3 equal-length, C4 no segment PE, C5 dense FFN) ===\n");
    let mut results: Vec<MethodResult> = Vec::new();
    for profile in profiles {
        println!("--- dataset {} ---", profile.name);
        let ds = profile.generate();
        for variant in [
            Variant::Full,
            Variant::C1SingleModel,
            Variant::C2RandomGroups,
            Variant::C3EqualLength,
            Variant::C4NoSegmentPe,
            Variant::C5DenseFfn,
        ] {
            let r = run_variant(&ds, variant);
            print_method_row(&r);
            results.push(r);
        }
        println!();
    }
    println!("paper reference (D1 F1): Full 0.876 | C1 0.301 | C2 0.427 | C3 0.751 | C4 0.470 | C5 0.378");
    println!("paper reference (D2 F1): Full 0.891 | C1 0.359 | C2 0.611 | C3 0.780 | C4 0.599 | C5 0.504");
    write_json("table5", &results);
}
