//! §2.1 cost argument — DTW-based clustering of variable-length segments
//! is infeasible at HPC scale ("a week's worth of data would take 3.8
//! months"), while feature-extraction + Euclidean HAC is cheap.
//!
//! We measure per-pair DTW cost vs per-segment feature extraction +
//! per-pair Euclidean cost on real simulated segments, then extrapolate
//! both to the paper's segment population.

use ns_bench::{transitions_of, write_json};
use ns_cluster::dtw::{dtw_distance_mts, dtw_distance_mts_cutoff};
use ns_eval::timing::Stopwatch;
use ns_features::FeatureCatalog;
use ns_linalg::vecops;
use ns_telemetry::DatasetProfile;
use serde_json::json;

fn main() {
    let ds = DatasetProfile::d2_prime().generate();
    // Gather preprocample segments (latent-level is fine for cost).
    let mut segments: Vec<Vec<Vec<f64>>> = Vec::new();
    for node in 0..ds.n_nodes() {
        let mut cuts = vec![0usize];
        cuts.extend(transitions_of(&ds, node));
        cuts.push(ds.horizon());
        for w in cuts.windows(2) {
            if w[1] - w[0] < 20 {
                continue;
            }
            let rows: Vec<Vec<f64>> = (w[0]..w[1])
                .map(|t| ds.latent[node][t][..8].to_vec())
                .collect();
            segments.push(rows);
            if segments.len() >= 40 {
                break;
            }
        }
        if segments.len() >= 40 {
            break;
        }
    }
    let n = segments.len();
    println!("=== DTW vs feature clustering cost ({n} segments, 8 metrics) ===");

    // DTW pair cost.
    let sw = Stopwatch::start();
    let mut pairs = 0usize;
    for i in 0..n.min(12) {
        for j in i + 1..n.min(12) {
            let _ = dtw_distance_mts(&segments[i], &segments[j], Some(20));
            pairs += 1;
        }
    }
    let dtw_per_pair = sw.seconds() / pairs.max(1) as f64;

    // Same pairs through the early-abandon variant, nearest-neighbor
    // style: each row of the pair loop carries its running best as the
    // cutoff, so hopeless alignments abandon as soon as a full DP row
    // exceeds it. Exact where it matters — the winning distance is
    // bit-identical to the unconstrained call.
    let sw = Stopwatch::start();
    let mut cpairs = 0usize;
    for i in 0..n.min(12) {
        let mut best = f64::INFINITY;
        for j in i + 1..n.min(12) {
            let d = dtw_distance_mts_cutoff(
                &segments[i],
                &segments[j],
                Some(20),
                (best < f64::INFINITY).then_some(best),
            );
            best = best.min(d);
            cpairs += 1;
        }
    }
    let dtw_cutoff_per_pair = sw.seconds() / cpairs.max(1) as f64;

    // Feature extraction + Euclidean pair cost.
    let catalog = FeatureCatalog::standard();
    let sw = Stopwatch::start();
    let feats: Vec<Vec<f64>> = segments
        .iter()
        .map(|rows| {
            let m = ns_linalg::matrix::Matrix::from_rows(rows);
            catalog.extract_mts(&m, 1.0 / 30.0)
        })
        .collect();
    let feat_per_segment = sw.seconds() / n as f64;
    let sw = Stopwatch::start();
    let mut epairs = 0usize;
    for i in 0..n {
        for j in i + 1..n {
            let _ = vecops::euclidean(&feats[i], &feats[j]);
            epairs += 1;
        }
    }
    let euclid_per_pair = sw.seconds() / epairs.max(1) as f64;

    println!(
        "DTW (banded, 8 metrics):      {:>12.3} ms / pair",
        dtw_per_pair * 1e3
    );
    println!(
        "DTW (banded + early-abandon): {:>12.3} ms / pair",
        dtw_cutoff_per_pair * 1e3
    );
    println!(
        "134-feature extraction:       {:>12.3} ms / segment",
        feat_per_segment * 1e3
    );
    println!(
        "Euclidean over features:      {:>12.6} ms / pair",
        euclid_per_pair * 1e3
    );

    // Extrapolate to the paper's D1 week: 13,379 jobs → ~13k segments.
    let big_n = 13_379f64;
    let big_pairs = big_n * (big_n - 1.0) / 2.0;
    // Paper segments are ~82 metrics post-reduction, ours 8 → scale DTW
    // linearly in metric count; lengths are ~10× longer → DTW scales
    // quadratically in length.
    let dtw_scale = (82.0 / 8.0) * 10.0 * 10.0;
    let dtw_total_days = big_pairs * dtw_per_pair * dtw_scale / 86_400.0;
    let feat_total_h =
        (big_n * feat_per_segment * (82.0 / 8.0) * 10.0 + big_pairs * euclid_per_pair) / 3600.0;
    println!();
    println!("extrapolated to D1 scale (13,379 segments, 82 metrics, 10x longer):");
    println!("  DTW clustering:      {dtw_total_days:>10.1} days  (paper: ~3.8 months ≈ 115 days)");
    println!("  feature clustering:  {feat_total_h:>10.1} hours");
    let ratio = dtw_total_days * 24.0 / feat_total_h;
    println!("  speedup: {ratio:.0}x");
    write_json(
        "dtw_cost",
        &json!({
            "dtw_ms_per_pair": dtw_per_pair * 1e3,
            "dtw_cutoff_ms_per_pair": dtw_cutoff_per_pair * 1e3,
            "feature_ms_per_segment": feat_per_segment * 1e3,
            "euclid_ms_per_pair": euclid_per_pair * 1e3,
            "extrapolated_dtw_days": dtw_total_days,
            "extrapolated_feature_hours": feat_total_h,
        }),
    );
    assert!(
        dtw_total_days * 24.0 > feat_total_h * 10.0,
        "DTW must be dramatically slower"
    );
}
