//! Micro-kernel throughput: the autovectorization regression gate.
//!
//! `ns_linalg::kernels` promises two things the type system cannot see:
//! each kernel inlines into its callers, and its inner loop compiles to
//! vector code (4-wide f64 blocks, no bounds checks). Both only show up
//! as *throughput*, so this bench measures every kernel and — under
//! `cargo bench` — asserts two floors:
//!
//! * an **absolute** floor (catastrophe canary): orders of magnitude
//!   below healthy codegen, so it only trips when a kernel has fallen
//!   off a cliff (per-element bounds checks, lost inlining, debug-mode
//!   arithmetic);
//! * a **relative** floor (parity canary): the blocked kernel must stay
//!   within 2× of the naive idiomatic loop it replaced — if blocking
//!   ever makes a kernel *slower* than what it replaced, that is a
//!   regression regardless of machine speed.
//!
//! The floors are deliberately loose (shared CI runners throttle), and
//! they only run in timed mode: under `cargo test` the closures execute
//! once for coverage and no timing is asserted. A manual pass at the end
//! writes `BENCH_kernels.json` with GFLOP/s per kernel for the README
//! perf table and CI artifacts.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use ns_bench::write_bench_json;
use ns_linalg::kernels;
use ns_linalg::matrix::Matrix;
use ns_linalg::matrix_f32::MatrixF32;
use serde_json::json;
use std::time::Instant;

const N: usize = 4096;

fn series(seed: usize) -> Vec<f64> {
    (0..N)
        .map(|i| ((i * 31 + seed * 17) as f64 * 0.123).sin() * 2.0)
        .collect()
}

fn series_f32(seed: usize) -> Vec<f32> {
    series(seed).into_iter().map(|v| v as f32).collect()
}

fn median_ns(iters: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..5)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            start.elapsed().as_secs_f64() * 1e9 / iters as f64
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[2]
}

fn bench_kernels(c: &mut Criterion) {
    let a = series(1);
    let b = series(2);
    let mut y = series(3);

    let mut g = c.benchmark_group("kernels");
    g.sample_size(20);
    g.bench_function("dot_4096", |bench| {
        bench.iter(|| black_box(kernels::dot(black_box(&a), black_box(&b))))
    });
    g.bench_function("axpy_4096", |bench| {
        bench.iter(|| kernels::axpy(black_box(&mut y), 1.000001, black_box(&b)))
    });
    g.bench_function("squared_distance_4096", |bench| {
        bench.iter(|| black_box(kernels::squared_distance(black_box(&a), black_box(&b))))
    });
    let m1 = Matrix::from_fn(64, 64, |r, c| ((r * 64 + c) as f64 * 0.01).sin());
    let m2 = Matrix::from_fn(64, 64, |r, c| ((r * 64 + c) as f64 * 0.02).cos());
    let mut out = Matrix::zeros(64, 64);
    g.bench_function("matmul_into_64", |bench| {
        bench.iter(|| m1.matmul_into(black_box(&m2), &mut out))
    });

    // f32 twins of the precision-tiered scoring path.
    let a32 = series_f32(1);
    let b32 = series_f32(2);
    let mut y32 = series_f32(3);
    g.bench_function("dot_f32_4096", |bench| {
        bench.iter(|| black_box(kernels::dot_f32(black_box(&a32), black_box(&b32))))
    });
    g.bench_function("axpy_f32_4096", |bench| {
        bench.iter(|| kernels::axpy_f32(black_box(&mut y32), 1.000001, black_box(&b32)))
    });
    g.bench_function("squared_distance_f32_4096", |bench| {
        bench.iter(|| {
            black_box(kernels::squared_distance_f32(
                black_box(&a32),
                black_box(&b32),
            ))
        })
    });
    let m1_32 = MatrixF32::from_matrix(&m1);
    let m2_32 = MatrixF32::from_matrix(&m2);
    let mut out32 = MatrixF32::zeros(64, 64);
    g.bench_function("matmul_f32_into_64", |bench| {
        bench.iter(|| m1_32.matmul_into(black_box(&m2_32), &mut out32))
    });
}

/// Naive idiomatic forms the kernels replaced — the relative baseline.
mod naive {
    pub fn dot(a: &[f64], b: &[f64]) -> f64 {
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }
    pub fn axpy(y: &mut [f64], a: f64, x: &[f64]) {
        for (yv, xv) in y.iter_mut().zip(x) {
            *yv += a * xv;
        }
    }
    pub fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| {
                let d = x - y;
                d * d
            })
            .sum()
    }
}

fn throughput_report_and_assertions() {
    let timed = std::env::args().any(|a| a == "--bench");
    let a = series(4);
    let b = series(5);
    let mut y = series(6);
    let iters = if timed { 2000 } else { 1 };

    let dot_ns = median_ns(iters, || {
        black_box(kernels::dot(black_box(&a), black_box(&b)));
    });
    let dot_naive_ns = median_ns(iters, || {
        black_box(naive::dot(black_box(&a), black_box(&b)));
    });
    let axpy_ns = median_ns(iters, || {
        kernels::axpy(black_box(&mut y), 1.000001, black_box(&b));
    });
    let axpy_naive_ns = median_ns(iters, || {
        naive::axpy(black_box(&mut y), 1.000001, black_box(&b));
    });
    let sqd_ns = median_ns(iters, || {
        black_box(kernels::squared_distance(black_box(&a), black_box(&b)));
    });
    let sqd_naive_ns = median_ns(iters, || {
        black_box(naive::squared_distance(black_box(&a), black_box(&b)));
    });

    // 2 flops per element for dot/axpy, 3 for squared distance.
    let gflops = |flops_per_elem: f64, ns: f64| (N as f64 * flops_per_elem) / ns;
    let dot_gflops = gflops(2.0, dot_ns);
    let axpy_gflops = gflops(2.0, axpy_ns);
    let sqd_gflops = gflops(3.0, sqd_ns);

    let k = 36;
    let m1 = Matrix::from_fn(128, k, |r, c| ((r * k + c) as f64 * 0.01).sin());
    let m2 = Matrix::from_fn(k, 72, |r, c| ((r * 72 + c) as f64 * 0.02).cos());
    let mut out = Matrix::zeros(128, 72);
    let mm_iters = if timed { 500 } else { 1 };
    let mm_ns = median_ns(mm_iters, || m1.matmul_into(black_box(&m2), &mut out));
    let mm_gflops = (2.0 * 128.0 * k as f64 * 72.0) / mm_ns;

    // f32 twins: same element counts, so the f64/f32 ns ratio is a
    // direct bandwidth-parity read (half the bytes per lane should buy
    // roughly double the elements per cycle once autovectorized).
    let a32 = series_f32(4);
    let b32 = series_f32(5);
    let mut y32 = series_f32(6);
    let dot32_ns = median_ns(iters, || {
        black_box(kernels::dot_f32(black_box(&a32), black_box(&b32)));
    });
    let axpy32_ns = median_ns(iters, || {
        kernels::axpy_f32(black_box(&mut y32), 1.000001, black_box(&b32));
    });
    let sqd32_ns = median_ns(iters, || {
        black_box(kernels::squared_distance_f32(
            black_box(&a32),
            black_box(&b32),
        ));
    });
    let dot32_gflops = gflops(2.0, dot32_ns);
    let axpy32_gflops = gflops(2.0, axpy32_ns);
    let sqd32_gflops = gflops(3.0, sqd32_ns);
    let m1_32 = MatrixF32::from_matrix(&m1);
    let m2_32 = MatrixF32::from_matrix(&m2);
    let mut out32 = MatrixF32::zeros(128, 72);
    let mm32_ns = median_ns(mm_iters, || {
        m1_32.matmul_into(black_box(&m2_32), &mut out32)
    });
    let mm32_gflops = (2.0 * 128.0 * k as f64 * 72.0) / mm32_ns;

    write_bench_json(
        "kernels",
        &json!({
            "n": N,
            "gflops": json!({
                "dot": dot_gflops,
                "axpy": axpy_gflops,
                "squared_distance": sqd_gflops,
                "matmul_128x36x72": mm_gflops,
            }),
            "vs_naive": json!({
                "dot": dot_naive_ns / dot_ns,
                "axpy": axpy_naive_ns / axpy_ns,
                "squared_distance": sqd_naive_ns / sqd_ns,
            }),
            "f32": json!({
                "dot": dot32_gflops,
                "axpy": axpy32_gflops,
                "squared_distance": sqd32_gflops,
                "matmul_128x36x72": mm32_gflops,
            }),
            "f32_vs_f64": json!({
                "dot": dot_ns / dot32_ns,
                "axpy": axpy_ns / axpy32_ns,
                "squared_distance": sqd_ns / sqd32_ns,
                "matmul_128x36x72": mm_ns / mm32_ns,
            }),
        }),
    );
    println!(
        "dot {dot_gflops:.2} GF/s ({:.2}x naive) | axpy {axpy_gflops:.2} GF/s ({:.2}x) | \
         sqdist {sqd_gflops:.2} GF/s ({:.2}x) | matmul {mm_gflops:.2} GF/s",
        dot_naive_ns / dot_ns,
        axpy_naive_ns / axpy_ns,
        sqd_naive_ns / sqd_ns,
    );
    println!(
        "f32: dot {dot32_gflops:.2} GF/s ({:.2}x f64) | axpy {axpy32_gflops:.2} GF/s ({:.2}x) | \
         sqdist {sqd32_gflops:.2} GF/s ({:.2}x) | matmul {mm32_gflops:.2} GF/s ({:.2}x)",
        dot_ns / dot32_ns,
        axpy_ns / axpy32_ns,
        sqd_ns / sqd32_ns,
        mm_ns / mm32_ns,
    );

    if timed {
        // Catastrophe canaries: healthy codegen lands 1–10 GFLOP/s on
        // any x86-64/aarch64 of the last decade; 0.05 only trips on a
        // cliff (debug arithmetic, per-element bounds checks).
        assert!(dot_gflops > 0.05, "dot throughput cliff: {dot_gflops} GF/s");
        assert!(
            axpy_gflops > 0.05,
            "axpy throughput cliff: {axpy_gflops} GF/s"
        );
        assert!(
            sqd_gflops > 0.05,
            "sqdist throughput cliff: {sqd_gflops} GF/s"
        );
        assert!(
            mm_gflops > 0.05,
            "matmul throughput cliff: {mm_gflops} GF/s"
        );
        // Parity canaries: blocking must not lose to the loop it
        // replaced (2× margin absorbs runner noise).
        assert!(
            dot_ns < dot_naive_ns * 2.0,
            "blocked dot slower than naive: {dot_ns}ns vs {dot_naive_ns}ns"
        );
        assert!(
            axpy_ns < axpy_naive_ns * 2.0,
            "blocked axpy slower than naive: {axpy_ns}ns vs {axpy_naive_ns}ns"
        );
        assert!(
            sqd_ns < sqd_naive_ns * 2.0,
            "blocked sqdist slower than naive: {sqd_ns}ns vs {sqd_naive_ns}ns"
        );
        // f32 catastrophe canaries, same cliff threshold as f64.
        assert!(
            dot32_gflops > 0.05,
            "dot_f32 throughput cliff: {dot32_gflops} GF/s"
        );
        assert!(
            axpy32_gflops > 0.05,
            "axpy_f32 throughput cliff: {axpy32_gflops} GF/s"
        );
        assert!(
            sqd32_gflops > 0.05,
            "sqdist_f32 throughput cliff: {sqd32_gflops} GF/s"
        );
        assert!(
            mm32_gflops > 0.05,
            "matmul_f32 throughput cliff: {mm32_gflops} GF/s"
        );
        // Bandwidth-parity canaries on the streaming hot-path kernels:
        // f32 halves the bytes per element, so a vectorized f32 kernel
        // should run its f64 twin's length in well under the f64 time.
        // 1.5x (not the ideal 2x) absorbs runner noise; failing it means
        // the f32 loop stopped vectorizing and the precision tier no
        // longer buys what it costs.
        assert!(
            dot_ns / dot32_ns >= 1.5,
            "dot_f32 lost bandwidth parity: {:.2}x f64 (want >=1.5x)",
            dot_ns / dot32_ns
        );
        assert!(
            sqd_ns / sqd32_ns >= 1.5,
            "sqdist_f32 lost bandwidth parity: {:.2}x f64 (want >=1.5x)",
            sqd_ns / sqd32_ns
        );
    }
}

fn benches_then_report(c: &mut Criterion) {
    bench_kernels(c);
    throughput_report_and_assertions();
}

criterion_group!(benches, benches_then_report);
criterion_main!(benches);
