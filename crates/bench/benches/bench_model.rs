//! Transformer+MoE training-step and inference cost — including the
//! paper's "< 2 ms per point" online-latency claim, and the MoE vs
//! dense-FFN step cost comparison.

use criterion::{criterion_group, criterion_main, Criterion};
use ns_linalg::matrix::Matrix;
use ns_nn::{
    sinusoidal_pe, Adam, BlockKind, Graph, ParamStore, ReconstructionTransformer, TransformerConfig,
};

fn make_model(block: BlockKind) -> (ParamStore, ReconstructionTransformer) {
    let mut params = ParamStore::new(7);
    let model = ReconstructionTransformer::new(
        &mut params,
        TransformerConfig {
            input_dim: 30,
            d_model: 24,
            n_heads: 3,
            n_layers: 3,
            hidden: 48,
            block,
            aux_weight: 0.01,
        },
    );
    (params, model)
}

fn bench_model(c: &mut Criterion) {
    let window = Matrix::from_fn(20, 30, |r, m| ((r * 3 + m) as f64 * 0.1).sin());
    let pe = sinusoidal_pe(20, 24, 0);
    let w = Matrix::filled(1, 30, 1.0);

    let mut group = c.benchmark_group("model");
    group.sample_size(20);

    for (label, block) in [
        (
            "moe3_top1",
            BlockKind::Moe {
                n_experts: 3,
                top_k: 1,
            },
        ),
        ("dense_ffn", BlockKind::Dense),
    ] {
        let (mut params, model) = make_model(block);
        let mut opt = Adam::new(1e-3);
        group.bench_function(format!("train_step_{label}"), |b| {
            b.iter(|| {
                let grads = {
                    let mut g = Graph::new(&params);
                    let x = g.input(window.clone());
                    let p = g.input(pe.clone());
                    let wn = g.input(w.clone());
                    let l = model.loss(&mut g, x, p, wn);
                    g.backward(l)
                };
                opt.step(&mut params, &grads);
            })
        });
        let (params, model) = make_model(block);
        group.bench_function(format!("infer_window20_{label}"), |b| {
            b.iter(|| {
                let mut g = Graph::new(&params);
                let x = g.input(window.clone());
                let p = g.input(pe.clone());
                let (recon, _) = model.forward(&mut g, x, p);
                g.value(recon).clone()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_model);
criterion_main!(benches);
