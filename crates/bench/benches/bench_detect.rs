//! End-to-end detection-path micro-costs: k-sigma thresholding, point
//! adjustment, AUC, and the preprocessing pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use nodesentry_core::preprocess::{interpolate_missing, Preprocessor};
use ns_eval::metrics::{adjusted_confusion, roc_auc_adjusted};
use ns_eval::threshold::{ksigma_detect, KSigmaConfig};
use ns_linalg::matrix::Matrix;

fn bench_detect(c: &mut Criterion) {
    let scores: Vec<f64> = (0..10_000)
        .map(|i| ((i * 37) % 101) as f64 * 0.01)
        .collect();
    let truth: Vec<bool> = (0..10_000).map(|i| (4000..4100).contains(&i)).collect();
    let cfg = KSigmaConfig::default();

    let mut group = c.benchmark_group("detect");
    group.sample_size(30);
    group.bench_function("ksigma_10k", |b| b.iter(|| ksigma_detect(&scores, &cfg)));
    let pred = ksigma_detect(&scores, &cfg);
    group.bench_function("point_adjust_confusion_10k", |b| {
        b.iter(|| adjusted_confusion(&pred, &truth, None))
    });
    group.bench_function("roc_auc_10k", |b| {
        b.iter(|| roc_auc_adjusted(&scores, &truth, None))
    });

    // Preprocessing micro-costs.
    let raw = Matrix::from_fn(2000, 120, |r, m| {
        if (r * 131 + m * 17) % 997 == 0 {
            f64::NAN
        } else {
            ((r + m * 3) as f64 * 0.01).sin()
        }
    });
    group.bench_function("interpolate_2000x120", |b| {
        b.iter(|| {
            let mut m = raw.clone();
            interpolate_missing(&mut m);
            m
        })
    });
    let groups: Vec<usize> = (0..120).map(|i| i / 4).collect();
    let pp = Preprocessor::fit(&raw, &groups, 0.99, 0.05);
    group.bench_function("preprocess_transform_2000x120", |b| {
        b.iter(|| pp.transform(&raw))
    });
    group.finish();
}

criterion_group!(benches, bench_detect);
criterion_main!(benches);
