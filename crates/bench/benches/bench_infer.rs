//! Taped vs tape-free forward-pass cost, cold vs warm scratch.
//!
//! Criterion covers the statistical comparison; a manual timing pass at
//! the end writes `BENCH_infer.json` so CI and the README perf table can
//! consume the medians without parsing criterion output.

use criterion::{criterion_group, criterion_main, Criterion};
use ns_bench::write_bench_json;
use ns_linalg::matrix::Matrix;
use ns_nn::{
    sinusoidal_pe_at, BlockKind, Graph, InferenceSession, ParamStore, ReconstructionTransformer,
    TransformerConfig,
};
use serde_json::json;
use std::time::Instant;

/// The shared-model shape of the paper's deployment config: window 20,
/// d_model 36, 3 heads / 3 layers, MoE with 3 experts, top-1 gating.
fn model() -> (ParamStore, ReconstructionTransformer) {
    let mut params = ParamStore::new(11);
    let model = ReconstructionTransformer::new(
        &mut params,
        TransformerConfig {
            input_dim: 24,
            d_model: 36,
            n_heads: 3,
            n_layers: 3,
            hidden: 72,
            block: BlockKind::Moe {
                n_experts: 3,
                top_k: 1,
            },
            aux_weight: 0.01,
        },
    );
    (params, model)
}

fn window(t: usize, m: usize) -> (Matrix, Matrix) {
    let x = Matrix::from_fn(t, m, |r, c| ((r as f64 * 0.4 + c as f64) * 0.7).sin());
    let positions: Vec<f64> = (0..t).map(|r| r as f64 * 512.0 / t as f64).collect();
    (x, sinusoidal_pe_at(&positions, 36))
}

fn taped_forward(params: &ParamStore, model: &ReconstructionTransformer, x: &Matrix, pe: &Matrix) {
    let mut g = Graph::new(params);
    let xn = g.input(x.clone());
    let pn = g.input(pe.clone());
    let (recon, _) = model.forward(&mut g, xn, pn);
    std::hint::black_box(g.value(recon));
}

fn bench_infer(c: &mut Criterion) {
    let (params, model) = model();
    let (x, pe) = window(20, 24);

    let mut group = c.benchmark_group("infer");
    group.sample_size(40);
    group.bench_function("taped_forward_20x24", |b| {
        b.iter(|| taped_forward(&params, &model, &x, &pe))
    });
    group.bench_function("fast_forward_warm_20x24", |b| {
        let mut sess = InferenceSession::new();
        sess.forward(&params, &model, &x, &pe); // warm the scratch buffers
        b.iter(|| {
            std::hint::black_box(sess.forward(&params, &model, &x, &pe));
        })
    });
    group.bench_function("fast_forward_cold_20x24", |b| {
        b.iter(|| {
            // Fresh session per call: pays scratch sizing.
            let mut sess = InferenceSession::new();
            std::hint::black_box(sess.forward(&params, &model, &x, &pe));
        })
    });
    group.finish();
}

/// Median nanoseconds per call of `f` over `iters` calls, sampled thrice.
fn median_ns(iters: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..3)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            start.elapsed().as_secs_f64() * 1e9 / iters as f64
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[1]
}

fn write_report() {
    let (params, model) = model();
    let (x, pe) = window(20, 24);

    let taped = median_ns(200, || taped_forward(&params, &model, &x, &pe));
    let mut sess = InferenceSession::new();
    sess.forward(&params, &model, &x, &pe);
    let fast_warm = median_ns(200, || {
        std::hint::black_box(sess.forward(&params, &model, &x, &pe));
    });
    let fast_cold = median_ns(200, || {
        let mut s = InferenceSession::new();
        std::hint::black_box(s.forward(&params, &model, &x, &pe));
    });

    write_bench_json(
        "infer",
        &json!({
            "config": json!({
                "window": 20,
                "input_dim": 24,
                "d_model": 36,
                "n_heads": 3,
                "n_layers": 3,
                "block": "moe_3x_top1",
            }),
            "forward_ns": json!({
                "taped": taped,
                "fast_warm": fast_warm,
                "fast_cold": fast_cold,
            }),
            "speedup": json!({
                "warm_vs_taped": taped / fast_warm,
                "cold_vs_taped": taped / fast_cold,
            }),
        }),
    );
    println!(
        "taped {:.1}µs | fast warm {:.1}µs ({:.2}x) | fast cold {:.1}µs ({:.2}x)",
        taped / 1e3,
        fast_warm / 1e3,
        taped / fast_warm,
        fast_cold / 1e3,
        taped / fast_cold,
    );
}

fn benches_then_report(c: &mut Criterion) {
    bench_infer(c);
    write_report();
}

criterion_group!(benches, benches_then_report);
criterion_main!(benches);
