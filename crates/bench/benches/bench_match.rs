//! Single vs batched cost of the streaming hot path's two kernels at
//! job-transition burst sizes 1 / 8 / 64:
//!
//! * probe matching — allocating `match_pattern` vs the scratch-based
//!   `match_pattern_into` over the contiguous centroid matrix with
//!   early-abandon;
//! * segment scoring — a `score_series` loop vs one
//!   `score_series_batch` stacking the burst into batched forwards.
//!
//! Criterion covers the statistical comparison; a manual timing pass
//! writes `BENCH_match.json` for CI and the README perf table.

use criterion::{criterion_group, criterion_main, Criterion};
use nodesentry_core::coarse::ClusterModel;
use nodesentry_core::sharing::{SharedModel, SharingConfig};
use ns_bench::write_bench_json;
use ns_linalg::matrix::Matrix;
use ns_nn::{BlockKind, ParamStore, ReconstructionTransformer, SessionPool, TransformerConfig};
use serde_json::json;
use std::time::Instant;

const BURSTS: [usize; 3] = [1, 8, 64];

/// A hand-built cluster library at deployment scale: 12 centroids over
/// 134 probe features (the standard catalog's width).
fn library(k: usize, dim: usize) -> ClusterModel {
    let centroids = Matrix::from_fn(k, dim, |r, c| ((r * 13 + c * 7) as f64 * 0.31).sin() * 2.0);
    ClusterModel {
        feat_mean: vec![0.0; dim],
        feat_std: vec![1.0; dim],
        centroids: (0..k).map(|r| centroids.row(r).to_vec()).collect(),
        labels: (0..k).collect(),
        member_distances: vec![0.0; k],
        silhouette: 0.5,
        probe_feat_mean: vec![0.25; dim],
        probe_feat_std: vec![1.5; dim],
        probe_centroids: centroids,
        match_radius: 10.0,
    }
}

fn probes(n: usize, dim: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|p| {
            (0..dim)
                .map(|c| ((p * 11 + c * 5) as f64 * 0.23).cos() * 2.0)
                .collect()
        })
        .collect()
}

/// A shared model at the paper's deployment shape (window 20, d_model
/// 36, 3 heads / 3 layers, MoE 3 experts top-1), built directly so the
/// bench doesn't pay a training run.
fn shared_model() -> SharedModel {
    let cfg = SharingConfig::default();
    let input_dim = 24;
    let mut params = ParamStore::new(11);
    let model = ReconstructionTransformer::new(
        &mut params,
        TransformerConfig {
            input_dim,
            d_model: cfg.d_model,
            n_heads: cfg.n_heads,
            n_layers: cfg.n_layers,
            hidden: cfg.hidden,
            block: BlockKind::Moe {
                n_experts: cfg.n_experts,
                top_k: cfg.top_k,
            },
            aux_weight: 0.01,
        },
    );
    SharedModel {
        params,
        model,
        weights: vec![1.0; input_dim],
        cfg,
        loss_history: Vec::new(),
        score_mean: 0.0,
        score_std: 1.0,
        infer: SessionPool::new(),
        infer32: ns_nn::SessionPoolF32::new(),
    }
}

fn segments(n: usize, t: usize, m: usize) -> Vec<Matrix> {
    (0..n)
        .map(|s| {
            Matrix::from_fn(t, m, |r, c| {
                ((r as f64 * 0.37 + c as f64 * 1.3 + s as f64 * 0.71) * 0.9).sin()
            })
        })
        .collect()
}

fn bench_match(c: &mut Criterion) {
    let model = library(12, 134);
    let shared = shared_model();

    let mut group = c.benchmark_group("match");
    for burst in BURSTS {
        let ps = probes(burst, 134);
        group.bench_function(format!("match_pattern_x{burst}"), |b| {
            b.iter(|| {
                for p in &ps {
                    std::hint::black_box(model.match_pattern(p));
                }
            })
        });
        group.bench_function(format!("match_pattern_into_x{burst}"), |b| {
            let mut scratch = Vec::new();
            model.match_pattern_into(&ps[0], &mut scratch); // warm
            b.iter(|| {
                for p in &ps {
                    std::hint::black_box(model.match_pattern_into(p, &mut scratch));
                }
            })
        });
    }
    for burst in BURSTS {
        let segs = segments(burst, 60, 24);
        let refs: Vec<&Matrix> = segs.iter().collect();
        group.bench_function(format!("score_series_loop_x{burst}"), |b| {
            shared.score_series(&segs[0]); // warm the session pool
            b.iter(|| {
                for s in &segs {
                    std::hint::black_box(shared.score_series(s));
                }
            })
        });
        group.bench_function(format!("score_series_batch_x{burst}"), |b| {
            shared.score_series_batch(&refs); // warm batch-shaped scratch
            b.iter(|| {
                std::hint::black_box(shared.score_series_batch(&refs));
            })
        });
    }
    group.finish();
}

/// Median nanoseconds per call of `f` over `iters` calls, from five
/// samples (the median rides out host-jitter outliers either way).
fn median_ns(iters: usize, mut f: impl FnMut()) -> f64 {
    let mut samples: Vec<f64> = (0..5)
        .map(|_| {
            let start = Instant::now();
            for _ in 0..iters {
                f();
            }
            start.elapsed().as_secs_f64() * 1e9 / iters as f64
        })
        .collect();
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    samples[2]
}

fn write_report() {
    let model = library(12, 134);
    let shared = shared_model();

    let mut match_ns: Vec<(String, serde_json::Value)> = Vec::new();
    let mut score_ns: Vec<(String, serde_json::Value)> = Vec::new();
    for burst in BURSTS {
        let ps = probes(burst, 134);
        // Sample length scales inversely with burst so every sample is
        // ~100 ms — short samples are dominated by host jitter.
        let match_iters = (100_000 / burst).max(400);
        let alloc = median_ns(match_iters, || {
            for p in &ps {
                std::hint::black_box(model.match_pattern(p));
            }
        });
        let mut scratch = Vec::new();
        model.match_pattern_into(&ps[0], &mut scratch);
        let into = median_ns(match_iters, || {
            for p in &ps {
                std::hint::black_box(model.match_pattern_into(p, &mut scratch));
            }
        });
        match_ns.push((
            format!("burst_{burst}"),
            json!({
                "allocating": alloc,
                "scratch": into,
                "speedup": alloc / into,
            }),
        ));

        let segs = segments(burst, 60, 24);
        let refs: Vec<&Matrix> = segs.iter().collect();
        // Keep each timing sample a few hundred ms long regardless of
        // burst size — short samples are dominated by host jitter.
        let iters = (1600 / burst).clamp(20, 400);
        shared.score_series(&segs[0]);
        let single = median_ns(iters, || {
            for s in &segs {
                std::hint::black_box(shared.score_series(s));
            }
        });
        shared.score_series_batch(&refs);
        let batched = median_ns(iters, || {
            std::hint::black_box(shared.score_series_batch(&refs));
        });
        score_ns.push((
            format!("burst_{burst}"),
            json!({
                "loop": single,
                "batched": batched,
                "speedup": single / batched,
            }),
        ));
        println!(
            "burst {burst:>2}: match {:.2}µs -> {:.2}µs | score {:.1}µs -> {:.1}µs ({:.2}x)",
            alloc / 1e3,
            into / 1e3,
            single / 1e3,
            batched / 1e3,
            single / batched,
        );
    }

    write_bench_json(
        "match",
        &json!({
            "config": json!({
                "library": json!({"k": 12, "probe_features": 134}),
                "segment": json!({"rows": 60, "input_dim": 24}),
                "model": "moe_3x_top1_d36",
                "bursts": BURSTS,
            }),
            "match_ns": serde_json::Value::Object(match_ns),
            "score_ns": serde_json::Value::Object(score_ns),
        }),
    );
}

fn benches_then_report(c: &mut Criterion) {
    bench_match(c);
    write_report();
}

criterion_group!(benches, benches_then_report);
criterion_main!(benches);
