//! Feature-extraction throughput: the 134-feature catalog per series and
//! per MTS segment (the coarse stage's dominant cost).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ns_features::FeatureCatalog;
use ns_linalg::matrix::Matrix;

fn bench_features(c: &mut Criterion) {
    let catalog = FeatureCatalog::standard();
    let compact = FeatureCatalog::compact();
    let mut group = c.benchmark_group("features");
    group.sample_size(20);
    for len in [240usize, 1024] {
        let series: Vec<f64> = (0..len)
            .map(|i| (i as f64 * 0.13).sin() * 2.0 + 0.4)
            .collect();
        group.bench_with_input(BenchmarkId::new("standard_134", len), &series, |b, s| {
            b.iter(|| catalog.extract(s, 1.0 / 30.0))
        });
        group.bench_with_input(BenchmarkId::new("compact_21", len), &series, |b, s| {
            b.iter(|| compact.extract(s, 1.0 / 30.0))
        });
    }
    let segment = Matrix::from_fn(240, 30, |r, c2| ((r * (c2 + 1)) as f64 * 0.05).sin());
    group.bench_function("mts_240x30_standard", |b| {
        b.iter(|| catalog.extract_mts(&segment, 1.0 / 30.0))
    });
    group.finish();
}

criterion_group!(benches, bench_features);
criterion_main!(benches);
