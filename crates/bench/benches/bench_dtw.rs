//! DTW vs feature-space distance (the §2.1 cost argument, micro form).

use criterion::{criterion_group, criterion_main, Criterion};
use ns_cluster::dtw::dtw_distance;
use ns_features::FeatureCatalog;
use ns_linalg::vecops;

fn bench_dtw(c: &mut Criterion) {
    let a: Vec<f64> = (0..500).map(|i| (i as f64 * 0.11).sin()).collect();
    let b: Vec<f64> = (0..470).map(|i| (i as f64 * 0.12).cos()).collect();
    let catalog = FeatureCatalog::standard();
    let fa = catalog.extract(&a, 1.0);
    let fb = catalog.extract(&b, 1.0);

    let mut group = c.benchmark_group("dtw_vs_features");
    group.sample_size(20);
    group.bench_function("dtw_unbanded_500", |bch| {
        bch.iter(|| dtw_distance(&a, &b, None))
    });
    group.bench_function("dtw_band20_500", |bch| {
        bch.iter(|| dtw_distance(&a, &b, Some(20)))
    });
    group.bench_function("feature_extract_500", |bch| {
        bch.iter(|| catalog.extract(&a, 1.0))
    });
    group.bench_function("feature_euclidean", |bch| {
        bch.iter(|| vecops::euclidean(&fa, &fb))
    });
    group.finish();
}

criterion_group!(benches, bench_dtw);
criterion_main!(benches);
