//! HAC clustering cost over segment populations (coarse stage).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use ns_cluster::{linkage_from_distance, select_k, Linkage};
use ns_linalg::distance::CondensedDistance;
use ns_linalg::vecops;

fn synth_features(n: usize, dim: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| {
            (0..dim)
                .map(|j| ((i * 31 + j * 7) % 23) as f64 + if i % 3 == 0 { 40.0 } else { 0.0 })
                .collect()
        })
        .collect()
}

fn bench_hac(c: &mut Criterion) {
    let mut group = c.benchmark_group("hac");
    group.sample_size(10);
    for n in [100usize, 400] {
        let feats = synth_features(n, 64);
        group.bench_with_input(BenchmarkId::new("linkage_ward", n), &feats, |b, f| {
            b.iter(|| {
                let dist =
                    CondensedDistance::compute(f.len(), |i, j| vecops::euclidean(&f[i], &f[j]));
                linkage_from_distance(&dist, Linkage::Ward)
            })
        });
    }
    let feats = synth_features(200, 64);
    let dist =
        CondensedDistance::compute(feats.len(), |i, j| vecops::euclidean(&feats[i], &feats[j]));
    let dend = linkage_from_distance(&dist, Linkage::Ward);
    group.bench_function("silhouette_sweep_k12_n200", |b| {
        b.iter(|| select_k(&dist, &dend, 12, 0.0))
    });
    group.finish();
}

criterion_group!(benches, bench_hac);
criterion_main!(benches);
