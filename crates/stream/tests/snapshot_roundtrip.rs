//! Snapshot wire-format round trips, no neural training required:
//! the binary `Value` codec and the `NSSN` envelope must reproduce every
//! snapshot — exotic float bits included — exactly, and a
//! [`StreamingPreprocessor`] rebuilt from its [`PreSnap`] must continue
//! the stream bit-identically to one that never stopped.

use nodesentry_core::preprocess::Preprocessor;
use ns_eval::streaming::{KSigmaState, SmootherState};
use ns_linalg::Matrix;
use ns_stream::snapshot::{
    EngineSnapshot, JobSnap, NodeSnap, PendingSnap, PreSnap, SNAPSHOT_MAGIC, SNAPSHOT_VERSION,
};
use ns_stream::{FaultCounters, StreamStats, StreamingPreprocessor, Tick};

/// Deterministic pseudo-random raw matrix with NaN holes (same splitmix
/// idiom as the in-crate unit tests).
fn raw_with_holes(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut state = seed;
    let mut next = move || {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    };
    Matrix::from_fn(rows, cols, |r, c| {
        let u = next() as f64 / u64::MAX as f64;
        if u < 0.05 {
            f64::NAN
        } else {
            ((r as f64 * 0.13 + c as f64).sin() + u * 0.3) * (1.0 + c as f64 * 0.2)
        }
    })
}

/// A hand-built snapshot exercising every field shape the format can
/// carry: exotic float bits, empty and non-empty vectors, `None`/`Some`,
/// and multi-node payloads.
fn synthetic_snapshot() -> EngineSnapshot {
    let weird = f64::from_bits(0x7FF8_0000_0000_0001); // NaN with payload
    let pre = PreSnap {
        buf: vec![vec![1.5, weird, -0.0], vec![f64::INFINITY, 2.0, 3.0]],
        nan_flags: vec![true, false],
        base: 7,
        n_pushed: 9,
        resolved: 2,
        last_obs: vec![Some(3), None, Some(0)],
        last_val: vec![0.25, -1.0, f64::NEG_INFINITY],
        rate_prev: vec![5e-324, 0.0],
        any_row: true,
    };
    let node = NodeSnap {
        node: 3,
        next_step: 41,
        next_row: 17,
        pre: pre.clone(),
        cuts: vec![12, 24, 36],
        seg_start: 36,
        seg_rows: vec![vec![0.1, 0.2, 0.3]],
        seg_row_kinds: vec![1],
        matched: Some(2),
        jobs: vec![JobSnap {
            start: 24,
            rows: vec![vec![-0.5, 0.5, weird]],
            kinds: vec![0],
            matched: None,
            degraded: true,
        }],
        probe_pending: true,
        smoother: SmootherState {
            buf: vec![0.75, -0.0],
            n_pushed: 40,
            next_out: 38,
        },
        detector: KSigmaState {
            window: vec![0.1, 0.2, 0.9],
            flagged_run: 1,
        },
        pending: vec![PendingSnap {
            step: 40,
            score: weird,
            cluster: 1,
            suppress: false,
            degraded: true,
        }],
        ahead: vec![Tick {
            node: 3,
            step: 43,
            values: vec![1.0, f64::NAN],
            transition: true,
        }],
        row_kinds: vec![0, 1, 2],
        resync_degraded: true,
        prev_raw: vec![weird, 1.0, -0.0],
        runs: vec![0, 4, 1],
        stats: StreamStats::default(),
        faults: FaultCounters {
            synthesized_rows: 5,
            ..Default::default()
        },
    };
    let mut empty = node.clone();
    empty.node = 0;
    empty.pre.buf.clear();
    empty.pre.nan_flags.clear();
    empty.jobs.clear();
    empty.pending.clear();
    empty.ahead.clear();
    empty.matched = None;
    EngineSnapshot {
        model_fingerprint: 0xDEAD_BEEF_CAFE_F00D,
        split: 360,
        smooth_window: 1,
        scoring_precision: ns_stream::ScoringPrecision::F64,
        n_shards: 4,
        nodes: vec![empty, node],
        quarantined: vec![1, 7],
        carried_stats: StreamStats::default(),
        carried_faults: FaultCounters {
            quarantine_dropped: 3,
            ..Default::default()
        },
    }
}

#[test]
fn engine_snapshot_roundtrips_bit_exactly() {
    let snap = synthetic_snapshot();
    let bytes = snap.to_bytes();
    let back = EngineSnapshot::from_bytes(&bytes).expect("decode");
    // NaN-bearing fields defeat derived equality, so the round trip is
    // checked at the wire level: the format has exactly one canonical
    // encoding per snapshot, and re-encoding the decoded copy must
    // reproduce it bit for bit.
    assert_eq!(back.to_bytes(), bytes);
    // Spot-check decoded structure on the NaN-free fields.
    assert_eq!(back.model_fingerprint, snap.model_fingerprint);
    assert_eq!(back.n_shards, snap.n_shards);
    assert_eq!(back.quarantined, snap.quarantined);
    assert_eq!(back.nodes.len(), snap.nodes.len());
    assert_eq!(back.nodes[1].row_kinds, snap.nodes[1].row_kinds);
    assert_eq!(
        back.carried_faults.quarantine_dropped,
        snap.carried_faults.quarantine_dropped
    );
}

#[test]
fn envelope_layout_is_pinned() {
    let snap = synthetic_snapshot();
    let bytes = snap.to_bytes();
    assert_eq!(&bytes[..4], &SNAPSHOT_MAGIC, "magic leads the envelope");
    assert_eq!(
        u16::from_le_bytes([bytes[4], bytes[5]]),
        SNAPSHOT_VERSION,
        "version follows the magic"
    );
    let payload_len = u64::from_le_bytes(bytes[6..14].try_into().unwrap()) as usize;
    assert_eq!(
        bytes.len(),
        4 + 2 + 8 + payload_len + 8,
        "magic + version + length + payload + checksum, nothing else"
    );
    // Trailing garbage is rejected, not ignored.
    let mut extra = bytes.clone();
    extra.push(0);
    assert!(EngineSnapshot::from_bytes(&extra).is_err());
}

#[test]
fn float_bit_patterns_survive_the_wire() {
    let mut snap = synthetic_snapshot();
    let specials = [
        f64::NAN.to_bits(),
        0x7FF8_0000_0000_0001, // NaN, nonzero payload
        0xFFF8_0000_0000_0000, // negative NaN
        (-0.0f64).to_bits(),
        f64::INFINITY.to_bits(),
        f64::NEG_INFINITY.to_bits(),
        5e-324f64.to_bits(), // smallest subnormal
        f64::MAX.to_bits(),
    ];
    snap.nodes[1].prev_raw = specials.iter().map(|&b| f64::from_bits(b)).collect();
    let back = EngineSnapshot::from_bytes(&snap.to_bytes()).expect("decode");
    let got: Vec<u64> = back.nodes[1].prev_raw.iter().map(|v| v.to_bits()).collect();
    assert_eq!(got, specials, "f64 bits must survive exactly");
}

#[test]
fn preprocessor_restored_mid_stream_continues_bit_identically() {
    for seed in [3u64, 29, 121] {
        let raw = raw_with_holes(200, 6, seed);
        let groups = vec![0usize, 0, 1, 1, 2, 2];
        let pp = Preprocessor::fit(&raw.slice_rows(0, 120), &groups, 0.995, 0.05);

        // Reference: one uninterrupted pass.
        let mut whole = StreamingPreprocessor::new(&pp);
        let mut want = Vec::new();
        for r in 0..raw.rows() {
            want.extend(whole.push(raw.row(r)));
        }
        want.extend(whole.flush());

        // Cut at 130 — inside the NaN-deferred region often enough to
        // exercise a non-empty watermark buffer.
        let mut first = StreamingPreprocessor::new(&pp);
        let mut got = Vec::new();
        for r in 0..130 {
            got.extend(first.push(raw.row(r)));
        }
        let state = first.state();
        drop(first);
        let mut second = StreamingPreprocessor::restore(&pp, &state).expect("restore");
        // The restored copy reports the same state it was built from.
        // (Compared via Debug: derived PartialEq is NaN-hostile, and the
        // buffered rows legitimately hold NaN holes.)
        assert_eq!(
            format!("{:?}", second.state()),
            format!("{state:?}"),
            "state→restore→state is lossless"
        );
        for r in 130..raw.rows() {
            got.extend(second.push(raw.row(r)));
        }
        got.extend(second.flush());

        assert_eq!(got.len(), want.len(), "seed {seed}: row count diverged");
        for (i, (g, w)) in got.iter().zip(&want).enumerate() {
            assert_eq!(
                g.values.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                w.values.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                "seed {seed}: row {i} values diverged"
            );
            assert_eq!(g.all_nan, w.all_nan, "seed {seed}: row {i} all_nan");
            assert_eq!(
                g.counter_reset, w.counter_reset,
                "seed {seed}: row {i} counter_reset"
            );
        }
    }
}

#[test]
fn preprocessor_restore_rejects_mismatched_shapes() {
    let raw = raw_with_holes(80, 4, 9);
    let groups = vec![0usize, 0, 1, 1];
    let pp = Preprocessor::fit(&raw.slice_rows(0, 60), &groups, 0.995, 0.05);
    let mut sp = StreamingPreprocessor::new(&pp);
    for r in 0..40 {
        sp.push(raw.row(r));
    }
    let good = sp.state();
    assert!(StreamingPreprocessor::restore(&pp, &good).is_ok());

    let mut narrow = good.clone();
    narrow.last_val.pop();
    assert!(
        StreamingPreprocessor::restore(&pp, &narrow).is_err(),
        "dropped last_val entry must be rejected"
    );

    let mut ragged = good.clone();
    if let Some(row) = ragged.buf.first_mut() {
        row.push(0.0);
        assert!(
            StreamingPreprocessor::restore(&pp, &ragged).is_err(),
            "ragged buffered row must be rejected"
        );
    }

    let mut unflagged = good.clone();
    unflagged.nan_flags.push(false);
    assert!(
        StreamingPreprocessor::restore(&pp, &unflagged).is_err(),
        "buf/nan_flags length mismatch must be rejected"
    );
}
