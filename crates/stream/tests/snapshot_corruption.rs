//! Hostile-bytes conformance for the snapshot wire format: every
//! truncation, every single-bit flip, and every crafted header must come
//! back as a typed [`SnapshotError`] — never a panic, never a silent
//! success. Restores are total functions over arbitrary bytes.

use ns_eval::streaming::{KSigmaState, SmootherState};
use ns_stream::snapshot::{
    EngineSnapshot, NodeSnap, PreSnap, SnapshotError, SNAPSHOT_MAGIC, SNAPSHOT_VERSION,
};
use ns_stream::{FaultCounters, StreamStats};

/// FNV-1a 64 — reimplemented here so the test can re-seal crafted
/// envelopes without reaching into crate internals.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Small but structurally complete snapshot: one node with live buffers,
/// one quarantined id, nonzero residual counters.
fn sample() -> EngineSnapshot {
    let node = NodeSnap {
        node: 2,
        next_step: 11,
        next_row: 5,
        pre: PreSnap {
            buf: vec![vec![1.0, f64::NAN]],
            nan_flags: vec![false],
            base: 4,
            n_pushed: 6,
            resolved: 1,
            last_obs: vec![Some(1), None],
            last_val: vec![0.5, -0.5],
            rate_prev: vec![2.0],
            any_row: true,
        },
        cuts: vec![6],
        seg_start: 6,
        seg_rows: vec![vec![0.25, 0.75]],
        seg_row_kinds: vec![0],
        matched: Some(1),
        jobs: Vec::new(),
        probe_pending: false,
        smoother: SmootherState {
            buf: vec![0.1],
            n_pushed: 10,
            next_out: 9,
        },
        detector: KSigmaState {
            window: vec![0.1, 0.4],
            flagged_run: 0,
        },
        pending: Vec::new(),
        ahead: Vec::new(),
        row_kinds: vec![0, 1],
        resync_degraded: false,
        prev_raw: vec![1.0, 2.0],
        runs: vec![3, 0],
        stats: StreamStats::default(),
        faults: FaultCounters::default(),
    };
    EngineSnapshot {
        model_fingerprint: 0x1234_5678_9ABC_DEF0,
        split: 100,
        smooth_window: 1,
        scoring_precision: ns_stream::ScoringPrecision::F64,
        n_shards: 2,
        nodes: vec![node],
        quarantined: vec![5],
        carried_stats: StreamStats::default(),
        carried_faults: FaultCounters::default(),
    }
}

/// Re-seal a tampered envelope: recompute the trailing checksum so only
/// the *intended* corruption is visible to the decoder.
fn reseal(mut bytes: Vec<u8>) -> Vec<u8> {
    let body = bytes.len() - 8;
    let sum = fnv1a64(&bytes[..body]).to_le_bytes();
    bytes[body..].copy_from_slice(&sum);
    bytes
}

#[test]
fn every_truncation_is_a_typed_error() {
    let bytes = sample().to_bytes();
    for len in 0..bytes.len() {
        let res = EngineSnapshot::from_bytes(&bytes[..len]);
        assert!(
            res.is_err(),
            "truncation to {len}/{} bytes decoded successfully",
            bytes.len()
        );
    }
    // The empty slice reports what it is.
    match EngineSnapshot::from_bytes(&[]) {
        Err(SnapshotError::Truncated { .. }) => {}
        other => panic!("empty input: {other:?}"),
    }
}

#[test]
fn every_single_bit_flip_is_detected() {
    let bytes = sample().to_bytes();
    for pos in 0..bytes.len() {
        for bit in 0..8u8 {
            let mut bad = bytes.clone();
            bad[pos] ^= 1 << bit;
            let res = EngineSnapshot::from_bytes(&bad);
            assert!(
                res.is_err(),
                "bit {bit} of byte {pos}/{} flipped undetected",
                bytes.len()
            );
        }
    }
}

#[test]
fn wrong_magic_is_bad_magic() {
    let mut bytes = sample().to_bytes();
    bytes[..4].copy_from_slice(b"XSSN");
    match EngineSnapshot::from_bytes(&bytes) {
        Err(SnapshotError::BadMagic) => {}
        other => panic!("wrong magic: {other:?}"),
    }
}

#[test]
fn future_version_with_valid_checksum_is_unsupported_version() {
    // A well-formed envelope from "the future": version 99, checksum
    // re-sealed. The decoder must identify the version gap, not cry
    // corruption.
    let mut bytes = sample().to_bytes();
    bytes[4..6].copy_from_slice(&99u16.to_le_bytes());
    match EngineSnapshot::from_bytes(&reseal(bytes)) {
        Err(SnapshotError::UnsupportedVersion { found, supported }) => {
            assert_eq!(found, 99);
            assert_eq!(supported, SNAPSHOT_VERSION);
        }
        other => panic!("future version: {other:?}"),
    }
}

#[test]
fn corrupted_version_without_reseal_is_checksum_mismatch() {
    // Same tamper, checksum left stale: indistinguishable from bit rot,
    // and reported as such.
    let mut bytes = sample().to_bytes();
    bytes[4..6].copy_from_slice(&99u16.to_le_bytes());
    match EngineSnapshot::from_bytes(&bytes) {
        Err(SnapshotError::ChecksumMismatch) => {}
        other => panic!("stale checksum: {other:?}"),
    }
}

#[test]
fn resealed_garbage_payload_is_a_decode_error() {
    // Valid envelope, hostile payload: the value decoder must fail
    // typed, not panic or over-allocate.
    let payload = [6u8, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF]; // Array, u64::MAX items
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&SNAPSHOT_MAGIC);
    bytes.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    bytes.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    bytes.extend_from_slice(&payload);
    bytes.extend_from_slice(&[0u8; 8]);
    match EngineSnapshot::from_bytes(&reseal(bytes)) {
        Err(SnapshotError::Truncated { .. }) | Err(SnapshotError::Decode(_)) => {}
        other => panic!("hostile payload: {other:?}"),
    }
}

#[test]
fn well_typed_but_wrong_shaped_payload_is_a_decode_error() {
    // A checksum-valid snapshot whose payload decodes as a Value but not
    // as an EngineSnapshot (wrong field types).
    let inner = sample();
    let mut bytes = inner.to_bytes();
    // Splice the payload down to a single Null (tag 0).
    let mut crafted = Vec::new();
    crafted.extend_from_slice(&bytes[..4]);
    crafted.extend_from_slice(&bytes[4..6]);
    crafted.extend_from_slice(&1u64.to_le_bytes());
    crafted.push(0); // Value::Null
    crafted.extend_from_slice(&[0u8; 8]);
    bytes = reseal(crafted);
    match EngineSnapshot::from_bytes(&bytes) {
        Err(SnapshotError::Decode(msg)) => {
            assert!(!msg.is_empty(), "decode error carries a message");
        }
        other => panic!("null payload: {other:?}"),
    }
}

#[test]
fn errors_render_and_compare() {
    // The error type is part of the public API: Display is human-usable
    // and variants are comparable for exhaustive matching in callers.
    let errs = [
        SnapshotError::Truncated {
            expected: 10,
            have: 3,
        },
        SnapshotError::BadMagic,
        SnapshotError::ChecksumMismatch,
        SnapshotError::UnsupportedVersion {
            found: 7,
            supported: SNAPSHOT_VERSION,
        },
        SnapshotError::Decode("field `split`".into()),
        SnapshotError::ModelMismatch {
            snapshot: 1,
            model: 2,
        },
        SnapshotError::ConfigMismatch {
            field: "split",
            snapshot: 3,
            config: 4,
        },
    ];
    for e in &errs {
        assert!(!format!("{e}").is_empty());
        assert_eq!(e, &e.clone());
    }
    let boxed: Box<dyn std::error::Error> = Box::new(SnapshotError::BadMagic);
    assert!(boxed.to_string().contains("magic"));
}
