//! Hostile-bytes conformance for the wire layer, two levels deep:
//!
//! 1. **Codec totality** — every truncation length and every single-bit
//!    flip of a framed tick decodes to a typed [`WireError`], never a
//!    panic and never a silently-accepted wrong frame; future-version
//!    and hostile-length frames map to their dedicated errors.
//! 2. **Server resilience** — a live `Engine::serve_ingest` endpoint
//!    fed the same hostile bytes answers with a typed [`Frame::Error`]
//!    and closes *that connection only*: the engine keeps every tick it
//!    already consumed, keeps accepting new connections, and finalizes
//!    a correct run afterwards. Receiving the error frame before EOF is
//!    the proof the connection died cleanly rather than by panic.

use nodesentry_core::{CoarseConfig, NodeInput, NodeSentry, NodeSentryConfig, SharingConfig, Tick};
use ns_features::FeatureCatalog;
use ns_stream::{Engine, EngineConfig};
use ns_telemetry::{DatasetProfile, IngestClient};
use ns_wire::{
    decode_frame, encode_frame, error_code, fnv1a64, read_frame, Frame, WireError, HEADER_LEN,
    MAX_PAYLOAD_LEN, TRAILER_LEN, WIRE_VERSION,
};
use std::io::Write;
use std::net::TcpStream;
use std::sync::{Arc, OnceLock};

fn framed_tick() -> Vec<u8> {
    encode_frame(&Frame::Tick(Tick {
        node: 11,
        step: 387,
        values: vec![1.5, f64::NAN, -0.0, 6.25e-3, f64::INFINITY, -41.0],
        transition: true,
    }))
}

// ---------------------------------------------------------------------
// 1. Codec totality
// ---------------------------------------------------------------------

#[test]
fn every_truncation_length_is_a_typed_truncated_error() {
    let bytes = framed_tick();
    for cut in 0..bytes.len() {
        match decode_frame(&bytes[..cut]) {
            Err(WireError::Truncated { expected, have }) => {
                assert_eq!(have, cut);
                assert!(expected > cut, "cut {cut}: expected {expected}");
            }
            other => panic!("truncation at {cut} must be Truncated, got {other:?}"),
        }
    }
}

#[test]
fn every_single_bit_flip_is_a_typed_error_never_a_frame() {
    let bytes = framed_tick();
    for byte in 0..bytes.len() {
        for bit in 0..8 {
            let mut bad = bytes.clone();
            bad[byte] ^= 1 << bit;
            let err = match decode_frame(&bad) {
                Err(e) => e,
                Ok((f, _)) => panic!("flip {byte}.{bit} silently accepted as {f:?}"),
            };
            // The error class must make sense for where the flip landed.
            match byte {
                0..=3 => assert_eq!(err, WireError::BadMagic, "flip {byte}.{bit}"),
                7..=10 => assert!(
                    matches!(
                        err,
                        WireError::Corrupt
                            | WireError::Oversized { .. }
                            | WireError::Truncated { .. }
                    ),
                    "length-field flip {byte}.{bit} gave {err:?}"
                ),
                // Version, kind, payload, or trailer flips all fail the
                // checksum (the version gate sits behind it).
                _ => assert_eq!(err, WireError::Corrupt, "flip {byte}.{bit} gave {err:?}"),
            }
        }
    }
}

#[test]
fn future_version_frame_is_gated_not_corrupt() {
    let mut bytes = framed_tick();
    bytes[4..6].copy_from_slice(&9u16.to_le_bytes());
    let body = bytes.len() - TRAILER_LEN;
    let sum = fnv1a64(&bytes[..body]);
    bytes[body..].copy_from_slice(&sum.to_le_bytes());
    assert_eq!(
        decode_frame(&bytes).unwrap_err(),
        WireError::UnsupportedVersion {
            found: 9,
            supported: WIRE_VERSION
        }
    );
}

#[test]
fn oversized_length_is_rejected_before_any_read_or_alloc() {
    let mut bytes = framed_tick();
    bytes[7..11].copy_from_slice(&(MAX_PAYLOAD_LEN + 1).to_le_bytes());
    match decode_frame(&bytes).unwrap_err() {
        WireError::Oversized { declared, max } => {
            assert_eq!(declared, (MAX_PAYLOAD_LEN + 1) as u64);
            assert_eq!(max, MAX_PAYLOAD_LEN as u64);
        }
        other => panic!("got {other:?}"),
    }
    // Only the 11-byte header is needed to reject it.
    assert!(matches!(
        decode_frame(&bytes[..HEADER_LEN]).unwrap_err(),
        WireError::Oversized { .. }
    ));
}

// ---------------------------------------------------------------------
// 2. Server resilience
// ---------------------------------------------------------------------

fn tiny_model_and_split() -> &'static (Arc<NodeSentry>, usize, Vec<Tick>) {
    static CELL: OnceLock<(Arc<NodeSentry>, usize, Vec<Tick>)> = OnceLock::new();
    CELL.get_or_init(|| {
        let ds = DatasetProfile::tiny().generate();
        let groups = ds.catalog.group_ids();
        let inputs: Vec<NodeInput> = (0..ds.n_nodes())
            .map(|n| NodeInput {
                raw: ds.raw_node(n),
                transitions: ds
                    .schedule
                    .node_timeline(n)
                    .iter()
                    .map(|s| s.start)
                    .filter(|&s| s > 0)
                    .collect(),
            })
            .collect();
        let cfg = NodeSentryConfig {
            coarse: CoarseConfig {
                catalog: FeatureCatalog::compact(),
                k_max: 6,
                ..Default::default()
            },
            sharing: SharingConfig {
                window: 12,
                stride: 6,
                d_model: 16,
                n_heads: 2,
                n_layers: 1,
                hidden: 32,
                n_experts: 2,
                epochs: 6,
                lr: 3e-3,
                batch: 16,
                k_nearest: 4,
                ..Default::default()
            },
            match_period: 40,
            min_segment_len: 8,
            ..Default::default()
        };
        let model = NodeSentry::fit(cfg, &inputs, &groups, ds.split);
        let mut ticks = Vec::new();
        for step in 0..ds.horizon() {
            for (node, input) in inputs.iter().enumerate() {
                ticks.push(Tick {
                    node,
                    step,
                    values: input.raw.row(step).to_vec(),
                    transition: false,
                });
            }
        }
        (Arc::new(model), ds.split, ticks)
    })
}

/// Send raw bytes on a fresh connection and expect a typed error frame
/// followed by a clean close (EOF), which distinguishes a graceful
/// connection teardown from a panicking server thread.
fn expect_error_then_close(addr: std::net::SocketAddr, hostile: &[u8], what: &str) {
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.write_all(hostile).expect("write hostile bytes");
    conn.flush().unwrap();
    match read_frame(&mut conn).unwrap_or_else(|e| panic!("{what}: reading reply: {e}")) {
        Some(Frame::Error { code, msg }) => {
            assert_eq!(code, error_code::PROTOCOL, "{what}: code ({msg})");
            assert!(!msg.is_empty(), "{what}: empty error message");
        }
        other => panic!("{what}: wanted Error frame, got {other:?}"),
    }
    assert!(
        matches!(read_frame(&mut conn), Ok(None)),
        "{what}: connection must close cleanly after the error"
    );
}

#[test]
fn hostile_connections_never_take_the_server_down() {
    let (model, split, ticks) = tiny_model_and_split();
    let mut cfg = EngineConfig::new(*split);
    cfg.n_shards = 2;
    cfg.smooth_window = 1;
    let engine = Engine::new(Arc::clone(model), cfg);
    let server = engine.serve_ingest("127.0.0.1:0").expect("bind");
    let addr = server.local_addr();

    // A well-behaved client gets half the stream in first.
    let half = ticks.len() / 2;
    let mut client = IngestClient::connect(addr).expect("connect");
    client.send_cycle(&ticks[..half]).expect("first half");
    client.ping().expect("sync");

    // Wave of hostile connections, one per failure mode.
    let mut flipped = framed_tick();
    flipped[HEADER_LEN + 3] ^= 0x10;
    expect_error_then_close(addr, &flipped, "bit flip");

    let mut future = framed_tick();
    future[4..6].copy_from_slice(&9u16.to_le_bytes());
    let body = future.len() - TRAILER_LEN;
    let sum = fnv1a64(&future[..body]);
    future[body..].copy_from_slice(&sum.to_le_bytes());
    expect_error_then_close(addr, &future, "future version");

    let mut oversized = framed_tick();
    oversized[7..11].copy_from_slice(&u32::MAX.to_le_bytes());
    expect_error_then_close(addr, &oversized, "oversized length");

    expect_error_then_close(addr, b"GET /metrics HTTP/1.1\r\n\r\n", "not a frame at all");

    // Corruption *after* valid traffic on the same connection: the
    // valid prefix is fully consumed (pong proves it), then the corrupt
    // frame kills the connection with a typed error.
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.write_all(&encode_frame(&Frame::Ping { token: 7 }))
        .expect("write ping");
    match read_frame(&mut conn).expect("pong arrives") {
        Some(Frame::Pong { token }) => assert_eq!(token, 7),
        other => panic!("wanted the pong first, got {other:?}"),
    }
    conn.write_all(&flipped).expect("write corrupt frame");
    match read_frame(&mut conn).expect("then the error") {
        Some(Frame::Error { code, .. }) => assert_eq!(code, error_code::PROTOCOL),
        other => panic!("wanted Error after corruption, got {other:?}"),
    }

    // A torn frame: half a tick frame, then the peer vanishes.
    let torn = framed_tick();
    let mut conn = TcpStream::connect(addr).expect("connect");
    conn.write_all(&torn[..torn.len() / 2]).expect("write half");
    drop(conn);

    // The server survived all of it: the original client still works
    // and the run finalizes with every delivered verdict accounted for.
    client.send_cycle(&ticks[half..]).expect("second half");
    let (verdicts, report) = client.finish().expect("finish");
    assert_eq!(verdicts.len(), report.n_verdicts as usize);
    assert!(
        !verdicts.is_empty(),
        "the engine must have scored the clean stream"
    );
    // Hostile ticks never reached the engine: tick count is exactly the
    // clean client's (the flipped/torn tick frames were all rejected or
    // incomplete).
    assert_eq!(report.n_ticks, ticks.len() as u64);
    let run = server.shutdown().expect("finished run retained");
    assert_eq!(run.report.verdicts.len(), verdicts.len());
}

#[test]
fn ticks_after_finalize_are_rejected_with_a_typed_error() {
    let (model, split, ticks) = tiny_model_and_split();
    let mut cfg = EngineConfig::new(*split);
    cfg.n_shards = 1;
    cfg.smooth_window = 1;
    let engine = Engine::new(Arc::clone(model), cfg);
    let server = engine.serve_ingest("127.0.0.1:0").expect("bind");
    let addr = server.local_addr();
    let mut client = IngestClient::connect(addr).expect("connect");
    client.send_cycle(&ticks[..200]).expect("send");
    client.finish().expect("finish");

    // A straggler connection trying to ingest after the run is over.
    let mut late = TcpStream::connect(addr).expect("connect");
    late.write_all(&framed_tick()).expect("write tick");
    late.flush().unwrap();
    match read_frame(&mut late).expect("reply") {
        Some(Frame::Error { code, msg }) => {
            assert_eq!(code, error_code::REJECTED);
            assert!(msg.contains("finalized"), "{msg}");
        }
        other => panic!("wanted REJECTED error, got {other:?}"),
    }
    server.shutdown();
}
