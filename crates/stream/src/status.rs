//! Engine-side operational status and flight-recorder trigger
//! predicates.
//!
//! Two jobs live here:
//!
//! * **`/statusz` section** — `register_statusz` installs a `"stream"`
//!   section into [`ns_obs::status`] exposing the live shard /
//!   connection view: model fingerprint, shard count, per-shard queue
//!   depths and reorder occupancy, active wire connections, verdict and
//!   fault counters, and the last checkpoint. Everything is read from
//!   atomics and the idempotent metrics registry — rendering the page
//!   never touches engine state.
//! * **Trigger predicates** — the two flight-recorder triggers that need
//!   windowed state: a Degraded-rate spike (`note_verdicts`: ≥ 50%
//!   degraded over a ≥ [`SPIKE_WINDOW`]-verdict window) and a wire-error
//!   burst (`note_wire_error`: ≥ [`BURST_THRESHOLD`] protocol errors
//!   inside [`BURST_WINDOW`]). Quarantine and checkpoint-failure fire
//!   unconditionally at their sites in `lib.rs`. All predicates are
//!   no-ops while the recorder is disarmed — one relaxed atomic load.

use crate::metrics::{
    FAULTS_TOTAL, QUEUE_DEPTH, REORDER_OCCUPANCY, TICKS_TOTAL, VERDICTS_TOTAL,
    WIRE_ACTIVE_CONNECTIONS,
};
use crate::{EngineConfig, FaultCounters};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

/// Verdict window the Degraded-spike predicate evaluates over.
pub const SPIKE_WINDOW: u64 = 64;
/// Wire protocol errors within [`BURST_WINDOW`] that constitute a burst.
pub const BURST_THRESHOLD: usize = 8;
/// Sliding time window for the wire-error burst predicate.
pub const BURST_WINDOW: Duration = Duration::from_secs(10);

/// Live engine facts mirrored into atomics at spawn / checkpoint /
/// restore time so `/statusz` renders without touching engine state.
pub(crate) struct EngineStatus {
    pub model_fingerprint: AtomicU64,
    pub n_shards: AtomicUsize,
    pub spawns: AtomicU64,
    pub checkpoints: AtomicU64,
    pub restores: AtomicU64,
    /// 0 = never checkpointed, 1 = last succeeded, 2 = last failed.
    pub last_ckpt_state: AtomicU64,
    pub last_ckpt_unix_ms: AtomicU64,
    pub last_ckpt_bytes: AtomicU64,
}

pub(crate) fn engine_status() -> &'static EngineStatus {
    static CELL: OnceLock<EngineStatus> = OnceLock::new();
    CELL.get_or_init(|| EngineStatus {
        model_fingerprint: AtomicU64::new(0),
        n_shards: AtomicUsize::new(0),
        spawns: AtomicU64::new(0),
        checkpoints: AtomicU64::new(0),
        restores: AtomicU64::new(0),
        last_ckpt_state: AtomicU64::new(0),
        last_ckpt_unix_ms: AtomicU64::new(0),
        last_ckpt_bytes: AtomicU64::new(0),
    })
}

/// Record a spawned engine: update the status atomics, install the
/// `/statusz` section (once per process), flip readiness, and hand the
/// flight recorder its context (config + fingerprint) for incident
/// dumps.
pub(crate) fn on_engine_spawn(fingerprint: u64, n_shards: usize, cfg: &EngineConfig) {
    let st = engine_status();
    st.model_fingerprint.store(fingerprint, Ordering::Relaxed);
    st.n_shards.store(n_shards, Ordering::Relaxed);
    st.spawns.fetch_add(1, Ordering::Relaxed);
    register_statusz();
    ns_obs::status::set_ready(true);
    ns_obs::incident::set_context(format!(
        "{{\"model_fingerprint\":\"{fingerprint:016x}\",\"n_shards\":{n_shards},\
         \"split\":{},\"smooth_window\":{},\"reorder_bound\":{},\"blackout_gap\":{},\
         \"stuck_run\":{},\"batch_scoring\":{}}}",
        cfg.split,
        cfg.smooth_window,
        cfg.reorder_bound,
        cfg.blackout_gap,
        cfg.stuck_run,
        cfg.batch_scoring,
    ));
}

/// Record a checkpoint outcome for the `/statusz` `last_checkpoint`
/// block.
pub(crate) fn note_checkpoint(ok: bool, bytes: usize) {
    let st = engine_status();
    st.checkpoints.fetch_add(1, Ordering::Relaxed);
    st.last_ckpt_state
        .store(if ok { 1 } else { 2 }, Ordering::Relaxed);
    st.last_ckpt_bytes.store(bytes as u64, Ordering::Relaxed);
    let ms = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_millis().min(u64::MAX as u128) as u64)
        .unwrap_or(0);
    st.last_ckpt_unix_ms.store(ms, Ordering::Relaxed);
}

/// Render the `"stream"` `/statusz` section. Counter and gauge reads go
/// through idempotent registration, so series the engine has not touched
/// yet simply read zero.
fn render_section() -> String {
    let st = engine_status();
    let reg = ns_obs::metrics::global();
    let n_shards = st.n_shards.load(Ordering::Relaxed);
    let mut queue = String::from("[");
    let mut reorder = String::from("[");
    let mut ticks = String::from("[");
    for shard in 0..n_shards {
        let label = shard.to_string();
        let labels: &[(&str, &str)] = &[("shard", &label)];
        if shard > 0 {
            queue.push(',');
            reorder.push(',');
            ticks.push(',');
        }
        queue.push_str(&reg.gauge(QUEUE_DEPTH, "", labels).get().to_string());
        reorder.push_str(&reg.gauge(REORDER_OCCUPANCY, "", labels).get().to_string());
        ticks.push_str(&reg.counter(TICKS_TOTAL, "", labels).get().to_string());
    }
    queue.push(']');
    reorder.push(']');
    ticks.push(']');
    let mut faults = String::from("{");
    for (i, (class, _)) in FaultCounters::default().as_pairs().iter().enumerate() {
        if i > 0 {
            faults.push(',');
        }
        let v = reg.counter(FAULTS_TOTAL, "", &[("class", class)]).get();
        faults.push_str(&format!("\"{class}\":{v}"));
    }
    faults.push('}');
    let ok = reg.counter(VERDICTS_TOTAL, "", &[("kind", "ok")]).get();
    let degraded = reg
        .counter(VERDICTS_TOTAL, "", &[("kind", "degraded")])
        .get();
    let conns = reg.gauge(WIRE_ACTIVE_CONNECTIONS, "", &[]).get();
    let ckpt_state = match st.last_ckpt_state.load(Ordering::Relaxed) {
        0 => "never",
        1 => "ok",
        _ => "failed",
    };
    format!(
        "{{\"model_fingerprint\":\"{:016x}\",\"n_shards\":{n_shards},\"engines_spawned\":{},\
         \"shard_queue_depths\":{queue},\"shard_reorder_occupancy\":{reorder},\
         \"shard_ticks_total\":{ticks},\"active_connections\":{conns},\
         \"verdicts\":{{\"ok\":{ok},\"degraded\":{degraded}}},\"faults\":{faults},\
         \"last_checkpoint\":{{\"state\":\"{ckpt_state}\",\"unix_ms\":{},\"bytes\":{},\
         \"checkpoints\":{},\"restores\":{}}}}}",
        st.model_fingerprint.load(Ordering::Relaxed),
        st.spawns.load(Ordering::Relaxed),
        st.last_ckpt_unix_ms.load(Ordering::Relaxed),
        st.last_ckpt_bytes.load(Ordering::Relaxed),
        st.checkpoints.load(Ordering::Relaxed),
        st.restores.load(Ordering::Relaxed),
    )
}

/// Install the `"stream"` section into the process `/statusz` (idempotent).
pub(crate) fn register_statusz() {
    static ONCE: OnceLock<()> = OnceLock::new();
    ONCE.get_or_init(|| {
        ns_obs::status::register_section("stream", render_section);
    });
}

// ---------------------------------------------------------------------
// Trigger predicates
// ---------------------------------------------------------------------

#[derive(Default)]
struct SpikeWindow {
    ok: u64,
    degraded: u64,
}

fn spike_window() -> &'static Mutex<SpikeWindow> {
    static CELL: OnceLock<Mutex<SpikeWindow>> = OnceLock::new();
    CELL.get_or_init(|| Mutex::new(SpikeWindow::default()))
}

/// Feed the Degraded-spike predicate. Once the accumulated window holds
/// at least [`SPIKE_WINDOW`] verdicts it is evaluated and drained:
/// ≥ 50% degraded captures a `degraded_spike` incident. Disarmed cost:
/// one relaxed atomic load.
pub(crate) fn note_verdicts(ok: u64, degraded: u64) {
    if !ns_obs::incident::is_armed() {
        return;
    }
    let mut w = spike_window().lock().unwrap_or_else(|e| e.into_inner());
    w.ok += ok;
    w.degraded += degraded;
    let total = w.ok + w.degraded;
    if total < SPIKE_WINDOW {
        return;
    }
    let fired = w.degraded * 2 >= total;
    let (wok, wdeg) = (w.ok, w.degraded);
    w.ok = 0;
    w.degraded = 0;
    drop(w);
    if fired {
        ns_obs::incident::capture(
            "degraded_spike",
            &format!(
                "{wdeg} of {} verdicts degraded in the last window",
                wok + wdeg
            ),
        );
    }
}

fn burst_window() -> &'static Mutex<VecDeque<Instant>> {
    static CELL: OnceLock<Mutex<VecDeque<Instant>>> = OnceLock::new();
    CELL.get_or_init(|| Mutex::new(VecDeque::new()))
}

/// Feed the wire-error burst predicate: [`BURST_THRESHOLD`] protocol
/// errors inside [`BURST_WINDOW`] capture a `wire_error_burst` incident
/// and drain the window. Disarmed cost: one relaxed atomic load.
pub(crate) fn note_wire_error() {
    if !ns_obs::incident::is_armed() {
        return;
    }
    let now = Instant::now();
    let mut w = burst_window().lock().unwrap_or_else(|e| e.into_inner());
    w.push_back(now);
    while let Some(&front) = w.front() {
        if now.duration_since(front) > BURST_WINDOW {
            w.pop_front();
        } else {
            break;
        }
    }
    let fired = w.len() >= BURST_THRESHOLD;
    let count = w.len();
    if fired {
        w.clear();
    }
    drop(w);
    if fired {
        ns_obs::incident::capture(
            "wire_error_burst",
            &format!("{count} wire protocol errors within {BURST_WINDOW:?}"),
        );
    }
}

/// Drain both predicate windows (tests).
#[cfg(test)]
pub(crate) fn reset_triggers() {
    let mut w = spike_window().lock().unwrap_or_else(|e| e.into_inner());
    w.ok = 0;
    w.degraded = 0;
    drop(w);
    burst_window()
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .clear();
}

#[cfg(test)]
mod tests {
    use super::*;

    /// These tests flip process-global recorder state; serialize them.
    fn test_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: Mutex<()> = Mutex::new(());
        LOCK.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn statusz_section_renders_valid_shape() {
        let _l = test_lock();
        let st = engine_status();
        st.model_fingerprint.store(0xabcd, Ordering::Relaxed);
        st.n_shards.store(2, Ordering::Relaxed);
        let doc = render_section();
        assert!(doc.starts_with('{') && doc.ends_with('}'), "{doc}");
        assert!(
            doc.contains("\"model_fingerprint\":\"000000000000abcd\""),
            "{doc}"
        );
        assert!(doc.contains("\"shard_queue_depths\":["), "{doc}");
        assert!(doc.contains("\"faults\":{"), "{doc}");
        assert!(doc.contains("\"quarantined_nodes\":"), "{doc}");
        assert!(doc.contains("\"last_checkpoint\":{"), "{doc}");
        // Balanced braces — a cheap well-formedness check for the
        // hand-rolled JSON.
        let opens = doc.matches('{').count();
        let closes = doc.matches('}').count();
        assert_eq!(opens, closes, "{doc}");
    }

    #[test]
    fn spike_predicate_needs_arming_and_majority() {
        let _l = test_lock();
        ns_obs::incident::set_armed(false);
        reset_triggers();
        note_verdicts(0, SPIKE_WINDOW * 2);
        {
            let w = spike_window().lock().unwrap();
            assert_eq!(w.degraded, 0, "disarmed predicate records nothing");
        }
        ns_obs::incident::set_armed(true);
        ns_obs::incident::set_min_interval(std::time::Duration::ZERO);
        let before = ns_obs::incident::stats().captured;
        // Healthy window: no fire, window drained.
        note_verdicts(SPIKE_WINDOW, 0);
        assert_eq!(ns_obs::incident::stats().captured, before);
        // Majority-degraded window: fires.
        note_verdicts(0, SPIKE_WINDOW);
        assert_eq!(ns_obs::incident::stats().captured, before + 1);
        ns_obs::incident::set_armed(false);
        reset_triggers();
    }

    #[test]
    fn burst_predicate_counts_within_window() {
        let _l = test_lock();
        ns_obs::incident::set_armed(true);
        ns_obs::incident::set_min_interval(std::time::Duration::ZERO);
        reset_triggers();
        let before = ns_obs::incident::stats().captured;
        for _ in 0..BURST_THRESHOLD - 1 {
            note_wire_error();
        }
        assert_eq!(
            ns_obs::incident::stats().captured,
            before,
            "below threshold"
        );
        note_wire_error();
        assert_eq!(
            ns_obs::incident::stats().captured,
            before + 1,
            "burst fires"
        );
        assert!(burst_window().lock().unwrap().is_empty(), "window drained");
        ns_obs::incident::set_armed(false);
        reset_triggers();
    }
}
