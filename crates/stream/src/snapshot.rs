//! Versioned binary snapshots of the streaming engine's per-node state.
//!
//! A checkpoint must capture *everything* that influences a future
//! verdict bit: preprocessor replay state (unresolved raw rows behind
//! the interpolation watermark, per-column observation trackers, rate
//! baselines), reorder buffers, segment assembly (open segment rows and
//! provenance, pending cuts, deferred jobs and probes), the smoothing →
//! k-sigma chain, scores awaiting their lagged threshold decision, the
//! stuck-sensor watch, and the per-node fault/cost counters. The
//! differential suites (`tests/checkpoint_equivalence.rs`,
//! `tests/reshard_equivalence.rs`) prove the capture is complete:
//! checkpoint → restore → replay-tail produces verdicts bit-identical
//! to the uninterrupted run, across shard-count changes.
//!
//! # Wire format
//!
//! The snapshot body is the [`serde`] `Value` tree of
//! [`EngineSnapshot`], encoded with a tagged binary codec (not JSON:
//! JSON cannot carry NaN payloads or `-0.0`, and restored state must be
//! bit-exact). The envelope is
//!
//! ```text
//! magic "NSSN" (4) | version u16 LE | payload_len u64 LE | payload | fnv1a64 u64 LE
//! ```
//!
//! with the FNV-1a 64 checksum taken over everything before it. Decoding
//! is total: truncated, bit-flipped, or wrong-version bytes return a
//! typed [`SnapshotError`], never panic
//! (`crates/stream/tests/snapshot_corruption.rs`), and the on-disk
//! layout of version 1 is pinned by a golden fixture in
//! `tests/serde_roundtrip.rs`.

use crate::{FaultCounters, ScoringPrecision, StreamStats};
use nodesentry_core::Tick;
use ns_eval::streaming::{KSigmaState, SmootherState};
use serde::{Deserialize, Serialize, Value};

/// Leading magic of every snapshot: `NSSN` ("NodeSentry SNapshot").
pub const SNAPSHOT_MAGIC: [u8; 4] = *b"NSSN";
/// Current on-disk format version.
pub const SNAPSHOT_VERSION: u16 = 1;
/// Nesting the decoder will follow before declaring the bytes hostile.
/// Real snapshots nest ~6 deep; corruption that survives the checksum
/// cannot blow the stack.
const MAX_DEPTH: usize = 64;

/// Typed decode/validation failures. Stream faults are absorbed by the
/// engine; these mean the snapshot bytes themselves are unusable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// Fewer bytes than the envelope (or its declared payload) needs.
    Truncated { expected: usize, have: usize },
    /// The leading magic is not `NSSN`.
    BadMagic,
    /// The checksum over the envelope does not match its trailer.
    ChecksumMismatch,
    /// Intact envelope, but a format version this build cannot read.
    UnsupportedVersion { found: u16, supported: u16 },
    /// The payload failed to decode as an [`EngineSnapshot`].
    Decode(String),
    /// The snapshot was taken against a different trained model.
    ModelMismatch { snapshot: u64, model: u64 },
    /// A bit-critical engine-config field differs from the snapshot's.
    ConfigMismatch {
        field: &'static str,
        snapshot: u64,
        config: u64,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Truncated { expected, have } => {
                write!(f, "snapshot truncated: need {expected} bytes, have {have}")
            }
            SnapshotError::BadMagic => write!(f, "not a snapshot: bad magic"),
            SnapshotError::ChecksumMismatch => write!(f, "snapshot checksum mismatch"),
            SnapshotError::UnsupportedVersion { found, supported } => {
                write!(
                    f,
                    "snapshot version {found} unsupported (this build reads {supported})"
                )
            }
            SnapshotError::Decode(e) => write!(f, "snapshot payload malformed: {e}"),
            SnapshotError::ModelMismatch { snapshot, model } => write!(
                f,
                "snapshot taken against model {snapshot:#018x}, restoring with {model:#018x}"
            ),
            SnapshotError::ConfigMismatch {
                field,
                snapshot,
                config,
            } => write!(
                f,
                "engine config `{field}` = {config} differs from snapshot's {snapshot}"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {}

/// Mutable state of a [`StreamingPreprocessor`](crate::StreamingPreprocessor);
/// the fitted configuration (groups, pruning, standardizer) is
/// reconstructed from the model at restore.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PreSnap {
    /// Raw rows not yet fully resolved; first is row `base`.
    pub buf: Vec<Vec<f64>>,
    pub nan_flags: Vec<bool>,
    pub base: usize,
    pub n_pushed: usize,
    pub resolved: usize,
    /// Per raw column: latest observed (non-NaN) row.
    pub last_obs: Vec<Option<usize>>,
    pub last_val: Vec<f64>,
    pub rate_prev: Vec<f64>,
    pub any_row: bool,
}

/// A deferred segment awaiting the batched scoring phase.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct JobSnap {
    pub start: usize,
    pub rows: Vec<Vec<f64>>,
    /// Row provenance ordinals (0 clean, 1 synthesized, 2 faulty).
    pub kinds: Vec<u8>,
    pub matched: Option<usize>,
    pub degraded: bool,
}

/// A score waiting for its lagged smoothed threshold decision.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PendingSnap {
    pub step: usize,
    pub score: f64,
    pub cluster: usize,
    pub suppress: bool,
    pub degraded: bool,
}

/// Complete streaming state of one node.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct NodeSnap {
    pub node: usize,
    pub next_step: usize,
    pub next_row: usize,
    pub pre: PreSnap,
    pub cuts: Vec<usize>,
    pub seg_start: usize,
    pub seg_rows: Vec<Vec<f64>>,
    /// Provenance ordinals parallel to `seg_rows`.
    pub seg_row_kinds: Vec<u8>,
    pub matched: Option<usize>,
    pub jobs: Vec<JobSnap>,
    pub probe_pending: bool,
    pub smoother: SmootherState,
    pub detector: KSigmaState,
    pub pending: Vec<PendingSnap>,
    /// Reorder buffer, ascending by step.
    pub ahead: Vec<Tick>,
    /// Provenance ordinals of rows pushed but not yet absorbed.
    pub row_kinds: Vec<u8>,
    pub resync_degraded: bool,
    pub prev_raw: Vec<f64>,
    pub runs: Vec<u32>,
    pub stats: StreamStats,
    pub faults: FaultCounters,
}

/// Everything [`Engine::checkpoint`](crate::Engine::checkpoint) captures.
///
/// Nodes are sorted by id and quarantined ids ascending, so encoding the
/// same engine state twice yields identical bytes (checkpoint →
/// restore → checkpoint is byte-stable; `tests/proptest_snapshot.rs`).
#[derive(Clone, Debug, PartialEq)]
pub struct EngineSnapshot {
    /// Fingerprint of the trained model this state belongs to
    /// ([`NodeSentry::fingerprint`](nodesentry_core::NodeSentry::fingerprint));
    /// restoring against any other model is refused.
    pub model_fingerprint: u64,
    /// First test step of the checkpointed engine (bit-critical).
    pub split: usize,
    /// Smoothing window of the checkpointed engine (bit-critical).
    pub smooth_window: usize,
    /// Scoring tier of the checkpointed engine (bit-critical: the tiers
    /// produce different score bits, so a restore must match it).
    pub scoring_precision: ScoringPrecision,
    /// Shard count at checkpoint time — informational only; restore may
    /// pick any shard count (that is how live resharding works).
    pub n_shards: usize,
    /// Per-node state, ascending by node id.
    pub nodes: Vec<NodeSnap>,
    /// Quarantined node ids, ascending.
    pub quarantined: Vec<usize>,
    /// Cost counters no longer attributable to a live node (quarantined
    /// or flushed states), carried at engine level across restores.
    pub carried_stats: StreamStats,
    /// Fault counters no longer attributable to a live node.
    pub carried_faults: FaultCounters,
}

// Hand-written so the default tier stays byte-compatible with the pinned
// version-1 layout: `scoring_precision` is emitted only when it is not
// `F64`, and a missing key decodes as `F64` (every pre-tier snapshot was
// f64 by construction). The golden fixture in `tests/serde_roundtrip.rs`
// holds this closed.
impl Serialize for EngineSnapshot {
    fn to_value(&self) -> Value {
        let mut pairs = vec![
            (
                "model_fingerprint".to_string(),
                self.model_fingerprint.to_value(),
            ),
            ("split".to_string(), self.split.to_value()),
            ("smooth_window".to_string(), self.smooth_window.to_value()),
            ("n_shards".to_string(), self.n_shards.to_value()),
            ("nodes".to_string(), self.nodes.to_value()),
            ("quarantined".to_string(), self.quarantined.to_value()),
            ("carried_stats".to_string(), self.carried_stats.to_value()),
            ("carried_faults".to_string(), self.carried_faults.to_value()),
        ];
        if self.scoring_precision != ScoringPrecision::F64 {
            pairs.push((
                "scoring_precision".to_string(),
                self.scoring_precision.to_value(),
            ));
        }
        Value::Object(pairs)
    }
}

impl Deserialize for EngineSnapshot {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        Ok(EngineSnapshot {
            model_fingerprint: serde::field(v, "model_fingerprint")?,
            split: serde::field(v, "split")?,
            smooth_window: serde::field(v, "smooth_window")?,
            // Missing key → `field` falls back to `from_value(Null)`,
            // which is `F64` (the only tier that ever omits the key).
            scoring_precision: serde::field(v, "scoring_precision")?,
            n_shards: serde::field(v, "n_shards")?,
            nodes: serde::field(v, "nodes")?,
            quarantined: serde::field(v, "quarantined")?,
            carried_stats: serde::field(v, "carried_stats")?,
            carried_faults: serde::field(v, "carried_faults")?,
        })
    }
}

impl EngineSnapshot {
    /// Encode into the versioned, checksummed envelope.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut payload = Vec::new();
        encode_value(&self.to_value(), &mut payload);
        let mut out = Vec::with_capacity(payload.len() + 22);
        out.extend_from_slice(&SNAPSHOT_MAGIC);
        out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
        out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
        out.extend_from_slice(&payload);
        let sum = fnv1a64(&out);
        out.extend_from_slice(&sum.to_le_bytes());
        out
    }

    /// Decode and validate an envelope. Total: malformed input of any
    /// kind returns a typed error, never panics.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, SnapshotError> {
        const HEADER: usize = 4 + 2 + 8;
        if bytes.len() < HEADER + 8 {
            return Err(SnapshotError::Truncated {
                expected: HEADER + 8,
                have: bytes.len(),
            });
        }
        if bytes[..4] != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = u16::from_le_bytes([bytes[4], bytes[5]]);
        let declared = u64::from_le_bytes(bytes[6..14].try_into().expect("8 bytes"));
        let total = (HEADER as u64)
            .checked_add(declared)
            .and_then(|n| n.checked_add(8))
            .filter(|&n| n <= usize::MAX as u64)
            .ok_or(SnapshotError::Truncated {
                expected: usize::MAX,
                have: bytes.len(),
            })? as usize;
        if bytes.len() < total {
            return Err(SnapshotError::Truncated {
                expected: total,
                have: bytes.len(),
            });
        }
        if bytes.len() > total {
            return Err(SnapshotError::Decode(format!(
                "{} trailing bytes after the envelope",
                bytes.len() - total
            )));
        }
        let body = &bytes[..total - 8];
        let stored = u64::from_le_bytes(bytes[total - 8..total].try_into().expect("8 bytes"));
        if fnv1a64(body) != stored {
            return Err(SnapshotError::ChecksumMismatch);
        }
        // Version gate after the checksum: a valid future-version
        // snapshot reports `UnsupportedVersion`, a corrupted version
        // field reports the corruption.
        if version != SNAPSHOT_VERSION {
            return Err(SnapshotError::UnsupportedVersion {
                found: version,
                supported: SNAPSHOT_VERSION,
            });
        }
        let payload = &body[HEADER..];
        let mut pos = 0usize;
        let value = decode_value(payload, &mut pos, 0)?;
        if pos != payload.len() {
            return Err(SnapshotError::Decode(format!(
                "{} trailing payload bytes",
                payload.len() - pos
            )));
        }
        EngineSnapshot::from_value(&value).map_err(|e| SnapshotError::Decode(e.to_string()))
    }
}

/// FNV-1a 64 over a byte slice (same constants as the model
/// fingerprint's string hash).
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

// ---------------------------------------------------------------------
// Tagged binary codec for the serde `Value` tree
// ---------------------------------------------------------------------
//
// Tags: 0 Null, 1 Bool, 2 I64, 3 U64, 4 F64 (raw IEEE bits — the whole
// reason this codec exists instead of JSON), 5 Str, 6 Array, 7 Object.
// Lengths and counts are u64 LE. Every count is bounds-checked against
// the remaining bytes before allocating, so hostile lengths cannot OOM.

fn encode_value(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(0),
        Value::Bool(b) => {
            out.push(1);
            out.push(*b as u8);
        }
        Value::I64(i) => {
            out.push(2);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::U64(u) => {
            out.push(3);
            out.extend_from_slice(&u.to_le_bytes());
        }
        Value::F64(f) => {
            out.push(4);
            out.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(5);
            encode_str(s, out);
        }
        Value::Array(items) => {
            out.push(6);
            out.extend_from_slice(&(items.len() as u64).to_le_bytes());
            for item in items {
                encode_value(item, out);
            }
        }
        Value::Object(pairs) => {
            out.push(7);
            out.extend_from_slice(&(pairs.len() as u64).to_le_bytes());
            for (k, val) in pairs {
                encode_str(k, out);
                encode_value(val, out);
            }
        }
    }
}

fn encode_str(s: &str, out: &mut Vec<u8>) {
    out.extend_from_slice(&(s.len() as u64).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn take<'a>(b: &'a [u8], pos: &mut usize, n: usize) -> Result<&'a [u8], SnapshotError> {
    let end = pos.checked_add(n).ok_or(SnapshotError::Truncated {
        expected: usize::MAX,
        have: b.len(),
    })?;
    if end > b.len() {
        return Err(SnapshotError::Truncated {
            expected: end,
            have: b.len(),
        });
    }
    let s = &b[*pos..end];
    *pos = end;
    Ok(s)
}

fn take_u64(b: &[u8], pos: &mut usize) -> Result<u64, SnapshotError> {
    Ok(u64::from_le_bytes(
        take(b, pos, 8)?.try_into().expect("8 bytes"),
    ))
}

/// Read a declared count, refusing any that the remaining bytes cannot
/// possibly satisfy (each encoded item takes at least `min_item` bytes).
fn take_count(b: &[u8], pos: &mut usize, min_item: usize) -> Result<usize, SnapshotError> {
    let n = take_u64(b, pos)?;
    let cap = (b.len() - *pos) / min_item.max(1);
    if n > cap as u64 {
        return Err(SnapshotError::Decode(format!(
            "declared count {n} exceeds remaining capacity {cap}"
        )));
    }
    Ok(n as usize)
}

fn decode_str(b: &[u8], pos: &mut usize) -> Result<String, SnapshotError> {
    let len = take_count(b, pos, 1)?;
    let raw = take(b, pos, len)?;
    String::from_utf8(raw.to_vec()).map_err(|_| SnapshotError::Decode("invalid UTF-8".into()))
}

fn decode_value(b: &[u8], pos: &mut usize, depth: usize) -> Result<Value, SnapshotError> {
    if depth > MAX_DEPTH {
        return Err(SnapshotError::Decode("nesting too deep".into()));
    }
    let tag = take(b, pos, 1)?[0];
    match tag {
        0 => Ok(Value::Null),
        1 => match take(b, pos, 1)?[0] {
            0 => Ok(Value::Bool(false)),
            1 => Ok(Value::Bool(true)),
            other => Err(SnapshotError::Decode(format!("bad bool byte {other}"))),
        },
        2 => Ok(Value::I64(i64::from_le_bytes(
            take(b, pos, 8)?.try_into().expect("8 bytes"),
        ))),
        3 => Ok(Value::U64(take_u64(b, pos)?)),
        4 => Ok(Value::F64(f64::from_bits(take_u64(b, pos)?))),
        5 => Ok(Value::Str(decode_str(b, pos)?)),
        6 => {
            let n = take_count(b, pos, 1)?;
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                items.push(decode_value(b, pos, depth + 1)?);
            }
            Ok(Value::Array(items))
        }
        7 => {
            // A pair is at least a key length (8) plus a value tag (1).
            let n = take_count(b, pos, 9)?;
            let mut pairs = Vec::with_capacity(n);
            for _ in 0..n {
                let k = decode_str(b, pos)?;
                let v = decode_value(b, pos, depth + 1)?;
                pairs.push((k, v));
            }
            Ok(Value::Object(pairs))
        }
        other => Err(SnapshotError::Decode(format!("unknown value tag {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Value) -> Value {
        let mut buf = Vec::new();
        encode_value(v, &mut buf);
        let mut pos = 0;
        let back = decode_value(&buf, &mut pos, 0).expect("decode");
        assert_eq!(pos, buf.len(), "codec consumed every byte");
        back
    }

    #[test]
    fn codec_roundtrips_every_variant() {
        let v = Value::Object(vec![
            ("null".into(), Value::Null),
            ("t".into(), Value::Bool(true)),
            ("f".into(), Value::Bool(false)),
            ("i".into(), Value::I64(-42)),
            ("u".into(), Value::U64(u64::MAX)),
            ("s".into(), Value::Str("héllo".into())),
            ("a".into(), Value::Array(vec![Value::F64(1.5), Value::Null])),
        ]);
        assert_eq!(roundtrip(&v), v);
    }

    #[test]
    fn codec_preserves_exotic_float_bits() {
        // JSON would turn all of these into null or lose the payload;
        // the binary codec must not.
        for bits in [
            f64::NAN.to_bits(),
            f64::NAN.to_bits() ^ 0xDEAD, // NaN with a payload
            (-0.0f64).to_bits(),
            f64::INFINITY.to_bits(),
            f64::NEG_INFINITY.to_bits(),
            f64::MIN_POSITIVE.to_bits() >> 1, // subnormal
        ] {
            let v = Value::F64(f64::from_bits(bits));
            let mut buf = Vec::new();
            encode_value(&v, &mut buf);
            let mut pos = 0;
            match decode_value(&buf, &mut pos, 0).unwrap() {
                Value::F64(f) => assert_eq!(f.to_bits(), bits),
                other => panic!("expected F64, got {other:?}"),
            }
        }
    }

    #[test]
    fn hostile_counts_are_rejected_without_allocating() {
        // Array claiming u64::MAX elements with no bytes behind it.
        let mut buf = vec![6u8];
        buf.extend_from_slice(&u64::MAX.to_le_bytes());
        let mut pos = 0;
        assert!(matches!(
            decode_value(&buf, &mut pos, 0),
            Err(SnapshotError::Decode(_))
        ));
    }

    #[test]
    fn deep_nesting_is_bounded() {
        // 1000 nested single-element arrays.
        let mut buf = Vec::new();
        for _ in 0..1000 {
            buf.push(6u8);
            buf.extend_from_slice(&1u64.to_le_bytes());
        }
        buf.push(0u8); // innermost Null
        let mut pos = 0;
        assert!(matches!(
            decode_value(&buf, &mut pos, 0),
            Err(SnapshotError::Decode(_))
        ));
    }
}
