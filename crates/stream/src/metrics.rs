//! Live metrics for the streaming engine.
//!
//! Every series lives in the [global ns-obs
//! registry](ns_obs::metrics::global) so one `/metrics` endpoint
//! ([`Engine::serve_metrics`](crate::Engine::serve_metrics)) exposes
//! all engines in the process. The constants below are the single
//! source of truth for metric names — tests and dashboards key off
//! them.
//!
//! | metric | type | labels | meaning |
//! |---|---|---|---|
//! | [`QUEUE_DEPTH`] | gauge | `shard` | tick batches waiting in a shard's bounded queue |
//! | [`REORDER_OCCUPANCY`] | gauge | `shard` | ticks parked in the shard's per-node reorder buffers |
//! | [`INGEST_SECONDS`] | histogram | — | wall time of one `Engine::ingest` call (includes backpressure blocking) |
//! | [`MATCH_SECONDS`] | histogram | — | one probe feature-extraction + library-match cycle |
//! | [`SCORE_SECONDS`] | histogram | — | one segment scored through its shared model |
//! | [`POINT_SECONDS`] | histogram | — | scoring compute attributed per emitted point |
//! | [`SCORE_BATCH_SEGMENTS`] | histogram | — | segments scored together in one batched forward (batch occupancy) |
//! | [`MATCH_BATCH_PROBES`] | histogram | — | probes resolved together in one scoring phase (burst size) |
//! | [`TICKS_TOTAL`] | counter | `shard` | ticks accepted off the queue |
//! | [`VERDICTS_TOTAL`] | counter | `kind` (`ok`/`degraded`) | verdicts emitted |
//! | [`FAULTS_TOTAL`] | counter | `class` | live view of every [`FaultCounters`] field |
//! | [`SNAPSHOT_BYTES`] | histogram | — | encoded engine snapshot size |
//! | [`CHECKPOINT_SECONDS`] | histogram | — | one checkpoint barrier, end to end |
//! | [`RESTORE_SECONDS`] | histogram | — | one restore from snapshot bytes |
//! | [`WIRE_CONNECTIONS_TOTAL`] | counter | `role` (`ingest`/`verdicts`) | connections accepted by the ingest server |
//! | [`WIRE_ACTIVE_CONNECTIONS`] | gauge | — | connections currently open (RAII-balanced) |
//! | [`WIRE_RX_BYTES_TOTAL`] | counter | — | bytes read off ingest sockets |
//! | [`WIRE_TX_BYTES_TOTAL`] | counter | — | bytes written to clients (verdicts, pongs, errors) |
//! | [`WIRE_FRAMES_TOTAL`] | counter | `kind` | frames decoded, by frame kind |
//! | [`WIRE_ERRORS_TOTAL`] | counter | `class` | wire protocol errors, by [`WireError::class`](ns_wire::WireError::class) |
//! | [`WIRE_TORN_FRAMES_TOTAL`] | counter | — | connections that hit EOF mid-frame |
//! | [`WIRE_INGEST_BATCH_TICKS`] | histogram | — | ticks per socket-read batch handed to `Engine::ingest` |
//!
//! The thread pool's scheduling series (`pool_tasks_total`,
//! `pool_steals_total`, `pool_parks_total`, `pool_unparks_total`,
//! `pool_jobs_total`, `pool_workers`, `pool_queued_jobs`,
//! `pool_worker_busy_us_total{worker}`) are owned by
//! [`ns_obs::poolstats`]; [`install_pool_stats`] (called at every engine
//! spawn) wires that module to the vendored rayon pool so `/metrics`
//! scrapes and the `"pool"` `/statusz` section stay live.
//!
//! All updates are no-ops while `ns_obs` metrics are disabled; nothing
//! here reads or writes pipeline data, which is how the engine keeps its
//! bit-exactness contract with observability on
//! (`tests/obs_equivalence.rs`).

use crate::FaultCounters;
use ns_obs::metrics::{global, latency_buckets, size_buckets, Counter, Gauge, Histogram};
use std::sync::OnceLock;

/// Gauge: tick batches currently queued for a shard (`shard` label).
pub const QUEUE_DEPTH: &str = "ns_stream_shard_queue_depth";
/// Gauge: ticks waiting in a shard's per-node reorder buffers.
pub const REORDER_OCCUPANCY: &str = "ns_stream_reorder_occupancy";
/// Histogram: seconds one `ingest` call took, blocking included.
pub const INGEST_SECONDS: &str = "ns_stream_ingest_seconds";
/// Histogram: seconds per pattern-matching cycle.
pub const MATCH_SECONDS: &str = "ns_stream_match_seconds";
/// Histogram: seconds per segment scoring pass.
pub const SCORE_SECONDS: &str = "ns_stream_score_seconds";
/// Histogram: scoring seconds attributed to each emitted point.
pub const POINT_SECONDS: &str = "ns_stream_point_seconds";
/// Histogram: segments stacked into one batched scoring forward.
pub const SCORE_BATCH_SEGMENTS: &str = "ns_stream_score_batch_segments";
/// Histogram: probes resolved together in one cross-node scoring phase.
pub const MATCH_BATCH_PROBES: &str = "ns_stream_match_batch_probes";
/// Counter: ticks accepted by shard workers (`shard` label).
pub const TICKS_TOTAL: &str = "ns_stream_ticks_total";
/// Counter: verdicts emitted, labeled `kind="ok"|"degraded"`.
pub const VERDICTS_TOTAL: &str = "ns_stream_verdicts_total";
/// Counter: absorbed stream faults, labeled `class=<FaultCounters field>`.
pub const FAULTS_TOTAL: &str = "ns_stream_faults_total";
/// Histogram: encoded size of one engine snapshot, bytes.
pub const SNAPSHOT_BYTES: &str = "ns_stream_snapshot_bytes";
/// Histogram: seconds one `Engine::checkpoint` barrier took end to end.
pub const CHECKPOINT_SECONDS: &str = "ns_stream_checkpoint_seconds";
/// Histogram: seconds one `Engine::restore` took (decode + state rebuild
/// + worker spawn).
pub const RESTORE_SECONDS: &str = "ns_stream_restore_seconds";
/// Counter: connections the ingest server accepted, labeled
/// `role="ingest"|"verdicts"`.
pub const WIRE_CONNECTIONS_TOTAL: &str = "ns_wire_connections_total";
/// Gauge: connections currently open on the ingest server.
pub const WIRE_ACTIVE_CONNECTIONS: &str = "ns_wire_active_connections";
/// Counter: bytes read off ingest sockets.
pub const WIRE_RX_BYTES_TOTAL: &str = "ns_wire_rx_bytes_total";
/// Counter: bytes written back to clients.
pub const WIRE_TX_BYTES_TOTAL: &str = "ns_wire_tx_bytes_total";
/// Counter: frames decoded, labeled `kind=<frame kind>`.
pub const WIRE_FRAMES_TOTAL: &str = "ns_wire_frames_total";
/// Counter: wire protocol errors, labeled `class=<WireError class>`.
pub const WIRE_ERRORS_TOTAL: &str = "ns_wire_errors_total";
/// Counter: connections that ended mid-frame (peer died while writing).
pub const WIRE_TORN_FRAMES_TOTAL: &str = "ns_wire_torn_frames_total";
/// Histogram: ticks per socket-read batch handed to `Engine::ingest`.
pub const WIRE_INGEST_BATCH_TICKS: &str = "ns_wire_ingest_batch_ticks";

/// Wire the vendored rayon pool's scheduling counters into
/// [`ns_obs::poolstats`] (idempotent; first caller wins). After this,
/// `/metrics` exports the `pool_*` series and `/statusz` gains a
/// `"pool"` section.
pub fn install_pool_stats() {
    ns_obs::poolstats::install(|| {
        let s = rayon::pool_stats();
        ns_obs::poolstats::PoolSnapshot {
            workers: s.workers,
            queued_jobs: s.queued_jobs,
            jobs_submitted: s.jobs_submitted,
            tasks_executed: s.tasks_executed,
            steals: s.steals,
            parks: s.parks,
            unparks: s.unparks,
            busy_ns: s.busy_ns,
        }
    });
}

/// Handles used from per-node pipeline code (match/score/verdict path).
/// One set per process — every engine and shard shares them.
pub(crate) struct NodeMetrics {
    pub match_seconds: Histogram,
    pub score_seconds: Histogram,
    pub point_seconds: Histogram,
    pub batch_segments: Histogram,
    pub batch_probes: Histogram,
    pub verdicts_ok: Counter,
    pub verdicts_degraded: Counter,
}

/// Power-of-two count buckets (1, 2, 4, …, 1024) for batch-occupancy
/// and burst-size distributions.
fn count_buckets() -> Vec<f64> {
    (0..11).map(|i| (1u64 << i) as f64).collect()
}

pub(crate) fn node_metrics() -> &'static NodeMetrics {
    static CELL: OnceLock<NodeMetrics> = OnceLock::new();
    CELL.get_or_init(|| {
        let reg = global();
        let buckets = latency_buckets();
        let counts = count_buckets();
        NodeMetrics {
            match_seconds: reg.histogram(
                MATCH_SECONDS,
                "Seconds per probe pattern-matching cycle.",
                &[],
                &buckets,
            ),
            score_seconds: reg.histogram(
                SCORE_SECONDS,
                "Seconds per segment scoring pass through the shared model.",
                &[],
                &buckets,
            ),
            point_seconds: reg.histogram(
                POINT_SECONDS,
                "Scoring seconds attributed per emitted detection point.",
                &[],
                &buckets,
            ),
            batch_segments: reg.histogram(
                SCORE_BATCH_SEGMENTS,
                "Segments stacked into one batched scoring forward.",
                &[],
                &counts,
            ),
            batch_probes: reg.histogram(
                MATCH_BATCH_PROBES,
                "Probes resolved together in one cross-node scoring phase.",
                &[],
                &counts,
            ),
            verdicts_ok: reg.counter(
                VERDICTS_TOTAL,
                "Verdicts emitted by kind.",
                &[("kind", "ok")],
            ),
            verdicts_degraded: reg.counter(
                VERDICTS_TOTAL,
                "Verdicts emitted by kind.",
                &[("kind", "degraded")],
            ),
        }
    })
}

/// Handles for the checkpoint/restore lifecycle path.
pub(crate) struct SnapshotMetrics {
    pub snapshot_bytes: Histogram,
    pub checkpoint_seconds: Histogram,
    pub restore_seconds: Histogram,
}

pub(crate) fn snapshot_metrics() -> &'static SnapshotMetrics {
    static CELL: OnceLock<SnapshotMetrics> = OnceLock::new();
    CELL.get_or_init(|| {
        let reg = global();
        let lat = latency_buckets();
        SnapshotMetrics {
            snapshot_bytes: reg.histogram(
                SNAPSHOT_BYTES,
                "Encoded engine snapshot size in bytes.",
                &[],
                &size_buckets(),
            ),
            checkpoint_seconds: reg.histogram(
                CHECKPOINT_SECONDS,
                "Seconds per engine checkpoint barrier, end to end.",
                &[],
                &lat,
            ),
            restore_seconds: reg.histogram(
                RESTORE_SECONDS,
                "Seconds per engine restore from a snapshot.",
                &[],
                &lat,
            ),
        }
    })
}

/// One live counter per [`FaultCounters`] field, bridged by delta so the
/// `/metrics` view moves while the engine runs instead of only in the
/// end-of-run [`EngineReport`](crate::EngineReport).
pub(crate) struct FaultMeters {
    /// Index-aligned with [`FaultCounters::as_pairs`].
    counters: Vec<Counter>,
    /// Shard attribution for journal events.
    shard: i64,
}

impl FaultMeters {
    pub fn new(shard: i64) -> Self {
        let reg = global();
        let counters = FaultCounters::default()
            .as_pairs()
            .iter()
            .map(|(class, _)| {
                reg.counter(
                    FAULTS_TOTAL,
                    "Stream faults absorbed by the engine, by class.",
                    &[("class", class)],
                )
            })
            .collect();
        FaultMeters { counters, shard }
    }

    /// Add the per-class deltas between two cumulative snapshots, and
    /// append one `fault_detected` journal event per advancing class
    /// (counter adds and event appends are each self-gated on their own
    /// enabled flag).
    pub fn publish(&self, prev: &FaultCounters, cur: &FaultCounters) {
        let events_on = ns_obs::events::is_enabled();
        for ((_, p), ((class, c), counter)) in prev
            .as_pairs()
            .iter()
            .zip(cur.as_pairs().iter().zip(&self.counters))
        {
            // Counters only move forward; saturate defensively anyway.
            let d = c.saturating_sub(*p);
            if d > 0 {
                counter.add(d);
                if events_on {
                    ns_obs::events::record(
                        ns_obs::events::EventKind::FaultDetected,
                        class,
                        self.shard,
                        -1,
                        d,
                        *c,
                    );
                }
            }
        }
    }
}

/// Per-shard worker handles.
pub(crate) struct ShardMetrics {
    pub queue_depth: Gauge,
    pub reorder_occupancy: Gauge,
    pub ticks_total: Counter,
    pub faults: FaultMeters,
}

impl ShardMetrics {
    pub fn new(shard: usize) -> Self {
        let reg = global();
        let label = shard.to_string();
        ShardMetrics {
            queue_depth: reg.gauge(
                QUEUE_DEPTH,
                "Tick batches waiting in a shard's bounded queue.",
                &[("shard", &label)],
            ),
            reorder_occupancy: reg.gauge(
                REORDER_OCCUPANCY,
                "Ticks parked in the shard's per-node reorder buffers.",
                &[("shard", &label)],
            ),
            ticks_total: reg.counter(
                TICKS_TOTAL,
                "Ticks accepted by shard workers.",
                &[("shard", &label)],
            ),
            faults: FaultMeters::new(shard as i64),
        }
    }
}

/// Handles for the socket ingest path. One set per process; the
/// per-kind/per-class counters for rare frames are fetched on demand
/// (registration is idempotent), only the per-tick-hot handles live here.
pub(crate) struct WireMetrics {
    pub connections_ingest: Counter,
    pub connections_verdicts: Counter,
    pub active_connections: Gauge,
    pub rx_bytes: Counter,
    pub tx_bytes: Counter,
    pub frames_tick: Counter,
    pub torn_frames: Counter,
    pub batch_ticks: Histogram,
}

impl WireMetrics {
    /// Counter for a non-tick frame kind (control frames — cold path).
    pub fn frames(&self, kind: &'static str) -> Counter {
        if kind == "tick" {
            return self.frames_tick.clone();
        }
        global().counter(
            WIRE_FRAMES_TOTAL,
            "Wire frames decoded, by kind.",
            &[("kind", kind)],
        )
    }

    /// Counter for one wire error class.
    pub fn errors(&self, class: &'static str) -> Counter {
        global().counter(
            WIRE_ERRORS_TOTAL,
            "Wire protocol errors, by class.",
            &[("class", class)],
        )
    }
}

pub(crate) fn wire_metrics() -> &'static WireMetrics {
    static CELL: OnceLock<WireMetrics> = OnceLock::new();
    CELL.get_or_init(|| {
        let reg = global();
        WireMetrics {
            connections_ingest: reg.counter(
                WIRE_CONNECTIONS_TOTAL,
                "Connections accepted by the ingest server, by role.",
                &[("role", "ingest")],
            ),
            connections_verdicts: reg.counter(
                WIRE_CONNECTIONS_TOTAL,
                "Connections accepted by the ingest server, by role.",
                &[("role", "verdicts")],
            ),
            active_connections: reg.gauge(
                WIRE_ACTIVE_CONNECTIONS,
                "Connections currently open on the ingest server.",
                &[],
            ),
            rx_bytes: reg.counter(WIRE_RX_BYTES_TOTAL, "Bytes read off ingest sockets.", &[]),
            tx_bytes: reg.counter(WIRE_TX_BYTES_TOTAL, "Bytes written back to clients.", &[]),
            frames_tick: reg.counter(
                WIRE_FRAMES_TOTAL,
                "Wire frames decoded, by kind.",
                &[("kind", "tick")],
            ),
            torn_frames: reg.counter(
                WIRE_TORN_FRAMES_TOTAL,
                "Connections that ended mid-frame.",
                &[],
            ),
            batch_ticks: reg.histogram(
                WIRE_INGEST_BATCH_TICKS,
                "Ticks per socket-read batch handed to Engine::ingest.",
                &[],
                &count_buckets(),
            ),
        }
    })
}

/// The ingest-side histogram (created once per process).
pub(crate) fn ingest_seconds() -> Histogram {
    static CELL: OnceLock<Histogram> = OnceLock::new();
    CELL.get_or_init(|| {
        global().histogram(
            INGEST_SECONDS,
            "Seconds one Engine::ingest call took, backpressure blocking included.",
            &[],
            &latency_buckets(),
        )
    })
    .clone()
}
