//! Network-facing ingestion: a std-only TCP server that feeds a running
//! [`Engine`] with [`ns_wire`] frames.
//!
//! # Shape
//!
//! [`Engine::serve_ingest`] consumes the engine and binds a listener.
//! Each accepted connection gets its own thread reading frames through a
//! [`FrameAssembler`]:
//!
//! * **Ingest connections** (the default) send [`Frame::Tick`]s,
//!   optionally probe liveness with [`Frame::Ping`], and may finalize the
//!   run with [`Frame::Finish`] — the server then flushes every node and
//!   streams the full verdict set plus a [`Frame::Report`] back on the
//!   same connection.
//! * **Verdict connections** (opened with `Hello { role: Verdicts }`)
//!   block until some ingest connection finalizes, then receive the same
//!   verdict stream. Late subscribers get it too: the finished run is
//!   retained until [`IngestServer::shutdown`].
//!
//! # Backpressure
//!
//! Deliberately socket-level and free: a connection thread does not read
//! its next chunk until [`Engine::ingest`] has accepted the previous one,
//! and `ingest` blocks when a shard's bounded queue is full. The kernel
//! socket buffer then fills and the *client's* `write` blocks — the
//! engine's queue bound propagates to the sender with no extra protocol.
//!
//! # Failure semantics
//!
//! Hostile or damaged bytes never panic and never take the server down:
//! a frame that fails to decode closes *that connection* (best-effort
//! [`Frame::Error`] first), EOF mid-frame is counted as a torn frame,
//! and the engine's own fault hardening (duplicate/late rejection,
//! bounded reorder, blackout resync) absorbs whatever a reconnecting or
//! duplicated client re-sends — `tests/wire_equivalence.rs` proves
//! verdicts stay bit-identical to in-process scoring through all of it.

use crate::metrics::wire_metrics;
use crate::{status, Engine, EngineReport, Verdict, VerdictKind};
use nodesentry_core::Tick;
use ns_obs::events::{self, EventKind};
use ns_wire::{error_code, Frame, FrameAssembler, ReportMsg, Role, VerdictMsg, WireError};
use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock};
use std::time::Duration;

/// Monotonic connection ids for journal attribution (the `node` slot of
/// wire events carries the connection id).
static NEXT_CONN_ID: AtomicU64 = AtomicU64::new(0);

/// Poll granularity for blocking socket reads and the verdict-subscriber
/// wait: how quickly a connection thread notices a server shutdown.
const POLL: Duration = Duration::from_millis(100);

/// A finalized over-the-wire run: the in-process report plus its wire
/// rendering, retained so late verdict subscribers (and
/// [`IngestServer::shutdown`]) can still read it.
pub struct FinishedRun {
    /// Exactly what [`Engine::finish`] returned.
    pub report: EngineReport,
    /// `report.verdicts` rendered as wire messages (same order).
    pub verdict_msgs: Vec<VerdictMsg>,
    /// The closing summary frame's payload.
    pub report_msg: ReportMsg,
}

fn verdict_msg(v: &Verdict) -> VerdictMsg {
    VerdictMsg {
        node: v.node as u64,
        step: v.step as u64,
        score_bits: v.score.to_bits(),
        anomalous: v.anomalous,
        cluster: v.cluster as u64,
        degraded: matches!(v.kind, VerdictKind::Degraded),
    }
}

/// State shared by the accept loop and every connection thread.
struct Shared {
    /// `Some` while the run is live; taken by the first `Finish`.
    engine: RwLock<Option<Engine>>,
    /// Set once the run finalizes; guarded by `done_cond`.
    done: Mutex<Option<Arc<FinishedRun>>>,
    done_cond: Condvar,
    stop: AtomicBool,
}

impl Shared {
    /// Finalize the run (idempotent). The caller that actually takes the
    /// engine pays for `finish`; everyone else waits on the condvar.
    fn finalize(&self) -> Option<Arc<FinishedRun>> {
        let taken = {
            let mut guard = self.engine.write().expect("engine lock");
            guard.take()
        };
        if let Some(engine) = taken {
            let report = engine.finish();
            let verdict_msgs: Vec<VerdictMsg> = report.verdicts.iter().map(verdict_msg).collect();
            let n_degraded = verdict_msgs.iter().filter(|m| m.degraded).count() as u64;
            let report_msg = ReportMsg {
                n_verdicts: verdict_msgs.len() as u64,
                n_degraded,
                n_ticks: report.stats.n_ticks,
                n_shards: report.n_shards as u64,
            };
            let run = Arc::new(FinishedRun {
                report,
                verdict_msgs,
                report_msg,
            });
            let mut done = self.done.lock().expect("done lock");
            *done = Some(Arc::clone(&run));
            self.done_cond.notify_all();
            Some(run)
        } else {
            self.wait_finished()
        }
    }

    /// Block until the run finalizes or the server stops.
    fn wait_finished(&self) -> Option<Arc<FinishedRun>> {
        let mut done = self.done.lock().expect("done lock");
        loop {
            if let Some(run) = done.as_ref() {
                return Some(Arc::clone(run));
            }
            if self.stop.load(Ordering::SeqCst) {
                return None;
            }
            let (next, _timeout) = self
                .done_cond
                .wait_timeout(done, POLL)
                .expect("done cond wait");
            done = next;
        }
    }
}

/// Handle to a running ingest server. Keeps the listener thread and
/// every live connection thread; [`shutdown`](IngestServer::shutdown)
/// (or drop) stops and joins them all.
pub struct IngestServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    accept_handle: Option<std::thread::JoinHandle<()>>,
    conns: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

impl IngestServer {
    /// The bound address — with port 0 requested, the ephemeral port the
    /// OS picked.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// True once some client's `Finish` has finalized the run.
    pub fn is_finished(&self) -> bool {
        self.shared.done.lock().expect("done lock").is_some()
    }

    /// Stop accepting, join every connection thread, and return the
    /// finished run if any client finalized it. An engine still live at
    /// shutdown is dropped without scoring its open segments (the caller
    /// chose not to finish).
    pub fn shutdown(mut self) -> Option<Arc<FinishedRun>> {
        self.stop_and_join();
        self.shared.done.lock().expect("done lock").clone()
    }

    fn stop_and_join(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect_timeout(&self.addr, Duration::from_millis(200));
        if let Some(h) = self.accept_handle.take() {
            let _ = h.join();
        }
        let handles: Vec<_> = self
            .conns
            .lock()
            .expect("conn registry")
            .drain(..)
            .collect();
        for h in handles {
            let _ = h.join();
        }
        // Tear down a never-finished engine so its workers exit.
        self.shared.engine.write().expect("engine lock").take();
    }
}

impl Drop for IngestServer {
    fn drop(&mut self) {
        if self.accept_handle.is_some() {
            self.stop_and_join();
        }
    }
}

impl Engine {
    /// Consume the engine and serve it over TCP on `addr` (e.g.
    /// `"127.0.0.1:0"` for an ephemeral port). See the [module
    /// docs](crate::ingest) for the connection protocol, backpressure
    /// and failure semantics.
    pub fn serve_ingest(self, addr: &str) -> std::io::Result<IngestServer> {
        let listener = TcpListener::bind(addr)?;
        let local = listener.local_addr()?;
        let shared = Arc::new(Shared {
            engine: RwLock::new(Some(self)),
            done: Mutex::new(None),
            done_cond: Condvar::new(),
            stop: AtomicBool::new(false),
        });
        let conns: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
        let accept_shared = Arc::clone(&shared);
        let accept_conns = Arc::clone(&conns);
        let accept_handle = std::thread::Builder::new()
            .name("ns-wire-ingest".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if accept_shared.stop.load(Ordering::SeqCst) {
                        break;
                    }
                    match conn {
                        Ok(stream) => {
                            let conn_shared = Arc::clone(&accept_shared);
                            let spawned = std::thread::Builder::new()
                                .name("ns-wire-conn".into())
                                .spawn(move || handle_conn(stream, conn_shared));
                            match spawned {
                                Ok(h) => accept_conns.lock().expect("conn registry").push(h),
                                Err(_) => continue,
                            }
                        }
                        Err(e) if e.kind() == ErrorKind::WouldBlock => continue,
                        Err(_) => break,
                    }
                }
            })?;
        Ok(IngestServer {
            addr: local,
            shared,
            accept_handle: Some(accept_handle),
            conns,
        })
    }
}

/// Why a connection loop ended — drives the close-out action.
enum ConnExit {
    /// Peer closed (EOF) or the server is stopping; nothing to send.
    Closed,
    /// This connection asked to finalize; stream verdicts back to it.
    Finished,
    /// This connection subscribed to the verdict stream.
    Subscribed,
    /// Protocol violation or engine failure: best-effort error frame,
    /// then close. The server itself keeps running.
    Fail { code: u8, msg: String },
}

fn handle_conn(mut stream: TcpStream, shared: Arc<Shared>) {
    let wm = wire_metrics();
    wm.connections_ingest.inc();
    let _active = wm.active_connections.hold();
    let conn_id = NEXT_CONN_ID.fetch_add(1, Ordering::Relaxed) as i64;
    events::record(EventKind::ConnOpen, "", -1, conn_id, 0, 0);
    let _ = stream.set_read_timeout(Some(POLL));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(10)));
    let _ = stream.set_nodelay(true);

    let exit = conn_loop(&mut stream, &shared, conn_id);
    let exit_label = match &exit {
        ConnExit::Closed => "closed",
        ConnExit::Finished => "finished",
        ConnExit::Subscribed => "subscribed",
        ConnExit::Fail { .. } => "fail",
    };
    match exit {
        ConnExit::Closed => {}
        ConnExit::Finished | ConnExit::Subscribed => {
            if matches!(exit, ConnExit::Subscribed) {
                // Counted as ingest on accept; reclassify.
                wm.connections_verdicts.inc();
            }
            if let Some(run) = match exit {
                ConnExit::Finished => shared.finalize(),
                _ => shared.wait_finished(),
            } {
                let _ = stream_verdicts(&mut stream, &run);
            }
        }
        ConnExit::Fail { code, msg } => {
            let mut bytes = Vec::new();
            bytes.extend_from_slice(&ns_wire::encode_frame(&Frame::Error { code, msg }));
            wm.tx_bytes.add(bytes.len() as u64);
            let _ = stream.write_all(&bytes);
        }
    }
    let _ = stream.flush();
    events::record(EventKind::ConnClose, exit_label, -1, conn_id, 0, 0);
}

/// Read frames until the connection resolves into a [`ConnExit`].
fn conn_loop(stream: &mut TcpStream, shared: &Shared, conn_id: i64) -> ConnExit {
    let wm = wire_metrics();
    let mut asm = FrameAssembler::new();
    let mut buf = vec![0u8; 64 * 1024];
    let mut batch: Vec<Tick> = Vec::new();
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return ConnExit::Closed;
        }
        let n = match stream.read(&mut buf) {
            Ok(0) => {
                if asm.pending_bytes() > 0 {
                    // Peer died mid-frame; the partial frame is dropped.
                    wm.torn_frames.inc();
                }
                if let Err(e) = flush_batch(shared, &mut batch) {
                    return e;
                }
                return ConnExit::Closed;
            }
            Ok(n) => n,
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                continue
            }
            Err(_) => return ConnExit::Closed,
        };
        wm.rx_bytes.add(n as u64);
        let frames = match asm.push(&buf[..n]) {
            Ok(frames) => frames,
            Err(err) => {
                wm.errors(err.class()).inc();
                events::record(EventKind::ProtocolError, err.class(), -1, conn_id, 0, 0);
                status::note_wire_error();
                return ConnExit::Fail {
                    code: error_code::PROTOCOL,
                    msg: err.to_string(),
                };
            }
        };
        for frame in frames {
            match frame {
                Frame::Tick(t) => {
                    wm.frames_tick.inc();
                    batch.push(t);
                }
                Frame::Hello {
                    role, precision, ..
                } => {
                    wm.frames("hello").inc();
                    // A client that announces a scoring tier must match
                    // the engine's: verdicts from mismatched tiers are
                    // not comparable bit-for-bit, so the session is
                    // refused up front rather than producing a silently
                    // wrong stream. Clients that announce nothing (v1
                    // peers) are accepted — they take whatever tier the
                    // engine runs.
                    if let Some(announced) = precision {
                        let engine_tier = shared
                            .engine
                            .read()
                            .expect("engine lock")
                            .as_ref()
                            .map(|e| e.scoring_precision());
                        if let Some(tier) = engine_tier {
                            if tier != announced {
                                return ConnExit::Fail {
                                    code: error_code::REJECTED,
                                    msg: format!(
                                        "scoring precision mismatch: client announced {}, engine runs {}",
                                        announced.as_str(),
                                        tier.as_str()
                                    ),
                                };
                            }
                        }
                    }
                    if matches!(role, Role::Verdicts) {
                        if let Err(e) = flush_batch(shared, &mut batch) {
                            return e;
                        }
                        events::record(EventKind::SubscriberJoin, "", -1, conn_id, 0, 0);
                        return ConnExit::Subscribed;
                    }
                }
                Frame::Ping { token } => {
                    wm.frames("ping").inc();
                    // Flush first: a Pong promises every frame received
                    // before the Ping has reached the engine, which is
                    // what makes it both an end-to-end latency probe and
                    // a safe pre-disconnect sync point.
                    if let Err(e) = flush_batch(shared, &mut batch) {
                        return e;
                    }
                    let bytes = ns_wire::encode_frame(&Frame::Pong { token });
                    wm.tx_bytes.add(bytes.len() as u64);
                    if stream.write_all(&bytes).is_err() {
                        return ConnExit::Closed;
                    }
                }
                Frame::Finish => {
                    wm.frames("finish").inc();
                    if let Err(e) = flush_batch(shared, &mut batch) {
                        return e;
                    }
                    return ConnExit::Finished;
                }
                other => {
                    // Server-to-client frames arriving at the server are
                    // a protocol violation, not a transport fault.
                    wm.frames(other.kind_label()).inc();
                    wm.errors("decode").inc();
                    events::record(
                        EventKind::ProtocolError,
                        other.kind_label(),
                        -1,
                        conn_id,
                        0,
                        0,
                    );
                    status::note_wire_error();
                    return ConnExit::Fail {
                        code: error_code::REJECTED,
                        msg: format!("unexpected {} frame from client", other.kind_label()),
                    };
                }
            }
        }
        // One `ingest` per socket read keeps the engine's bounded queues
        // as the only backpressure mechanism: no read happens while the
        // previous chunk is still waiting for queue space.
        if let Err(e) = flush_batch(shared, &mut batch) {
            return e;
        }
    }
}

/// Hand the accumulated ticks to the engine (blocking on backpressure).
fn flush_batch(shared: &Shared, batch: &mut Vec<Tick>) -> Result<(), ConnExit> {
    if batch.is_empty() {
        return Ok(());
    }
    let wm = wire_metrics();
    wm.batch_ticks.observe(batch.len() as f64);
    let ticks = std::mem::take(batch);
    let guard = shared.engine.read().expect("engine lock");
    match guard.as_ref() {
        Some(engine) => engine.ingest(ticks).map_err(|e| {
            wm.errors("io").inc();
            ConnExit::Fail {
                code: error_code::ENGINE,
                msg: e.to_string(),
            }
        }),
        None => Err(ConnExit::Fail {
            code: error_code::REJECTED,
            msg: "run already finalized; ticks rejected".into(),
        }),
    }
}

/// Write the whole verdict stream plus the closing report, coalesced
/// into bounded chunks so one syscall carries many small frames.
fn stream_verdicts(stream: &mut TcpStream, run: &FinishedRun) -> Result<(), WireError> {
    let wm = wire_metrics();
    let verdict_counter = wm.frames("verdict");
    let mut chunk: Vec<u8> = Vec::with_capacity(64 * 1024);
    for msg in &run.verdict_msgs {
        chunk.extend_from_slice(&ns_wire::encode_frame(&Frame::Verdict(*msg)));
        verdict_counter.inc();
        if chunk.len() >= 48 * 1024 {
            wm.tx_bytes.add(chunk.len() as u64);
            stream.write_all(&chunk)?;
            chunk.clear();
        }
    }
    chunk.extend_from_slice(&ns_wire::encode_frame(&Frame::Report(run.report_msg)));
    wm.frames("report").inc();
    wm.tx_bytes.add(chunk.len() as u64);
    stream.write_all(&chunk)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    // Protocol-level behavior that needs no trained model: the server
    // side of `Shared` without an engine is exercised in the integration
    // suites (`tests/wire_equivalence.rs`, `crates/stream/tests/
    // wire_corruption.rs`); here we only pin the pure helpers.

    #[test]
    fn verdict_msg_preserves_score_bits() {
        let v = Verdict {
            node: 3,
            step: 97,
            score: f64::from_bits(0x7ff8_0000_dead_beef), // NaN payload
            anomalous: true,
            cluster: 2,
            kind: VerdictKind::Degraded,
            precision: crate::ScoringPrecision::F64,
        };
        let m = verdict_msg(&v);
        assert_eq!(m.score_bits, 0x7ff8_0000_dead_beef);
        assert!(m.degraded && m.anomalous);
        assert_eq!((m.node, m.step, m.cluster), (3, 97, 2));
    }
}
