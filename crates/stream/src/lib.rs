//! `ns-stream` — sharded streaming deployment of a trained
//! [`NodeSentry`] detector, hardened against malformed feeds.
//!
//! The batch API ([`NodeSentry::score_node`]) scores a node from its full
//! raw matrix after the fact. A monitoring deployment instead sees one
//! telemetry sample per node per sampling step and must emit verdicts as
//! the data arrives. This crate provides that path without changing the
//! answer: every stage of the batch pipeline is replayed incrementally —
//!
//! * [`StreamingPreprocessor`] applies a fitted [`Preprocessor`] one raw
//!   row at a
//!   time. Linear NaN interpolation is anti-causal (a gap is filled once
//!   the next observation arrives), so rows are emitted behind a
//!   per-column resolution watermark and back-filled exactly as the batch
//!   code would. Each emitted [`PreRow`] also carries fault annotations:
//!   whether the input row was entirely NaN, and whether a kept
//!   cumulative counter went backwards (a collector restart).
//! * [`NodeState`] assembles preprocessed test rows into job segments at
//!   transition ticks, pattern-matches each segment's probe head against
//!   the cluster library as soon as `match_period` rows exist, scores the
//!   segment through the matched shared model at segment close (the
//!   positional encoding spans the whole segment, so scores finalize
//!   there), applies the per-segment baseline normalization, and feeds a
//!   node-level [`StreamingSmoother`] → [`StreamingKSigma`] chain.
//! * [`Engine`] shards nodes across a worker pool over bounded channels
//!   (ingest blocks when a shard falls behind — backpressure, not
//!   unbounded buffering) and returns every [`Verdict`] plus deployment
//!   cost statistics and [`FaultCounters`].
//!
//! # Fault model & degraded mode
//!
//! A production feed violates the clean contract (per node: one tick per
//! step, in order, no gaps) in well-known ways. [`NodeState::offer`]
//! survives all of them instead of asserting:
//!
//! * **Late & duplicate ticks** (`step < next`, or already buffered) are
//!   rejected and counted — at-least-once transport heals to
//!   exactly-once.
//! * **Out-of-order ticks** (`step > next`) wait in a bounded reorder
//!   buffer and are ingested once the gap closes; a reorder displaced by
//!   at most `reorder_bound` is healed bit-exactly.
//! * **Dropped ticks**: when the buffer spans more than `reorder_bound`
//!   steps, the oldest missing step is synthesized as an all-NaN row (the
//!   preprocessor interpolates it like any lost sample). Synthesized
//!   steps never receive a verdict, and their segment is marked
//!   [`VerdictKind::Degraded`].
//! * **Blackout + rejoin**: a gap of at least `blackout_gap` steps resets
//!   the node — the old state is flushed (degraded), preprocessing,
//!   smoothing and thresholding restart, and the node resyncs at the
//!   rejoin step. The first segment after rejoin is degraded; afterwards
//!   scores realign with the batch oracle at the next job transition.
//! * **NaN bursts** and **counter resets** are detected from the data
//!   (all-NaN input rows; kept counter groups decreasing) and degrade the
//!   enclosing segment.
//! * **Stuck sensors** are detected by exact-repeat run length: when at
//!   least a quarter of the watched (non-counter) columns repeat their
//!   value for `stuck_run` consecutive delivered ticks, the run's rows
//!   are marked faulty and degrade their segment.
//! * **Worker panics** (e.g. the [`EngineConfig::panic_at`] chaos hook)
//!   are caught per tick; the offending node is quarantined and its
//!   subsequent ticks dropped, while every other node keeps streaming.
//!
//! On a clean feed none of these paths fire and the engine remains
//! bit-identical to batch scoring (`tests/stream_equivalence.rs`); the
//! differential fault-tolerance suite (`tests/fault_tolerance.rs`) proves
//! the degraded-mode contract per fault class against
//! `ns-telemetry::faults`.
//!
//! # Observability
//!
//! The engine publishes live metrics into the global `ns-obs` registry
//! (see [`metrics`] for the full name table): per-shard queue-depth and
//! reorder-buffer gauges, ingest/match/score latency histograms, verdict
//! counters by kind, and a live per-class bridge of [`FaultCounters`] —
//! the same numbers as the end-of-run [`EngineReport`], but moving while
//! the stream runs. [`Engine::serve_metrics`] exposes everything over a
//! Prometheus `/metrics` endpoint. All of it is disabled by default and
//! observes only timings and counts, never pipeline data, so enabling it
//! cannot change a verdict bit (`tests/obs_equivalence.rs`).

pub mod ingest;
pub mod metrics;
pub mod snapshot;
pub mod status;

use crate::metrics::{ingest_seconds, node_metrics, snapshot_metrics, ShardMetrics};
use crate::snapshot::{EngineSnapshot, JobSnap, NodeSnap, PendingSnap, PreSnap, SnapshotError};
use nodesentry_core::coarse;
use nodesentry_core::{NodeSentry, Preprocessor};
use ns_eval::streaming::{StreamingKSigma, StreamingSmoother};
use ns_linalg::matrix::Matrix;
use ns_obs::events::{self, EventKind};
use rustc_hash::{FxHashMap, FxHashSet};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Instant;

pub use nodesentry_core::Tick;
/// Re-exported from [`ns_wire`]: the engine's scoring tier is announced
/// on Hello frames and validated at snapshot restore, so one type serves
/// config, wire and snapshot layers.
pub use ns_wire::ScoringPrecision;

/// How trustworthy a verdict is.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum VerdictKind {
    /// The full clean pipeline produced this verdict; it is bit-identical
    /// to what batch scoring of the same data would emit.
    Ok,
    /// A stream fault touched this verdict's segment (synthesized rows,
    /// NaN bursts, counter resets, stuck sensors, or a blackout resync):
    /// the score is a best effort, not the batch answer.
    Degraded,
}

/// One detection outcome for one node at one step of the test span.
#[derive(Clone, Debug, PartialEq)]
pub struct Verdict {
    pub node: usize,
    /// Global step index (`>= split`).
    pub step: usize,
    /// Normalized anomaly score — identical to the batch
    /// [`NodeSentry::score_node`] value at this step when `kind` is
    /// [`VerdictKind::Ok`].
    pub score: f64,
    /// Dynamic-threshold decision on the smoothed score.
    pub anomalous: bool,
    /// Cluster whose shared model scored this step's segment.
    pub cluster: usize,
    /// Whether stream faults degraded this verdict.
    pub kind: VerdictKind,
    /// Scoring tier that produced `score` ([`EngineConfig::scoring_precision`]).
    pub precision: ScoringPrecision,
}

/// Typed failures of the streaming engine. Injected stream faults are
/// *not* errors — they are absorbed and counted in [`FaultCounters`];
/// these are the conditions that make the engine itself unusable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EngineError {
    /// A shard's worker is gone and its queue rejects ticks.
    ShardClosed { shard: usize },
    /// The model has no shared experts to score segments with.
    NoSharedModels,
    /// The OS refused to spawn a worker thread.
    SpawnFailed(String),
    /// Snapshot bytes were unusable at restore (or incompatible with the
    /// model/config they were restored against).
    Snapshot(SnapshotError),
    /// A shard died between acknowledging a checkpoint request and
    /// replying with its state.
    CheckpointIncomplete { got: usize, want: usize },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::ShardClosed { shard } => {
                write!(f, "stream shard {shard} is closed")
            }
            EngineError::NoSharedModels => {
                write!(f, "model has no shared experts; nothing can score segments")
            }
            EngineError::SpawnFailed(e) => write!(f, "failed to spawn stream worker: {e}"),
            EngineError::Snapshot(e) => write!(f, "snapshot: {e}"),
            EngineError::CheckpointIncomplete { got, want } => {
                write!(f, "checkpoint incomplete: {got} of {want} shards replied")
            }
        }
    }
}

impl std::error::Error for EngineError {}

impl From<SnapshotError> for EngineError {
    fn from(e: SnapshotError) -> Self {
        EngineError::Snapshot(e)
    }
}

/// Counters for every fault class the engine absorbed, surfaced in
/// [`EngineReport`]. All zeros on a clean feed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultCounters {
    /// Ticks rejected because their step was already consumed
    /// (duplicates delivered after their original, or stragglers that
    /// arrived after their step was synthesized).
    pub late_ticks: u64,
    /// Ticks rejected because an identical step was already waiting in
    /// the reorder buffer.
    pub duplicate_ticks: u64,
    /// Ticks that arrived ahead of their step and were buffered.
    pub reordered_ticks: u64,
    /// All-NaN rows synthesized for steps that never arrived.
    pub synthesized_rows: u64,
    /// Delivered rows whose every value was NaN (collector up, payload
    /// lost).
    pub nan_rows: u64,
    /// Rows where a kept cumulative counter went backwards.
    pub counter_resets: u64,
    /// Rows confirmed inside a stuck-sensor run.
    pub stuck_rows: u64,
    /// Blackout resets (gap of at least `blackout_gap` steps).
    pub blackouts: u64,
    /// Ticks whose payload width didn't match the model.
    pub malformed_ticks: u64,
    /// Nodes quarantined after a worker panic in their state.
    pub quarantined_nodes: u64,
    /// Ticks dropped because their node was quarantined.
    pub quarantine_dropped: u64,
    /// Verdicts withheld for synthesized (never-delivered) steps.
    pub suppressed_verdicts: u64,
    /// Verdicts emitted with [`VerdictKind::Degraded`].
    pub degraded_verdicts: u64,
    /// Whole workers lost to a panic outside the per-tick guard.
    pub worker_crashes: u64,
}

impl FaultCounters {
    pub fn merge(&mut self, other: &FaultCounters) {
        self.late_ticks += other.late_ticks;
        self.duplicate_ticks += other.duplicate_ticks;
        self.reordered_ticks += other.reordered_ticks;
        self.synthesized_rows += other.synthesized_rows;
        self.nan_rows += other.nan_rows;
        self.counter_resets += other.counter_resets;
        self.stuck_rows += other.stuck_rows;
        self.blackouts += other.blackouts;
        self.malformed_ticks += other.malformed_ticks;
        self.quarantined_nodes += other.quarantined_nodes;
        self.quarantine_dropped += other.quarantine_dropped;
        self.suppressed_verdicts += other.suppressed_verdicts;
        self.degraded_verdicts += other.degraded_verdicts;
        self.worker_crashes += other.worker_crashes;
    }

    /// Every counter as a `(class, value)` pair, in declaration order.
    /// The class names double as the `class` label values of the live
    /// `ns_stream_faults_total` metric (see [`metrics`]).
    pub fn as_pairs(&self) -> [(&'static str, u64); 14] {
        [
            ("late_ticks", self.late_ticks),
            ("duplicate_ticks", self.duplicate_ticks),
            ("reordered_ticks", self.reordered_ticks),
            ("synthesized_rows", self.synthesized_rows),
            ("nan_rows", self.nan_rows),
            ("counter_resets", self.counter_resets),
            ("stuck_rows", self.stuck_rows),
            ("blackouts", self.blackouts),
            ("malformed_ticks", self.malformed_ticks),
            ("quarantined_nodes", self.quarantined_nodes),
            ("quarantine_dropped", self.quarantine_dropped),
            ("suppressed_verdicts", self.suppressed_verdicts),
            ("degraded_verdicts", self.degraded_verdicts),
            ("worker_crashes", self.worker_crashes),
        ]
    }

    /// Total ticks rejected without reaching the pipeline.
    pub fn rejected(&self) -> u64 {
        self.late_ticks + self.duplicate_ticks + self.malformed_ticks + self.quarantine_dropped
    }

    /// True when no fault path fired at all (clean feed).
    pub fn is_clean(&self) -> bool {
        *self == FaultCounters::default()
    }
}

// ---------------------------------------------------------------------
// Streaming preprocessing
// ---------------------------------------------------------------------

/// One finalized preprocessed row plus fault annotations derived from the
/// raw data that produced it.
#[derive(Clone, Debug)]
pub struct PreRow {
    /// Aggregated, rate-converted, pruned, standardized values — the
    /// exact batch [`Preprocessor::transform`] row.
    pub values: Vec<f64>,
    /// The raw input row was entirely NaN (lost payload or synthesized
    /// placeholder); its values here are interpolation artifacts.
    pub all_nan: bool,
    /// A kept cumulative counter decreased at this row — the collecting
    /// daemon restarted, so the rate sample is a large negative spike.
    pub counter_reset: bool,
}

/// Streaming replay of [`Preprocessor::transform`].
///
/// Raw rows go in one at a time; preprocessed rows come out behind a
/// resolution watermark: a row is emitted once every column's value is
/// final, i.e. once each column has a later (or equal) observation that
/// pins down the batch code's linear gap interpolation. [`flush`]
/// finalizes the tail, where the batch code extends the last observation
/// forward (and zeroes never-observed columns).
///
/// Memory is bounded by the longest missing-value run, not the stream
/// length.
///
/// [`flush`]: StreamingPreprocessor::flush
pub struct StreamingPreprocessor {
    groups: Vec<usize>,
    group_counts: Vec<usize>,
    counters: Vec<bool>,
    kept: Vec<usize>,
    /// Kept aggregated counter groups — the only ones whose resets can
    /// perturb the output and therefore the only ones watched.
    reset_watch: Vec<usize>,
    mean: Vec<f64>,
    std: Vec<f64>,
    clip: f64,
    /// Raw rows not yet fully resolved; front is row `base`.
    buf: VecDeque<Vec<f64>>,
    /// Whether each buffered raw row arrived entirely NaN.
    nan_flags: VecDeque<bool>,
    base: usize,
    n_pushed: usize,
    /// Rows `[0, resolved)` have been emitted.
    resolved: usize,
    /// Per raw column: index of the latest observed (non-NaN) row.
    last_obs: Vec<Option<usize>>,
    /// Per raw column: value at `last_obs` (for gap and tail filling).
    last_val: Vec<f64>,
    /// Per aggregated counter column: previous cumulative value.
    rate_prev: Vec<f64>,
    any_row: bool,
}

impl StreamingPreprocessor {
    pub fn new(pre: &Preprocessor) -> Self {
        let n_groups = pre.counters.len();
        let mut group_counts = vec![0usize; n_groups];
        for &g in &pre.groups {
            group_counts[g] += 1;
        }
        let reset_watch = pre
            .kept
            .iter()
            .copied()
            .filter(|&g| pre.counters[g])
            .collect();
        StreamingPreprocessor {
            groups: pre.groups.clone(),
            group_counts,
            counters: pre.counters.clone(),
            kept: pre.kept.clone(),
            reset_watch,
            mean: pre.standardizer.mean.clone(),
            std: pre.standardizer.std.clone(),
            clip: pre.standardizer.clip,
            buf: VecDeque::new(),
            nan_flags: VecDeque::new(),
            base: 0,
            n_pushed: 0,
            resolved: 0,
            last_obs: vec![None; pre.groups.len()],
            last_val: vec![0.0; pre.groups.len()],
            rate_prev: vec![0.0; n_groups],
            any_row: false,
        }
    }

    /// Raw row width this preprocessor expects.
    pub fn width(&self) -> usize {
        self.groups.len()
    }

    /// Ingest one raw row; returns the preprocessed rows that became
    /// final (in row order), possibly none during a missing-value run.
    pub fn push(&mut self, raw_row: &[f64]) -> Vec<PreRow> {
        // Width is guarded upstream: the engine counts wrong-width ticks
        // as malformed before they reach any node state.
        assert_eq!(raw_row.len(), self.groups.len(), "raw row width");
        let r = self.n_pushed;
        self.buf.push_back(raw_row.to_vec());
        self.nan_flags.push_back(raw_row.iter().all(|v| v.is_nan()));
        self.n_pushed += 1;
        for (c, &v) in raw_row.iter().enumerate() {
            if v.is_nan() {
                continue;
            }
            match self.last_obs[c] {
                Some(p) => {
                    if r > p + 1 {
                        // Batch `interpolate_missing` gap fill, verbatim.
                        let a = self.last_val[c];
                        let b = v;
                        let gap = (r - p) as f64;
                        for k in p + 1..r {
                            let t = (k - p) as f64 / gap;
                            self.buf[k - self.base][c] = a + (b - a) * t;
                        }
                    }
                }
                None => {
                    // Head fill: leading NaNs take the first observation.
                    for k in 0..r {
                        self.buf[k - self.base][c] = v;
                    }
                }
            }
            self.last_obs[c] = Some(r);
            self.last_val[c] = v;
        }
        self.drain_watermark()
    }

    /// End of stream: tail-fill every column (never-observed columns
    /// become zero, like the batch code) and emit the remaining rows.
    pub fn flush(&mut self) -> Vec<PreRow> {
        for (c, lo) in self.last_obs.iter().enumerate() {
            let (from, fill) = match lo {
                Some(l) => (l + 1, self.last_val[c]),
                None => (0, 0.0),
            };
            for k in from.max(self.base)..self.n_pushed {
                self.buf[k - self.base][c] = fill;
            }
        }
        let mut out = Vec::new();
        while self.resolved < self.n_pushed {
            out.push(self.emit_front());
        }
        out
    }

    /// Capture the mutable replay state (the fitted configuration lives
    /// in the model and is not duplicated here).
    pub fn state(&self) -> PreSnap {
        PreSnap {
            buf: self.buf.iter().cloned().collect(),
            nan_flags: self.nan_flags.iter().copied().collect(),
            base: self.base,
            n_pushed: self.n_pushed,
            resolved: self.resolved,
            last_obs: self.last_obs.clone(),
            last_val: self.last_val.clone(),
            rate_prev: self.rate_prev.clone(),
            any_row: self.any_row,
        }
    }

    /// Rebuild from a fitted [`Preprocessor`] plus captured state;
    /// continues bit-identically to the original instance. Refuses
    /// state whose shape disagrees with the preprocessor (a snapshot
    /// from a different model).
    pub fn restore(pre: &Preprocessor, s: &PreSnap) -> Result<Self, SnapshotError> {
        let mut sp = StreamingPreprocessor::new(pre);
        let width = sp.groups.len();
        if s.last_obs.len() != width
            || s.last_val.len() != width
            || s.rate_prev.len() != sp.group_counts.len()
            || s.buf.len() != s.nan_flags.len()
            || s.buf.iter().any(|row| row.len() != width)
        {
            return Err(SnapshotError::Decode(
                "preprocessor state shape mismatch".into(),
            ));
        }
        sp.buf = s.buf.iter().cloned().collect();
        sp.nan_flags = s.nan_flags.iter().copied().collect();
        sp.base = s.base;
        sp.n_pushed = s.n_pushed;
        sp.resolved = s.resolved;
        sp.last_obs = s.last_obs.clone();
        sp.last_val = s.last_val.clone();
        sp.rate_prev = s.rate_prev.clone();
        sp.any_row = s.any_row;
        Ok(sp)
    }

    /// Emit rows up to the minimum per-column resolution point.
    fn drain_watermark(&mut self) -> Vec<PreRow> {
        let watermark = self
            .last_obs
            .iter()
            .map(|lo| lo.map(|l| l + 1).unwrap_or(0))
            .min()
            .unwrap_or(0);
        let mut out = Vec::new();
        while self.resolved < watermark {
            out.push(self.emit_front());
        }
        out
    }

    /// Pop the front (fully resolved) raw row and run aggregation → rate
    /// conversion → pruning gather → standardization on it, matching the
    /// batch arithmetic operation for operation.
    fn emit_front(&mut self) -> PreRow {
        // Invariant: callers only reach here while `resolved < n_pushed`,
        // so the front row (and its NaN flag) is always buffered.
        let raw = self.buf.pop_front().expect("resolved row buffered");
        let all_nan = self.nan_flags.pop_front().unwrap_or(false);
        self.base += 1;
        self.resolved += 1;
        // Aggregation: accumulate in raw-column order, then divide — the
        // exact loop structure of `aggregate_groups`.
        let mut agg = vec![0.0f64; self.group_counts.len()];
        for (j, &g) in self.groups.iter().enumerate() {
            agg[g] += raw[j];
        }
        for (g, v) in agg.iter_mut().enumerate() {
            if self.group_counts[g] > 0 {
                *v /= self.group_counts[g] as f64;
            }
        }
        // Counter-reset watch: a kept cumulative group moving backwards
        // means the collecting daemon lost its history. Clean counters
        // are non-decreasing even through interpolation (linear fills
        // between observations) and tail clamping (constant), so an
        // epsilon-guarded decrease is a true reset, not rounding.
        let mut counter_reset = false;
        if self.any_row {
            for &g in &self.reset_watch {
                let prev = self.rate_prev[g];
                let eps = 1e-9 * prev.abs().max(1.0);
                if agg[g] < prev - eps {
                    counter_reset = true;
                    break;
                }
            }
        }
        // Rate conversion: first row becomes 0, later rows the difference.
        for (g, v) in agg.iter_mut().enumerate() {
            if !self.counters[g] {
                continue;
            }
            let cur = *v;
            *v = if self.any_row {
                cur - self.rate_prev[g]
            } else {
                0.0
            };
            self.rate_prev[g] = cur;
        }
        self.any_row = true;
        // Pruning gather + trimmed z-score with clipping.
        let values = self
            .kept
            .iter()
            .enumerate()
            .map(|(j, &c)| ((agg[c] - self.mean[j]) / self.std[j]).clamp(-self.clip, self.clip))
            .collect();
        PreRow {
            values,
            all_nan,
            counter_reset,
        }
    }
}

// ---------------------------------------------------------------------
// Per-node incremental detection state
// ---------------------------------------------------------------------

/// Deployment-cost counters accumulated by one node (merged per shard).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct StreamStats {
    /// Raw ticks ingested.
    pub n_ticks: u64,
    /// Pattern-matching cycles performed.
    pub n_matches: u64,
    /// Seconds spent in probe feature extraction + library matching.
    pub match_seconds: f64,
    /// Seconds spent in model scoring + thresholding.
    pub score_seconds: f64,
    /// Test-span points given a verdict.
    pub n_points: u64,
}

impl StreamStats {
    pub fn merge(&mut self, other: &StreamStats) {
        self.n_ticks += other.n_ticks;
        self.n_matches += other.n_matches;
        self.match_seconds += other.match_seconds;
        self.score_seconds += other.score_seconds;
        self.n_points += other.n_points;
    }

    /// Seconds per pattern-matching cycle (paper Table 5's match cost).
    pub fn match_s_per_cycle(&self) -> f64 {
        self.match_seconds / (self.n_matches.max(1) as f64)
    }

    /// Milliseconds of scoring compute per detected point.
    pub fn point_latency_ms(&self) -> f64 {
        self.score_seconds * 1e3 / (self.n_points.max(1) as f64)
    }
}

/// Provenance of one preprocessed row, tracked from tick ingestion
/// through segment close.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum RowKind {
    /// Delivered normally, no fault detected.
    Clean,
    /// Fabricated by the engine for a step that never arrived.
    Synthesized,
    /// Delivered but fault-tainted (all-NaN, counter reset, stuck run).
    Faulty,
}

impl RowKind {
    /// Snapshot ordinal (pinned: part of the on-disk format).
    fn to_ordinal(self) -> u8 {
        match self {
            RowKind::Clean => 0,
            RowKind::Synthesized => 1,
            RowKind::Faulty => 2,
        }
    }

    fn from_ordinal(b: u8) -> Result<Self, SnapshotError> {
        match b {
            0 => Ok(RowKind::Clean),
            1 => Ok(RowKind::Synthesized),
            2 => Ok(RowKind::Faulty),
            other => Err(SnapshotError::Decode(format!("bad row kind {other}"))),
        }
    }
}

fn kinds_to_ordinals(kinds: &[RowKind]) -> Vec<u8> {
    kinds.iter().map(|k| k.to_ordinal()).collect()
}

fn kinds_from_ordinals(bytes: &[u8]) -> Result<Vec<RowKind>, SnapshotError> {
    bytes.iter().map(|&b| RowKind::from_ordinal(b)).collect()
}

/// The F32 tier's probe matcher: the cluster library baked down to f32
/// once per node (the fitted model is immutable for the run), plus the
/// f32 standardization scratch that replaces `z_scratch`.
struct ProbeScratch32 {
    lib: coarse::ProbeLibraryF32,
    scratch: Vec<f32>,
}

/// A score waiting for its (lagged) smoothed threshold decision.
struct PendingScore {
    step: usize,
    score: f64,
    cluster: usize,
    /// Synthesized step: feed the chain for alignment, emit nothing.
    suppress: bool,
    degraded: bool,
}

/// A closed segment whose scoring is deferred to the shard's batched
/// scoring phase. Rows, provenance and the degraded flag are frozen at
/// close time, so scoring later cannot change any verdict bit relative
/// to the eager path.
struct SegmentJob {
    /// Global step of the segment's first row.
    start: usize,
    /// The segment's preprocessed rows (ownership moved out of the open
    /// segment — later retro-taints cannot reach them, matching the
    /// eager path where these verdicts would already be emitted).
    rows: Vec<Vec<f64>>,
    /// Provenance per row, parallel to `rows`.
    kinds: Vec<RowKind>,
    /// Cluster from the eager probe match, if it ran before the cut.
    matched: Option<usize>,
    /// Degraded flag evaluated at close time (resync or tainted rows).
    degraded: bool,
}

/// Incremental detection state for a single node.
///
/// Drives the full online pipeline of [`NodeSentry::score_node`] +
/// smoothing + k-sigma from one tick at a time. Scores for a segment are
/// emitted when the segment closes (next job transition or flush): the
/// shared model's positional encoding is relative to the whole segment,
/// so earlier emission would change the answer.
///
/// Unlike the clean-contract version, [`offer`](NodeState::offer)
/// tolerates arbitrary arrival order: late and duplicate ticks are
/// rejected, early ticks wait in a bounded reorder buffer, persistent
/// gaps are synthesized as lost samples, and long gaps trigger a full
/// blackout resync. See the crate docs for the fault model.
pub struct NodeState {
    model: Arc<NodeSentry>,
    node: usize,
    split: usize,
    /// Next step to ingest; everything below it is consumed.
    next_step: usize,
    pre: StreamingPreprocessor,
    /// Global index of the next preprocessed row to come out of `pre`.
    next_row: usize,
    /// Raw stream width (for synthesizing lost rows).
    width: usize,
    /// Pending job-transition cuts (global steps > split), in order.
    cuts: VecDeque<usize>,
    /// Current segment's preprocessed rows (test span only).
    seg_rows: Vec<Vec<f64>>,
    /// Provenance of each current-segment row, parallel to `seg_rows`.
    seg_row_kinds: Vec<RowKind>,
    seg_start: usize,
    /// Eager probe match for the current segment, once available.
    matched: Option<usize>,
    /// Defer scoring/matching to the shard's batched scoring phase.
    batch_scoring: bool,
    /// Closed segments awaiting the batched scoring phase (FIFO).
    jobs: VecDeque<SegmentJob>,
    /// The open segment reached `match_period` rows; its probe match is
    /// deferred to the next scoring phase.
    probe_pending: bool,
    /// Scratch for `match_pattern_into` — the warm streaming match path
    /// allocates nothing (`crates/core/tests/match_zero_alloc.rs`).
    z_scratch: Vec<f64>,
    /// Scoring tier every verdict from this node is tagged with.
    precision: ScoringPrecision,
    /// Baked f32 probe library; `Some` exactly when `precision` is F32.
    probe32: Option<ProbeScratch32>,
    smoother: StreamingSmoother,
    detector: StreamingKSigma,
    /// Scores awaiting their (lagged) smoothed verdict.
    pending: VecDeque<PendingScore>,
    /// Early ticks waiting for their gap to close, keyed by step.
    ahead: BTreeMap<usize, Tick>,
    reorder_bound: usize,
    blackout_gap: usize,
    stuck_run: usize,
    smooth_window: usize,
    /// Provenance of rows pushed into `pre` but not yet absorbed; front
    /// corresponds to global row `next_row`.
    row_kinds: VecDeque<RowKind>,
    /// The segment being assembled spans a blackout resync; its scores
    /// cannot match the batch oracle's segmentation.
    resync_degraded: bool,
    /// Stuck-sensor watch: last delivered value and exact-repeat run
    /// length per raw column (non-counter columns only — idle counters
    /// legitimately repeat).
    prev_raw: Vec<f64>,
    runs: Vec<u32>,
    stuck_watch: Vec<bool>,
    n_watch: usize,
    pub stats: StreamStats,
    pub faults: FaultCounters,
}

impl NodeState {
    pub fn new(model: Arc<NodeSentry>, node: usize, cfg: &EngineConfig) -> Self {
        let pre = StreamingPreprocessor::new(&model.preprocessor);
        let detector = StreamingKSigma::new(model.cfg.threshold);
        let width = pre.width();
        let stuck_watch: Vec<bool> = model
            .preprocessor
            .groups
            .iter()
            .map(|&g| !model.preprocessor.counters[g])
            .collect();
        let n_watch = stuck_watch.iter().filter(|&&w| w).count();
        let probe32 = (cfg.scoring_precision == ScoringPrecision::F32).then(|| ProbeScratch32 {
            lib: model.cluster_model.probe_library_f32(),
            scratch: Vec::new(),
        });
        NodeState {
            model,
            node,
            split: cfg.split,
            next_step: 0,
            pre,
            next_row: 0,
            width,
            cuts: VecDeque::new(),
            seg_rows: Vec::new(),
            seg_row_kinds: Vec::new(),
            seg_start: 0,
            matched: None,
            batch_scoring: cfg.batch_scoring,
            jobs: VecDeque::new(),
            probe_pending: false,
            z_scratch: Vec::new(),
            precision: cfg.scoring_precision,
            probe32,
            smoother: StreamingSmoother::new(cfg.smooth_window),
            detector,
            pending: VecDeque::new(),
            ahead: BTreeMap::new(),
            reorder_bound: cfg.reorder_bound.max(1),
            blackout_gap: cfg.blackout_gap.max(2),
            stuck_run: cfg.stuck_run.max(2),
            smooth_window: cfg.smooth_window,
            row_kinds: VecDeque::new(),
            resync_degraded: false,
            prev_raw: vec![f64::NAN; width],
            runs: vec![0; width],
            stuck_watch,
            n_watch,
            stats: StreamStats::default(),
            faults: FaultCounters::default(),
        }
    }

    /// Offer one tick in arbitrary arrival order; returns verdicts
    /// finalized by it (usually none — a burst arrives when a segment
    /// closes). Never panics on malformed sequencing: out-of-contract
    /// ticks are buffered, rejected, or synthesized around, and counted
    /// in [`NodeState::faults`].
    pub fn offer(&mut self, tick: &Tick) -> Vec<Verdict> {
        debug_assert_eq!(tick.node, self.node, "tick routed to wrong node state");
        self.stats.n_ticks += 1;
        if tick.step < self.next_step {
            // Already consumed (duplicate after original, or a straggler
            // whose step was synthesized past).
            self.faults.late_ticks += 1;
            return Vec::new();
        }
        if tick.step > self.next_step {
            match self.ahead.entry(tick.step) {
                std::collections::btree_map::Entry::Vacant(slot) => {
                    slot.insert(tick.clone());
                    self.faults.reordered_ticks += 1;
                }
                std::collections::btree_map::Entry::Occupied(_) => {
                    self.faults.duplicate_ticks += 1;
                    return Vec::new();
                }
            }
            return self.settle();
        }
        let mut out = self.ingest_now(tick);
        out.extend(self.settle());
        out
    }

    /// Drain the reorder buffer as far as policy allows: contiguous ticks
    /// ingest immediately, a gap of `blackout_gap` resets the node, and a
    /// buffer spanning more than `reorder_bound` steps forces the oldest
    /// missing step to be synthesized (the straggler is declared lost).
    fn settle(&mut self) -> Vec<Verdict> {
        let mut out = Vec::new();
        loop {
            while let Some(t) = self.ahead.remove(&self.next_step) {
                out.extend(self.ingest_now(&t));
            }
            let Some((&front, _)) = self.ahead.first_key_value() else {
                break;
            };
            if front - self.next_step >= self.blackout_gap {
                out.extend(self.blackout_reset(front));
                continue;
            }
            // Invariant: the map is non-empty, so a last key exists.
            let span = match self.ahead.last_key_value() {
                Some((&last, _)) => last - self.next_step,
                None => break,
            };
            if span > self.reorder_bound {
                out.extend(self.ingest_missing());
            } else {
                break; // wait for the straggler
            }
        }
        out
    }

    /// Ingest the tick for exactly `next_step`.
    fn ingest_now(&mut self, tick: &Tick) -> Vec<Verdict> {
        let kind = self.observe_raw(tick.step, &tick.values);
        self.next_step += 1;
        // Batch segmentation keeps transitions strictly inside the test
        // span: `t > split && t < horizon`.
        if tick.transition && tick.step > self.split {
            self.cuts.push_back(tick.step);
        }
        self.row_kinds.push_back(kind);
        let rows = self.pre.push(&tick.values);
        self.absorb_rows(rows)
    }

    /// Declare `next_step` lost and synthesize an all-NaN row for it; the
    /// preprocessor interpolates it like any missing sample. The step
    /// never receives a verdict.
    fn ingest_missing(&mut self) -> Vec<Verdict> {
        self.faults.synthesized_rows += 1;
        self.next_step += 1;
        self.row_kinds.push_back(RowKind::Synthesized);
        let nan_row = vec![f64::NAN; self.width];
        let rows = self.pre.push(&nan_row);
        self.absorb_rows(rows)
    }

    /// Update the stuck-sensor watch with a delivered raw row and return
    /// the row's provenance.
    fn observe_raw(&mut self, step: usize, values: &[f64]) -> RowKind {
        let mut stuck_cols = 0usize;
        for (c, &v) in values.iter().enumerate() {
            if !self.stuck_watch[c] {
                continue;
            }
            if v.is_nan() {
                self.runs[c] = 0;
                continue;
            }
            if !self.prev_raw[c].is_nan() && v == self.prev_raw[c] {
                self.runs[c] += 1;
            } else {
                self.runs[c] = 0;
            }
            self.prev_raw[c] = v;
            if self.runs[c] >= self.stuck_run as u32 {
                stuck_cols += 1;
            }
        }
        // Continuous gauge signals essentially never repeat bit-exactly;
        // a quarter of them frozen for `stuck_run` ticks is a collector
        // fault, not chance.
        if self.n_watch > 0 && stuck_cols * 4 >= self.n_watch {
            self.faults.stuck_rows += 1;
            // The run began `stuck_run` rows back; taint those too.
            for k in step.saturating_sub(self.stuck_run)..step {
                self.mark_row_faulty(k);
            }
            return RowKind::Faulty;
        }
        RowKind::Clean
    }

    /// Retroactively taint a row discovered to be faulty after ingestion
    /// (stuck-run confirmation lags the run start). Best effort: rows
    /// whose segment already closed have emitted their verdicts.
    fn mark_row_faulty(&mut self, row: usize) {
        if row >= self.next_row {
            let i = row - self.next_row;
            if i < self.row_kinds.len() && self.row_kinds[i] == RowKind::Clean {
                self.row_kinds[i] = RowKind::Faulty;
            }
            return;
        }
        if !self.seg_rows.is_empty() && row >= self.seg_start {
            let i = row - self.seg_start;
            if i < self.seg_row_kinds.len() && self.seg_row_kinds[i] == RowKind::Clean {
                self.seg_row_kinds[i] = RowKind::Faulty;
            }
        }
    }

    /// The node went dark for at least `blackout_gap` steps: flush the
    /// stale state (degraded), then restart preprocessing, smoothing and
    /// thresholding at the rejoin step. No state leaks across the reset —
    /// the next segment is scored from scratch.
    fn blackout_reset(&mut self, resync_at: usize) -> Vec<Verdict> {
        self.faults.blackouts += 1;
        events::record(
            EventKind::Blackout,
            "",
            -1,
            self.node as i64,
            resync_at.saturating_sub(self.next_step) as u64,
            self.next_step as u64,
        );
        let out = self.flush_tail(true);
        self.pre = StreamingPreprocessor::new(&self.model.preprocessor);
        self.smoother = StreamingSmoother::new(self.smooth_window);
        self.detector = StreamingKSigma::new(self.model.cfg.threshold);
        self.cuts.clear();
        self.seg_rows.clear();
        self.seg_row_kinds.clear();
        self.row_kinds.clear();
        self.pending.clear();
        self.matched = None;
        self.jobs.clear();
        self.probe_pending = false;
        self.next_step = resync_at;
        self.next_row = resync_at;
        self.resync_degraded = true;
        self.runs.iter_mut().for_each(|r| *r = 0);
        self.prev_raw.iter_mut().for_each(|p| *p = f64::NAN);
        events::record(
            EventKind::Resync,
            "",
            -1,
            self.node as i64,
            resync_at as u64,
            self.faults.blackouts,
        );
        out
    }

    /// End of stream: resolve every remaining gap (stragglers will never
    /// arrive), flush the preprocessing tail, close the last segment, and
    /// drain the smoothing lag.
    pub fn flush(&mut self) -> Vec<Verdict> {
        let mut out = Vec::new();
        while let Some((&front, _)) = self.ahead.first_key_value() {
            if front - self.next_step >= self.blackout_gap {
                out.extend(self.blackout_reset(front));
            } else {
                while self.next_step < front {
                    out.extend(self.ingest_missing());
                }
            }
            while let Some(t) = self.ahead.remove(&self.next_step) {
                out.extend(self.ingest_now(&t));
            }
        }
        out.extend(self.flush_tail(false));
        out
    }

    /// Flush preprocessing + segment + smoothing lag. With `degrade`,
    /// every verdict emitted here is marked [`VerdictKind::Degraded`]
    /// (used mid-stream at blackout resets, where the tail clamp differs
    /// from what batch interpolation across the gap would produce).
    fn flush_tail(&mut self, degrade: bool) -> Vec<Verdict> {
        // Jobs queued before this flush belong to segments the eager
        // path had already scored and emitted pre-flush; drain them
        // first so the degrade marking below cannot touch their
        // verdicts. (Verdicts their scores release during the flush —
        // the smoothing-lag tail — land in `out` below and are marked,
        // exactly as the eager path marks them.)
        let mut pre = if self.batch_scoring {
            self.drain_jobs()
        } else {
            Vec::new()
        };
        let rows = self.pre.flush();
        let mut out = self.absorb_rows(rows);
        if !self.seg_rows.is_empty() {
            if self.batch_scoring {
                let job = self.take_open_segment();
                self.jobs.push_back(job);
            } else {
                out.extend(self.close_segment());
            }
        }
        if self.batch_scoring {
            out.extend(self.drain_jobs());
        }
        let t0 = Instant::now();
        for sv in self.smoother.flush() {
            let flagged = self.detector.push(sv);
            if let Some(v) = self.emit_verdict(flagged) {
                out.push(v);
            }
        }
        self.stats.score_seconds += t0.elapsed().as_secs_f64();
        debug_assert!(self.pending.is_empty(), "scores left without verdicts");
        if degrade {
            for v in out.iter_mut() {
                if v.kind == VerdictKind::Ok {
                    v.kind = VerdictKind::Degraded;
                    self.faults.degraded_verdicts += 1;
                }
            }
        }
        pre.extend(out);
        pre
    }

    fn absorb_rows(&mut self, rows: Vec<PreRow>) -> Vec<Verdict> {
        let mut out = Vec::new();
        for prerow in rows {
            let r = self.next_row;
            self.next_row += 1;
            // Invariant: exactly one kind was queued per row pushed into
            // `pre`, so the front always exists.
            let mut kind = self.row_kinds.pop_front().unwrap_or(RowKind::Clean);
            if prerow.all_nan && kind == RowKind::Clean {
                self.faults.nan_rows += 1;
                kind = RowKind::Faulty;
            }
            if prerow.counter_reset {
                self.faults.counter_resets += 1;
                if kind == RowKind::Clean {
                    kind = RowKind::Faulty;
                }
            }
            if r < self.split {
                continue; // training span: context only
            }
            if self.cuts.front() == Some(&r) {
                self.cuts.pop_front();
                if !self.seg_rows.is_empty() {
                    if self.batch_scoring {
                        // Deferred: freeze the segment now (rows, kinds,
                        // degraded flag) and score it in the shard's next
                        // batched scoring phase.
                        let job = self.take_open_segment();
                        self.jobs.push_back(job);
                    } else {
                        out.extend(self.close_segment());
                    }
                }
            }
            if self.seg_rows.is_empty() {
                self.seg_start = r;
            }
            self.seg_rows.push(prerow.values);
            self.seg_row_kinds.push(kind);
            // Eager pattern matching: the probe is the segment's first
            // `match_period` rows, available long before the segment
            // closes. This is the deployment's per-transition match cycle.
            // In batched mode the match itself is deferred to the scoring
            // phase; the probe rows are frozen either way, so the result
            // is identical.
            if self.matched.is_none() && self.seg_rows.len() == self.model.cfg.match_period {
                if self.batch_scoring {
                    self.probe_pending = true;
                } else {
                    self.matched = Some(self.match_probe(self.seg_rows.len()));
                }
            }
        }
        out
    }

    fn match_probe(&mut self, probe_len: usize) -> usize {
        match_probe_rows(
            &self.model,
            &mut self.z_scratch,
            self.probe32.as_mut(),
            &mut self.stats,
            &self.seg_rows,
            probe_len,
        )
    }

    /// Freeze the open segment into a [`SegmentJob`]. Rows, provenance
    /// and the degraded flag are evaluated exactly where the eager
    /// [`close_segment`](NodeState::close_segment) evaluates them, so a
    /// job scored later yields the same verdict bits.
    fn take_open_segment(&mut self) -> SegmentJob {
        let rows = std::mem::take(&mut self.seg_rows);
        let kinds = std::mem::take(&mut self.seg_row_kinds);
        // Any tainted row poisons the whole segment: scoring is
        // segment-local (positional encoding + baseline), so no verdict
        // in it can claim batch equivalence.
        let degraded = self.resync_degraded || kinds.iter().any(|&k| k != RowKind::Clean);
        self.resync_degraded = false;
        self.probe_pending = false;
        SegmentJob {
            start: self.seg_start,
            rows,
            kinds,
            matched: self.matched.take(),
            degraded,
        }
    }

    /// Score the finished segment through its matched shared model and
    /// feed the smoothing → k-sigma chain; returns finalized verdicts.
    /// (Eager path — with `batch_scoring` the same three stages run
    /// split across the queue and the shard's scoring phase.)
    fn close_segment(&mut self) -> Vec<Verdict> {
        let mut job = self.take_open_segment();
        let probe_len = self.model.cfg.match_period.clamp(1, job.rows.len());
        let cluster = match job.matched.take() {
            Some(c) => c,
            // Segment shorter than the match period: probe is the whole
            // segment, matched at close like the batch code.
            None => match_probe_rows(
                &self.model,
                &mut self.z_scratch,
                self.probe32.as_mut(),
                &mut self.stats,
                &job.rows,
                probe_len,
            ),
        };
        let t0 = Instant::now();
        let data = Matrix::from_rows(&job.rows);
        // Invariant: `Engine::try_new` rejects models without shared
        // experts, so the clamped index is always in range.
        let model = &self.model.shared_models[cluster.min(self.model.shared_models.len() - 1)];
        let mut seg_scores = match self.precision {
            ScoringPrecision::F64 => model.score_series(&data),
            ScoringPrecision::F32 => model.score_series_f32(&data),
        };
        normalize_segment_scores(&mut seg_scores, probe_len);
        let elapsed = t0.elapsed().as_secs_f64();
        self.apply_scored(job, cluster, seg_scores, elapsed)
    }

    /// Push one scored segment through the smoothing → k-sigma chain;
    /// returns finalized verdicts. `cost_share` is this segment's share
    /// of scoring wall time (its own elapsed when eager, the batch's
    /// elapsed divided by occupancy when batched), attributed to the
    /// same stats and histograms either way so the per-segment latency
    /// distributions stay comparable.
    fn apply_scored(
        &mut self,
        job: SegmentJob,
        cluster: usize,
        scores: Vec<f64>,
        cost_share: f64,
    ) -> Vec<Verdict> {
        let mut out = Vec::new();
        for (k, score) in scores.into_iter().enumerate() {
            let suppress = job.kinds[k] == RowKind::Synthesized;
            self.pending.push_back(PendingScore {
                step: job.start + k,
                score,
                cluster,
                suppress,
                degraded: job.degraded,
            });
            for sv in self.smoother.push(score) {
                let flagged = self.detector.push(sv);
                if let Some(v) = self.emit_verdict(flagged) {
                    out.push(v);
                }
            }
        }
        let n_rows = job.rows.len();
        self.stats.score_seconds += cost_share;
        let nm = node_metrics();
        nm.score_seconds.observe(cost_share);
        if n_rows > 0 {
            nm.point_seconds
                .observe_n(cost_share / n_rows as f64, n_rows as u64);
        }
        out
    }

    /// Any probe matching deferred by `batch_scoring`? (Queued jobs that
    /// closed before reaching `match_period` rows, plus the open
    /// segment's pending probe.)
    fn pending_probe_count(&self) -> u64 {
        self.probe_pending as u64 + self.jobs.iter().filter(|j| j.matched.is_none()).count() as u64
    }

    /// Deferred work for the shard's scoring phase to pick up?
    fn has_deferred_work(&self) -> bool {
        !self.jobs.is_empty() || self.probe_pending
    }

    /// Resolve every deferred probe match: the open segment's pending
    /// probe and any queued job that closed unmatched. Matching reads
    /// only frozen row values, so resolving here instead of at the
    /// eager trigger point returns the identical cluster.
    fn resolve_probes(&mut self) {
        if self.probe_pending {
            self.probe_pending = false;
            if !self.seg_rows.is_empty() {
                let plen = self.model.cfg.match_period.clamp(1, self.seg_rows.len());
                self.matched = Some(match_probe_rows(
                    &self.model,
                    &mut self.z_scratch,
                    self.probe32.as_mut(),
                    &mut self.stats,
                    &self.seg_rows,
                    plen,
                ));
            }
        }
        let period = self.model.cfg.match_period;
        for job in self.jobs.iter_mut() {
            if job.matched.is_none() && !job.rows.is_empty() {
                job.matched = Some(match_probe_rows(
                    &self.model,
                    &mut self.z_scratch,
                    self.probe32.as_mut(),
                    &mut self.stats,
                    &job.rows,
                    period.clamp(1, job.rows.len()),
                ));
            }
        }
    }

    /// Single-node drain (flush/blackout/quarantine paths): resolve
    /// probes, score every queued job — still batched per shared model —
    /// and apply in FIFO order.
    fn drain_jobs(&mut self) -> Vec<Verdict> {
        if self.jobs.is_empty() && !self.probe_pending {
            return Vec::new();
        }
        self.resolve_probes();
        let jobs: Vec<SegmentJob> = std::mem::take(&mut self.jobs).into();
        let mut out = Vec::new();
        for (job, cluster, scores, share) in score_resolved_jobs(&self.model, jobs, self.precision)
        {
            out.extend(self.apply_scored(job, cluster, scores, share));
        }
        out
    }

    fn emit_verdict(&mut self, anomalous: bool) -> Option<Verdict> {
        // Invariant: every score entering the smoother pushed a pending
        // entry first, so one is always waiting here.
        let p = self.pending.pop_front()?;
        if p.suppress {
            self.faults.suppressed_verdicts += 1;
            return None;
        }
        self.stats.n_points += 1;
        let kind = if p.degraded {
            self.faults.degraded_verdicts += 1;
            VerdictKind::Degraded
        } else {
            VerdictKind::Ok
        };
        Some(Verdict {
            node: self.node,
            step: p.step,
            score: p.score,
            anomalous,
            cluster: p.cluster,
            kind,
            precision: self.precision,
        })
    }

    /// Capture every field that can influence a future verdict bit.
    /// Configuration-derived fields (widths, watch masks, bounds) are
    /// rebuilt from the model and [`EngineConfig`] at restore.
    fn snapshot(&self) -> NodeSnap {
        NodeSnap {
            node: self.node,
            next_step: self.next_step,
            next_row: self.next_row,
            pre: self.pre.state(),
            cuts: self.cuts.iter().copied().collect(),
            seg_start: self.seg_start,
            seg_rows: self.seg_rows.clone(),
            seg_row_kinds: kinds_to_ordinals(&self.seg_row_kinds),
            matched: self.matched,
            jobs: self
                .jobs
                .iter()
                .map(|j| JobSnap {
                    start: j.start,
                    rows: j.rows.clone(),
                    kinds: kinds_to_ordinals(&j.kinds),
                    matched: j.matched,
                    degraded: j.degraded,
                })
                .collect(),
            probe_pending: self.probe_pending,
            smoother: self.smoother.snapshot(),
            detector: self.detector.snapshot(),
            pending: self
                .pending
                .iter()
                .map(|p| PendingSnap {
                    step: p.step,
                    score: p.score,
                    cluster: p.cluster,
                    suppress: p.suppress,
                    degraded: p.degraded,
                })
                .collect(),
            ahead: self.ahead.values().cloned().collect(),
            row_kinds: self.row_kinds.iter().map(|k| k.to_ordinal()).collect(),
            resync_degraded: self.resync_degraded,
            prev_raw: self.prev_raw.clone(),
            runs: self.runs.clone(),
            stats: self.stats,
            faults: self.faults,
        }
    }

    /// Rebuild a node from its snapshot; the restored state continues
    /// bit-identically to the original. Shape-validated against the
    /// model so a mismatched snapshot errors instead of panicking later.
    fn restore(
        model: Arc<NodeSentry>,
        cfg: &EngineConfig,
        s: &NodeSnap,
    ) -> Result<Self, SnapshotError> {
        let mut st = NodeState::new(model, s.node, cfg);
        if s.prev_raw.len() != st.width || s.runs.len() != st.width {
            return Err(SnapshotError::Decode(
                "stuck-watch state width mismatch".into(),
            ));
        }
        if s.seg_row_kinds.len() != s.seg_rows.len() || s.row_kinds.len() < s.pre.buf.len() {
            return Err(SnapshotError::Decode(
                "row provenance out of sync with rows".into(),
            ));
        }
        st.next_step = s.next_step;
        st.next_row = s.next_row;
        st.pre = StreamingPreprocessor::restore(&st.model.preprocessor, &s.pre)?;
        st.cuts = s.cuts.iter().copied().collect();
        st.seg_start = s.seg_start;
        st.seg_rows = s.seg_rows.clone();
        st.seg_row_kinds = kinds_from_ordinals(&s.seg_row_kinds)?;
        st.matched = s.matched;
        st.jobs = s
            .jobs
            .iter()
            .map(|j| -> Result<SegmentJob, SnapshotError> {
                let kinds = kinds_from_ordinals(&j.kinds)?;
                if kinds.len() != j.rows.len() {
                    return Err(SnapshotError::Decode(
                        "job provenance out of sync with rows".into(),
                    ));
                }
                Ok(SegmentJob {
                    start: j.start,
                    rows: j.rows.clone(),
                    kinds,
                    matched: j.matched,
                    degraded: j.degraded,
                })
            })
            .collect::<Result<VecDeque<_>, _>>()?;
        st.probe_pending = s.probe_pending;
        st.smoother = StreamingSmoother::restore(cfg.smooth_window, &s.smoother);
        st.detector = StreamingKSigma::restore(st.model.cfg.threshold, &s.detector);
        st.pending = s
            .pending
            .iter()
            .map(|p| PendingScore {
                step: p.step,
                score: p.score,
                cluster: p.cluster,
                suppress: p.suppress,
                degraded: p.degraded,
            })
            .collect();
        st.ahead = s.ahead.iter().map(|t| (t.step, t.clone())).collect();
        st.row_kinds = kinds_from_ordinals(&s.row_kinds)?.into();
        st.resync_degraded = s.resync_degraded;
        st.prev_raw = s.prev_raw.clone();
        st.runs = s.runs.clone();
        st.stats = s.stats;
        st.faults = s.faults;
        Ok(st)
    }
}

// ---------------------------------------------------------------------
// Sharded engine
// ---------------------------------------------------------------------

/// Engine configuration.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// First test step; steps before it are preprocessing context.
    pub split: usize,
    /// Worker shards; nodes are routed by `node % n_shards`.
    pub n_shards: usize,
    /// Bounded per-shard queue depth (tick batches). Ingest blocks when a
    /// shard is this far behind — backpressure instead of unbounded RAM.
    pub queue_depth: usize,
    /// Smoothing window fed to the k-sigma detector.
    ///
    /// Use `1` to disable smoothing (equivalent to running batch
    /// `ksigma_detect` on raw scores), or the model's own
    /// `cfg.smooth_window` to reproduce [`NodeSentry::detect_node`]
    /// exactly.
    pub smooth_window: usize,
    /// Maximum step span the per-node reorder buffer absorbs before the
    /// oldest missing step is declared lost and synthesized.
    pub reorder_bound: usize,
    /// Gap length (in steps) treated as a node blackout: the node's state
    /// is flushed and resynced at the rejoin step instead of synthesizing
    /// the whole gap.
    pub blackout_gap: usize,
    /// Exact-repeat run length that confirms a stuck sensor.
    pub stuck_run: usize,
    /// Defer segment scoring and probe matching to a per-batch scoring
    /// phase that stacks all ready work across the shard's nodes into
    /// batched forwards (`SharedModel::score_series_batch`). Verdicts
    /// are bit-identical to the eager per-segment path
    /// (`tests/batch_equivalence.rs`); only the work schedule changes.
    pub batch_scoring: bool,
    /// Scoring tier (bit-critical). [`ScoringPrecision::F64`] (default)
    /// keeps streaming verdicts bit-identical to batch scoring.
    /// [`ScoringPrecision::F32`] routes segment scoring and probe
    /// matching through prebaked f32 twins of the model — faster, with
    /// an accuracy delta measured by the deployment bench rather than
    /// pinned. Every [`Verdict`] is tagged with the tier that produced
    /// it, snapshots refuse to restore across tiers, and wire clients
    /// can announce the tier they expect on Hello.
    pub scoring_precision: ScoringPrecision,
    /// Chaos hook: the worker panics while ingesting this `(node, step)`
    /// tick, exercising the catch_unwind + quarantine path. Testing only.
    pub panic_at: Option<(usize, usize)>,
}

impl EngineConfig {
    pub fn new(split: usize) -> Self {
        EngineConfig {
            split,
            n_shards: 2,
            queue_depth: 64,
            smooth_window: 1,
            reorder_bound: 32,
            blackout_gap: 240,
            stuck_run: 8,
            batch_scoring: true,
            scoring_precision: ScoringPrecision::F64,
            panic_at: None,
        }
    }
}

/// Everything a finished engine run produced.
pub struct EngineReport {
    /// All verdicts, sorted by `(node, step)`.
    pub verdicts: Vec<Verdict>,
    /// Merged deployment-cost counters across shards (carried residuals
    /// from restored snapshots included).
    pub stats: StreamStats,
    /// Merged fault counters across shards (all zeros on a clean feed).
    pub faults: FaultCounters,
    /// Wall-clock seconds from engine start to finish.
    pub wall_seconds: f64,
    /// Effective worker shard count the engine actually ran with (after
    /// the `max(1)` clamp) — report this, not the requested config.
    pub n_shards: usize,
    /// Per-shard cost counters in shard order — the load-balance view
    /// (`per_shard[i].n_ticks` is shard `i`'s tick share).
    pub per_shard: Vec<StreamStats>,
}

/// Everything one shard hands back for a checkpoint.
struct ShardCheckpoint {
    nodes: Vec<NodeSnap>,
    quarantined: Vec<usize>,
    /// Verdicts finalized before the cut, drained from the worker.
    verdicts: Vec<Verdict>,
    /// Residual counters of states no longer in the map (quarantined).
    stats: StreamStats,
    faults: FaultCounters,
}

/// What flows down a shard's queue: tick batches, interleaved with
/// checkpoint barriers. The channel is FIFO, so a checkpoint cuts at a
/// well-defined batch boundary — every batch ingested before
/// [`Engine::checkpoint`] is reflected in the snapshot, everything after
/// belongs to the tail.
enum ShardMsg {
    Batch(Vec<Tick>),
    Checkpoint(mpsc::Sender<ShardCheckpoint>),
}

/// One engine checkpoint: the serialized state plus the verdicts the cut
/// finalized.
pub struct EngineCheckpoint {
    /// Decoded snapshot (already validated — it was just built).
    pub snapshot: EngineSnapshot,
    /// The snapshot's wire encoding ([`EngineSnapshot::to_bytes`]),
    /// produced here so callers persist exactly what was measured.
    pub bytes: Vec<u8>,
    /// Verdicts finalized before the cut, sorted by `(node, step)`.
    /// They are *drained*: a later [`Engine::finish`] returns only
    /// post-checkpoint verdicts, so prefix + tail is exactly the
    /// uninterrupted verdict set.
    pub verdicts: Vec<Verdict>,
}

/// Sharded concurrent streaming engine over a trained [`NodeSentry`].
///
/// ```ignore
/// let mut engine = Engine::new(Arc::new(model), EngineConfig::new(split));
/// for batch in tick_batches {
///     engine.ingest(batch)?;
/// }
/// let report = engine.finish();
/// ```
pub struct Engine {
    senders: Vec<mpsc::SyncSender<ShardMsg>>,
    #[allow(clippy::type_complexity)]
    workers: Vec<std::thread::JoinHandle<(Vec<Verdict>, StreamStats, FaultCounters)>>,
    n_shards: usize,
    cfg: EngineConfig,
    model_fingerprint: u64,
    /// Residuals inherited from a restored snapshot: counters of nodes
    /// that were already dead (quarantined/flushed) at checkpoint time.
    /// Merged into [`Engine::finish`] and re-carried by later
    /// checkpoints.
    carried_stats: StreamStats,
    carried_faults: FaultCounters,
    started: Instant,
    /// Per-shard in-flight batch gauges (incremented on send, decremented
    /// by the worker on receive); no-ops while ns-obs is disabled.
    queue_gauges: Vec<ns_obs::metrics::Gauge>,
    ingest_hist: ns_obs::metrics::Histogram,
}

impl Engine {
    /// Build the engine or panic on an unusable model / spawn failure.
    /// Prefer [`Engine::try_new`] where the caller can recover.
    pub fn new(model: Arc<NodeSentry>, cfg: EngineConfig) -> Self {
        Self::try_new(model, cfg).expect("engine construction")
    }

    pub fn try_new(model: Arc<NodeSentry>, cfg: EngineConfig) -> Result<Self, EngineError> {
        Self::spawn(
            model,
            cfg,
            Vec::new(),
            StreamStats::default(),
            FaultCounters::default(),
        )
    }

    /// Spawn the worker pool, seeding shard `i` with `init[i]` (restored
    /// node states + quarantined ids) when provided.
    fn spawn(
        model: Arc<NodeSentry>,
        cfg: EngineConfig,
        mut init: Vec<(FxHashMap<usize, NodeState>, FxHashSet<usize>)>,
        carried_stats: StreamStats,
        carried_faults: FaultCounters,
    ) -> Result<Self, EngineError> {
        if model.shared_models.is_empty() {
            return Err(EngineError::NoSharedModels);
        }
        let n_shards = cfg.n_shards.max(1);
        init.resize_with(n_shards, Default::default);
        let model_fingerprint = model.fingerprint();
        status::on_engine_spawn(model_fingerprint, n_shards, &cfg);
        metrics::install_pool_stats();
        // Oversubscription clamp: every shard worker dispatches its
        // kernels at `rayon::current_num_threads()` width, so an
        // unclamped engine would put `n_shards × width` runnable threads
        // on `cores` hardware threads. Cap each worker's kernel width to
        // its fair share. Results are unaffected — every parallel
        // combinator is bitwise deterministic in the width — only
        // scheduling changes.
        let kernel_cap = {
            let cores = std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1);
            let width = rayon::current_num_threads();
            let cap = (cores / n_shards).max(1);
            if n_shards.saturating_mul(width) > cores && cap < width {
                events::record(
                    EventKind::PoolClamp,
                    "kernel_width",
                    -1,
                    -1,
                    width as u64,
                    cap as u64,
                );
                Some(cap)
            } else {
                None
            }
        };
        let mut senders = Vec::with_capacity(n_shards);
        let mut workers = Vec::with_capacity(n_shards);
        let mut queue_gauges = Vec::with_capacity(n_shards);
        for (shard, (states, quarantined)) in init.drain(..).enumerate() {
            let (tx, rx) = mpsc::sync_channel::<ShardMsg>(cfg.queue_depth.max(1));
            let model = Arc::clone(&model);
            // Registration is idempotent: this resolves to the same
            // underlying gauge the worker's `ShardMetrics` decrements.
            queue_gauges.push(ns_obs::metrics::global().gauge(
                metrics::QUEUE_DEPTH,
                "Tick batches waiting in a shard's bounded queue.",
                &[("shard", &shard.to_string())],
            ));
            let handle = std::thread::Builder::new()
                .name(format!("ns-stream-{shard}"))
                .spawn(move || worker_loop(shard, rx, model, cfg, states, quarantined, kernel_cap))
                .map_err(|e| EngineError::SpawnFailed(e.to_string()))?;
            senders.push(tx);
            workers.push(handle);
        }
        Ok(Engine {
            senders,
            workers,
            n_shards,
            cfg,
            model_fingerprint,
            carried_stats,
            carried_faults,
            started: Instant::now(),
            queue_gauges,
            ingest_hist: ingest_seconds(),
        })
    }

    /// Rebuild an engine from a snapshot; replaying the remaining ticks
    /// produces verdicts bit-identical to the uninterrupted run. The
    /// snapshot must come from the same trained model (fingerprint) and
    /// agree on the bit-critical config fields (`split`,
    /// `smooth_window`); `cfg.n_shards` is free — node states are
    /// re-routed by `node % n_shards`, which is how live resharding and
    /// shard rebalancing work.
    pub fn restore(
        model: Arc<NodeSentry>,
        cfg: EngineConfig,
        snap: &EngineSnapshot,
    ) -> Result<Self, EngineError> {
        let t0 = Instant::now();
        let fp = model.fingerprint();
        if snap.model_fingerprint != fp {
            return Err(SnapshotError::ModelMismatch {
                snapshot: snap.model_fingerprint,
                model: fp,
            }
            .into());
        }
        if snap.split != cfg.split {
            return Err(SnapshotError::ConfigMismatch {
                field: "split",
                snapshot: snap.split as u64,
                config: cfg.split as u64,
            }
            .into());
        }
        if snap.smooth_window != cfg.smooth_window {
            return Err(SnapshotError::ConfigMismatch {
                field: "smooth_window",
                snapshot: snap.smooth_window as u64,
                config: cfg.smooth_window as u64,
            }
            .into());
        }
        if snap.scoring_precision != cfg.scoring_precision {
            // The tiers produce different score bits: resuming a run
            // across them would splice two incompatible score streams.
            return Err(SnapshotError::ConfigMismatch {
                field: "scoring_precision",
                snapshot: snap.scoring_precision.to_ordinal() as u64,
                config: cfg.scoring_precision.to_ordinal() as u64,
            }
            .into());
        }
        let n_shards = cfg.n_shards.max(1);
        let mut init: Vec<(FxHashMap<usize, NodeState>, FxHashSet<usize>)> = Vec::new();
        init.resize_with(n_shards, Default::default);
        for ns in &snap.nodes {
            let state = NodeState::restore(Arc::clone(&model), &cfg, ns)?;
            init[ns.node % n_shards].0.insert(ns.node, state);
        }
        for &q in &snap.quarantined {
            init[q % n_shards].1.insert(q);
        }
        let engine = Self::spawn(model, cfg, init, snap.carried_stats, snap.carried_faults)?;
        snapshot_metrics()
            .restore_seconds
            .observe(t0.elapsed().as_secs_f64());
        status::engine_status()
            .restores
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        events::record(
            EventKind::Restore,
            "",
            -1,
            -1,
            snap.nodes.len() as u64,
            n_shards as u64,
        );
        if snap.n_shards != n_shards {
            events::record(
                EventKind::Reshard,
                "",
                -1,
                -1,
                snap.n_shards as u64,
                n_shards as u64,
            );
        }
        Ok(engine)
    }

    /// [`Engine::restore`] straight from wire bytes.
    pub fn restore_bytes(
        model: Arc<NodeSentry>,
        cfg: EngineConfig,
        bytes: &[u8],
    ) -> Result<Self, EngineError> {
        let snap = EngineSnapshot::from_bytes(bytes)?;
        Self::restore(model, cfg, &snap)
    }

    /// Consistent checkpoint at the current batch boundary.
    ///
    /// A barrier message rides each shard's FIFO queue behind every
    /// batch ingested so far, so the snapshot reflects exactly those
    /// batches. Verdicts finalized before the cut are drained into the
    /// returned [`EngineCheckpoint`] — the engine keeps running, and a
    /// later [`finish`](Engine::finish) (or next checkpoint) yields only
    /// what came after, making prefix + tail equal the uninterrupted
    /// verdict set.
    pub fn checkpoint(&self) -> Result<EngineCheckpoint, EngineError> {
        let res = self.checkpoint_inner();
        match &res {
            Ok(ck) => {
                status::note_checkpoint(true, ck.bytes.len());
                events::record(
                    EventKind::Checkpoint,
                    "ok",
                    -1,
                    -1,
                    ck.bytes.len() as u64,
                    ck.snapshot.nodes.len() as u64,
                );
            }
            Err(e) => {
                status::note_checkpoint(false, 0);
                events::record(EventKind::Checkpoint, "failed", -1, -1, 0, 0);
                if ns_obs::incident::is_armed() {
                    ns_obs::incident::capture(
                        "checkpoint_failure",
                        &format!("engine checkpoint failed: {e}"),
                    );
                }
            }
        }
        res
    }

    fn checkpoint_inner(&self) -> Result<EngineCheckpoint, EngineError> {
        let t0 = Instant::now();
        let (tx, rx) = mpsc::channel::<ShardCheckpoint>();
        for (shard, sender) in self.senders.iter().enumerate() {
            sender
                .send(ShardMsg::Checkpoint(tx.clone()))
                .map_err(|_| EngineError::ShardClosed { shard })?;
        }
        drop(tx);
        let parts: Vec<ShardCheckpoint> = rx.iter().collect();
        if parts.len() != self.n_shards {
            return Err(EngineError::CheckpointIncomplete {
                got: parts.len(),
                want: self.n_shards,
            });
        }
        let mut nodes = Vec::new();
        let mut quarantined = Vec::new();
        let mut verdicts = Vec::new();
        let mut carried_stats = self.carried_stats;
        let mut carried_faults = self.carried_faults;
        for part in parts {
            nodes.extend(part.nodes);
            quarantined.extend(part.quarantined);
            verdicts.extend(part.verdicts);
            carried_stats.merge(&part.stats);
            carried_faults.merge(&part.faults);
        }
        nodes.sort_by_key(|n| n.node);
        quarantined.sort_unstable();
        verdicts.sort_by_key(|v| (v.node, v.step));
        let snapshot = EngineSnapshot {
            model_fingerprint: self.model_fingerprint,
            split: self.cfg.split,
            smooth_window: self.cfg.smooth_window,
            scoring_precision: self.cfg.scoring_precision,
            n_shards: self.n_shards,
            nodes,
            quarantined,
            carried_stats,
            carried_faults,
        };
        let bytes = snapshot.to_bytes();
        let sm = snapshot_metrics();
        sm.snapshot_bytes.observe(bytes.len() as f64);
        sm.checkpoint_seconds.observe(t0.elapsed().as_secs_f64());
        Ok(EngineCheckpoint {
            snapshot,
            bytes,
            verdicts,
        })
    }

    /// Route a batch of ticks to their shards. Blocks when a shard's
    /// queue is full; errors if a shard has shut down.
    pub fn ingest(&self, batch: Vec<Tick>) -> Result<(), EngineError> {
        let t0 = Instant::now();
        let mut per_shard: Vec<Vec<Tick>> = vec![Vec::new(); self.n_shards];
        for tick in batch {
            per_shard[tick.node % self.n_shards].push(tick);
        }
        for (shard, ticks) in per_shard.into_iter().enumerate() {
            if !ticks.is_empty() {
                self.send_to(shard, ticks)?;
            }
        }
        self.ingest_hist.observe(t0.elapsed().as_secs_f64());
        Ok(())
    }

    /// The scoring tier this engine runs ([`EngineConfig::scoring_precision`]);
    /// the ingest server checks announced Hello precisions against it.
    pub fn scoring_precision(&self) -> ScoringPrecision {
        self.cfg.scoring_precision
    }

    /// Convenience for single-tick ingestion.
    pub fn ingest_tick(&self, tick: Tick) -> Result<(), EngineError> {
        let t0 = Instant::now();
        let shard = tick.node % self.n_shards;
        self.send_to(shard, vec![tick])?;
        self.ingest_hist.observe(t0.elapsed().as_secs_f64());
        Ok(())
    }

    /// Send one batch to a shard, keeping its queue-depth gauge honest:
    /// incremented before the (possibly blocking) send so the gauge counts
    /// in-flight batches and never goes negative, rolled back on failure.
    fn send_to(&self, shard: usize, ticks: Vec<Tick>) -> Result<(), EngineError> {
        self.queue_gauges[shard].add(1);
        self.senders[shard]
            .send(ShardMsg::Batch(ticks))
            .map_err(|_| {
                self.queue_gauges[shard].sub(1);
                EngineError::ShardClosed { shard }
            })
    }

    /// Serve the process-global ns-obs registry — every live engine
    /// metric (see [`metrics`]) plus anything else the process registered
    /// — as a Prometheus `/metrics` endpoint on `addr` (e.g.
    /// `"127.0.0.1:9184"`). Call [`ns_obs::enable_all`] first or every
    /// series reads zero. The server runs on its own thread until the
    /// returned handle is dropped or shut down.
    pub fn serve_metrics(addr: &str) -> std::io::Result<ns_obs::exporter::MetricsServer> {
        ns_obs::exporter::serve(addr)
    }

    /// Close the stream: flush every node, join the workers, and return
    /// all verdicts plus cost statistics. A worker lost to a panic is
    /// recorded in [`FaultCounters::worker_crashes`] instead of
    /// propagating.
    pub fn finish(self) -> EngineReport {
        drop(self.senders);
        let mut verdicts = Vec::new();
        let mut stats = self.carried_stats;
        let mut faults = self.carried_faults;
        let mut per_shard = Vec::with_capacity(self.workers.len());
        for handle in self.workers {
            match handle.join() {
                Ok((v, s, f)) => {
                    verdicts.extend(v);
                    stats.merge(&s);
                    faults.merge(&f);
                    per_shard.push(s);
                }
                Err(_) => {
                    faults.worker_crashes += 1;
                    per_shard.push(StreamStats::default());
                }
            }
        }
        verdicts.sort_by_key(|v| (v.node, v.step));
        EngineReport {
            verdicts,
            stats,
            faults,
            wall_seconds: self.started.elapsed().as_secs_f64(),
            n_shards: self.n_shards,
            per_shard,
        }
    }
}

/// One probe feature-extraction + library-match cycle over `rows`'
/// leading `probe_len` rows. Free function over disjoint [`NodeState`]
/// fields so it can run against the open segment or a queued job's rows
/// without aliasing `self`. Uses the scratch-based matcher: warm calls
/// allocate nothing past feature extraction.
fn match_probe_rows(
    model: &NodeSentry,
    z_scratch: &mut Vec<f64>,
    probe32: Option<&mut ProbeScratch32>,
    stats: &mut StreamStats,
    rows: &[Vec<f64>],
    probe_len: usize,
) -> usize {
    let t0 = Instant::now();
    let probe = Matrix::from_rows(&rows[..probe_len.min(rows.len())]);
    let feat = coarse::segment_features(&model.cfg.coarse, &probe);
    // F32 tier: standardize + early-abandon scan through the baked f32
    // library. The distance comes back widened to f64, so downstream
    // radius semantics are tier-independent.
    let (cluster, _dist) = match probe32 {
        Some(p) => p.lib.match_pattern_into(&feat, &mut p.scratch),
        None => model.cluster_model.match_pattern_into(&feat, z_scratch),
    };
    let elapsed = t0.elapsed().as_secs_f64();
    stats.match_seconds += elapsed;
    stats.n_matches += 1;
    node_metrics().match_seconds.observe(elapsed);
    cluster
}

/// Per-segment baseline normalization (batch `score_node`): divide by
/// the probe head's median, clamped to at least 1.
fn normalize_segment_scores(scores: &mut [f64], probe_len: usize) {
    let baseline = {
        let mut head: Vec<f64> = scores[..probe_len].to_vec();
        head.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        ns_linalg::stats::quantile_sorted(&head, 0.5).max(1.0)
    };
    for v in scores.iter_mut() {
        *v /= baseline;
    }
}

/// Score a FIFO run of probe-resolved jobs: group them by (clamped)
/// matched cluster, run one batched forward per shared model
/// (`score_series_batch` — bit-identical per series to `score_series`),
/// normalize each job against its own probe baseline, and return
/// `(job, cluster, scores, cost share)` in the original order. The
/// cost share is the group's scoring wall time divided by its
/// occupancy, so per-segment latency histograms stay comparable with
/// the eager path.
fn score_resolved_jobs(
    model: &NodeSentry,
    jobs: Vec<SegmentJob>,
    precision: ScoringPrecision,
) -> Vec<(SegmentJob, usize, Vec<f64>, f64)> {
    let n_models = model.shared_models.len();
    let mut groups: FxHashMap<usize, Vec<usize>> = FxHashMap::default();
    for (i, job) in jobs.iter().enumerate() {
        // Invariant: `resolve_probes` ran first, so `matched` is set for
        // every non-empty job (and empty jobs are never queued).
        let clamped = job.matched.unwrap_or(0).min(n_models.saturating_sub(1));
        groups.entry(clamped).or_default().push(i);
    }
    let mut scored: Vec<Option<(Vec<f64>, f64)>> = (0..jobs.len()).map(|_| None).collect();
    let mut group_ids: Vec<usize> = groups.keys().copied().collect();
    group_ids.sort_unstable();
    let nm = node_metrics();
    for g in group_ids {
        let idxs = &groups[&g];
        let t0 = Instant::now();
        let mats: Vec<Matrix> = idxs
            .iter()
            .map(|&i| Matrix::from_rows(&jobs[i].rows))
            .collect();
        let refs: Vec<&Matrix> = mats.iter().collect();
        let many = match precision {
            ScoringPrecision::F64 => model.shared_models[g].score_series_batch(&refs),
            ScoringPrecision::F32 => model.shared_models[g].score_series_batch_f32(&refs),
        };
        let share = t0.elapsed().as_secs_f64() / idxs.len() as f64;
        nm.batch_segments.observe(idxs.len() as f64);
        for (&i, mut scores) in idxs.iter().zip(many) {
            let probe_len = model.cfg.match_period.clamp(1, jobs[i].rows.len());
            normalize_segment_scores(&mut scores, probe_len);
            scored[i] = Some((scores, share));
        }
    }
    jobs.into_iter()
        .zip(scored)
        .map(|(job, s)| {
            let cluster = job.matched.unwrap_or(0);
            let (scores, share) = s.unwrap_or_default();
            (job, cluster, scores, share)
        })
        .collect()
}

/// Cross-node batched scoring phase: after a tick batch lands, collect
/// every deferred probe and queued segment across the shard's nodes,
/// resolve the probes, score all segments through per-cluster batched
/// forwards, and fan the verdicts back out per node. Nodes are visited
/// in ascending id and each node's jobs in FIFO order, so every node's
/// smoother/detector chain sees exactly the eager sequence.
fn scoring_phase(
    states: &mut FxHashMap<usize, NodeState>,
    verdicts: &mut Vec<Verdict>,
    precision: ScoringPrecision,
) {
    let mut nodes: Vec<usize> = states
        .iter()
        .filter(|(_, s)| s.has_deferred_work())
        .map(|(&n, _)| n)
        .collect();
    if nodes.is_empty() {
        return;
    }
    nodes.sort_unstable();
    let mut owners: Vec<usize> = Vec::new();
    let mut jobs: Vec<SegmentJob> = Vec::new();
    let mut n_probes = 0u64;
    let mut model = None;
    for &n in &nodes {
        // Invariant: ids came out of the map above.
        let Some(state) = states.get_mut(&n) else {
            continue;
        };
        n_probes += state.pending_probe_count();
        state.resolve_probes();
        for job in std::mem::take(&mut state.jobs) {
            owners.push(n);
            jobs.push(job);
        }
        model.get_or_insert_with(|| Arc::clone(&state.model));
    }
    if n_probes > 0 {
        node_metrics().batch_probes.observe(n_probes as f64);
    }
    let Some(model) = model else {
        return;
    };
    if jobs.is_empty() {
        return;
    }
    for (owner, (job, cluster, scores, share)) in owners
        .into_iter()
        .zip(score_resolved_jobs(&model, jobs, precision))
    {
        let Some(state) = states.get_mut(&owner) else {
            continue;
        };
        let vs = state.apply_scored(job, cluster, scores, share);
        meter_verdicts(&vs);
        verdicts.extend(vs);
    }
}

/// Count newly emitted verdicts into the live by-kind counters, append
/// them to the event journal, and feed the Degraded-spike trigger. Each
/// concern is gated on its own flag, so e.g. the journal works with
/// metrics off; with everything off this is three relaxed loads.
fn meter_verdicts(vs: &[Verdict]) {
    if vs.is_empty() {
        return;
    }
    let metrics_on = ns_obs::metrics::is_enabled();
    let events_on = events::is_enabled();
    let armed = ns_obs::incident::is_armed();
    if !metrics_on && !events_on && !armed {
        return;
    }
    let ok = vs.iter().filter(|v| v.kind == VerdictKind::Ok).count() as u64;
    if metrics_on {
        let nm = node_metrics();
        nm.verdicts_ok.add(ok);
        nm.verdicts_degraded.add(vs.len() as u64 - ok);
    }
    if events_on {
        for v in vs {
            let label = match v.kind {
                VerdictKind::Ok => "ok",
                _ => "degraded",
            };
            events::record(
                EventKind::Verdict,
                label,
                -1,
                v.node as i64,
                v.step as u64,
                v.score.to_bits(),
            );
        }
    }
    if armed {
        status::note_verdicts(ok, vs.len() as u64 - ok);
    }
}

fn worker_loop(
    shard: usize,
    rx: mpsc::Receiver<ShardMsg>,
    model: Arc<NodeSentry>,
    cfg: EngineConfig,
    mut states: FxHashMap<usize, NodeState>,
    mut quarantined: FxHashSet<usize>,
    kernel_cap: Option<usize>,
) -> (Vec<Verdict>, StreamStats, FaultCounters) {
    // Fair-share kernel width decided at spawn (see `Engine::spawn`);
    // thread-local, so it caps every parallel dispatch this worker makes
    // without touching other shards or the caller.
    if kernel_cap.is_some() {
        rayon::set_thread_parallelism_cap(kernel_cap);
    }
    let width = model.preprocessor.groups.len();
    let m = ShardMetrics::new(shard);
    let mut verdicts = Vec::new();
    let mut stats = StreamStats::default();
    let mut faults = FaultCounters::default();
    // Cumulative fault snapshot already bridged into the live counters.
    // Restored states start with their historical faults already counted
    // (bridged before the checkpoint), so baseline on them instead of
    // re-announcing old faults to the live registry.
    let mut published = FaultCounters::default();
    for state in states.values() {
        published.merge(&state.faults);
    }
    while let Ok(msg) = rx.recv() {
        let batch = match msg {
            ShardMsg::Batch(batch) => batch,
            ShardMsg::Checkpoint(reply) => {
                let mut node_ids: Vec<usize> = states.keys().copied().collect();
                node_ids.sort_unstable();
                let part = ShardCheckpoint {
                    nodes: node_ids
                        .iter()
                        .filter_map(|n| states.get(n))
                        .map(NodeState::snapshot)
                        .collect(),
                    quarantined: quarantined.iter().copied().collect(),
                    verdicts: std::mem::take(&mut verdicts),
                    stats,
                    faults,
                };
                // A vanished checkpoint caller is its problem, not the
                // stream's: keep serving ticks.
                let _ = reply.send(part);
                continue;
            }
        };
        m.queue_depth.sub(1);
        m.ticks_total.add(batch.len() as u64);
        for tick in batch {
            if quarantined.contains(&tick.node) {
                faults.quarantine_dropped += 1;
                continue;
            }
            if tick.values.len() != width {
                faults.malformed_ticks += 1;
                continue;
            }
            let state = states
                .entry(tick.node)
                .or_insert_with(|| NodeState::new(Arc::clone(&model), tick.node, &cfg));
            let chaos = cfg.panic_at == Some((tick.node, tick.step));
            // A panic in one node's pipeline must not take down the
            // shard: quarantine the node and keep serving the others.
            let outcome = catch_unwind(AssertUnwindSafe(|| {
                if chaos {
                    panic!(
                        "injected chaos panic at node {} step {}",
                        tick.node, tick.step
                    );
                }
                state.offer(&tick)
            }));
            match outcome {
                Ok(vs) => {
                    meter_verdicts(&vs);
                    verdicts.extend(vs);
                }
                Err(_) => {
                    if let Some(mut dead) = states.remove(&tick.node) {
                        // Jobs queued before the panic tick are complete
                        // segments the eager path had already scored;
                        // emit them so quarantine timing doesn't change
                        // the surviving verdict set. (Guarded: the state
                        // crossed a panic.)
                        if cfg.batch_scoring {
                            if let Ok(vs) = catch_unwind(AssertUnwindSafe(|| dead.drain_jobs())) {
                                meter_verdicts(&vs);
                                verdicts.extend(vs);
                            }
                        }
                        stats.merge(&dead.stats);
                        faults.merge(&dead.faults);
                    }
                    quarantined.insert(tick.node);
                    faults.quarantined_nodes += 1;
                    events::record(
                        EventKind::Quarantine,
                        "",
                        shard as i64,
                        tick.node as i64,
                        tick.step as u64,
                        quarantined.len() as u64,
                    );
                    if ns_obs::incident::is_armed() {
                        ns_obs::incident::capture(
                            "quarantine",
                            &format!(
                                "node {} quarantined after a panic at step {} (shard {shard})",
                                tick.node, tick.step
                            ),
                        );
                    }
                }
            }
        }
        if cfg.batch_scoring {
            scoring_phase(&mut states, &mut verdicts, cfg.scoring_precision);
        }
        publish_shard_metrics(&m, &states, &faults, &mut published);
    }
    // Channel closed: flush in node order so shard output is
    // deterministic.
    let mut nodes: Vec<usize> = states.keys().copied().collect();
    nodes.sort_unstable();
    for n in nodes {
        let Some(state) = states.get_mut(&n) else {
            continue;
        };
        match catch_unwind(AssertUnwindSafe(|| state.flush())) {
            Ok(vs) => {
                meter_verdicts(&vs);
                verdicts.extend(vs);
            }
            Err(_) => faults.quarantined_nodes += 1,
        }
        stats.merge(&state.stats);
        faults.merge(&state.faults);
    }
    // `faults` now holds every per-node counter merged in; one last
    // bridge pass (against an empty state map — their faults are already
    // in `faults`) brings the live view up to the final report.
    states.clear();
    publish_shard_metrics(&m, &states, &faults, &mut published);
    (verdicts, stats, faults)
}

/// Refresh the shard's live gauges and bridge fault-counter deltas into
/// the `ns_stream_faults_total` counters (and, per advancing class, the
/// event journal). A no-op (without touching any node state) while both
/// metrics and events are disabled.
fn publish_shard_metrics(
    m: &ShardMetrics,
    states: &FxHashMap<usize, NodeState>,
    shard_faults: &FaultCounters,
    published: &mut FaultCounters,
) {
    if !ns_obs::metrics::is_enabled() && !events::is_enabled() {
        return;
    }
    let mut occupancy = 0i64;
    let mut cur = *shard_faults;
    for state in states.values() {
        occupancy += state.ahead.len() as i64;
        cur.merge(&state.faults);
    }
    m.reorder_occupancy.set(occupancy);
    m.faults.publish(published, &cur);
    *published = cur;
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodesentry_core::preprocess::Preprocessor;

    /// Deterministic pseudo-random raw matrix with NaN holes.
    fn raw_with_holes(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Matrix::from_fn(rows, cols, |r, c| {
            let u = next() as f64 / u64::MAX as f64;
            if u < 0.04 {
                f64::NAN
            } else {
                ((r as f64 * 0.13 + c as f64).sin() + u * 0.3) * (1.0 + c as f64 * 0.2)
            }
        })
    }

    fn stream_rows(pp: &Preprocessor, raw: &Matrix) -> (Vec<Vec<f64>>, Vec<PreRow>) {
        let mut sp = StreamingPreprocessor::new(pp);
        let mut pre_rows: Vec<PreRow> = Vec::new();
        for r in 0..raw.rows() {
            pre_rows.extend(sp.push(raw.row(r)));
        }
        pre_rows.extend(sp.flush());
        let values = pre_rows.iter().map(|p| p.values.clone()).collect();
        (values, pre_rows)
    }

    fn assert_rows_match(rows: &[Vec<f64>], batch: &Matrix, tag: &str) {
        assert_eq!(rows.len(), batch.rows(), "{tag}");
        for (r, row) in rows.iter().enumerate() {
            for (c, v) in row.iter().enumerate() {
                assert_eq!(
                    v.to_bits(),
                    batch[(r, c)].to_bits(),
                    "{tag} row {r} col {c}: {v} vs {}",
                    batch[(r, c)]
                );
            }
        }
    }

    #[test]
    fn streaming_preprocessor_matches_batch_bitwise() {
        for seed in [3u64, 17, 99] {
            let raw = raw_with_holes(160, 6, seed);
            let groups = vec![0usize, 0, 1, 1, 2, 2];
            // Fit on the clean prefix so NaNs in the tail exercise the
            // streaming watermark rather than the fit path.
            let pp = Preprocessor::fit(&raw.slice_rows(0, 100), &groups, 0.995, 0.05);
            let batch = pp.transform(&raw);
            let (rows, _) = stream_rows(&pp, &raw);
            assert_rows_match(&rows, &batch, &format!("seed {seed}"));
        }
    }

    #[test]
    fn streaming_preprocessor_handles_all_nan_column() {
        let mut raw = raw_with_holes(60, 4, 5);
        for r in 0..60 {
            raw[(r, 2)] = f64::NAN;
        }
        let groups = vec![0usize, 1, 2, 3];
        let pp = Preprocessor::fit(&raw.slice_rows(0, 40), &groups, 0.995, 0.05);
        let batch = pp.transform(&raw);
        let (rows, _) = stream_rows(&pp, &raw);
        assert_rows_match(&rows, &batch, "all-nan column");
    }

    #[test]
    fn watermark_defers_rows_across_nan_runs() {
        let groups = vec![0usize, 1];
        let fit = Matrix::from_fn(50, 2, |r, c| (r + c) as f64 * 0.1);
        let pp = Preprocessor::fit(&fit, &groups, 0.9999, 0.05);
        let mut sp = StreamingPreprocessor::new(&pp);
        assert_eq!(sp.push(&[1.0, 1.0]).len(), 1);
        // NaN opens a gap: nothing can be emitted until it closes.
        assert_eq!(sp.push(&[f64::NAN, 2.0]).len(), 0);
        assert_eq!(sp.push(&[f64::NAN, 3.0]).len(), 0);
        // Observation closes the gap: all three deferred rows finalize.
        assert_eq!(sp.push(&[4.0, 4.0]).len(), 3);
        assert_eq!(sp.flush().len(), 0);
    }

    #[test]
    fn empty_stream_flush_is_empty() {
        let groups = vec![0usize, 1];
        let fit = Matrix::from_fn(50, 2, |r, c| (r + c) as f64 * 0.1);
        let pp = Preprocessor::fit(&fit, &groups, 0.9999, 0.05);
        let mut sp = StreamingPreprocessor::new(&pp);
        assert!(sp.flush().is_empty(), "no rows pushed, none emitted");
        // Flushing twice is also fine.
        assert!(sp.flush().is_empty());
        assert_eq!(sp.width(), 2);
    }

    #[test]
    fn all_nan_tail_resolved_by_flush_matches_batch() {
        let mut raw = raw_with_holes(80, 4, 11);
        // The last 7 rows lose every value: only flush's tail clamp can
        // resolve them.
        for r in 73..80 {
            for c in 0..4 {
                raw[(r, c)] = f64::NAN;
            }
        }
        let groups = vec![0usize, 0, 1, 1];
        let pp = Preprocessor::fit(&raw.slice_rows(0, 60), &groups, 0.995, 0.05);
        let batch = pp.transform(&raw);
        let mut sp = StreamingPreprocessor::new(&pp);
        let mut pre_rows: Vec<PreRow> = Vec::new();
        for r in 0..raw.rows() {
            pre_rows.extend(sp.push(raw.row(r)));
        }
        assert!(
            pre_rows.len() <= 73,
            "tail rows must wait for flush, got {}",
            pre_rows.len()
        );
        pre_rows.extend(sp.flush());
        let rows: Vec<Vec<f64>> = pre_rows.iter().map(|p| p.values.clone()).collect();
        assert_rows_match(&rows, &batch, "nan tail");
        // The all-NaN rows are annotated as such.
        for p in &pre_rows[73..] {
            assert!(p.all_nan, "tail rows arrived entirely NaN");
        }
        assert!(!pre_rows[0].all_nan);
    }

    #[test]
    fn counter_reset_column_pinned_against_batch() {
        // Column 0 is a cumulative counter (steady ramp), column 1 a
        // noisy gauge. The fit prefix is clean; the full series resets
        // the counter at row 90.
        let mut raw = Matrix::from_fn(140, 2, |r, c| {
            if c == 0 {
                r as f64 * 2.5
            } else {
                (r as f64 * 0.37).sin() * 3.0
            }
        });
        let groups = vec![0usize, 1];
        let pp = Preprocessor::fit(&raw.slice_rows(0, 80), &groups, 0.9999, 0.05);
        assert!(
            pp.counters[0],
            "ramp column must be detected as a counter (fit contract)"
        );
        assert!(pp.kept.contains(&0), "counter group survived pruning");
        for r in 90..140 {
            raw[(r, 0)] -= 90.0 * 2.5; // daemon restart: history lost
        }
        let batch = pp.transform(&raw);
        let (rows, pre_rows) = stream_rows(&pp, &raw);
        // The negative-rate row is still the exact batch value...
        assert_rows_match(&rows, &batch, "counter reset");
        // ...but the streaming path annotates it.
        let flagged: Vec<usize> = pre_rows
            .iter()
            .enumerate()
            .filter(|(_, p)| p.counter_reset)
            .map(|(r, _)| r)
            .collect();
        assert_eq!(flagged, vec![90], "exactly the reset row is flagged");
    }

    #[test]
    fn fault_counters_merge_and_report_clean() {
        let mut a = FaultCounters {
            late_ticks: 2,
            blackouts: 1,
            ..Default::default()
        };
        let b = FaultCounters {
            late_ticks: 3,
            degraded_verdicts: 7,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.late_ticks, 5);
        assert_eq!(a.blackouts, 1);
        assert_eq!(a.degraded_verdicts, 7);
        assert!(!a.is_clean());
        assert!(FaultCounters::default().is_clean());
        assert_eq!(a.rejected(), 5);
    }
}
