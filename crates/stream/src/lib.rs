//! `ns-stream` — sharded streaming deployment of a trained
//! [`NodeSentry`] detector.
//!
//! The batch API ([`NodeSentry::score_node`]) scores a node from its full
//! raw matrix after the fact. A monitoring deployment instead sees one
//! telemetry sample per node per sampling step and must emit verdicts as
//! the data arrives. This crate provides that path without changing the
//! answer: every stage of the batch pipeline is replayed incrementally —
//!
//! * [`StreamingPreprocessor`] applies a fitted
//!   [`Preprocessor`](nodesentry_core::Preprocessor) one raw row at a
//!   time. Linear NaN interpolation is anti-causal (a gap is filled once
//!   the next observation arrives), so rows are emitted behind a
//!   per-column resolution watermark and back-filled exactly as the batch
//!   code would.
//! * [`NodeState`] assembles preprocessed test rows into job segments at
//!   transition ticks, pattern-matches each segment's probe head against
//!   the cluster library as soon as `match_period` rows exist, scores the
//!   segment through the matched shared model at segment close (the
//!   positional encoding spans the whole segment, so scores finalize
//!   there), applies the per-segment baseline normalization, and feeds a
//!   node-level [`StreamingSmoother`] → [`StreamingKSigma`] chain.
//! * [`Engine`] shards nodes across a worker pool over bounded channels
//!   (ingest blocks when a shard falls behind — backpressure, not
//!   unbounded buffering) and returns every [`Verdict`] plus deployment
//!   cost statistics.
//!
//! `tests/stream_equivalence.rs` at the workspace root holds the whole
//! chain to `f64::to_bits` equality with batch scoring.

use nodesentry_core::coarse;
use nodesentry_core::{NodeSentry, Preprocessor};
use ns_eval::streaming::{StreamingKSigma, StreamingSmoother};
use ns_linalg::matrix::Matrix;
use rustc_hash::FxHashMap;
use std::collections::VecDeque;
use std::sync::mpsc;
use std::sync::Arc;
use std::time::Instant;

/// One telemetry sample for one node.
#[derive(Clone, Debug)]
pub struct Tick {
    pub node: usize,
    /// Global step index; per node, ticks must arrive starting at 0 with
    /// no gaps (the training span is needed for interpolation context and
    /// counter rates, exactly as batch scoring transforms the full
    /// horizon).
    pub step: usize,
    /// Raw metric values (may contain NaN for lost samples).
    pub values: Vec<f64>,
    /// Whether a job transition occurs at this step (from the scheduler).
    pub transition: bool,
}

/// One detection outcome for one node at one step of the test span.
#[derive(Clone, Debug, PartialEq)]
pub struct Verdict {
    pub node: usize,
    /// Global step index (`>= split`).
    pub step: usize,
    /// Normalized anomaly score — identical to the batch
    /// [`NodeSentry::score_node`] value at this step.
    pub score: f64,
    /// Dynamic-threshold decision on the smoothed score.
    pub anomalous: bool,
    /// Cluster whose shared model scored this step's segment.
    pub cluster: usize,
}

// ---------------------------------------------------------------------
// Streaming preprocessing
// ---------------------------------------------------------------------

/// Streaming replay of [`Preprocessor::transform`].
///
/// Raw rows go in one at a time; preprocessed rows come out behind a
/// resolution watermark: a row is emitted once every column's value is
/// final, i.e. once each column has a later (or equal) observation that
/// pins down the batch code's linear gap interpolation. [`flush`]
/// finalizes the tail, where the batch code extends the last observation
/// forward (and zeroes never-observed columns).
///
/// Memory is bounded by the longest missing-value run, not the stream
/// length.
///
/// [`flush`]: StreamingPreprocessor::flush
pub struct StreamingPreprocessor {
    groups: Vec<usize>,
    group_counts: Vec<usize>,
    counters: Vec<bool>,
    kept: Vec<usize>,
    mean: Vec<f64>,
    std: Vec<f64>,
    clip: f64,
    /// Raw rows not yet fully resolved; front is row `base`.
    buf: VecDeque<Vec<f64>>,
    base: usize,
    n_pushed: usize,
    /// Rows `[0, resolved)` have been emitted.
    resolved: usize,
    /// Per raw column: index of the latest observed (non-NaN) row.
    last_obs: Vec<Option<usize>>,
    /// Per raw column: value at `last_obs` (for gap and tail filling).
    last_val: Vec<f64>,
    /// Per aggregated counter column: previous cumulative value.
    rate_prev: Vec<f64>,
    any_row: bool,
}

impl StreamingPreprocessor {
    pub fn new(pre: &Preprocessor) -> Self {
        let n_groups = pre.counters.len();
        let mut group_counts = vec![0usize; n_groups];
        for &g in &pre.groups {
            group_counts[g] += 1;
        }
        StreamingPreprocessor {
            groups: pre.groups.clone(),
            group_counts,
            counters: pre.counters.clone(),
            kept: pre.kept.clone(),
            mean: pre.standardizer.mean.clone(),
            std: pre.standardizer.std.clone(),
            clip: pre.standardizer.clip,
            buf: VecDeque::new(),
            base: 0,
            n_pushed: 0,
            resolved: 0,
            last_obs: vec![None; pre.groups.len()],
            last_val: vec![0.0; pre.groups.len()],
            rate_prev: vec![0.0; n_groups],
            any_row: false,
        }
    }

    /// Ingest one raw row; returns the preprocessed rows that became
    /// final (in row order), possibly none during a missing-value run.
    pub fn push(&mut self, raw_row: &[f64]) -> Vec<Vec<f64>> {
        assert_eq!(raw_row.len(), self.groups.len(), "raw row width");
        let r = self.n_pushed;
        self.buf.push_back(raw_row.to_vec());
        self.n_pushed += 1;
        for (c, &v) in raw_row.iter().enumerate() {
            if v.is_nan() {
                continue;
            }
            match self.last_obs[c] {
                Some(p) => {
                    if r > p + 1 {
                        // Batch `interpolate_missing` gap fill, verbatim.
                        let a = self.last_val[c];
                        let b = v;
                        let gap = (r - p) as f64;
                        for k in p + 1..r {
                            let t = (k - p) as f64 / gap;
                            self.buf[k - self.base][c] = a + (b - a) * t;
                        }
                    }
                }
                None => {
                    // Head fill: leading NaNs take the first observation.
                    for k in 0..r {
                        self.buf[k - self.base][c] = v;
                    }
                }
            }
            self.last_obs[c] = Some(r);
            self.last_val[c] = v;
        }
        self.drain_watermark()
    }

    /// End of stream: tail-fill every column (never-observed columns
    /// become zero, like the batch code) and emit the remaining rows.
    pub fn flush(&mut self) -> Vec<Vec<f64>> {
        for (c, lo) in self.last_obs.iter().enumerate() {
            let (from, fill) = match lo {
                Some(l) => (l + 1, self.last_val[c]),
                None => (0, 0.0),
            };
            for k in from.max(self.base)..self.n_pushed {
                self.buf[k - self.base][c] = fill;
            }
        }
        let mut out = Vec::new();
        while self.resolved < self.n_pushed {
            out.push(self.emit_front());
        }
        out
    }

    /// Emit rows up to the minimum per-column resolution point.
    fn drain_watermark(&mut self) -> Vec<Vec<f64>> {
        let watermark = self
            .last_obs
            .iter()
            .map(|lo| lo.map(|l| l + 1).unwrap_or(0))
            .min()
            .unwrap_or(0);
        let mut out = Vec::new();
        while self.resolved < watermark {
            out.push(self.emit_front());
        }
        out
    }

    /// Pop the front (fully resolved) raw row and run aggregation → rate
    /// conversion → pruning gather → standardization on it, matching the
    /// batch arithmetic operation for operation.
    fn emit_front(&mut self) -> Vec<f64> {
        let raw = self.buf.pop_front().expect("resolved row buffered");
        self.base += 1;
        self.resolved += 1;
        // Aggregation: accumulate in raw-column order, then divide — the
        // exact loop structure of `aggregate_groups`.
        let mut agg = vec![0.0f64; self.group_counts.len()];
        for (j, &g) in self.groups.iter().enumerate() {
            agg[g] += raw[j];
        }
        for (g, v) in agg.iter_mut().enumerate() {
            if self.group_counts[g] > 0 {
                *v /= self.group_counts[g] as f64;
            }
        }
        // Rate conversion: first row becomes 0, later rows the difference.
        for (g, v) in agg.iter_mut().enumerate() {
            if !self.counters[g] {
                continue;
            }
            let cur = *v;
            *v = if self.any_row {
                cur - self.rate_prev[g]
            } else {
                0.0
            };
            self.rate_prev[g] = cur;
        }
        self.any_row = true;
        // Pruning gather + trimmed z-score with clipping.
        self.kept
            .iter()
            .enumerate()
            .map(|(j, &c)| ((agg[c] - self.mean[j]) / self.std[j]).clamp(-self.clip, self.clip))
            .collect()
    }
}

// ---------------------------------------------------------------------
// Per-node incremental detection state
// ---------------------------------------------------------------------

/// Deployment-cost counters accumulated by one node (merged per shard).
#[derive(Clone, Copy, Debug, Default)]
pub struct StreamStats {
    /// Raw ticks ingested.
    pub n_ticks: u64,
    /// Pattern-matching cycles performed.
    pub n_matches: u64,
    /// Seconds spent in probe feature extraction + library matching.
    pub match_seconds: f64,
    /// Seconds spent in model scoring + thresholding.
    pub score_seconds: f64,
    /// Test-span points given a verdict.
    pub n_points: u64,
}

impl StreamStats {
    pub fn merge(&mut self, other: &StreamStats) {
        self.n_ticks += other.n_ticks;
        self.n_matches += other.n_matches;
        self.match_seconds += other.match_seconds;
        self.score_seconds += other.score_seconds;
        self.n_points += other.n_points;
    }

    /// Seconds per pattern-matching cycle (paper Table 5's match cost).
    pub fn match_s_per_cycle(&self) -> f64 {
        self.match_seconds / (self.n_matches.max(1) as f64)
    }

    /// Milliseconds of scoring compute per detected point.
    pub fn point_latency_ms(&self) -> f64 {
        self.score_seconds * 1e3 / (self.n_points.max(1) as f64)
    }
}

/// Incremental detection state for a single node.
///
/// Drives the full online pipeline of [`NodeSentry::score_node`] +
/// smoothing + k-sigma from one tick at a time. Scores for a segment are
/// emitted when the segment closes (next job transition or flush): the
/// shared model's positional encoding is relative to the whole segment,
/// so earlier emission would change the answer.
pub struct NodeState {
    model: Arc<NodeSentry>,
    node: usize,
    split: usize,
    next_step: usize,
    pre: StreamingPreprocessor,
    /// Global index of the next preprocessed row to come out of `pre`.
    next_row: usize,
    /// Pending job-transition cuts (global steps > split), in order.
    cuts: VecDeque<usize>,
    /// Current segment's preprocessed rows (test span only).
    seg_rows: Vec<Vec<f64>>,
    seg_start: usize,
    /// Eager probe match for the current segment, once available.
    matched: Option<usize>,
    smoother: StreamingSmoother,
    detector: StreamingKSigma,
    /// Scores awaiting their (lagged) smoothed verdict.
    pending: VecDeque<(usize, f64, usize)>,
    pub stats: StreamStats,
}

impl NodeState {
    pub fn new(model: Arc<NodeSentry>, node: usize, split: usize, smooth_window: usize) -> Self {
        let pre = StreamingPreprocessor::new(&model.preprocessor);
        let detector = StreamingKSigma::new(model.cfg.threshold);
        NodeState {
            model,
            node,
            split,
            next_step: 0,
            pre,
            next_row: 0,
            cuts: VecDeque::new(),
            seg_rows: Vec::new(),
            seg_start: 0,
            matched: None,
            smoother: StreamingSmoother::new(smooth_window),
            detector,
            pending: VecDeque::new(),
            stats: StreamStats::default(),
        }
    }

    /// Ingest one tick; returns verdicts finalized by it (usually none —
    /// a burst arrives when a segment closes).
    pub fn push(&mut self, tick: &Tick) -> Vec<Verdict> {
        assert_eq!(tick.node, self.node, "tick routed to wrong node state");
        assert_eq!(
            tick.step, self.next_step,
            "node {} ticks must arrive in step order without gaps",
            self.node
        );
        self.next_step += 1;
        self.stats.n_ticks += 1;
        // Batch segmentation keeps transitions strictly inside the test
        // span: `t > split && t < horizon`.
        if tick.transition && tick.step > self.split {
            self.cuts.push_back(tick.step);
        }
        let rows = self.pre.push(&tick.values);
        self.absorb_rows(rows)
    }

    /// End of stream: resolve the preprocessing tail, close the last
    /// segment, and drain the smoothing lag.
    pub fn flush(&mut self) -> Vec<Verdict> {
        let rows = self.pre.flush();
        let mut out = self.absorb_rows(rows);
        if !self.seg_rows.is_empty() {
            out.extend(self.close_segment());
        }
        let t0 = Instant::now();
        for sv in self.smoother.flush() {
            let flagged = self.detector.push(sv);
            out.push(self.emit_verdict(flagged));
        }
        self.stats.score_seconds += t0.elapsed().as_secs_f64();
        debug_assert!(self.pending.is_empty(), "scores left without verdicts");
        out
    }

    fn absorb_rows(&mut self, rows: Vec<Vec<f64>>) -> Vec<Verdict> {
        let mut out = Vec::new();
        for row in rows {
            let r = self.next_row;
            self.next_row += 1;
            if r < self.split {
                continue; // training span: context only
            }
            if self.cuts.front() == Some(&r) {
                self.cuts.pop_front();
                if !self.seg_rows.is_empty() {
                    out.extend(self.close_segment());
                }
            }
            if self.seg_rows.is_empty() {
                self.seg_start = r;
            }
            self.seg_rows.push(row);
            // Eager pattern matching: the probe is the segment's first
            // `match_period` rows, available long before the segment
            // closes. This is the deployment's per-transition match cycle.
            if self.matched.is_none() && self.seg_rows.len() == self.model.cfg.match_period {
                self.matched = Some(self.match_probe(self.seg_rows.len()));
            }
        }
        out
    }

    fn match_probe(&mut self, probe_len: usize) -> usize {
        let t0 = Instant::now();
        let probe = Matrix::from_rows(&self.seg_rows[..probe_len.min(self.seg_rows.len())]);
        let feat = coarse::segment_features(&self.model.cfg.coarse, &probe);
        let (cluster, _dist) = self.model.cluster_model.match_pattern(&feat);
        self.stats.match_seconds += t0.elapsed().as_secs_f64();
        self.stats.n_matches += 1;
        cluster
    }

    /// Score the finished segment through its matched shared model and
    /// feed the smoothing → k-sigma chain; returns finalized verdicts.
    fn close_segment(&mut self) -> Vec<Verdict> {
        let probe_len = self.model.cfg.match_period.clamp(1, self.seg_rows.len());
        let cluster = match self.matched.take() {
            Some(c) => c,
            // Segment shorter than the match period: probe is the whole
            // segment, matched at close like the batch code.
            None => self.match_probe(probe_len),
        };
        let t0 = Instant::now();
        let data = Matrix::from_rows(&self.seg_rows);
        let model = &self.model.shared_models[cluster.min(self.model.shared_models.len() - 1)];
        let mut seg_scores = model.score_series(&data);
        // Per-segment baseline normalization (batch `score_node`).
        let baseline = {
            let mut head: Vec<f64> = seg_scores[..probe_len].to_vec();
            head.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            ns_linalg::stats::quantile_sorted(&head, 0.5).max(1.0)
        };
        for v in seg_scores.iter_mut() {
            *v /= baseline;
        }
        let mut out = Vec::new();
        for (k, score) in seg_scores.into_iter().enumerate() {
            self.pending.push_back((self.seg_start + k, score, cluster));
            for sv in self.smoother.push(score) {
                let flagged = self.detector.push(sv);
                out.push(self.emit_verdict(flagged));
            }
        }
        self.seg_rows.clear();
        self.stats.score_seconds += t0.elapsed().as_secs_f64();
        out
    }

    fn emit_verdict(&mut self, anomalous: bool) -> Verdict {
        let (step, score, cluster) = self
            .pending
            .pop_front()
            .expect("smoothed value without a pending score");
        self.stats.n_points += 1;
        Verdict {
            node: self.node,
            step,
            score,
            anomalous,
            cluster,
        }
    }
}

// ---------------------------------------------------------------------
// Sharded engine
// ---------------------------------------------------------------------

/// Engine configuration.
#[derive(Clone, Copy, Debug)]
pub struct EngineConfig {
    /// First test step; steps before it are preprocessing context.
    pub split: usize,
    /// Worker shards; nodes are routed by `node % n_shards`.
    pub n_shards: usize,
    /// Bounded per-shard queue depth (tick batches). Ingest blocks when a
    /// shard is this far behind — backpressure instead of unbounded RAM.
    pub queue_depth: usize,
    /// Smoothing window fed to the k-sigma detector (1 disables
    /// smoothing, matching raw `ksigma_detect` on batch scores;
    /// `cfg.smooth_window` matches [`NodeSentry::detect_node`]).
    pub smooth_window: usize,
}

impl EngineConfig {
    pub fn new(split: usize) -> Self {
        EngineConfig {
            split,
            n_shards: 2,
            queue_depth: 64,
            smooth_window: 1,
        }
    }
}

/// Everything a finished engine run produced.
pub struct EngineReport {
    /// All verdicts, sorted by `(node, step)`.
    pub verdicts: Vec<Verdict>,
    /// Merged deployment-cost counters across shards.
    pub stats: StreamStats,
    /// Wall-clock seconds from engine start to finish.
    pub wall_seconds: f64,
}

/// Sharded concurrent streaming engine over a trained [`NodeSentry`].
///
/// ```ignore
/// let mut engine = Engine::new(Arc::new(model), EngineConfig::new(split));
/// for batch in tick_batches {
///     engine.ingest(batch);
/// }
/// let report = engine.finish();
/// ```
pub struct Engine {
    senders: Vec<mpsc::SyncSender<Vec<Tick>>>,
    workers: Vec<std::thread::JoinHandle<(Vec<Verdict>, StreamStats)>>,
    n_shards: usize,
    started: Instant,
}

impl Engine {
    pub fn new(model: Arc<NodeSentry>, cfg: EngineConfig) -> Self {
        let n_shards = cfg.n_shards.max(1);
        let mut senders = Vec::with_capacity(n_shards);
        let mut workers = Vec::with_capacity(n_shards);
        for shard in 0..n_shards {
            let (tx, rx) = mpsc::sync_channel::<Vec<Tick>>(cfg.queue_depth.max(1));
            let model = Arc::clone(&model);
            let handle = std::thread::Builder::new()
                .name(format!("ns-stream-{shard}"))
                .spawn(move || worker_loop(rx, model, cfg))
                .expect("spawn stream worker");
            senders.push(tx);
            workers.push(handle);
        }
        Engine {
            senders,
            workers,
            n_shards,
            started: Instant::now(),
        }
    }

    /// Route a batch of ticks to their shards. Blocks when a shard's
    /// queue is full.
    pub fn ingest(&self, batch: Vec<Tick>) {
        let mut per_shard: Vec<Vec<Tick>> = vec![Vec::new(); self.n_shards];
        for tick in batch {
            per_shard[tick.node % self.n_shards].push(tick);
        }
        for (shard, ticks) in per_shard.into_iter().enumerate() {
            if !ticks.is_empty() {
                self.senders[shard]
                    .send(ticks)
                    .expect("stream worker alive");
            }
        }
    }

    /// Convenience for single-tick ingestion.
    pub fn ingest_tick(&self, tick: Tick) {
        self.senders[tick.node % self.n_shards]
            .send(vec![tick])
            .expect("stream worker alive");
    }

    /// Close the stream: flush every node, join the workers, and return
    /// all verdicts plus cost statistics.
    pub fn finish(self) -> EngineReport {
        drop(self.senders);
        let mut verdicts = Vec::new();
        let mut stats = StreamStats::default();
        for handle in self.workers {
            let (v, s) = handle.join().expect("stream worker panicked");
            verdicts.extend(v);
            stats.merge(&s);
        }
        verdicts.sort_by_key(|v| (v.node, v.step));
        EngineReport {
            verdicts,
            stats,
            wall_seconds: self.started.elapsed().as_secs_f64(),
        }
    }
}

fn worker_loop(
    rx: mpsc::Receiver<Vec<Tick>>,
    model: Arc<NodeSentry>,
    cfg: EngineConfig,
) -> (Vec<Verdict>, StreamStats) {
    let mut states: FxHashMap<usize, NodeState> = FxHashMap::default();
    let mut verdicts = Vec::new();
    while let Ok(batch) = rx.recv() {
        for tick in batch {
            let state = states.entry(tick.node).or_insert_with(|| {
                NodeState::new(Arc::clone(&model), tick.node, cfg.split, cfg.smooth_window)
            });
            verdicts.extend(state.push(&tick));
        }
    }
    // Channel closed: flush in node order so shard output is
    // deterministic.
    let mut nodes: Vec<usize> = states.keys().copied().collect();
    nodes.sort_unstable();
    let mut stats = StreamStats::default();
    for n in nodes {
        let state = states.get_mut(&n).expect("state for node");
        verdicts.extend(state.flush());
        stats.merge(&state.stats);
    }
    (verdicts, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nodesentry_core::preprocess::Preprocessor;

    /// Deterministic pseudo-random raw matrix with NaN holes.
    fn raw_with_holes(rows: usize, cols: usize, seed: u64) -> Matrix {
        let mut state = seed;
        let mut next = move || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        Matrix::from_fn(rows, cols, |r, c| {
            let u = next() as f64 / u64::MAX as f64;
            if u < 0.04 {
                f64::NAN
            } else {
                ((r as f64 * 0.13 + c as f64).sin() + u * 0.3) * (1.0 + c as f64 * 0.2)
            }
        })
    }

    #[test]
    fn streaming_preprocessor_matches_batch_bitwise() {
        for seed in [3u64, 17, 99] {
            let raw = raw_with_holes(160, 6, seed);
            let groups = vec![0usize, 0, 1, 1, 2, 2];
            // Fit on the clean prefix so NaNs in the tail exercise the
            // streaming watermark rather than the fit path.
            let pp = Preprocessor::fit(&raw.slice_rows(0, 100), &groups, 0.995, 0.05);
            let batch = pp.transform(&raw);

            let mut sp = StreamingPreprocessor::new(&pp);
            let mut rows: Vec<Vec<f64>> = Vec::new();
            for r in 0..raw.rows() {
                rows.extend(sp.push(raw.row(r)));
            }
            rows.extend(sp.flush());

            assert_eq!(rows.len(), batch.rows(), "seed {seed}");
            for (r, row) in rows.iter().enumerate() {
                for (c, v) in row.iter().enumerate() {
                    assert_eq!(
                        v.to_bits(),
                        batch[(r, c)].to_bits(),
                        "seed {seed} row {r} col {c}: {v} vs {}",
                        batch[(r, c)]
                    );
                }
            }
        }
    }

    #[test]
    fn streaming_preprocessor_handles_all_nan_column() {
        let mut raw = raw_with_holes(60, 4, 5);
        for r in 0..60 {
            raw[(r, 2)] = f64::NAN;
        }
        let groups = vec![0usize, 1, 2, 3];
        let pp = Preprocessor::fit(&raw.slice_rows(0, 40), &groups, 0.995, 0.05);
        let batch = pp.transform(&raw);
        let mut sp = StreamingPreprocessor::new(&pp);
        let mut rows: Vec<Vec<f64>> = Vec::new();
        for r in 0..raw.rows() {
            rows.extend(sp.push(raw.row(r)));
        }
        rows.extend(sp.flush());
        assert_eq!(rows.len(), batch.rows());
        for (r, row) in rows.iter().enumerate() {
            for (c, v) in row.iter().enumerate() {
                assert_eq!(v.to_bits(), batch[(r, c)].to_bits(), "row {r} col {c}");
            }
        }
    }

    #[test]
    fn watermark_defers_rows_across_nan_runs() {
        let groups = vec![0usize, 1];
        let fit = Matrix::from_fn(50, 2, |r, c| (r + c) as f64 * 0.1);
        let pp = Preprocessor::fit(&fit, &groups, 0.9999, 0.05);
        let mut sp = StreamingPreprocessor::new(&pp);
        assert_eq!(sp.push(&[1.0, 1.0]).len(), 1);
        // NaN opens a gap: nothing can be emitted until it closes.
        assert_eq!(sp.push(&[f64::NAN, 2.0]).len(), 0);
        assert_eq!(sp.push(&[f64::NAN, 3.0]).len(), 0);
        // Observation closes the gap: all three deferred rows finalize.
        assert_eq!(sp.push(&[4.0, 4.0]).len(), 3);
        assert_eq!(sp.flush().len(), 0);
    }
}
