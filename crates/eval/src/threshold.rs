//! Dynamic k-sigma thresholding over anomaly scores (paper §3.5): a
//! sliding window along the time axis estimates the local score
//! distribution; a point is anomalous when its score exceeds
//! `mean + k·sigma` of the window. Operators conventionally use 3-sigma.

use serde::{Deserialize, Serialize};

/// Configuration for the sliding k-sigma detector.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct KSigmaConfig {
    /// Window length in points (paper Fig. 6(f): 15–45 minutes).
    pub window: usize,
    /// Sigma multiplier (3.0 in practice).
    pub k: f64,
    /// Minimum sigma floor, preventing zero-variance windows from
    /// flagging everything.
    pub min_sigma: f64,
    /// Scale-free sigma floor: sigma is never below `rel_floor` times the
    /// window's mean absolute score, so near-perfect reconstruction
    /// stretches (tiny variance) don't flag every ripple regardless of
    /// the method's score scale.
    pub rel_floor: f64,
}

impl Default for KSigmaConfig {
    fn default() -> Self {
        Self {
            window: 40,
            k: 3.0,
            min_sigma: 1e-6,
            rel_floor: 0.3,
        }
    }
}

/// Apply the detector: `out[t]` is true when `scores[t]` exceeds the
/// robust upper k-sigma bound of the trailing reference window —
/// `median + k · 1.4826 · MAD`, the outlier-resistant analogue of
/// mean + k·σ. Never flags before at least 3 points of context exist.
///
/// Flagged points are kept out of the reference window (a long anomaly
/// must not teach the detector to accept itself) — but only up to a run
/// of `3 · window` consecutive flags. Past that the detector
/// re-baselines: a level change that persists for several windows is the
/// new normal, and without the cap one drift would flag everything after
/// it forever.
pub fn ksigma_detect(scores: &[f64], cfg: &KSigmaConfig) -> Vec<bool> {
    let n = scores.len();
    let mut out = vec![false; n];
    if n == 0 {
        return out;
    }
    let w = cfg.window.max(1);
    let exclusion_cap = 3 * w;
    let mut window: std::collections::VecDeque<f64> =
        std::collections::VecDeque::with_capacity(w + 1);
    let mut flagged_run = 0usize;
    let mut sorted: Vec<f64> = Vec::with_capacity(w);
    for t in 0..n {
        if window.len() >= 3 {
            sorted.clear();
            sorted.extend(window.iter().copied());
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            let median = percentile_sorted(&sorted, 0.5);
            let mad = {
                let mut dev: Vec<f64> = sorted.iter().map(|v| (v - median).abs()).collect();
                dev.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
                percentile_sorted(&dev, 0.5)
            };
            let sigma = (1.4826 * mad)
                .max(cfg.min_sigma)
                .max(cfg.rel_floor * median.abs());
            if scores[t] > median + cfg.k * sigma {
                out[t] = true;
            }
        }
        if out[t] {
            flagged_run += 1;
        } else {
            flagged_run = 0;
        }
        if !out[t] || flagged_run > exclusion_cap {
            window.push_back(scores[t]);
            if window.len() > w {
                window.pop_front();
            }
        }
    }
    out
}

#[inline]
fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

/// Convenience: detect with the default 3-sigma config and a given window.
pub fn three_sigma(scores: &[f64], window: usize) -> Vec<bool> {
    ksigma_detect(
        scores,
        &KSigmaConfig {
            window,
            ..Default::default()
        },
    )
}

/// Centered moving-average smoothing of a score series. Real anomalies
/// span many sampling points; single-point reconstruction spikes are
/// noise, and a small smoothing window suppresses them before
/// thresholding without delaying sustained events.
pub fn smooth_scores(scores: &[f64], window: usize) -> Vec<f64> {
    let n = scores.len();
    let w = window.max(1);
    if n == 0 || w == 1 {
        return scores.to_vec();
    }
    let half = w / 2;
    let mut out = Vec::with_capacity(n);
    for t in 0..n {
        let lo = t.saturating_sub(half);
        let hi = (t + half + 1).min(n);
        out.push(scores[lo..hi].iter().sum::<f64>() / (hi - lo) as f64);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_scores_never_flag() {
        let scores = vec![1.0; 200];
        let det = three_sigma(&scores, 40);
        assert!(det.iter().all(|&d| !d));
    }

    #[test]
    fn spike_is_flagged() {
        let mut scores: Vec<f64> = (0..200).map(|i| ((i * 31) % 7) as f64 * 0.01).collect();
        scores[150] = 5.0;
        let det = three_sigma(&scores, 40);
        assert!(det[150], "obvious spike missed");
        assert!(
            det[..150].iter().filter(|&&d| d).count() <= 2,
            "too many false alarms"
        );
    }

    #[test]
    fn sustained_anomaly_stays_flagged() {
        // Because anomalous points don't pollute the window, a long level
        // shift keeps firing.
        let mut scores = vec![0.1; 300];
        for s in scores[200..].iter_mut() {
            *s = 3.0;
        }
        // Mild jitter so sigma isn't the floor.
        for (i, s) in scores.iter_mut().enumerate() {
            *s += ((i * 17) % 5) as f64 * 0.01;
        }
        let det = three_sigma(&scores, 50);
        let flagged_after = det[200..].iter().filter(|&&d| d).count();
        assert!(flagged_after > 90, "only {flagged_after}/100 flagged");
    }

    #[test]
    fn higher_k_is_stricter() {
        let mut scores: Vec<f64> = (0..300).map(|i| ((i * 13) % 11) as f64 * 0.05).collect();
        scores[250] = 1.2;
        let loose = ksigma_detect(
            &scores,
            &KSigmaConfig {
                window: 50,
                k: 1.0,
                ..Default::default()
            },
        );
        let strict = ksigma_detect(
            &scores,
            &KSigmaConfig {
                window: 50,
                k: 4.0,
                ..Default::default()
            },
        );
        let nl = loose.iter().filter(|&&d| d).count();
        let ns = strict.iter().filter(|&&d| d).count();
        assert!(nl >= ns, "loose {nl} < strict {ns}");
    }

    #[test]
    fn early_points_never_flag_without_context() {
        let scores = [9.0, 0.0, 9.0];
        let det = three_sigma(&scores, 10);
        assert!(!det[0] && !det[1] && !det[2]);
    }

    #[test]
    fn empty_input() {
        assert!(three_sigma(&[], 10).is_empty());
    }
}
