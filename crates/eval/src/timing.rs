//! Wall-clock measurement helpers for the Table 4 cost columns.

use std::time::{Duration, Instant};

/// A simple stopwatch accumulating named phases.
#[derive(Debug)]
pub struct Stopwatch {
    start: Instant,
}

impl Stopwatch {
    pub fn start() -> Self {
        Self {
            start: Instant::now(),
        }
    }

    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed seconds as f64.
    pub fn seconds(&self) -> f64 {
        self.elapsed().as_secs_f64()
    }
}

impl Default for Stopwatch {
    fn default() -> Self {
        Self::start()
    }
}

/// Format seconds the way the paper's Table 4 does: days / hours /
/// minutes / seconds / milliseconds with two decimals.
pub fn format_duration(seconds: f64) -> String {
    if seconds >= 86_400.0 {
        format!("{:.2} day", seconds / 86_400.0)
    } else if seconds >= 3_600.0 {
        format!("{:.2} h", seconds / 3_600.0)
    } else if seconds >= 60.0 {
        format!("{:.2} min", seconds / 60.0)
    } else if seconds >= 1.0 {
        format!("{:.2} s", seconds)
    } else {
        format!("{:.2} ms", seconds * 1000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn formatting_bands() {
        assert_eq!(format_duration(2.0 * 86_400.0), "2.00 day");
        assert_eq!(format_duration(7_200.0), "2.00 h");
        assert_eq!(format_duration(90.0), "1.50 min");
        assert_eq!(format_duration(2.47), "2.47 s");
        assert_eq!(format_duration(0.036), "36.00 ms");
    }

    #[test]
    fn stopwatch_measures_nonzero() {
        let sw = Stopwatch::start();
        let mut x = 0u64;
        for i in 0..100_000u64 {
            x = x.wrapping_add(i * i);
        }
        std::hint::black_box(x);
        assert!(sw.seconds() >= 0.0);
    }
}
