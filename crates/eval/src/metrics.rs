//! Point-wise anomaly detection metrics with the paper's adjustment
//! protocol (§4.1.4):
//!
//! 1. *Segment adjustment*: if the method fires anywhere inside a
//!    continuous ground-truth anomaly interval, the whole interval counts
//!    as detected.
//! 2. *Boundary exclusion*: points within one minute of a pattern
//!    transition are excluded from scoring.
//! 3. *Per-node averaging*: Precision/Recall/AUC are averaged across
//!    nodes; F1 is computed from the averaged P and R.

use serde::{Deserialize, Serialize};

/// Confusion counts over included points.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Confusion {
    pub tp: usize,
    pub fp: usize,
    pub fn_: usize,
    pub tn: usize,
}

impl Confusion {
    pub fn precision(&self) -> f64 {
        if self.tp + self.fp == 0 {
            0.0
        } else {
            self.tp as f64 / (self.tp + self.fp) as f64
        }
    }

    pub fn recall(&self) -> f64 {
        if self.tp + self.fn_ == 0 {
            0.0
        } else {
            self.tp as f64 / (self.tp + self.fn_) as f64
        }
    }

    pub fn f1(&self) -> f64 {
        f1_from(self.precision(), self.recall())
    }
}

/// F1 from precision and recall (0 when both are 0).
pub fn f1_from(p: f64, r: f64) -> f64 {
    if p + r <= 0.0 {
        0.0
    } else {
        2.0 * p * r / (p + r)
    }
}

/// Apply the segment adjustment: any predicted positive inside a
/// continuous true-anomaly run marks the entire run as predicted.
pub fn point_adjust(pred: &[bool], truth: &[bool]) -> Vec<bool> {
    assert_eq!(pred.len(), truth.len());
    let mut adjusted = pred.to_vec();
    let n = truth.len();
    let mut i = 0;
    while i < n {
        if truth[i] {
            let start = i;
            while i < n && truth[i] {
                i += 1;
            }
            let end = i;
            if pred[start..end].iter().any(|&p| p) {
                for slot in adjusted[start..end].iter_mut() {
                    *slot = true;
                }
            }
        } else {
            i += 1;
        }
    }
    adjusted
}

/// Confusion counts after adjustment, honouring an optional inclusion
/// mask (`false` = excluded from scoring).
pub fn adjusted_confusion(pred: &[bool], truth: &[bool], include: Option<&[bool]>) -> Confusion {
    let adjusted = point_adjust(pred, truth);
    let mut c = Confusion::default();
    for (i, (&p, &t)) in adjusted.iter().zip(truth).enumerate() {
        if let Some(mask) = include {
            if !mask[i] {
                continue;
            }
        }
        match (p, t) {
            (true, true) => c.tp += 1,
            (true, false) => c.fp += 1,
            (false, true) => c.fn_ += 1,
            (false, false) => c.tn += 1,
        }
    }
    c
}

/// Inclusion mask that excludes the half-open step intervals in
/// `intervals` (clamped to `len`). Used by the fault-injection
/// experiments to score detection quality outside the injected fault
/// windows, where verdicts are still expected to be trustworthy.
pub fn interval_mask(len: usize, intervals: &[(usize, usize)]) -> Vec<bool> {
    let mut mask = vec![true; len];
    for &(lo, hi) in intervals {
        for slot in mask[lo.min(len)..hi.min(len)].iter_mut() {
            *slot = false;
        }
    }
    mask
}

/// Inclusion mask that excludes `radius` points on each side of every
/// pattern-transition step (the paper's 1-minute boundary exclusion).
pub fn transition_mask(len: usize, transitions: &[usize], radius: usize) -> Vec<bool> {
    let mut mask = vec![true; len];
    for &t in transitions {
        let lo = t.saturating_sub(radius);
        let hi = (t + radius).min(len);
        for slot in mask[lo..hi].iter_mut() {
            *slot = false;
        }
    }
    mask
}

/// ROC-AUC of scores against binary labels, with the same segment
/// adjustment applied at every threshold via rank statistics over
/// adjusted labels. For efficiency we compute the standard
/// Mann-Whitney-U AUC over (score, label) pairs after *score
/// propagation*: every point of an anomalous run is assigned the run's
/// maximum score first (the AUC analogue of point adjustment).
pub fn roc_auc_adjusted(scores: &[f64], truth: &[bool], include: Option<&[bool]>) -> f64 {
    assert_eq!(scores.len(), truth.len());
    let n = truth.len();
    // Propagate run-max scores across each anomaly run.
    let mut adj_scores = scores.to_vec();
    let mut i = 0;
    while i < n {
        if truth[i] {
            let start = i;
            while i < n && truth[i] {
                i += 1;
            }
            let end = i;
            let maxv = scores[start..end]
                .iter()
                .cloned()
                .fold(f64::NEG_INFINITY, f64::max);
            for s in adj_scores[start..end].iter_mut() {
                *s = maxv;
            }
        } else {
            i += 1;
        }
    }
    // Mann–Whitney U with tie handling (average ranks).
    let mut pairs: Vec<(f64, bool)> = adj_scores
        .iter()
        .zip(truth)
        .enumerate()
        .filter(|(i, _)| include.map(|m| m[*i]).unwrap_or(true))
        .map(|(_, (&s, &t))| (s, t))
        .collect();
    let pos = pairs.iter().filter(|(_, t)| *t).count();
    let neg = pairs.len() - pos;
    if pos == 0 || neg == 0 {
        return 0.5;
    }
    pairs.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    // Average ranks over ties.
    let mut rank_sum_pos = 0.0f64;
    let mut i = 0;
    while i < pairs.len() {
        let mut j = i;
        while j < pairs.len() && pairs[j].0 == pairs[i].0 {
            j += 1;
        }
        let avg_rank = (i + j + 1) as f64 / 2.0; // 1-based average rank
        for p in pairs[i..j].iter() {
            if p.1 {
                rank_sum_pos += avg_rank;
            }
        }
        i = j;
    }
    let u = rank_sum_pos - (pos * (pos + 1)) as f64 / 2.0;
    u / (pos as f64 * neg as f64)
}

/// Per-node evaluation outcome.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct NodeScores {
    pub precision: f64,
    pub recall: f64,
    pub auc: f64,
}

/// Aggregate per-node scores the paper's way: average P, R, AUC across
/// nodes; F1 from the averaged P and R.
#[derive(Clone, Copy, Debug, Default, Serialize, Deserialize)]
pub struct AggregateScores {
    pub precision: f64,
    pub recall: f64,
    pub auc: f64,
    pub f1: f64,
}

pub fn aggregate(nodes: &[NodeScores]) -> AggregateScores {
    if nodes.is_empty() {
        return AggregateScores::default();
    }
    let n = nodes.len() as f64;
    let p = nodes.iter().map(|s| s.precision).sum::<f64>() / n;
    let r = nodes.iter().map(|s| s.recall).sum::<f64>() / n;
    let auc = nodes.iter().map(|s| s.auc).sum::<f64>() / n;
    AggregateScores {
        precision: p,
        recall: r,
        auc,
        f1: f1_from(p, r),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_adjust_expands_partial_hits() {
        let truth = [false, true, true, true, false, true];
        let pred = [false, false, true, false, false, false];
        let adj = point_adjust(&pred, &truth);
        assert_eq!(adj, vec![false, true, true, true, false, false]);
    }

    #[test]
    fn point_adjust_leaves_false_positives() {
        let truth = [false, false, true];
        let pred = [true, false, true];
        let adj = point_adjust(&pred, &truth);
        assert_eq!(adj, vec![true, false, true]);
    }

    #[test]
    fn confusion_and_f1() {
        let truth = [true, true, false, false];
        let pred = [true, false, true, false];
        // After adjustment, pred hits the run [0,2) → both true.
        let c = adjusted_confusion(&pred, &truth, None);
        assert_eq!(
            c,
            Confusion {
                tp: 2,
                fp: 1,
                fn_: 0,
                tn: 1
            }
        );
        assert!((c.precision() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(c.recall(), 1.0);
        assert!((c.f1() - 0.8).abs() < 1e-12);
    }

    #[test]
    fn mask_excludes_boundary_points() {
        let mask = transition_mask(10, &[5], 2);
        assert_eq!(
            mask,
            vec![true, true, true, false, false, false, false, true, true, true]
        );
        // Masked points don't count.
        let truth = [false; 10];
        let mut pred = [false; 10];
        pred[4] = true; // masked false positive
        let c = adjusted_confusion(&pred, &truth, Some(&mask));
        assert_eq!(c.fp, 0);
    }

    #[test]
    fn auc_perfect_and_random() {
        let truth = [false, false, false, true, true];
        let perfect = [0.1, 0.2, 0.3, 0.9, 0.8];
        assert!((roc_auc_adjusted(&perfect, &truth, None) - 1.0).abs() < 1e-12);
        let inverted = [0.9, 0.8, 0.7, 0.1, 0.2];
        assert!(roc_auc_adjusted(&inverted, &truth, None) < 0.1);
        let constant = [0.5; 5];
        assert!((roc_auc_adjusted(&constant, &truth, None) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn auc_degenerate_labels() {
        assert_eq!(roc_auc_adjusted(&[0.1, 0.2], &[false, false], None), 0.5);
        assert_eq!(roc_auc_adjusted(&[0.1, 0.2], &[true, true], None), 0.5);
    }

    #[test]
    fn auc_propagates_run_max() {
        // Run [2,4): only index 3 scores high. Propagation lifts index 2
        // too, making separation perfect.
        let truth = [false, false, true, true, false];
        let scores = [0.1, 0.2, 0.0, 0.9, 0.15];
        assert!((roc_auc_adjusted(&scores, &truth, None) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn aggregate_matches_paper_protocol() {
        let nodes = [
            NodeScores {
                precision: 1.0,
                recall: 0.5,
                auc: 0.9,
            },
            NodeScores {
                precision: 0.5,
                recall: 1.0,
                auc: 0.7,
            },
        ];
        let agg = aggregate(&nodes);
        assert!((agg.precision - 0.75).abs() < 1e-12);
        assert!((agg.recall - 0.75).abs() < 1e-12);
        assert!((agg.auc - 0.8).abs() < 1e-12);
        // F1 of the averages, not average of F1s.
        assert!((agg.f1 - 0.75).abs() < 1e-12);
    }

    #[test]
    fn empty_aggregate_is_zero() {
        let agg = aggregate(&[]);
        assert_eq!(agg.f1, 0.0);
    }
}
