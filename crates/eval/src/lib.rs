//! `ns-eval` — the evaluation protocol of the paper (§4.1.4), packaged:
//!
//! * [`metrics`] — point-adjusted Precision/Recall/F1 with segment
//!   adjustment and transition-boundary exclusion, rank-based ROC-AUC
//!   with run-max score propagation, and the per-node averaging scheme
//!   (F1 computed from averaged P and R).
//! * [`threshold`] — the sliding-window k-sigma dynamic threshold of
//!   §3.5 (3-sigma by default, window swept by Fig. 6(f)).
//! * [`streaming`] — incremental, bit-exact replays of the smoothing and
//!   k-sigma detectors for one-point-at-a-time deployment (`ns-stream`).
//! * [`timing`] — stopwatch + the paper's duration formatting for the
//!   Table 4 cost columns.

pub mod metrics;
pub mod streaming;
pub mod threshold;
pub mod timing;

pub use metrics::{
    adjusted_confusion, aggregate, f1_from, point_adjust, roc_auc_adjusted, transition_mask,
    AggregateScores, Confusion, NodeScores,
};
pub use streaming::{StreamingKSigma, StreamingSmoother};
pub use threshold::{ksigma_detect, smooth_scores, three_sigma, KSigmaConfig};
pub use timing::{format_duration, Stopwatch};
