//! Incremental counterparts of the batch detectors in [`crate::threshold`].
//!
//! A streaming deployment (crate `ns-stream`) consumes scores one point at
//! a time, but the paper's evaluation is defined in terms of the batch
//! functions [`smooth_scores`](crate::threshold::smooth_scores) and
//! [`ksigma_detect`](crate::ksigma_detect). These types replay the exact
//! arithmetic of the batch code — same summation order, same sort-based
//! median/MAD, same window-exclusion rule — so a streaming pipeline is
//! bit-for-bit equivalent to batch scoring, not merely approximately so.
//! The differential tests at the bottom (and `tests/stream_equivalence.rs`
//! at the workspace root) hold them to `f64::to_bits` equality.

use crate::threshold::KSigmaConfig;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Streaming centered moving-average smoother.
///
/// The batch [`smooth_scores`](crate::threshold::smooth_scores) is
/// *centered*: `out[t]` averages `scores[t-half ..= t+half]` (clamped to
/// the series). A causal replay therefore emits with a lag of `half`
/// points — `push` returns each smoothed value as soon as its full right
/// context exists, and [`flush`](Self::flush) finalizes the tail once the
/// series ends (where the batch window is clamped to `n`).
#[derive(Clone, Debug)]
pub struct StreamingSmoother {
    half: usize,
    passthrough: bool,
    /// Raw scores still needed by at least one unfinalized output.
    buf: VecDeque<f64>,
    /// Total raw scores pushed so far.
    n_pushed: usize,
    /// Next output index `t` to finalize.
    next_out: usize,
}

impl StreamingSmoother {
    pub fn new(window: usize) -> Self {
        let w = window.max(1);
        StreamingSmoother {
            half: w / 2,
            passthrough: w == 1,
            buf: VecDeque::with_capacity(w + 1),
            n_pushed: 0,
            next_out: 0,
        }
    }

    /// Number of raw scores consumed so far.
    pub fn len_pushed(&self) -> usize {
        self.n_pushed
    }

    /// Index of the next smoothed value that will be emitted.
    pub fn next_output_index(&self) -> usize {
        self.next_out
    }

    /// Ingest one raw score; returns the smoothed values (in order) whose
    /// windows are now complete — at most one per push in steady state.
    pub fn push(&mut self, score: f64) -> Vec<f64> {
        if self.passthrough {
            self.n_pushed += 1;
            self.next_out += 1;
            return vec![score];
        }
        self.buf.push_back(score);
        self.n_pushed += 1;
        let mut out = Vec::new();
        // `out[t]` needs scores up to `t + half` inclusive.
        while self.next_out + self.half < self.n_pushed {
            out.push(self.window_mean(self.next_out, self.n_pushed));
            self.next_out += 1;
            self.gc();
        }
        out
    }

    /// End of series: finalize the remaining `half` outputs, whose right
    /// windows the batch code clamps to the series length.
    pub fn flush(&mut self) -> Vec<f64> {
        let n = self.n_pushed;
        let mut out = Vec::new();
        while self.next_out < n {
            out.push(self.window_mean(self.next_out, n));
            self.next_out += 1;
        }
        self.buf.clear();
        out
    }

    fn window_mean(&self, t: usize, n: usize) -> f64 {
        let lo = t.saturating_sub(self.half);
        let hi = (t + self.half + 1).min(n);
        let base = self.n_pushed - self.buf.len();
        // Ascending index order, exactly like the batch slice sum.
        let sum: f64 = (lo..hi).map(|i| self.buf[i - base]).sum();
        sum / (hi - lo) as f64
    }

    fn gc(&mut self) {
        // The smallest raw index any future output can touch.
        let min_needed = self.next_out.saturating_sub(self.half);
        let mut base = self.n_pushed - self.buf.len();
        while base < min_needed {
            self.buf.pop_front();
            base += 1;
        }
    }

    /// Capture the mutable smoothing state for a checkpoint. The window
    /// size is configuration, not state — [`restore`](Self::restore)
    /// takes it separately so the caller's config remains the single
    /// source of truth.
    pub fn snapshot(&self) -> SmootherState {
        SmootherState {
            buf: self.buf.iter().copied().collect(),
            n_pushed: self.n_pushed,
            next_out: self.next_out,
        }
    }

    /// Rebuild a smoother mid-stream from a [`SmootherState`]. With the
    /// same `window` as at snapshot time, the restored smoother's future
    /// outputs are bit-identical to the uninterrupted one's.
    pub fn restore(window: usize, state: &SmootherState) -> Self {
        let mut sm = StreamingSmoother::new(window);
        sm.buf = state.buf.iter().copied().collect();
        sm.n_pushed = state.n_pushed;
        sm.next_out = state.next_out;
        sm
    }
}

/// Serializable mid-stream state of a [`StreamingSmoother`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SmootherState {
    pub buf: Vec<f64>,
    pub n_pushed: usize,
    pub next_out: usize,
}

/// Streaming robust k-sigma detector: a one-point-at-a-time replay of
/// [`ksigma_detect`](crate::ksigma_detect), including the
/// flagged-points-excluded reference window and the `3·window`
/// re-baselining cap on exclusion runs.
#[derive(Clone, Debug)]
pub struct StreamingKSigma {
    cfg: KSigmaConfig,
    w: usize,
    exclusion_cap: usize,
    window: VecDeque<f64>,
    flagged_run: usize,
    sorted: Vec<f64>,
}

impl StreamingKSigma {
    pub fn new(cfg: KSigmaConfig) -> Self {
        let w = cfg.window.max(1);
        StreamingKSigma {
            cfg,
            w,
            exclusion_cap: 3 * w,
            window: VecDeque::with_capacity(w + 1),
            flagged_run: 0,
            sorted: Vec::with_capacity(w),
        }
    }

    /// Ingest one (smoothed) score, returning whether it is anomalous.
    pub fn push(&mut self, score: f64) -> bool {
        let mut flagged = false;
        if self.window.len() >= 3 {
            self.sorted.clear();
            self.sorted.extend(self.window.iter().copied());
            self.sorted
                .sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
            let median = percentile_sorted(&self.sorted, 0.5);
            let mad = {
                let mut dev: Vec<f64> = self.sorted.iter().map(|v| (v - median).abs()).collect();
                dev.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
                percentile_sorted(&dev, 0.5)
            };
            let sigma = (1.4826 * mad)
                .max(self.cfg.min_sigma)
                .max(self.cfg.rel_floor * median.abs());
            if score > median + self.cfg.k * sigma {
                flagged = true;
            }
        }
        if flagged {
            self.flagged_run += 1;
        } else {
            self.flagged_run = 0;
        }
        if !flagged || self.flagged_run > self.exclusion_cap {
            self.window.push_back(score);
            if self.window.len() > self.w {
                self.window.pop_front();
            }
        }
        flagged
    }

    /// Capture the mutable detector state for a checkpoint (the
    /// [`KSigmaConfig`] is configuration and travels separately).
    pub fn snapshot(&self) -> KSigmaState {
        KSigmaState {
            window: self.window.iter().copied().collect(),
            flagged_run: self.flagged_run,
        }
    }

    /// Rebuild a detector mid-stream from a [`KSigmaState`]. With the
    /// same `cfg` as at snapshot time, future decisions are identical to
    /// the uninterrupted detector's.
    pub fn restore(cfg: KSigmaConfig, state: &KSigmaState) -> Self {
        let mut det = StreamingKSigma::new(cfg);
        det.window = state.window.iter().copied().collect();
        det.flagged_run = state.flagged_run;
        det
    }
}

/// Serializable mid-stream state of a [`StreamingKSigma`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct KSigmaState {
    pub window: Vec<f64>,
    pub flagged_run: usize,
}

// Duplicated from `threshold` (private there); identical arithmetic.
#[inline]
fn percentile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] * (1.0 - frac) + sorted[hi] * frac
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::threshold::{ksigma_detect, smooth_scores};

    /// Deterministic pseudo-random scores for differential tests.
    fn series(seed: u64, n: usize) -> Vec<f64> {
        let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
        (0..n)
            .map(|i| {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                let u = (z ^ (z >> 31)) as f64 / u64::MAX as f64;
                // Occasional spikes so the exclusion logic is exercised.
                if i % 97 == 13 {
                    u * 8.0 + 4.0
                } else {
                    u
                }
            })
            .collect()
    }

    #[test]
    fn smoother_matches_batch_bitwise() {
        for window in [1usize, 2, 3, 5, 8, 40] {
            for n in [0usize, 1, 2, 7, 40, 211] {
                let scores = series(window as u64 * 1000 + n as u64, n);
                let batch = smooth_scores(&scores, window);
                let mut sm = StreamingSmoother::new(window);
                let mut streamed = Vec::new();
                for &s in &scores {
                    streamed.extend(sm.push(s));
                }
                streamed.extend(sm.flush());
                assert_eq!(batch.len(), streamed.len(), "w={window} n={n}");
                for (t, (a, b)) in batch.iter().zip(&streamed).enumerate() {
                    assert_eq!(
                        a.to_bits(),
                        b.to_bits(),
                        "w={window} n={n} t={t}: {a} vs {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn ksigma_matches_batch() {
        for window in [1usize, 3, 10, 40] {
            let cfg = KSigmaConfig {
                window,
                ..Default::default()
            };
            for n in [0usize, 1, 5, 50, 400] {
                let scores = series(window as u64 * 7 + n as u64, n);
                let batch = ksigma_detect(&scores, &cfg);
                let mut det = StreamingKSigma::new(cfg);
                let streamed: Vec<bool> = scores.iter().map(|&s| det.push(s)).collect();
                assert_eq!(batch, streamed, "w={window} n={n}");
            }
        }
    }

    #[test]
    fn smoother_snapshot_restore_continues_bit_identically() {
        for window in [1usize, 2, 5, 8] {
            let scores = series(window as u64 + 3, 120);
            for cut in [0usize, 1, 7, 60, 119] {
                let mut a = StreamingSmoother::new(window);
                let mut b = StreamingSmoother::new(window);
                let mut out_a = Vec::new();
                let mut out_b = Vec::new();
                for &s in &scores[..cut] {
                    out_a.extend(a.push(s));
                    out_b.extend(b.push(s));
                }
                // Restore from the snapshot; the original keeps going.
                let mut b = StreamingSmoother::restore(window, &b.snapshot());
                for &s in &scores[cut..] {
                    out_a.extend(a.push(s));
                    out_b.extend(b.push(s));
                }
                out_a.extend(a.flush());
                out_b.extend(b.flush());
                assert_eq!(out_a.len(), out_b.len(), "w={window} cut={cut}");
                for (x, y) in out_a.iter().zip(&out_b) {
                    assert_eq!(x.to_bits(), y.to_bits(), "w={window} cut={cut}");
                }
            }
        }
    }

    #[test]
    fn ksigma_snapshot_restore_continues_identically() {
        for window in [3usize, 10, 40] {
            let cfg = KSigmaConfig {
                window,
                ..Default::default()
            };
            let scores = series(window as u64 * 13, 300);
            for cut in [0usize, 5, 150, 299] {
                let mut a = StreamingKSigma::new(cfg);
                let mut b = StreamingKSigma::new(cfg);
                for &s in &scores[..cut] {
                    assert_eq!(a.push(s), b.push(s));
                }
                let mut b = StreamingKSigma::restore(cfg, &b.snapshot());
                for &s in &scores[cut..] {
                    assert_eq!(a.push(s), b.push(s), "w={window} cut={cut}");
                }
            }
        }
    }

    #[test]
    fn smoothed_pipeline_matches_batch_composition() {
        let scores = series(99, 300);
        let cfg = KSigmaConfig::default();
        let batch = ksigma_detect(&smooth_scores(&scores, 5), &cfg);

        let mut sm = StreamingSmoother::new(5);
        let mut det = StreamingKSigma::new(cfg);
        let mut streamed = Vec::new();
        for &s in &scores {
            for sv in sm.push(s) {
                streamed.push(det.push(sv));
            }
        }
        for sv in sm.flush() {
            streamed.push(det.push(sv));
        }
        assert_eq!(batch, streamed);
    }
}
