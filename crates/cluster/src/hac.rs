//! Hierarchical Agglomerative Clustering via the nearest-neighbour-chain
//! algorithm with Lance–Williams distance updates.
//!
//! This is the paper's coarse-grained clustering engine (§3.3): segments
//! represented as fixed-width feature vectors are clustered bottom-up under
//! Euclidean distance. NN-chain runs in `O(n²)` time and memory over a
//! condensed distance matrix, which is what makes week-scale segment
//! populations tractable where DTW-based clustering is not (§2.1).

use ns_linalg::{distance::CondensedDistance, vecops};
use serde::{Deserialize, Serialize};

/// Linkage criterion for merging clusters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Linkage {
    /// Minimum pairwise distance.
    Single,
    /// Maximum pairwise distance.
    Complete,
    /// Unweighted average pairwise distance (UPGMA).
    Average,
    /// Ward's minimum-variance criterion (input must be Euclidean).
    Ward,
}

/// One merge step: clusters rooted at items `a` and `b` joined at `height`,
/// producing a cluster of `size` items.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct Merge {
    pub a: usize,
    pub b: usize,
    pub height: f64,
    pub size: usize,
}

/// The full merge history over `n` items (n−1 merges, sorted by height).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Dendrogram {
    n: usize,
    merges: Vec<Merge>,
}

impl Dendrogram {
    /// Number of original items.
    pub fn len(&self) -> usize {
        self.n
    }

    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Merge steps sorted ascending by height.
    pub fn merges(&self) -> &[Merge] {
        &self.merges
    }

    /// Flat cluster labels for exactly `k` clusters (1 ≤ k ≤ n). Labels are
    /// relabelled to `0..k` in order of first appearance.
    pub fn cut_k(&self, k: usize) -> Vec<usize> {
        assert!(k >= 1 && k <= self.n.max(1), "k must be in 1..=n");
        let take = self.n.saturating_sub(k);
        self.cut_after(take)
    }

    /// Flat labels after applying every merge with `height <= h`.
    pub fn cut_height(&self, h: f64) -> Vec<usize> {
        let take = self.merges.iter().take_while(|m| m.height <= h).count();
        self.cut_after(take)
    }

    fn cut_after(&self, merges_applied: usize) -> Vec<usize> {
        let mut uf = UnionFind::new(self.n);
        for m in self.merges.iter().take(merges_applied) {
            uf.union(m.a, m.b);
        }
        uf.labels()
    }
}

/// Minimal union-find with path halving.
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        Self {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent[rb] = ra;
        }
    }

    /// Compact labels `0..k` in order of first appearance.
    fn labels(&mut self) -> Vec<usize> {
        let n = self.parent.len();
        let mut map = vec![usize::MAX; n];
        let mut next = 0;
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let r = self.find(i);
            if map[r] == usize::MAX {
                map[r] = next;
                next += 1;
            }
            out.push(map[r]);
        }
        out
    }
}

/// Run HAC over a precomputed condensed distance matrix.
///
/// For [`Linkage::Ward`] the input distances must be Euclidean.
pub fn linkage_from_distance(dist: &CondensedDistance, linkage: Linkage) -> Dendrogram {
    let n = dist.len();
    if n == 0 {
        return Dendrogram {
            n,
            merges: Vec::new(),
        };
    }
    // Working square distance matrix indexed by representative slot.
    // O(n²) memory like the condensed input, but mutable with O(1) access.
    let mut d = vec![0.0f64; n * n];
    for i in 0..n {
        for j in i + 1..n {
            let v = dist.get(i, j);
            d[i * n + j] = v;
            d[j * n + i] = v;
        }
    }
    let mut size = vec![1usize; n];
    let mut active = vec![true; n];
    let mut merges: Vec<Merge> = Vec::with_capacity(n.saturating_sub(1));
    let mut chain: Vec<usize> = Vec::with_capacity(n);

    let nearest = |d: &[f64], active: &[bool], a: usize| -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for j in 0..n {
            if j == a || !active[j] {
                continue;
            }
            let dj = d[a * n + j];
            match best {
                Some((bj, bd)) if dj > bd || (dj == bd && j > bj) => {}
                _ => best = Some((j, dj)),
            }
        }
        best.map(|(j, _)| j)
    };

    while merges.len() + 1 < n {
        if chain.is_empty() {
            let start = (0..n)
                .find(|&i| active[i])
                .expect("active cluster must exist");
            chain.push(start);
        }
        loop {
            let a = *chain.last().unwrap();
            let b = nearest(&d, &active, a).expect("at least two active clusters");
            if chain.len() >= 2 && chain[chain.len() - 2] == b {
                // Reciprocal nearest neighbours: merge a and b.
                chain.pop();
                chain.pop();
                let (i, j) = if a < b { (a, b) } else { (b, a) };
                let dij = d[i * n + j];
                let (ni, nj) = (size[i] as f64, size[j] as f64);
                // Lance–Williams update of distances from the merged
                // cluster (stored in slot i) to every other active cluster.
                for k in 0..n {
                    if !active[k] || k == i || k == j {
                        continue;
                    }
                    let dik = d[i * n + k];
                    let djk = d[j * n + k];
                    let nk = size[k] as f64;
                    let new = match linkage {
                        Linkage::Single => dik.min(djk),
                        Linkage::Complete => dik.max(djk),
                        Linkage::Average => (ni * dik + nj * djk) / (ni + nj),
                        Linkage::Ward => {
                            let t = ni + nj + nk;
                            (((ni + nk) * dik * dik + (nj + nk) * djk * djk - nk * dij * dij) / t)
                                .max(0.0)
                                .sqrt()
                        }
                    };
                    d[i * n + k] = new;
                    d[k * n + i] = new;
                }
                active[j] = false;
                size[i] += size[j];
                merges.push(Merge {
                    a: i,
                    b: j,
                    height: dij,
                    size: size[i],
                });
                break;
            }
            chain.push(b);
        }
    }
    // NN-chain emits merges in chain order; sort by height for dendrogram
    // semantics (ties keep emission order, which is deterministic).
    merges.sort_by(|x, y| {
        x.height
            .partial_cmp(&y.height)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    Dendrogram { n, merges }
}

/// Run HAC over row-vector data under Euclidean distance.
pub fn linkage(data: &[Vec<f64>], linkage_kind: Linkage) -> Dendrogram {
    let n = data.len();
    let dist = CondensedDistance::compute(n, |i, j| vecops::euclidean(&data[i], &data[j]));
    linkage_from_distance(&dist, linkage_kind)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn three_blobs() -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for (cx, cy) in [(0.0, 0.0), (10.0, 0.0), (5.0, 9.0)] {
            for k in 0..5 {
                let dx = (k as f64) * 0.1;
                pts.push(vec![cx + dx, cy - dx]);
            }
        }
        pts
    }

    #[test]
    fn recovers_three_well_separated_blobs() {
        for lk in [
            Linkage::Single,
            Linkage::Complete,
            Linkage::Average,
            Linkage::Ward,
        ] {
            let dend = linkage(&three_blobs(), lk);
            let labels = dend.cut_k(3);
            // Each blob of 5 shares a label and the blobs differ.
            for blob in 0..3 {
                let l0 = labels[blob * 5];
                for i in 1..5 {
                    assert_eq!(labels[blob * 5 + i], l0, "{lk:?}");
                }
            }
            assert_ne!(labels[0], labels[5]);
            assert_ne!(labels[5], labels[10]);
            assert_ne!(labels[0], labels[10]);
        }
    }

    #[test]
    fn merge_heights_monotone_for_reducible_linkages() {
        let data: Vec<Vec<f64>> = (0..40)
            .map(|i| vec![((i * 37) % 17) as f64, ((i * 11) % 23) as f64])
            .collect();
        for lk in [
            Linkage::Single,
            Linkage::Complete,
            Linkage::Average,
            Linkage::Ward,
        ] {
            let dend = linkage(&data, lk);
            let merges = dend.merges();
            assert_eq!(merges.len(), 39);
            for w in merges.windows(2) {
                assert!(w[0].height <= w[1].height + 1e-12, "{lk:?} not monotone");
            }
            // Final merge contains everything.
            assert_eq!(merges.last().unwrap().size, 40);
        }
    }

    #[test]
    fn cut_k_extremes() {
        let data = three_blobs();
        let dend = linkage(&data, Linkage::Average);
        let all_one = dend.cut_k(1);
        assert!(all_one.iter().all(|&l| l == 0));
        let singletons = dend.cut_k(data.len());
        let mut sorted = singletons.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), data.len());
    }

    #[test]
    fn cut_k_produces_exactly_k_labels() {
        let data = three_blobs();
        let dend = linkage(&data, Linkage::Ward);
        for k in 1..=data.len() {
            let labels = dend.cut_k(k);
            let mut uniq = labels.clone();
            uniq.sort_unstable();
            uniq.dedup();
            assert_eq!(uniq.len(), k, "k={k}");
            assert_eq!(*uniq.iter().max().unwrap(), k - 1, "labels must be compact");
        }
    }

    #[test]
    fn cut_height_consistency() {
        let data = three_blobs();
        let dend = linkage(&data, Linkage::Single);
        // Cutting above the max height gives one cluster.
        let h = dend.merges().last().unwrap().height;
        assert!(dend.cut_height(h + 1.0).iter().all(|&l| l == 0));
        // Cutting below the min height gives singletons.
        let labels = dend.cut_height(-1.0);
        let mut uniq = labels;
        uniq.sort_unstable();
        uniq.dedup();
        assert_eq!(uniq.len(), data.len());
    }

    #[test]
    fn single_linkage_chain_effect() {
        // A chain of near points plus one far point: single linkage keeps
        // the chain together at k=2 while complete may split it.
        let mut data: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64 * 1.0, 0.0]).collect();
        data.push(vec![100.0, 0.0]);
        let labels = linkage(&data, Linkage::Single).cut_k(2);
        let chain_label = labels[0];
        assert!(labels[..10].iter().all(|&l| l == chain_label));
        assert_ne!(labels[10], chain_label);
    }

    #[test]
    fn handles_tiny_inputs() {
        assert!(linkage(&[], Linkage::Ward).cut_height(1.0).is_empty());
        let one = linkage(&[vec![1.0]], Linkage::Ward);
        assert_eq!(one.cut_k(1), vec![0]);
        let two = linkage(&[vec![0.0], vec![1.0]], Linkage::Average);
        assert_eq!(two.cut_k(2), vec![0, 1]);
        assert_eq!(two.cut_k(1), vec![0, 0]);
        assert!((two.merges()[0].height - 1.0).abs() < 1e-12);
    }

    #[test]
    fn duplicate_points_merge_at_zero() {
        let data = vec![vec![1.0, 1.0], vec![1.0, 1.0], vec![5.0, 5.0]];
        let dend = linkage(&data, Linkage::Complete);
        assert_eq!(dend.merges()[0].height, 0.0);
        let labels = dend.cut_k(2);
        assert_eq!(labels[0], labels[1]);
        assert_ne!(labels[0], labels[2]);
    }
}
