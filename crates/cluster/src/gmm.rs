//! Gaussian mixture models fit by EM, with a Bayesian-flavoured variant
//! (Dirichlet weight prior, so components can be effectively pruned) and
//! Mahalanobis scoring — the machinery behind the ISC'20 baseline, which
//! characterises HPC performance variation with BGMM clustering and flags
//! points by Mahalanobis distance to their closest component.

use ns_linalg::{decomp, matrix::Matrix, vecops};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Covariance structure of the mixture components.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Covariance {
    /// Diagonal covariances — robust at high dimension / few samples.
    Diagonal,
    /// Full covariances with a ridge for invertibility.
    Full,
}

/// One fitted Gaussian component.
#[derive(Clone, Debug)]
pub struct Component {
    pub weight: f64,
    pub mean: Vec<f64>,
    /// Diagonal variances (always kept; Full additionally stores `cov`).
    pub var: Vec<f64>,
    /// Full covariance (only for [`Covariance::Full`]).
    pub cov: Option<Matrix>,
    /// Cached inverse covariance for Mahalanobis scoring.
    inv_cov: Option<Matrix>,
    log_det: f64,
}

/// A fitted Gaussian mixture.
#[derive(Clone, Debug)]
pub struct GaussianMixture {
    pub components: Vec<Component>,
    pub covariance: Covariance,
    /// Final mean log-likelihood per sample.
    pub log_likelihood: f64,
    pub iterations: usize,
}

/// Fit configuration.
#[derive(Clone, Debug)]
pub struct GmmConfig {
    pub n_components: usize,
    pub covariance: Covariance,
    pub max_iter: usize,
    pub tol: f64,
    /// Variance floor / ridge added to covariances.
    pub reg: f64,
    /// Dirichlet concentration prior on weights; > 0 makes this the
    /// "Bayesian" GMM of the ISC'20 baseline (small components shrink).
    pub weight_prior: f64,
    pub seed: u64,
}

impl Default for GmmConfig {
    fn default() -> Self {
        Self {
            n_components: 4,
            covariance: Covariance::Diagonal,
            max_iter: 100,
            tol: 1e-5,
            reg: 1e-6,
            weight_prior: 0.0,
            seed: 0,
        }
    }
}

const LOG_2PI: f64 = 1.8378770664093453; // ln(2π)

impl Component {
    fn log_pdf(&self, x: &[f64], covariance: Covariance) -> f64 {
        let d = x.len() as f64;
        match covariance {
            Covariance::Diagonal => {
                let mut q = 0.0;
                for ((&xi, &mi), &vi) in x.iter().zip(&self.mean).zip(&self.var) {
                    let dx = xi - mi;
                    q += dx * dx / vi;
                }
                -0.5 * (d * LOG_2PI + self.log_det + q)
            }
            Covariance::Full => {
                let q = self.mahalanobis_sq(x, covariance);
                -0.5 * (d * LOG_2PI + self.log_det + q)
            }
        }
    }

    /// Squared Mahalanobis distance to this component.
    pub fn mahalanobis_sq(&self, x: &[f64], covariance: Covariance) -> f64 {
        match covariance {
            Covariance::Diagonal => x
                .iter()
                .zip(&self.mean)
                .zip(&self.var)
                .map(|((&xi, &mi), &vi)| {
                    let dx = xi - mi;
                    dx * dx / vi
                })
                .sum(),
            Covariance::Full => match self.inv_cov.as_ref() {
                Some(inv) => {
                    let d: Vec<f64> = x.iter().zip(&self.mean).map(|(a, b)| a - b).collect();
                    let dv = Matrix::col_vector(&d);
                    let tmp = inv.matmul(&dv);
                    d.iter().zip(tmp.as_slice()).map(|(a, b)| a * b).sum()
                }
                // Before the first M step, components only carry diagonal
                // seed variances: fall back to the diagonal form.
                None => self.mahalanobis_sq(x, Covariance::Diagonal),
            },
        }
    }
}

impl GaussianMixture {
    /// Fit by EM with k-means++-style mean seeding.
    pub fn fit(data: &[Vec<f64>], cfg: &GmmConfig) -> Self {
        let n = data.len();
        assert!(n > 0, "GMM requires at least one sample");
        let dim = data[0].len();
        let k = cfg.n_components.min(n).max(1);
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let _ = &mut rng;

        // Seed means via k-means (few iterations) for stable EM starts.
        let km = crate::kmeans::kmeans(data, k, 10, cfg.seed);
        let global_var: Vec<f64> = (0..dim)
            .map(|j| {
                let col: Vec<f64> = data.iter().map(|p| p[j]).collect();
                ns_linalg::stats::variance(&col).max(cfg.reg)
            })
            .collect();
        let mut components: Vec<Component> = km
            .centroids
            .iter()
            .map(|c| Component {
                weight: 1.0 / k as f64,
                mean: c.clone(),
                var: global_var.clone(),
                cov: None,
                inv_cov: None,
                log_det: global_var.iter().map(|v| v.ln()).sum(),
            })
            .collect();

        let mut prev_ll = f64::NEG_INFINITY;
        let mut iterations = 0;
        let mut resp = vec![0.0f64; n * k];
        for it in 0..cfg.max_iter {
            iterations = it + 1;
            // E step.
            let mut ll_sum = 0.0;
            for (i, x) in data.iter().enumerate() {
                let logs: Vec<f64> = components
                    .iter()
                    .map(|c| c.weight.max(1e-300).ln() + c.log_pdf(x, cfg.covariance))
                    .collect();
                let m = logs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                let mut denom = 0.0;
                for &l in &logs {
                    denom += (l - m).exp();
                }
                let log_norm = m + denom.ln();
                ll_sum += log_norm;
                for (c, &l) in logs.iter().enumerate() {
                    resp[i * k + c] = (l - log_norm).exp();
                }
            }
            let ll = ll_sum / n as f64;

            // M step.
            for c in 0..k {
                let nk: f64 = (0..n).map(|i| resp[i * k + c]).sum();
                let nk_safe = nk.max(1e-12);
                // Dirichlet prior on weights (simple MAP update).
                components[c].weight =
                    (nk + cfg.weight_prior) / (n as f64 + cfg.weight_prior * k as f64);
                let mut mean = vec![0.0; dim];
                for (i, x) in data.iter().enumerate() {
                    vecops::axpy(&mut mean, resp[i * k + c], x);
                }
                vecops::scale(&mut mean, 1.0 / nk_safe);
                components[c].mean = mean;
                match cfg.covariance {
                    Covariance::Diagonal => {
                        let mut var = vec![0.0; dim];
                        for (i, x) in data.iter().enumerate() {
                            let r = resp[i * k + c];
                            for (j, slot) in var.iter_mut().enumerate() {
                                let dx = x[j] - components[c].mean[j];
                                *slot += r * dx * dx;
                            }
                        }
                        for v in var.iter_mut() {
                            *v = (*v / nk_safe).max(cfg.reg);
                        }
                        components[c].log_det = var.iter().map(|v| v.ln()).sum();
                        components[c].var = var;
                    }
                    Covariance::Full => {
                        let mut cov = Matrix::zeros(dim, dim);
                        for (i, x) in data.iter().enumerate() {
                            let r = resp[i * k + c];
                            for a in 0..dim {
                                let da = x[a] - components[c].mean[a];
                                for b in 0..dim {
                                    let db = x[b] - components[c].mean[b];
                                    cov[(a, b)] += r * da * db;
                                }
                            }
                        }
                        for a in 0..dim {
                            for b in 0..dim {
                                cov[(a, b)] /= nk_safe;
                            }
                            cov[(a, a)] += cfg.reg;
                        }
                        let inv = decomp::inverse(&cov).unwrap_or_else(|_| {
                            // Degenerate: fall back to the diagonal inverse.
                            let mut m = Matrix::zeros(dim, dim);
                            for a in 0..dim {
                                m[(a, a)] = 1.0 / cov[(a, a)].max(cfg.reg);
                            }
                            m
                        });
                        let ld = decomp::log_det(&cov).unwrap_or_else(|_| {
                            (0..dim).map(|a| cov[(a, a)].max(cfg.reg).ln()).sum()
                        });
                        components[c].var = (0..dim).map(|a| cov[(a, a)]).collect();
                        components[c].cov = Some(cov);
                        components[c].inv_cov = Some(inv);
                        components[c].log_det = ld;
                    }
                }
            }
            // Renormalise weights (prior update can drift slightly).
            let wsum: f64 = components.iter().map(|c| c.weight).sum();
            for c in components.iter_mut() {
                c.weight /= wsum;
            }

            if (ll - prev_ll).abs() < cfg.tol && it > 2 {
                prev_ll = ll;
                break;
            }
            prev_ll = ll;
        }

        GaussianMixture {
            components,
            covariance: cfg.covariance,
            log_likelihood: prev_ll,
            iterations,
        }
    }

    /// Log-likelihood of a single point under the mixture.
    pub fn score_sample(&self, x: &[f64]) -> f64 {
        let logs: Vec<f64> = self
            .components
            .iter()
            .map(|c| c.weight.max(1e-300).ln() + c.log_pdf(x, self.covariance))
            .collect();
        let m = logs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        m + logs.iter().map(|&l| (l - m).exp()).sum::<f64>().ln()
    }

    /// Most likely component index for a point.
    pub fn predict(&self, x: &[f64]) -> usize {
        let logs: Vec<f64> = self
            .components
            .iter()
            .map(|c| c.weight.max(1e-300).ln() + c.log_pdf(x, self.covariance))
            .collect();
        vecops::argmax(&logs).unwrap_or(0)
    }

    /// Minimum Mahalanobis distance from the point to any component —
    /// the ISC'20 anomaly score.
    pub fn min_mahalanobis(&self, x: &[f64]) -> f64 {
        self.components
            .iter()
            .map(|c| c.mahalanobis_sq(x, self.covariance).sqrt())
            .fold(f64::INFINITY, f64::min)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_gaussians() -> Vec<Vec<f64>> {
        // Deterministic pseudo-noise around two means.
        let mut data = Vec::new();
        for i in 0..60 {
            let e1 = ((i * 37 % 11) as f64 - 5.0) / 20.0;
            let e2 = ((i * 53 % 13) as f64 - 6.0) / 20.0;
            if i % 2 == 0 {
                data.push(vec![0.0 + e1, 0.0 + e2]);
            } else {
                data.push(vec![8.0 + e1, 8.0 + e2]);
            }
        }
        data
    }

    #[test]
    fn recovers_two_modes_diagonal() {
        let data = two_gaussians();
        let gmm = GaussianMixture::fit(
            &data,
            &GmmConfig {
                n_components: 2,
                ..Default::default()
            },
        );
        let mut means: Vec<f64> = gmm.components.iter().map(|c| c.mean[0]).collect();
        means.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(means[0].abs() < 1.0, "means {means:?}");
        assert!((means[1] - 8.0).abs() < 1.0);
        assert!((gmm.components.iter().map(|c| c.weight).sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn full_covariance_fits_correlated_data() {
        // Strongly correlated 2-D Gaussian.
        let data: Vec<Vec<f64>> = (0..80)
            .map(|i| {
                let t = ((i * 29) % 17) as f64 - 8.0;
                let n = ((i * 31) % 7) as f64 / 10.0;
                vec![t, t + n]
            })
            .collect();
        let gmm = GaussianMixture::fit(
            &data,
            &GmmConfig {
                n_components: 1,
                covariance: Covariance::Full,
                ..Default::default()
            },
        );
        let cov = gmm.components[0].cov.as_ref().unwrap();
        // Off-diagonal should be close to the diagonal (corr ≈ 1).
        assert!(cov[(0, 1)] > 0.8 * cov[(0, 0)]);
        // Mahalanobis of the mean is ~0.
        let m = gmm.components[0].mean.clone();
        assert!(gmm.components[0].mahalanobis_sq(&m, Covariance::Full) < 1e-9);
    }

    #[test]
    fn outliers_score_high_mahalanobis() {
        let data = two_gaussians();
        let gmm = GaussianMixture::fit(
            &data,
            &GmmConfig {
                n_components: 2,
                ..Default::default()
            },
        );
        let inlier = gmm.min_mahalanobis(&[0.0, 0.0]);
        let outlier = gmm.min_mahalanobis(&[40.0, -30.0]);
        assert!(
            outlier > 10.0 * inlier.max(0.1),
            "in={inlier} out={outlier}"
        );
    }

    #[test]
    fn predict_assigns_to_nearest_mode() {
        let data = two_gaussians();
        let gmm = GaussianMixture::fit(
            &data,
            &GmmConfig {
                n_components: 2,
                ..Default::default()
            },
        );
        let a = gmm.predict(&[0.0, 0.0]);
        let b = gmm.predict(&[8.0, 8.0]);
        assert_ne!(a, b);
    }

    #[test]
    fn weight_prior_shrinks_spurious_components() {
        let data = two_gaussians();
        let plain = GaussianMixture::fit(
            &data,
            &GmmConfig {
                n_components: 6,
                seed: 3,
                ..Default::default()
            },
        );
        let bayes = GaussianMixture::fit(
            &data,
            &GmmConfig {
                n_components: 6,
                weight_prior: 20.0,
                seed: 3,
                ..Default::default()
            },
        );
        let min_plain = plain
            .components
            .iter()
            .map(|c| c.weight)
            .fold(f64::INFINITY, f64::min);
        let min_bayes = bayes
            .components
            .iter()
            .map(|c| c.weight)
            .fold(f64::INFINITY, f64::min);
        // The prior pulls small weights toward uniform, away from zero.
        assert!(min_bayes >= min_plain - 1e-9);
    }

    #[test]
    fn likelihood_is_finite_and_improves() {
        let data = two_gaussians();
        let g1 = GaussianMixture::fit(
            &data,
            &GmmConfig {
                n_components: 1,
                ..Default::default()
            },
        );
        let g2 = GaussianMixture::fit(
            &data,
            &GmmConfig {
                n_components: 2,
                ..Default::default()
            },
        );
        assert!(g1.log_likelihood.is_finite());
        assert!(
            g2.log_likelihood > g1.log_likelihood,
            "more components must fit better"
        );
    }
}
