//! Silhouette coefficient and silhouette-driven automatic cluster-count
//! selection (the paper's §3.3: "operators do not require iterative
//! attempts to determine the optimal number of clusters").

use crate::hac::Dendrogram;
use ns_linalg::distance::CondensedDistance;
use rayon::prelude::*;

/// Mean silhouette coefficient of a labelling over a condensed distance
/// matrix. Singleton clusters contribute 0 (scikit-learn convention).
/// Returns 0 when there are fewer than 2 clusters or fewer than 2 points.
pub fn silhouette_score(dist: &CondensedDistance, labels: &[usize]) -> f64 {
    let n = labels.len();
    assert_eq!(dist.len(), n, "distance matrix and labels disagree on n");
    if n < 2 {
        return 0.0;
    }
    let k = labels.iter().max().map(|m| m + 1).unwrap_or(0);
    if k < 2 {
        return 0.0;
    }
    let mut counts = vec![0usize; k];
    for &l in labels {
        counts[l] += 1;
    }
    let scores: f64 = (0..n)
        .into_par_iter()
        .map(|i| {
            let li = labels[i];
            if counts[li] <= 1 {
                return 0.0;
            }
            // Mean distance to every cluster.
            let mut sums = vec![0.0f64; k];
            for j in 0..n {
                if j == i {
                    continue;
                }
                sums[labels[j]] += dist.get(i, j);
            }
            let a = sums[li] / (counts[li] - 1) as f64;
            let b = (0..k)
                .filter(|&c| c != li && counts[c] > 0)
                .map(|c| sums[c] / counts[c] as f64)
                .fold(f64::INFINITY, f64::min);
            if !b.is_finite() {
                return 0.0;
            }
            let denom = a.max(b);
            if denom < 1e-24 {
                0.0
            } else {
                (b - a) / denom
            }
        })
        .sum();
    scores / n as f64
}

/// Result of a silhouette sweep over dendrogram cuts.
#[derive(Clone, Debug)]
pub struct KSelection {
    /// Chosen number of clusters.
    pub k: usize,
    /// Labels at the chosen `k`.
    pub labels: Vec<usize>,
    /// Silhouette at the chosen `k`.
    pub score: f64,
    /// The full `(k, score)` sweep for diagnostics.
    pub sweep: Vec<(usize, f64)>,
}

/// Sweep `k = 2..=k_max` over dendrogram cuts and pick the silhouette
/// maximiser. Falls back to `k = 1` when no cut scores above `min_score`
/// (all-similar segment populations collapse to a single shared model).
pub fn select_k(
    dist: &CondensedDistance,
    dendrogram: &Dendrogram,
    k_max: usize,
    min_score: f64,
) -> KSelection {
    let n = dendrogram.len();
    let k_hi = k_max.min(n.saturating_sub(1)).max(1);
    let mut sweep = Vec::new();
    let mut best: Option<(usize, f64, Vec<usize>)> = None;
    for k in 2..=k_hi {
        let labels = dendrogram.cut_k(k);
        let score = silhouette_score(dist, &labels);
        sweep.push((k, score));
        let better = match &best {
            Some((_, bs, _)) => score > *bs,
            None => true,
        };
        if better {
            best = Some((k, score, labels));
        }
    }
    match best {
        Some((k, score, labels)) if score >= min_score => KSelection {
            k,
            labels,
            score,
            sweep,
        },
        _ => KSelection {
            k: 1,
            labels: vec![0; n],
            score: 0.0,
            sweep,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hac::{linkage, Linkage};
    use ns_linalg::vecops;

    fn blobs(centers: &[(f64, f64)], per: usize) -> Vec<Vec<f64>> {
        let mut pts = Vec::new();
        for &(cx, cy) in centers {
            for k in 0..per {
                let d = k as f64 * 0.05;
                pts.push(vec![cx + d, cy - d]);
            }
        }
        pts
    }

    fn dist_of(data: &[Vec<f64>]) -> CondensedDistance {
        CondensedDistance::compute(data.len(), |i, j| vecops::euclidean(&data[i], &data[j]))
    }

    #[test]
    fn perfect_clustering_scores_near_one() {
        let data = blobs(&[(0.0, 0.0), (100.0, 0.0)], 6);
        let labels: Vec<usize> = (0..12).map(|i| i / 6).collect();
        let s = silhouette_score(&dist_of(&data), &labels);
        assert!(s > 0.95, "got {s}");
    }

    #[test]
    fn bad_clustering_scores_low() {
        let data = blobs(&[(0.0, 0.0), (100.0, 0.0)], 6);
        // Mix the blobs deliberately.
        let labels: Vec<usize> = (0..12).map(|i| i % 2).collect();
        let s = silhouette_score(&dist_of(&data), &labels);
        assert!(s < 0.1, "got {s}");
    }

    #[test]
    fn score_bounded_in_unit_interval() {
        let data: Vec<Vec<f64>> = (0..20)
            .map(|i| vec![((i * 7) % 13) as f64, (i % 5) as f64])
            .collect();
        let dist = dist_of(&data);
        for k in 2..6 {
            let labels: Vec<usize> = (0..20).map(|i| i % k).collect();
            let s = silhouette_score(&dist, &labels);
            assert!((-1.0..=1.0).contains(&s));
        }
    }

    #[test]
    fn singleton_and_single_cluster_degenerate_to_zero() {
        let data = blobs(&[(0.0, 0.0)], 5);
        let dist = dist_of(&data);
        assert_eq!(silhouette_score(&dist, &[0; 5]), 0.0);
        let one = CondensedDistance::compute(1, |_, _| 0.0);
        assert_eq!(silhouette_score(&one, &[0]), 0.0);
    }

    #[test]
    fn select_k_finds_true_blob_count() {
        for true_k in [2usize, 3, 4] {
            let centers: Vec<(f64, f64)> = (0..true_k).map(|i| (i as f64 * 50.0, 0.0)).collect();
            let data = blobs(&centers, 6);
            let dist = dist_of(&data);
            let dend = linkage(&data, Linkage::Average);
            let sel = select_k(&dist, &dend, 10, 0.0);
            assert_eq!(sel.k, true_k, "sweep: {:?}", sel.sweep);
            assert!(sel.score > 0.8);
        }
    }

    #[test]
    fn select_k_falls_back_to_one_cluster() {
        // A single diffuse blob: every cut scores below an aggressive
        // threshold, so selection falls back to k = 1.
        let data: Vec<Vec<f64>> = (0..12)
            .map(|i| vec![(i % 4) as f64 * 0.1, (i / 4) as f64 * 0.1])
            .collect();
        let dist = dist_of(&data);
        let dend = linkage(&data, Linkage::Average);
        let sel = select_k(&dist, &dend, 6, 0.99);
        assert_eq!(sel.k, 1);
        assert!(sel.labels.iter().all(|&l| l == 0));
    }
}
