//! Dynamic Time Warping with an optional Sakoe-Chiba band.
//!
//! The paper's Challenge 1 argues DTW-based clustering of variable-length
//! segments is computationally infeasible at HPC scale ("clustering a
//! week's worth of data would take 3.8 months"). We implement DTW both as
//! the shape-based comparator for that cost experiment (`exp_dtw_cost`)
//! and as a general utility.

/// DTW distance between two univariate series under squared pointwise
/// cost, returned as the square root of the accumulated cost (a proper
/// curve distance scale).
///
/// `band` limits the warping window (Sakoe-Chiba radius); `None` is the
/// unconstrained O(len_a · len_b) recurrence.
pub fn dtw_distance(a: &[f64], b: &[f64], band: Option<usize>) -> f64 {
    let (n, m) = (a.len(), b.len());
    if n == 0 || m == 0 {
        return if n == m { 0.0 } else { f64::INFINITY };
    }
    // The band must be at least |n-m| wide to admit any path.
    let w = band.map(|r| r.max(n.abs_diff(m))).unwrap_or(usize::MAX);

    // Two-row rolling DP.
    let inf = f64::INFINITY;
    let mut prev = vec![inf; m + 1];
    let mut curr = vec![inf; m + 1];
    prev[0] = 0.0;
    for i in 1..=n {
        curr.fill(inf);
        let lo = if w == usize::MAX {
            1
        } else {
            i.saturating_sub(w).max(1)
        };
        let hi = if w == usize::MAX { m } else { (i + w).min(m) };
        for j in lo..=hi {
            let d = a[i - 1] - b[j - 1];
            let cost = d * d;
            let best = prev[j].min(curr[j - 1]).min(prev[j - 1]);
            curr[j] = cost + best;
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[m].sqrt()
}

/// Multivariate DTW: pointwise cost is the squared Euclidean distance
/// between row vectors. `a` and `b` are `T × M` row-major sequences with
/// equal width.
pub fn dtw_distance_mts(a: &[Vec<f64>], b: &[Vec<f64>], band: Option<usize>) -> f64 {
    let (n, m) = (a.len(), b.len());
    if n == 0 || m == 0 {
        return if n == m { 0.0 } else { f64::INFINITY };
    }
    let w = band.map(|r| r.max(n.abs_diff(m))).unwrap_or(usize::MAX);
    let inf = f64::INFINITY;
    let mut prev = vec![inf; m + 1];
    let mut curr = vec![inf; m + 1];
    prev[0] = 0.0;
    for i in 1..=n {
        curr.fill(inf);
        let lo = if w == usize::MAX {
            1
        } else {
            i.saturating_sub(w).max(1)
        };
        let hi = if w == usize::MAX { m } else { (i + w).min(m) };
        for j in lo..=hi {
            let cost = ns_linalg::vecops::euclidean_sq(&a[i - 1], &b[j - 1]);
            let best = prev[j].min(curr[j - 1]).min(prev[j - 1]);
            curr[j] = cost + best;
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[m].sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_series_distance_zero() {
        let x = [1.0, 2.0, 3.0, 2.0, 1.0];
        assert_eq!(dtw_distance(&x, &x, None), 0.0);
        assert_eq!(dtw_distance(&x, &x, Some(1)), 0.0);
    }

    #[test]
    fn shifted_series_cheaper_than_euclidean() {
        // A pulse and the same pulse shifted by 2: DTW warps it away.
        let a = [0.0, 0.0, 1.0, 1.0, 0.0, 0.0, 0.0, 0.0];
        let b = [0.0, 0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 0.0];
        let dtw = dtw_distance(&a, &b, None);
        let euc: f64 = a
            .iter()
            .zip(&b)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt();
        assert!(dtw < euc, "dtw {dtw} vs euclid {euc}");
    }

    #[test]
    fn different_lengths_are_comparable() {
        let a = [0.0, 1.0, 2.0, 3.0, 4.0];
        let b = [0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0];
        let d = dtw_distance(&a, &b, None);
        assert!(d.is_finite());
        assert!(d < 2.0, "warped ramp-to-ramp distance should be small: {d}");
    }

    #[test]
    fn band_never_below_unconstrained() {
        let a: Vec<f64> = (0..30).map(|i| ((i as f64) * 0.4).sin()).collect();
        let b: Vec<f64> = (0..30).map(|i| ((i as f64) * 0.4 + 1.0).sin()).collect();
        let full = dtw_distance(&a, &b, None);
        let banded = dtw_distance(&a, &b, Some(3));
        assert!(banded >= full - 1e-12);
        // Wide band converges to unconstrained.
        let wide = dtw_distance(&a, &b, Some(30));
        assert!((wide - full).abs() < 1e-12);
    }

    #[test]
    fn band_admits_length_mismatch() {
        let a = [1.0; 10];
        let b = [1.0; 20];
        // Radius 1 < |10-20| but the implementation widens it.
        assert_eq!(dtw_distance(&a, &b, Some(1)), 0.0);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(dtw_distance(&[], &[], None), 0.0);
        assert_eq!(dtw_distance(&[1.0], &[], None), f64::INFINITY);
    }

    #[test]
    fn mts_matches_univariate_on_width_one() {
        let a = [0.0, 1.0, 2.0, 1.0];
        let b = [0.0, 2.0, 2.0, 0.0];
        let av: Vec<Vec<f64>> = a.iter().map(|&v| vec![v]).collect();
        let bv: Vec<Vec<f64>> = b.iter().map(|&v| vec![v]).collect();
        assert!((dtw_distance(&a, &b, None) - dtw_distance_mts(&av, &bv, None)).abs() < 1e-12);
    }

    #[test]
    fn symmetry() {
        let a = [3.0, 1.0, 4.0, 1.0, 5.0];
        let b = [2.0, 7.0, 1.0];
        assert!((dtw_distance(&a, &b, None) - dtw_distance(&b, &a, None)).abs() < 1e-12);
    }
}
