//! Dynamic Time Warping with an optional Sakoe-Chiba band.
//!
//! The paper's Challenge 1 argues DTW-based clustering of variable-length
//! segments is computationally infeasible at HPC scale ("clustering a
//! week's worth of data would take 3.8 months"). We implement DTW both as
//! the shape-based comparator for that cost experiment (`exp_dtw_cost`)
//! and as a general utility.

/// Banded two-row DP shared by every public entry point.
///
/// `cost(i, j)` is the squared pointwise cost of aligning `a[i]` with
/// `b[j]` (0-based); `w` is the already-widened Sakoe-Chiba radius
/// (`usize::MAX` = unconstrained); `cutoff_sq` is the squared abandon
/// threshold (`f64::INFINITY` = never abandon). Returns the accumulated
/// squared cost of the best path, or `f64::INFINITY` once the cutoff
/// proves the final distance cannot come in below the caller's bound.
fn dtw_accumulate(
    n: usize,
    m: usize,
    w: usize,
    cutoff_sq: f64,
    cost: impl Fn(usize, usize) -> f64,
) -> f64 {
    let inf = f64::INFINITY;
    let mut prev = vec![inf; m + 1];
    let mut curr = vec![inf; m + 1];
    prev[0] = 0.0;
    for i in 1..=n {
        let lo = if w == usize::MAX {
            1
        } else {
            i.saturating_sub(w).max(1)
        };
        let hi = if w == usize::MAX { m } else { (i + w).min(m) };
        // Both band edges are nondecreasing in `i`, and row `i+1` reads
        // this row (as `prev`) only at positions `[lo'-1, hi']` with
        // `lo' >= lo` and `hi' <= hi + 1`. Clearing just
        // `[lo-1, min(hi+1, m)]` therefore leaves no stale cell reachable
        // — the previous full-row `fill` cleared O(m) cells per row even
        // for a narrow band. (`hi+1` is required: a plain `[lo-1, hi]`
        // clear would leave a two-rows-old value where the next row's
        // band grows by one.)
        curr[lo - 1..=(hi + 1).min(m)].fill(inf);
        let mut row_min = inf;
        for j in lo..=hi {
            let c = cost(i - 1, j - 1);
            let best = prev[j].min(curr[j - 1]).min(prev[j - 1]);
            let v = c + best;
            curr[j] = v;
            row_min = row_min.min(v);
        }
        // Early abandon: costs are non-negative and every cell of each
        // later row is bounded below by the minimum of the current row,
        // so once that minimum reaches the cutoff no path can finish
        // under it.
        if row_min >= cutoff_sq {
            return inf;
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[m]
}

/// DTW distance between two univariate series under squared pointwise
/// cost, returned as the square root of the accumulated cost (a proper
/// curve distance scale).
///
/// `band` limits the warping window (Sakoe-Chiba radius); `None` is the
/// unconstrained O(len_a · len_b) recurrence.
pub fn dtw_distance(a: &[f64], b: &[f64], band: Option<usize>) -> f64 {
    dtw_distance_cutoff(a, b, band, None)
}

/// [`dtw_distance`] with an early-abandon `cutoff`: whenever the true
/// distance is below `cutoff` the exact value is returned; otherwise the
/// result is either the exact value or `f64::INFINITY`, and the DP may
/// stop as soon as a whole row proves the bound unreachable. Useful for
/// nearest-neighbour style scans that only care about distances under a
/// running best.
pub fn dtw_distance_cutoff(a: &[f64], b: &[f64], band: Option<usize>, cutoff: Option<f64>) -> f64 {
    let (n, m) = (a.len(), b.len());
    if n == 0 || m == 0 {
        return if n == m { 0.0 } else { f64::INFINITY };
    }
    // The band must be at least |n-m| wide to admit any path.
    let w = band.map(|r| r.max(n.abs_diff(m))).unwrap_or(usize::MAX);
    let cutoff_sq = cutoff
        .map(|c| c.max(0.0) * c.max(0.0))
        .unwrap_or(f64::INFINITY);
    dtw_accumulate(n, m, w, cutoff_sq, |i, j| {
        let d = a[i] - b[j];
        d * d
    })
    .sqrt()
}

/// Multivariate DTW: pointwise cost is the squared Euclidean distance
/// between row vectors. `a` and `b` are `T × M` row-major sequences with
/// equal width.
pub fn dtw_distance_mts(a: &[Vec<f64>], b: &[Vec<f64>], band: Option<usize>) -> f64 {
    dtw_distance_mts_cutoff(a, b, band, None)
}

/// [`dtw_distance_mts`] with the same early-abandon `cutoff` contract as
/// [`dtw_distance_cutoff`].
pub fn dtw_distance_mts_cutoff(
    a: &[Vec<f64>],
    b: &[Vec<f64>],
    band: Option<usize>,
    cutoff: Option<f64>,
) -> f64 {
    let (n, m) = (a.len(), b.len());
    if n == 0 || m == 0 {
        return if n == m { 0.0 } else { f64::INFINITY };
    }
    let w = band.map(|r| r.max(n.abs_diff(m))).unwrap_or(usize::MAX);
    let cutoff_sq = cutoff
        .map(|c| c.max(0.0) * c.max(0.0))
        .unwrap_or(f64::INFINITY);
    dtw_accumulate(n, m, w, cutoff_sq, |i, j| {
        ns_linalg::vecops::euclidean_sq(&a[i], &b[j])
    })
    .sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_series_distance_zero() {
        let x = [1.0, 2.0, 3.0, 2.0, 1.0];
        assert_eq!(dtw_distance(&x, &x, None), 0.0);
        assert_eq!(dtw_distance(&x, &x, Some(1)), 0.0);
    }

    #[test]
    fn shifted_series_cheaper_than_euclidean() {
        // A pulse and the same pulse shifted by 2: DTW warps it away.
        let a = [0.0, 0.0, 1.0, 1.0, 0.0, 0.0, 0.0, 0.0];
        let b = [0.0, 0.0, 0.0, 0.0, 1.0, 1.0, 0.0, 0.0];
        let dtw = dtw_distance(&a, &b, None);
        let euc: f64 = a
            .iter()
            .zip(&b)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt();
        assert!(dtw < euc, "dtw {dtw} vs euclid {euc}");
    }

    #[test]
    fn different_lengths_are_comparable() {
        let a = [0.0, 1.0, 2.0, 3.0, 4.0];
        let b = [0.0, 0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0];
        let d = dtw_distance(&a, &b, None);
        assert!(d.is_finite());
        assert!(d < 2.0, "warped ramp-to-ramp distance should be small: {d}");
    }

    #[test]
    fn band_never_below_unconstrained() {
        let a: Vec<f64> = (0..30).map(|i| ((i as f64) * 0.4).sin()).collect();
        let b: Vec<f64> = (0..30).map(|i| ((i as f64) * 0.4 + 1.0).sin()).collect();
        let full = dtw_distance(&a, &b, None);
        let banded = dtw_distance(&a, &b, Some(3));
        assert!(banded >= full - 1e-12);
        // Wide band converges to unconstrained.
        let wide = dtw_distance(&a, &b, Some(30));
        assert!((wide - full).abs() < 1e-12);
    }

    #[test]
    fn band_admits_length_mismatch() {
        let a = [1.0; 10];
        let b = [1.0; 20];
        // Radius 1 < |10-20| but the implementation widens it.
        assert_eq!(dtw_distance(&a, &b, Some(1)), 0.0);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(dtw_distance(&[], &[], None), 0.0);
        assert_eq!(dtw_distance(&[1.0], &[], None), f64::INFINITY);
    }

    #[test]
    fn mts_matches_univariate_on_width_one() {
        let a = [0.0, 1.0, 2.0, 1.0];
        let b = [0.0, 2.0, 2.0, 0.0];
        let av: Vec<Vec<f64>> = a.iter().map(|&v| vec![v]).collect();
        let bv: Vec<Vec<f64>> = b.iter().map(|&v| vec![v]).collect();
        assert!((dtw_distance(&a, &b, None) - dtw_distance_mts(&av, &bv, None)).abs() < 1e-12);
    }

    #[test]
    fn symmetry() {
        let a = [3.0, 1.0, 4.0, 1.0, 5.0];
        let b = [2.0, 7.0, 1.0];
        assert!((dtw_distance(&a, &b, None) - dtw_distance(&b, &a, None)).abs() < 1e-12);
    }

    /// Reference recurrence with the original full-row `fill`, used to pin
    /// the touched-range clear against the old behaviour bit for bit.
    fn reference_banded(a: &[f64], b: &[f64], band: Option<usize>) -> f64 {
        let (n, m) = (a.len(), b.len());
        if n == 0 || m == 0 {
            return if n == m { 0.0 } else { f64::INFINITY };
        }
        let w = band.map(|r| r.max(n.abs_diff(m))).unwrap_or(usize::MAX);
        let inf = f64::INFINITY;
        let mut prev = vec![inf; m + 1];
        let mut curr = vec![inf; m + 1];
        prev[0] = 0.0;
        for i in 1..=n {
            curr.fill(inf);
            let lo = if w == usize::MAX {
                1
            } else {
                i.saturating_sub(w).max(1)
            };
            let hi = if w == usize::MAX { m } else { (i + w).min(m) };
            for j in lo..=hi {
                let d = a[i - 1] - b[j - 1];
                let best = prev[j].min(curr[j - 1]).min(prev[j - 1]);
                curr[j] = d * d + best;
            }
            std::mem::swap(&mut prev, &mut curr);
        }
        prev[m].sqrt()
    }

    fn series(seed: u64, len: usize) -> Vec<f64> {
        (0..len)
            .map(|i| ((i as f64 * 0.31 + seed as f64 * 1.7).sin() * 2.0) + (i % 5) as f64 * 0.1)
            .collect()
    }

    #[test]
    fn touched_range_clear_matches_full_fill_reference() {
        for (la, lb) in [(17usize, 17usize), (12, 25), (25, 12), (1, 9), (30, 30)] {
            let a = series(1, la);
            let b = series(9, lb);
            for band in [None, Some(0), Some(1), Some(2), Some(5), Some(40)] {
                let got = dtw_distance(&a, &b, band);
                let want = reference_banded(&a, &b, band);
                assert_eq!(
                    got.to_bits(),
                    want.to_bits(),
                    "len ({la},{lb}) band {band:?}"
                );
            }
        }
    }

    #[test]
    fn cutoff_is_exact_where_admissible() {
        let a = series(3, 24);
        let b = series(7, 20);
        for band in [None, Some(3), Some(8)] {
            let plain = dtw_distance(&a, &b, band);
            // Any cutoff strictly above the true distance must not change
            // the answer, to the bit.
            for slack in [1e-9, 0.5, 100.0] {
                let got = dtw_distance_cutoff(&a, &b, band, Some(plain + slack));
                assert_eq!(got.to_bits(), plain.to_bits(), "band {band:?} +{slack}");
            }
        }
    }

    #[test]
    fn cutoff_abandons_hopeless_pairs() {
        // Every pointwise cost is 100, so row 1's minimum already proves
        // the distance cannot come in under 0.5.
        let a = [10.0; 16];
        let b = [0.0; 16];
        assert_eq!(
            dtw_distance_cutoff(&a, &b, Some(4), Some(0.5)),
            f64::INFINITY
        );
        // Without a cutoff the distance is finite and large.
        assert!(dtw_distance(&a, &b, Some(4)).is_finite());
    }

    #[test]
    fn mts_cutoff_mirrors_univariate_contract() {
        let a = series(2, 18);
        let b = series(5, 22);
        let av: Vec<Vec<f64>> = a.iter().map(|&v| vec![v]).collect();
        let bv: Vec<Vec<f64>> = b.iter().map(|&v| vec![v]).collect();
        let plain = dtw_distance_mts(&av, &bv, Some(6));
        let got = dtw_distance_mts_cutoff(&av, &bv, Some(6), Some(plain + 1.0));
        assert_eq!(got.to_bits(), plain.to_bits());
        let far_a = vec![vec![10.0, 10.0]; 12];
        let far_b = vec![vec![0.0, 0.0]; 12];
        assert_eq!(
            dtw_distance_mts_cutoff(&far_a, &far_b, Some(2), Some(1.0)),
            f64::INFINITY
        );
    }

    #[test]
    fn banded_equals_unconstrained_when_band_covers_everything() {
        let a = series(4, 21);
        let b = series(8, 27);
        let full = dtw_distance(&a, &b, None);
        let covered = dtw_distance(&a, &b, Some(27));
        assert_eq!(covered.to_bits(), full.to_bits());
    }
}
