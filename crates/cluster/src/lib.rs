//! `ns-cluster` — clustering substrate for NodeSentry.
//!
//! The paper's coarse-grained stage needs Hierarchical Agglomerative
//! Clustering with automatic cluster-count selection via the silhouette
//! coefficient (§3.3); the baselines need Gaussian mixtures (ISC'20) and
//! DBSCAN (DeepHYDRA-style pipelines); the Challenge-1 cost argument needs
//! DTW; utilities need k-means and PCA. This crate provides all of them,
//! implemented from scratch over `ns-linalg`:
//!
//! * [`hac`] — NN-chain HAC with single/complete/average/Ward linkage and
//!   dendrogram cuts,
//! * [`silhouette`] — silhouette scoring and [`silhouette::select_k`],
//! * [`kmeans`] — k-means++,
//! * [`gmm`] — EM-fitted (Bayesian-optional) Gaussian mixtures with
//!   Mahalanobis scoring,
//! * [`dbscan`] — density clustering,
//! * [`dtw`] — (banded) dynamic time warping, uni- and multivariate,
//! * [`pca`] — power-iteration PCA.

pub mod dbscan;
pub mod dtw;
pub mod gmm;
pub mod hac;
pub mod kmeans;
pub mod pca;
pub mod silhouette;

pub use hac::{linkage, linkage_from_distance, Dendrogram, Linkage, Merge};
pub use silhouette::{select_k, silhouette_score, KSelection};
