//! k-means with k-means++ initialisation. Used by the labeling toolkit's
//! built-in clustering and as a baseline component.

use ns_linalg::vecops;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Result of a k-means run.
#[derive(Clone, Debug)]
pub struct KMeansResult {
    pub centroids: Vec<Vec<f64>>,
    pub labels: Vec<usize>,
    /// Final within-cluster sum of squares.
    pub inertia: f64,
    /// Iterations until convergence (or the cap).
    pub iterations: usize,
}

/// k-means++ seeding followed by Lloyd iterations.
///
/// Deterministic for a given `seed`. `k` is clamped to the number of
/// points; empty input yields an empty result.
pub fn kmeans(data: &[Vec<f64>], k: usize, max_iter: usize, seed: u64) -> KMeansResult {
    let n = data.len();
    if n == 0 || k == 0 {
        return KMeansResult {
            centroids: Vec::new(),
            labels: Vec::new(),
            inertia: 0.0,
            iterations: 0,
        };
    }
    let k = k.min(n);
    let dim = data[0].len();
    let mut rng = ChaCha8Rng::seed_from_u64(seed);

    // --- k-means++ seeding ---
    let mut centroids: Vec<Vec<f64>> = Vec::with_capacity(k);
    centroids.push(data[rng.gen_range(0..n)].clone());
    let mut d2: Vec<f64> = data
        .iter()
        .map(|p| vecops::euclidean_sq(p, &centroids[0]))
        .collect();
    while centroids.len() < k {
        let total: f64 = d2.iter().sum();
        let next = if total <= 1e-24 {
            rng.gen_range(0..n)
        } else {
            let mut target = rng.gen::<f64>() * total;
            let mut pick = n - 1;
            for (i, &w) in d2.iter().enumerate() {
                target -= w;
                if target <= 0.0 {
                    pick = i;
                    break;
                }
            }
            pick
        };
        centroids.push(data[next].clone());
        for (i, p) in data.iter().enumerate() {
            let nd = vecops::euclidean_sq(p, centroids.last().unwrap());
            if nd < d2[i] {
                d2[i] = nd;
            }
        }
    }

    // --- Lloyd iterations ---
    let mut labels = vec![0usize; n];
    let mut iterations = 0;
    for it in 0..max_iter {
        iterations = it + 1;
        let mut changed = false;
        for (i, p) in data.iter().enumerate() {
            let mut best = 0usize;
            let mut bd = f64::INFINITY;
            for (c, cen) in centroids.iter().enumerate() {
                let d = vecops::euclidean_sq(p, cen);
                if d < bd {
                    bd = d;
                    best = c;
                }
            }
            if labels[i] != best {
                labels[i] = best;
                changed = true;
            }
        }
        // Recompute centroids; empty clusters keep their previous position.
        let mut sums = vec![vec![0.0; dim]; k];
        let mut counts = vec![0usize; k];
        for (p, &l) in data.iter().zip(&labels) {
            counts[l] += 1;
            vecops::axpy(&mut sums[l], 1.0, p);
        }
        for (c, (s, &cnt)) in sums.into_iter().zip(&counts).enumerate() {
            if cnt > 0 {
                centroids[c] = s.into_iter().map(|v| v / cnt as f64).collect();
            }
        }
        if !changed && it > 0 {
            break;
        }
    }
    let inertia = data
        .iter()
        .zip(&labels)
        .map(|(p, &l)| vecops::euclidean_sq(p, &centroids[l]))
        .sum();
    KMeansResult {
        centroids,
        labels,
        inertia,
        iterations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs() -> Vec<Vec<f64>> {
        let mut v = Vec::new();
        for (cx, cy) in [(0.0, 0.0), (20.0, 20.0)] {
            for i in 0..8 {
                v.push(vec![cx + (i % 3) as f64 * 0.1, cy + (i / 3) as f64 * 0.1]);
            }
        }
        v
    }

    #[test]
    fn separates_two_blobs() {
        let data = blobs();
        let res = kmeans(&data, 2, 100, 7);
        assert_eq!(res.labels.len(), 16);
        let l0 = res.labels[0];
        assert!(res.labels[..8].iter().all(|&l| l == l0));
        assert!(res.labels[8..].iter().all(|&l| l != l0));
        assert!(res.inertia < 1.0);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let data = blobs();
        let a = kmeans(&data, 2, 50, 42);
        let b = kmeans(&data, 2, 50, 42);
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.centroids, b.centroids);
    }

    #[test]
    fn k_clamped_to_n() {
        let data = vec![vec![0.0], vec![1.0]];
        let res = kmeans(&data, 10, 10, 1);
        assert_eq!(res.centroids.len(), 2);
        assert!(res.inertia < 1e-12);
    }

    #[test]
    fn empty_input() {
        let res = kmeans(&[], 3, 10, 1);
        assert!(res.labels.is_empty());
        assert!(res.centroids.is_empty());
    }

    #[test]
    fn identical_points_zero_inertia() {
        let data = vec![vec![2.0, 2.0]; 9];
        let res = kmeans(&data, 3, 20, 5);
        assert!(res.inertia < 1e-20);
    }
}
