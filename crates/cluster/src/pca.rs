//! Principal component analysis via power iteration with deflation.
//!
//! Used as a dimensionality-reduction utility (feature matrices ahead of
//! clustering) and by the labeling toolkit's 2-D data-distribution view.

use ns_linalg::matrix::Matrix;

/// A fitted PCA transform.
#[derive(Clone, Debug)]
pub struct Pca {
    /// Per-feature means subtracted before projection.
    pub mean: Vec<f64>,
    /// Principal axes as rows (`k × d`), unit norm, orthogonal.
    pub components: Matrix,
    /// Explained variance per component, descending.
    pub explained_variance: Vec<f64>,
}

impl Pca {
    /// Fit `k` components to row-sample data (`n × d` matrix).
    ///
    /// Power iteration with deflation on the covariance matrix: adequate
    /// for the small `k` (≤ 10) used in this workspace.
    pub fn fit(data: &Matrix, k: usize) -> Pca {
        let n = data.rows();
        let d = data.cols();
        let k = k.min(d).max(1);
        let mean: Vec<f64> = data.col_means().into_vec();
        // Centered data.
        let mut x = data.clone();
        for r in 0..n {
            for (v, m) in x.row_mut(r).iter_mut().zip(&mean) {
                *v -= m;
            }
        }
        // Covariance (d × d).
        let denom = (n.max(2) - 1) as f64;
        let mut cov = x.transpose().matmul(&x);
        cov.map_inplace(|v| v / denom);

        let mut components = Matrix::zeros(k, d);
        let mut explained = Vec::with_capacity(k);
        let mut work = cov;
        for comp in 0..k {
            // Deterministic start vector.
            let mut v: Vec<f64> = (0..d)
                .map(|i| ((i + comp + 1) as f64).sin() + 0.5)
                .collect();
            normalize(&mut v);
            let mut eig = 0.0;
            for _ in 0..200 {
                let mut nv = vec![0.0; d];
                for (r, slot) in nv.iter_mut().enumerate() {
                    let row = work.row(r);
                    *slot = row.iter().zip(&v).map(|(a, b)| a * b).sum();
                }
                let norm = nv.iter().map(|a| a * a).sum::<f64>().sqrt();
                if norm < 1e-18 {
                    break;
                }
                for x in nv.iter_mut() {
                    *x /= norm;
                }
                let delta: f64 = nv.iter().zip(&v).map(|(a, b)| (a - b).abs()).sum();
                v = nv;
                eig = norm;
                if delta < 1e-12 {
                    break;
                }
            }
            components.row_mut(comp).copy_from_slice(&v);
            explained.push(eig.max(0.0));
            // Deflate: work -= eig * v vᵀ.
            for r in 0..d {
                for c in 0..d {
                    work[(r, c)] -= eig * v[r] * v[c];
                }
            }
        }
        Pca {
            mean,
            components,
            explained_variance: explained,
        }
    }

    /// Project row-sample data into component space (`n × k`).
    pub fn transform(&self, data: &Matrix) -> Matrix {
        let n = data.rows();
        let mut x = data.clone();
        for r in 0..n {
            for (v, m) in x.row_mut(r).iter_mut().zip(&self.mean) {
                *v -= m;
            }
        }
        x.matmul(&self.components.transpose())
    }

    /// Fraction of total variance captured by the fitted components,
    /// relative to the sum of fitted eigenvalues plus any residual the
    /// caller tracks (here: of the fitted ones only, in [0, 1] per entry).
    pub fn explained_ratio(&self) -> Vec<f64> {
        let total: f64 = self.explained_variance.iter().sum();
        if total < 1e-24 {
            return vec![0.0; self.explained_variance.len()];
        }
        self.explained_variance.iter().map(|v| v / total).collect()
    }
}

fn normalize(v: &mut [f64]) {
    let n = v.iter().map(|a| a * a).sum::<f64>().sqrt();
    if n > 1e-18 {
        for x in v.iter_mut() {
            *x /= n;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_component_aligns_with_dominant_axis() {
        // Data stretched along (1, 1)/√2.
        let data = Matrix::from_fn(50, 2, |r, c| {
            let t = r as f64 - 25.0;
            let noise = ((r * 7 + c) % 5) as f64 * 0.05;
            t + if c == 0 { noise } else { -noise }
        });
        let pca = Pca::fit(&data, 2);
        let c0 = pca.components.row(0);
        let alignment = (c0[0] * c0[1]).abs(); // both ≈ 1/√2 → product ≈ 0.5
        assert!((alignment - 0.5).abs() < 0.05, "components {:?}", c0);
        assert!(pca.explained_variance[0] > pca.explained_variance[1] * 10.0);
    }

    #[test]
    fn components_are_orthonormal() {
        let data = Matrix::from_fn(40, 4, |r, c| ((r * (c + 2) * 13) % 17) as f64);
        let pca = Pca::fit(&data, 3);
        for i in 0..3 {
            let ri = pca.components.row(i);
            let norm: f64 = ri.iter().map(|v| v * v).sum::<f64>().sqrt();
            assert!((norm - 1.0).abs() < 1e-6, "component {i} norm {norm}");
            for j in 0..i {
                let dot: f64 = ri
                    .iter()
                    .zip(pca.components.row(j))
                    .map(|(a, b)| a * b)
                    .sum();
                assert!(dot.abs() < 1e-6, "components {i},{j} not orthogonal: {dot}");
            }
        }
    }

    #[test]
    fn transform_centers_data() {
        let data = Matrix::from_fn(30, 3, |r, c| r as f64 + c as f64 * 100.0);
        let pca = Pca::fit(&data, 2);
        let proj = pca.transform(&data);
        assert_eq!(proj.shape(), (30, 2));
        // Projection of the mean point is the origin.
        let mean_row = Matrix::row_vector(&pca.mean);
        let pm = pca.transform(&mean_row);
        assert!(pm.as_slice().iter().all(|v| v.abs() < 1e-9));
    }

    #[test]
    fn explained_ratio_sums_to_one() {
        let data = Matrix::from_fn(25, 5, |r, c| ((r + 1) * (c + 1)) as f64 % 7.0);
        let pca = Pca::fit(&data, 4);
        let ratios = pca.explained_ratio();
        assert!((ratios.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        // Descending order.
        for w in ratios.windows(2) {
            assert!(w[0] >= w[1] - 1e-9);
        }
    }
}
