//! DBSCAN density clustering (used by DeepHYDRA-style pipelines and by the
//! labeling toolkit's built-in reference clusterers).

use ns_linalg::vecops;

/// Label assigned to noise points.
pub const NOISE: isize = -1;

/// DBSCAN over row-vector data with Euclidean distance.
///
/// Returns per-point labels: `>= 0` for cluster ids, [`NOISE`] for noise.
pub fn dbscan(data: &[Vec<f64>], eps: f64, min_pts: usize) -> Vec<isize> {
    let n = data.len();
    let mut labels = vec![isize::MIN; n]; // MIN = unvisited
    let eps_sq = eps * eps;
    let neighbours = |i: usize| -> Vec<usize> {
        (0..n)
            .filter(|&j| vecops::euclidean_sq(&data[i], &data[j]) <= eps_sq)
            .collect()
    };
    let mut cluster: isize = -1;
    for i in 0..n {
        if labels[i] != isize::MIN {
            continue;
        }
        let nbrs = neighbours(i);
        if nbrs.len() < min_pts {
            labels[i] = NOISE;
            continue;
        }
        cluster += 1;
        labels[i] = cluster;
        let mut queue: Vec<usize> = nbrs;
        let mut qi = 0;
        while qi < queue.len() {
            let q = queue[qi];
            qi += 1;
            if labels[q] == NOISE {
                labels[q] = cluster; // border point
            }
            if labels[q] != isize::MIN {
                continue;
            }
            labels[q] = cluster;
            let qn = neighbours(q);
            if qn.len() >= min_pts {
                queue.extend(qn);
            }
        }
    }
    labels
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_blobs_with_noise() {
        let mut data: Vec<Vec<f64>> = Vec::new();
        for (cx, cy) in [(0.0, 0.0), (10.0, 10.0)] {
            for i in 0..6 {
                data.push(vec![cx + (i % 3) as f64 * 0.2, cy + (i / 3) as f64 * 0.2]);
            }
        }
        data.push(vec![100.0, -100.0]); // isolated noise point
        let labels = dbscan(&data, 1.0, 3);
        assert_eq!(labels[12], NOISE);
        let a = labels[0];
        let b = labels[6];
        assert!(a >= 0 && b >= 0 && a != b);
        assert!(labels[..6].iter().all(|&l| l == a));
        assert!(labels[6..12].iter().all(|&l| l == b));
    }

    #[test]
    fn everything_noise_when_eps_tiny() {
        let data: Vec<Vec<f64>> = (0..5).map(|i| vec![i as f64 * 10.0]).collect();
        let labels = dbscan(&data, 0.001, 2);
        assert!(labels.iter().all(|&l| l == NOISE));
    }

    #[test]
    fn one_cluster_when_eps_huge() {
        let data: Vec<Vec<f64>> = (0..5).map(|i| vec![i as f64]).collect();
        let labels = dbscan(&data, 100.0, 2);
        assert!(labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn border_points_join_cluster() {
        // Core chain plus a border point with only one neighbour.
        let data = vec![
            vec![0.0],
            vec![0.5],
            vec![1.0],
            vec![1.9], // border: within eps of [1.0] only
        ];
        let labels = dbscan(&data, 1.0, 3);
        assert_eq!(labels[3], labels[2]);
    }

    #[test]
    fn empty_input() {
        assert!(dbscan(&[], 1.0, 3).is_empty());
    }
}
