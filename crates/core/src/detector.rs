//! The NodeSentry detector: offline training (preprocess → coarse
//! clustering → per-cluster shared models) and online detection (pattern
//! matching → reconstruction scoring → dynamic k-sigma thresholding),
//! plus the incremental-update path and the C1–C5 ablation variants.

use crate::coarse::{self, ClusterModel, CoarseConfig};
use crate::preprocess::{segment_at_transitions, segment_equal_length, Preprocessor, Segment};
use crate::sharing::{train_cluster_model, SharedModel, SharingConfig};
use ns_eval::threshold::{ksigma_detect, KSigmaConfig};
use ns_linalg::matrix::Matrix;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Ablation variants (paper §4.4).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Variant {
    /// The full NodeSentry pipeline.
    Full,
    /// C1: no coarse clustering — one model for everything.
    C1SingleModel,
    /// C2: random segment groups instead of clusters (same model count).
    C2RandomGroups,
    /// C3: equal-length chopping instead of job-based segmentation.
    C3EqualLength,
    /// C4: no between-segment differentiation in the positional encoding.
    C4NoSegmentPe,
    /// C5: dense FFN instead of the sparse MoE layer.
    C5DenseFfn,
}

impl Variant {
    pub fn name(self) -> &'static str {
        match self {
            Variant::Full => "NodeSentry",
            Variant::C1SingleModel => "C1",
            Variant::C2RandomGroups => "C2",
            Variant::C3EqualLength => "C3",
            Variant::C4NoSegmentPe => "C4",
            Variant::C5DenseFfn => "C5",
        }
    }
}

/// Full configuration.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct NodeSentryConfig {
    pub coarse: CoarseConfig,
    pub sharing: SharingConfig,
    pub variant: Variant,
    /// Minimum segment length kept by job-based segmentation.
    pub min_segment_len: usize,
    /// Post-transition steps used for online pattern matching (the
    /// "period" of Fig. 6(e); 1 hour at 30 s sampling = 120 steps).
    pub match_period: usize,
    /// Dynamic threshold configuration (window = Fig. 6(f)).
    pub threshold: KSigmaConfig,
    /// Moving-average smoothing (points) applied to scores before the
    /// threshold; real anomalies persist across sampling points.
    pub smooth_window: usize,
    /// How many randomly sampled nodes the preprocessor statistics are
    /// fitted on (bounds memory on wide clusters).
    pub fit_sample_nodes: usize,
    pub seed: u64,
}

impl Default for NodeSentryConfig {
    fn default() -> Self {
        Self {
            coarse: CoarseConfig::default(),
            sharing: SharingConfig::default(),
            variant: Variant::Full,
            min_segment_len: 8,
            match_period: 120,
            threshold: KSigmaConfig::default(),
            smooth_window: 5,
            fit_sample_nodes: 4,
            seed: 17,
        }
    }
}

impl NodeSentryConfig {
    /// Apply a variant's modifications to the base config.
    pub fn with_variant(mut self, v: Variant) -> Self {
        self.variant = v;
        match v {
            Variant::Full => {}
            Variant::C1SingleModel => self.coarse.force_k = Some(1),
            Variant::C2RandomGroups => {}
            Variant::C3EqualLength => {}
            Variant::C4NoSegmentPe => self.sharing.segment_aware_pe = false,
            Variant::C5DenseFfn => self.sharing.dense_ffn = true,
        }
        self
    }
}

/// Per-node training input: the raw metric matrix over the full horizon
/// and the job transition steps (from the scheduler's sacct records).
pub struct NodeInput {
    pub raw: Matrix,
    pub transitions: Vec<usize>,
}

/// Streaming access to per-node raw telemetry. Wide clusters cannot hold
/// every node's raw matrix in memory at once (D1: 3,014 metrics per
/// node), so training pulls nodes through this interface one at a time.
pub trait NodeSource {
    fn n_nodes(&self) -> usize;
    /// Raw `T × M` matrix for one node over the full horizon.
    fn raw(&self, node: usize) -> Matrix;
    /// Job-transition steps for one node.
    fn transitions(&self, node: usize) -> Vec<usize>;
}

impl NodeSource for [NodeInput] {
    fn n_nodes(&self) -> usize {
        self.len()
    }

    fn raw(&self, node: usize) -> Matrix {
        self[node].raw.clone()
    }

    fn transitions(&self, node: usize) -> Vec<usize> {
        self[node].transitions.clone()
    }
}

/// The trained detector.
#[derive(Serialize, Deserialize)]
pub struct NodeSentry {
    pub cfg: NodeSentryConfig,
    pub preprocessor: Preprocessor,
    pub cluster_model: ClusterModel,
    pub shared_models: Vec<SharedModel>,
    /// Training segments retained for diagnostics / incremental updates.
    pub train_segments: Vec<Segment>,
}

impl NodeSentry {
    /// Offline training phase (§3.1): fit preprocessing on the training
    /// split, segment every node, cluster the segments, and train one
    /// shared model per cluster.
    ///
    /// `groups` are the semantic group ids per raw metric; `split` is the
    /// first test step (training uses `[0, split)`).
    pub fn fit(cfg: NodeSentryConfig, nodes: &[NodeInput], groups: &[usize], split: usize) -> Self {
        Self::fit_from_source(cfg, nodes, groups, split)
    }

    /// Streaming variant of [`NodeSentry::fit`]: raw node matrices are
    /// pulled one at a time, preprocessed, reduced to segments and
    /// dropped — the full raw tensor never exists in memory. Per-node
    /// preprocessing runs in parallel; segment order (and therefore the
    /// trained model) is independent of the thread count.
    pub fn fit_from_source<S: NodeSource + ?Sized + Sync>(
        mut cfg: NodeSentryConfig,
        nodes: &S,
        groups: &[usize],
        split: usize,
    ) -> Self {
        assert!(nodes.n_nodes() > 0, "need at least one node");
        ns_obs::span!("fit");
        // Build the online matching library at probe length so short
        // post-transition probes are comparable to it (§3.5).
        cfg.coarse.probe_len = Some(cfg.match_period);
        // 1. Preprocessing statistics from a sample of nodes.
        let pre_span = ns_obs::trace::span("preprocess");
        let sample_n = cfg.fit_sample_nodes.clamp(1, nodes.n_nodes());
        let sample: Vec<Matrix> = (0..sample_n)
            .map(|i| {
                let raw = nodes.raw(i);
                let upto = split.min(raw.rows());
                raw.slice_rows(0, upto)
            })
            .collect();
        let stacked = Matrix::vstack(&sample.iter().collect::<Vec<_>>());
        drop(sample);
        let preprocessor = Preprocessor::fit(&stacked, groups, 0.99, 0.05);
        drop(stacked);
        drop(pre_span);

        // 2. Preprocess + segment each node's training split, in
        // parallel across nodes. The per-node results are collected in
        // node order, so the flattened segment list — and everything
        // downstream of it — is identical at any thread count.
        let seg_span = ns_obs::trace::span("segment");
        let per_node: Vec<Vec<Segment>> = {
            use rayon::prelude::*;
            (0..nodes.n_nodes())
                .into_par_iter()
                .map(|node_id| {
                    let raw = nodes.raw(node_id);
                    let upto = split.min(raw.rows());
                    let train_raw = raw.slice_rows(0, upto);
                    drop(raw);
                    let processed = preprocessor.transform(&train_raw);
                    match cfg.variant {
                        Variant::C3EqualLength => {
                            segment_equal_length(node_id, &processed, cfg.sharing.window * 4)
                        }
                        _ => {
                            let transitions: Vec<usize> = nodes
                                .transitions(node_id)
                                .into_iter()
                                .filter(|&t| t < upto)
                                .collect();
                            segment_at_transitions(
                                node_id,
                                &processed,
                                &transitions,
                                cfg.min_segment_len,
                            )
                        }
                    }
                })
                .collect()
        };
        let train_segments: Vec<Segment> = per_node.into_iter().flatten().collect();
        assert!(!train_segments.is_empty(), "no usable training segments");
        drop(seg_span);

        // 3. Coarse clustering.
        let coarse_span = ns_obs::trace::span("coarse");
        let (mut cluster_model, feats) = coarse::fit(&cfg.coarse, &train_segments);
        if cfg.variant == Variant::C2RandomGroups {
            randomize_groups(
                &mut cluster_model,
                &feats,
                &train_segments,
                &cfg.coarse,
                cfg.seed,
            );
        }
        drop(coarse_span);

        // 4. One shared model per cluster (§3.4).
        let fine_span = ns_obs::trace::span("fine");
        let shared_models: Vec<SharedModel> = (0..cluster_model.k())
            .map(|c| train_cluster_model(&cfg.sharing, c, &cluster_model, &train_segments))
            .collect();
        drop(fine_span);

        NodeSentry {
            cfg,
            preprocessor,
            cluster_model,
            shared_models,
            train_segments,
        }
    }

    /// Number of clusters / shared models.
    pub fn n_clusters(&self) -> usize {
        self.shared_models.len()
    }

    /// Online scoring of one node over `[split, horizon)` (§3.5): the
    /// node's test span is segmented at its transitions; each segment's
    /// first `match_period` steps are feature-matched against the cluster
    /// library and the winning shared model scores the whole segment.
    ///
    /// Returns `(scores, matched_cluster_per_segment)` where scores align
    /// with steps `split..raw.rows()`.
    pub fn score_node(
        &self,
        raw: &Matrix,
        transitions: &[usize],
        split: usize,
    ) -> (Vec<f64>, Vec<(usize, usize, usize)>) {
        let horizon = raw.rows();
        if split >= horizon {
            return (Vec::new(), Vec::new());
        }
        ns_obs::span!("score");
        let processed = {
            ns_obs::span!("preprocess");
            self.preprocessor.transform(raw)
        };
        let test = processed.slice_rows(split, horizon);
        let local_transitions: Vec<usize> = transitions
            .iter()
            .filter(|&&t| t > split && t < horizon)
            .map(|&t| t - split)
            .collect();
        let segs = segment_at_transitions(0, &test, &local_transitions, 1);
        let mut scores = vec![0.0f64; horizon - split];
        let mut matches = Vec::with_capacity(segs.len());
        for seg in &segs {
            let probe_len = self.cfg.match_period.clamp(1, seg.len());
            let (cluster, _dist) = {
                ns_obs::span!("match");
                let probe = seg.data.slice_rows(0, probe_len);
                let feat = coarse::segment_features(&self.cfg.coarse, &probe);
                self.cluster_model.match_pattern(&feat)
            };
            let model = &self.shared_models[cluster.min(self.shared_models.len() - 1)];
            let model_span = ns_obs::trace::span("model");
            let mut seg_scores = model.score_series(&seg.data);
            // Per-segment baseline normalization: the matched probe
            // period defines the segment's own "normal" reconstruction
            // level, so segments whose pattern generalizes less well
            // don't drown genuinely anomalous stretches elsewhere. The
            // floor keeps well-reconstructed segments on the calibrated
            // scale.
            let baseline = {
                let mut head: Vec<f64> = seg_scores[..probe_len].to_vec();
                head.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
                ns_linalg::stats::quantile_sorted(&head, 0.5).max(1.0)
            };
            for v in seg_scores.iter_mut() {
                *v /= baseline;
            }
            for (k, v) in seg_scores.into_iter().enumerate() {
                scores[seg.start + k] = v;
            }
            drop(model_span);
            matches.push((seg.start + split, seg.end + split, cluster));
        }
        (scores, matches)
    }

    /// Full online detection: scores → smoothing → sliding k-sigma
    /// threshold.
    pub fn detect_node(&self, raw: &Matrix, transitions: &[usize], split: usize) -> Vec<bool> {
        let (scores, _) = self.score_node(raw, transitions, split);
        let smoothed = ns_eval::threshold::smooth_scores(&scores, self.cfg.smooth_window);
        ksigma_detect(&smoothed, &self.cfg.threshold)
    }

    /// Incremental update with a new (already preprocessed) segment
    /// (§3.5): matched patterns fine-tune the existing shared model and
    /// nudge its centroid; unmatched patterns spawn a new cluster and a
    /// freshly trained model.
    ///
    /// Returns `(cluster_id, was_new)`.
    pub fn incremental_update(
        &mut self,
        segment: &Matrix,
        fine_tune_epochs: usize,
    ) -> (usize, bool) {
        let probe_len = self.cfg.match_period.clamp(1, segment.rows());
        let feat = coarse::segment_features(&self.cfg.coarse, &segment.slice_rows(0, probe_len));
        let (cluster, dist) = self.cluster_model.match_pattern(&feat);
        if self.cluster_model.is_match(dist) {
            self.cluster_model.refine_centroid(cluster, &feat, 0.1);
            let refs = [segment];
            self.shared_models[cluster].fit_windows(&refs, fine_tune_epochs);
            (cluster, false)
        } else {
            let new_id = self.cluster_model.add_cluster(&feat);
            let refs = [segment];
            let mut cfg = self.cfg.sharing.clone();
            cfg.seed ^= (new_id as u64) << 12;
            self.shared_models.push(SharedModel::train(&cfg, &refs));
            (new_id, true)
        }
    }

    /// Preprocess a raw slice (public for examples / deployment loops).
    pub fn preprocess(&self, raw: &Matrix) -> Matrix {
        self.preprocessor.transform(raw)
    }

    /// Serialise the full trained detector (preprocessing statistics,
    /// cluster library, every shared model's weights) to JSON — the
    /// artifact's `model_dir` role. `include_segments: false` drops the
    /// retained training segments, which deployment does not need.
    pub fn to_json(&self, include_segments: bool) -> serde_json::Result<String> {
        if include_segments {
            serde_json::to_string(self)
        } else {
            let slim = NodeSentry {
                cfg: self.cfg.clone(),
                preprocessor: self.preprocessor.clone(),
                cluster_model: self.cluster_model.clone(),
                shared_models: Vec::new(),
                train_segments: Vec::new(),
            };
            // Serialise the models by reference to avoid cloning every
            // ParamStore.
            #[derive(serde::Serialize)]
            struct OnDisk<'a> {
                detector: &'a NodeSentry,
                models: &'a [SharedModel],
            }
            serde_json::to_string(&OnDisk {
                detector: &slim,
                models: &self.shared_models,
            })
        }
    }

    /// A stable 64-bit digest of the deployed model: preprocessing
    /// statistics, cluster library, and every shared model's weights
    /// (training segments excluded — deployment state does not depend on
    /// them). Engine snapshots embed this so a restore against a
    /// different model is rejected instead of silently producing
    /// non-equivalent verdicts. FNV-1a over the canonical slim JSON
    /// serialization, which is deterministic (insertion-ordered objects,
    /// exact float formatting).
    pub fn fingerprint(&self) -> u64 {
        let json = self
            .to_json(false)
            .unwrap_or_else(|e| format!("unserializable:{e}"));
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for &b in json.as_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Restore a detector saved by [`NodeSentry::to_json`].
    pub fn from_json(json: &str) -> serde_json::Result<NodeSentry> {
        // Try the slim envelope first, then the full layout.
        #[derive(serde::Deserialize)]
        struct OnDisk {
            detector: NodeSentry,
            models: Vec<SharedModel>,
        }
        if let Ok(d) = serde_json::from_str::<OnDisk>(json) {
            return Ok(NodeSentry {
                shared_models: d.models,
                ..d.detector
            });
        }
        serde_json::from_str(json)
    }
}

/// C2: keep the cluster count but assign segments to groups at random,
/// recomputing centroids (full and probe space) and member distances.
fn randomize_groups(
    model: &mut ClusterModel,
    feats: &[Vec<f64>],
    segments: &[Segment],
    coarse_cfg: &CoarseConfig,
    seed: u64,
) {
    let k = model.k().max(1);
    let n = model.labels.len();
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xC2);
    // Ensure every group is non-empty by dealing a shuffled deck.
    let mut labels: Vec<usize> = (0..n).map(|i| i % k).collect();
    labels.shuffle(&mut rng);

    let centroid_of = |z: &[Vec<f64>], labels: &[usize]| -> Vec<Vec<f64>> {
        let dim = z.first().map(|f| f.len()).unwrap_or(0);
        let mut centroids = vec![vec![0.0; dim]; k];
        let mut counts = vec![0usize; k];
        for (f, &l) in z.iter().zip(labels) {
            counts[l] += 1;
            for (c, v) in centroids[l].iter_mut().zip(f) {
                *c += v;
            }
        }
        for (cen, &cnt) in centroids.iter_mut().zip(&counts) {
            for v in cen.iter_mut() {
                *v /= cnt.max(1) as f64;
            }
        }
        centroids
    };

    let zfeats: Vec<Vec<f64>> = feats.iter().map(|f| model.standardize(f)).collect();
    let centroids = centroid_of(&zfeats, &labels);
    model.member_distances = zfeats
        .iter()
        .zip(&labels)
        .map(|(f, &l)| ns_linalg::vecops::euclidean(f, &centroids[l]))
        .collect();
    // Probe-space library under the random grouping.
    let probe_z: Vec<Vec<f64>> = segments
        .iter()
        .map(|s| {
            let take = coarse_cfg
                .probe_len
                .unwrap_or(s.data.rows())
                .clamp(1, s.data.rows());
            let f = coarse::segment_features(coarse_cfg, &s.data.slice_rows(0, take));
            model.standardize_probe(&f)
        })
        .collect();
    model.probe_centroids = Matrix::from_rows(&centroid_of(&probe_z, &labels));
    model.labels = labels;
    model.centroids = centroids;
}

#[cfg(test)]
mod tests {
    use super::*;
    use ns_features::FeatureCatalog;

    /// A tiny two-pattern synthetic cluster: nodes alternate between a
    /// smooth job and a sawtooth job; raw metrics are 3 correlated copies
    /// of 2 latent signals.
    fn synthetic_nodes(horizon: usize) -> (Vec<NodeInput>, Vec<usize>, usize) {
        let split = horizon * 6 / 10;
        let seg_len = 60usize;
        let nodes: Vec<NodeInput> = (0..3)
            .map(|node| {
                let raw = Matrix::from_fn(horizon, 6, |t, m| {
                    let seg = t / seg_len;
                    let latent = if (seg + node).is_multiple_of(2) {
                        ((t % seg_len) as f64 * 0.2).sin()
                    } else {
                        ((t % 7) as f64) * 0.4 - 1.0
                    };
                    let latent2 = if (seg + node).is_multiple_of(2) {
                        0.2
                    } else {
                        0.9
                    };
                    let base = if m < 3 { latent } else { latent2 };
                    base * (1.0 + m as f64 * 0.05) + m as f64 * 0.01
                });
                let transitions: Vec<usize> = (1..horizon / seg_len).map(|k| k * seg_len).collect();
                NodeInput { raw, transitions }
            })
            .collect();
        let groups = vec![0, 0, 0, 1, 1, 1];
        (nodes, groups, split)
    }

    fn quick_cfg() -> NodeSentryConfig {
        NodeSentryConfig {
            coarse: CoarseConfig {
                catalog: FeatureCatalog::compact(),
                k_max: 6,
                ..Default::default()
            },
            sharing: SharingConfig {
                window: 12,
                stride: 12,
                d_model: 12,
                n_heads: 2,
                n_layers: 1,
                hidden: 24,
                n_experts: 2,
                epochs: 8,
                lr: 3e-3,
                batch: 16,
                k_nearest: 4,
                ..Default::default()
            },
            match_period: 20,
            threshold: KSigmaConfig {
                window: 30,
                k: 3.0,
                ..Default::default()
            },
            min_segment_len: 8,
            ..Default::default()
        }
    }

    #[test]
    fn fit_discovers_the_two_patterns() {
        let (nodes, groups, split) = synthetic_nodes(600);
        let ns = NodeSentry::fit(quick_cfg(), &nodes, &groups, split);
        assert_eq!(
            ns.n_clusters(),
            2,
            "silhouette={}",
            ns.cluster_model.silhouette
        );
        assert!(ns.preprocessor.out_dim() >= 1);
        assert!(!ns.train_segments.is_empty());
    }

    #[test]
    fn detection_flags_injected_level_shift() {
        let (mut nodes, groups, split) = synthetic_nodes(600);
        let ns = NodeSentry::fit(quick_cfg(), &nodes, &groups, split);
        // Inject an anomaly into node 0's test span.
        let (a_start, a_end) = (split + 80, split + 110);
        for t in a_start..a_end {
            for m in 0..6 {
                nodes[0].raw[(t, m)] += 4.0;
            }
        }
        let (scores, matches) = ns.score_node(&nodes[0].raw, &nodes[0].transitions, split);
        assert_eq!(scores.len(), 600 - split);
        assert!(!matches.is_empty());
        let anom_mean: f64 =
            scores[a_start - split..a_end - split].iter().sum::<f64>() / (a_end - a_start) as f64;
        let norm_mean: f64 =
            scores[..a_start - split].iter().sum::<f64>() / (a_start - split) as f64;
        assert!(
            anom_mean > 3.0 * norm_mean,
            "anomaly {anom_mean} vs normal {norm_mean}"
        );
        let pred = ns.detect_node(&nodes[0].raw, &nodes[0].transitions, split);
        let hits = pred[a_start - split..a_end - split]
            .iter()
            .filter(|&&b| b)
            .count();
        assert!(hits > 0, "threshold missed the anomaly entirely");
    }

    #[test]
    fn variants_produce_expected_structure() {
        let (nodes, groups, split) = synthetic_nodes(600);
        let c1 = NodeSentry::fit(
            quick_cfg().with_variant(Variant::C1SingleModel),
            &nodes,
            &groups,
            split,
        );
        assert_eq!(c1.n_clusters(), 1);
        let c5 = NodeSentry::fit(
            quick_cfg().with_variant(Variant::C5DenseFfn),
            &nodes,
            &groups,
            split,
        );
        assert!(c5.shared_models[0].cfg.dense_ffn);
        let c4 = NodeSentry::fit(
            quick_cfg().with_variant(Variant::C4NoSegmentPe),
            &nodes,
            &groups,
            split,
        );
        assert!(!c4.shared_models[0].cfg.segment_aware_pe);
        let c3 = NodeSentry::fit(
            quick_cfg().with_variant(Variant::C3EqualLength),
            &nodes,
            &groups,
            split,
        );
        // Equal-length chopping: all training segments share one length.
        let lens: std::collections::BTreeSet<usize> =
            c3.train_segments.iter().map(|s| s.len()).collect();
        assert!(lens.len() <= 2, "C3 lengths {lens:?}");
    }

    #[test]
    fn c2_randomization_keeps_k_but_scrambles_labels() {
        let (nodes, groups, split) = synthetic_nodes(600);
        let full = NodeSentry::fit(quick_cfg(), &nodes, &groups, split);
        let c2 = NodeSentry::fit(
            quick_cfg().with_variant(Variant::C2RandomGroups),
            &nodes,
            &groups,
            split,
        );
        assert_eq!(full.n_clusters(), c2.n_clusters());
        assert_ne!(full.cluster_model.labels, c2.cluster_model.labels);
        // Every group stays populated.
        for c in 0..c2.n_clusters() {
            assert!(c2.cluster_model.labels.contains(&c));
        }
    }

    #[test]
    fn incremental_update_matched_and_new() {
        let (nodes, groups, split) = synthetic_nodes(600);
        let mut ns = NodeSentry::fit(quick_cfg(), &nodes, &groups, split);
        let k0 = ns.n_clusters();
        // A segment resembling training data → matched, no new cluster.
        let known = ns.train_segments[0].data.clone();
        let (_, was_new) = ns.incremental_update(&known, 2);
        assert!(!was_new);
        assert_eq!(ns.n_clusters(), k0);
        // A wild new pattern → new cluster and model.
        let alien = Matrix::from_fn(60, ns.preprocessor.out_dim(), |t, _| {
            if t % 5 == 0 {
                5.0
            } else {
                -5.0
            }
        });
        let (cid, was_new) = ns.incremental_update(&alien, 2);
        assert!(was_new);
        assert_eq!(cid, k0);
        assert_eq!(ns.n_clusters(), k0 + 1);
    }

    #[test]
    fn save_load_roundtrip_preserves_behaviour() {
        let (nodes, groups, split) = synthetic_nodes(600);
        let ns = NodeSentry::fit(quick_cfg(), &nodes, &groups, split);
        let (scores_before, _) = ns.score_node(&nodes[0].raw, &nodes[0].transitions, split);
        // Slim save (no training segments) must restore identically for
        // scoring purposes.
        let json = ns.to_json(false).unwrap();
        let restored = NodeSentry::from_json(&json).unwrap();
        assert_eq!(restored.n_clusters(), ns.n_clusters());
        assert!(restored.train_segments.is_empty());
        let (scores_after, _) = restored.score_node(&nodes[0].raw, &nodes[0].transitions, split);
        assert_eq!(scores_before.len(), scores_after.len());
        for (a, b) in scores_before.iter().zip(&scores_after) {
            assert!((a - b).abs() < 1e-9, "scores diverged after reload");
        }
        // Full save retains segments.
        let json_full = ns.to_json(true).unwrap();
        let restored_full = NodeSentry::from_json(&json_full).unwrap();
        assert_eq!(restored_full.train_segments.len(), ns.train_segments.len());
    }

    #[test]
    fn scoring_empty_test_window() {
        let (nodes, groups, split) = synthetic_nodes(600);
        let ns = NodeSentry::fit(quick_cfg(), &nodes, &groups, split);
        let (scores, matches) = ns.score_node(&nodes[0].raw, &nodes[0].transitions, 600);
        assert!(scores.is_empty());
        assert!(matches.is_empty());
    }
}
