//! Fine-grained model sharing (paper §3.4): one Transformer+MoE
//! reconstruction model per coarse cluster, trained on the K segments
//! nearest the centroid, with segment-aware positional encoding and a
//! MAC-weighted WMSE loss.

use crate::preprocess::Segment;
use ns_linalg::matrix::Matrix;
use ns_linalg::stats;
use ns_nn::{
    sinusoidal_pe_at, Adam, BlockKind, Graph, ParamStore, ReconstructionTransformer, SessionPool,
    SessionPoolF32, TransformerConfig,
};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Standard normal sample via Box–Muller.
fn gaussian(rng: &mut ChaCha8Rng) -> f64 {
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Offset stride separating segments in the segment-aware positional
/// encoding: windows from segment rank `r` are encoded at positions
/// `r · SEGMENT_PE_STRIDE + relative_in_segment_position`.
pub const SEGMENT_PE_STRIDE: usize = 997;

/// Positions within a segment are encoded *relative* to the segment
/// length, spanning `0..REL_PE_SCALE`: sub-pattern phases scale with job
/// duration, so a phase boundary at 45% of a job lands on the same
/// encoding regardless of how long the job ran.
pub const REL_PE_SCALE: f64 = 512.0;

/// Hyperparameters of the shared model (defaults follow the paper's
/// artifact description: window 20, batch 50, 3 layers / 3 heads /
/// 3 experts with top-1 gating; epochs are scaled down for CPU training).
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SharingConfig {
    pub window: usize,
    pub stride: usize,
    pub d_model: usize,
    pub n_heads: usize,
    pub n_layers: usize,
    pub hidden: usize,
    pub n_experts: usize,
    pub top_k: usize,
    /// Ablation C5: replace the sparse MoE with a dense FFN.
    pub dense_ffn: bool,
    /// Ablation C4 (off): drop the between-segment PE differentiation.
    pub segment_aware_pe: bool,
    pub epochs: usize,
    pub lr: f64,
    pub batch: usize,
    /// K segments nearest the centroid used for training (§3.4).
    pub k_nearest: usize,
    /// Denoising augmentation: std of Gaussian noise added to training
    /// inputs (targets stay clean). Makes the model tolerant of benign
    /// per-job intensity jitter without dulling real anomalies.
    pub noise_aug: f64,
    pub seed: u64,
}

impl Default for SharingConfig {
    fn default() -> Self {
        Self {
            window: 20,
            stride: 10,
            d_model: 36,
            n_heads: 3,
            n_layers: 3,
            hidden: 72,
            n_experts: 3,
            top_k: 1,
            dense_ffn: false,
            segment_aware_pe: true,
            epochs: 28,
            lr: 2e-3,
            batch: 50,
            k_nearest: 10,
            noise_aug: 0.08,
            seed: 1,
        }
    }
}

/// A training window: data slice plus its positional-encoding table.
#[derive(Clone, Debug)]
struct TrainWindow {
    data: Matrix,
    pe: Matrix,
}

/// One cluster's shared reconstruction model.
#[derive(Serialize, Deserialize)]
pub struct SharedModel {
    pub params: ParamStore,
    pub model: ReconstructionTransformer,
    /// WMSE weights per metric (Eq. 5), derived from per-cluster MAC
    /// (Eq. 6): stable metrics weigh more, so deviations on them score
    /// higher.
    pub weights: Vec<f64>,
    pub cfg: SharingConfig,
    /// Mean training loss per epoch.
    pub loss_history: Vec<f64>,
    /// Mean / std of per-point raw scores over the training segments,
    /// used to express online scores in calibrated units so different
    /// clusters' models are directly comparable on one node's timeline.
    pub score_mean: f64,
    pub score_std: f64,
    /// Pool of warm tape-free inference sessions for the scoring fast
    /// path. Pure cache: serialized as null, cloned/deserialized empty.
    pub infer: SessionPool,
    /// Pool of warm f32 inference sessions for the opt-in precision
    /// tier. Pure cache like `infer` (pooled sessions keep prebaked f32
    /// weight copies warm, invalidated by the store version on use);
    /// serialized as null, cloned/deserialized empty.
    pub infer32: SessionPoolF32,
}

/// Compute WMSE weights from Mean Absolute Change over the cluster's
/// training data: `w_i ∝ 1 / (MAC_i + ε)`, normalised to mean 1.
pub fn mac_weights(segments: &[&Matrix]) -> Vec<f64> {
    assert!(!segments.is_empty());
    let m = segments[0].cols();
    let mut mac = vec![0.0f64; m];
    for (j, slot) in mac.iter_mut().enumerate() {
        let mut acc = 0.0;
        let mut cnt = 0usize;
        for seg in segments {
            let col = seg.col(j);
            acc += stats::mean_abs_change(&col) * (col.len().saturating_sub(1)) as f64;
            cnt += col.len().saturating_sub(1);
        }
        *slot = if cnt > 0 { acc / cnt as f64 } else { 0.0 };
    }
    let mut w: Vec<f64> = mac.iter().map(|&v| 1.0 / (v + 0.05)).collect();
    let mean = stats::mean(&w);
    if mean > 1e-12 {
        for v in w.iter_mut() {
            *v /= mean;
        }
    }
    w
}

/// Build training windows. `ranks[i]` is segment `i`'s offset rank for
/// the segment-aware positional encoding: windows of segment `i` are
/// encoded at `ranks[i] · SEGMENT_PE_STRIDE + in_segment_position`.
/// Training re-randomizes the ranks every epoch so the model can tell
/// segments apart *within* an epoch yet stays invariant to the base
/// offset — which is what lets a fresh online segment (scored at rank 0)
/// reconstruct as well as the training data.
fn windows_of(segments: &[&Matrix], cfg: &SharingConfig, ranks: &[usize]) -> Vec<TrainWindow> {
    let mut out = Vec::new();
    for (i, seg) in segments.iter().enumerate() {
        let t = seg.rows();
        if t < 4 {
            continue;
        }
        let w = cfg.window.min(t);
        let base = if cfg.segment_aware_pe {
            (ranks.get(i).copied().unwrap_or(0) * SEGMENT_PE_STRIDE) as f64
        } else {
            0.0
        };
        let mut s = 0;
        loop {
            let e = (s + w).min(t);
            let start = e - w; // final window aligns to the segment end
            let positions: Vec<f64> = (start..e)
                .map(|r| base + r as f64 * REL_PE_SCALE / t as f64)
                .collect();
            out.push(TrainWindow {
                data: seg.slice_rows(start, e),
                pe: sinusoidal_pe_at(&positions, cfg.d_model),
            });
            if e == t {
                break;
            }
            s += cfg.stride.max(1);
        }
    }
    out
}

impl SharedModel {
    /// Train a shared model for one cluster from its selected segments.
    pub fn train(cfg: &SharingConfig, segments: &[&Matrix]) -> SharedModel {
        assert!(
            !segments.is_empty(),
            "shared model needs at least one segment"
        );
        let input_dim = segments[0].cols();
        let weights = mac_weights(segments);
        let mut params = ParamStore::new(cfg.seed);
        let model = ReconstructionTransformer::new(
            &mut params,
            TransformerConfig {
                input_dim,
                d_model: cfg.d_model,
                n_heads: cfg.n_heads,
                n_layers: cfg.n_layers,
                hidden: cfg.hidden,
                block: if cfg.dense_ffn {
                    BlockKind::Dense
                } else {
                    BlockKind::Moe {
                        n_experts: cfg.n_experts,
                        top_k: cfg.top_k,
                    }
                },
                aux_weight: 0.01,
            },
        );
        let mut shared = SharedModel {
            params,
            model,
            weights,
            cfg: cfg.clone(),
            loss_history: Vec::new(),
            score_mean: 0.0,
            score_std: 1.0,
            infer: SessionPool::new(),
            infer32: SessionPoolF32::new(),
        };
        shared.fit_windows(segments, cfg.epochs);
        shared.calibrate(segments);
        shared
    }

    /// Recompute the score calibration from reference segments: the
    /// model's raw per-point errors on its own training data define the
    /// "normal" score distribution.
    pub fn calibrate(&mut self, segments: &[&Matrix]) {
        let mut all: Vec<f64> = Vec::new();
        for seg in segments {
            all.extend(self.score_series_raw(seg));
        }
        if all.len() < 4 {
            return;
        }
        let (m, s) = stats::trimmed_mean_std(&all, 0.02);
        self.score_mean = m;
        self.score_std = s.max(1e-6);
    }

    /// (Re-)train on the given segments for `epochs` epochs. Also the
    /// incremental fine-tuning path of §3.5.
    pub fn fit_windows(&mut self, segments: &[&Matrix], epochs: usize) {
        let cfg = self.cfg.clone();
        let w_row = Matrix::row_vector(&self.weights);
        let mut opt = Adam::new(cfg.lr);
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0xF17);
        let mut ranks: Vec<usize> = (0..segments.len()).collect();
        for _epoch in 0..epochs {
            // Fresh segment-offset assignment every epoch (see
            // `windows_of` for why).
            ranks.shuffle(&mut rng);
            let windows = windows_of(segments, &cfg, &ranks);
            if windows.is_empty() {
                return;
            }
            let mut order: Vec<usize> = (0..windows.len()).collect();
            order.shuffle(&mut rng);
            let epoch_key: u64 = rng.gen();
            let mut epoch_loss = 0.0;
            let mut seen = 0usize;
            for chunk in order.chunks(cfg.batch.max(1)) {
                // Data-parallel gradient accumulation: one graph per
                // window on a rayon worker, gradients merged.
                let results: Vec<(f64, ns_nn::GradStore)> = chunk
                    .par_iter()
                    .map(|&wi| {
                        let win = &windows[wi];
                        let mut g = Graph::new(&self.params);
                        // Denoising: perturbed input, clean target.
                        let noisy = if cfg.noise_aug > 0.0 {
                            let mut nrng = ChaCha8Rng::seed_from_u64(
                                epoch_key ^ ((wi as u64) << 24) ^ cfg.seed,
                            );
                            let mut m = win.data.clone();
                            for v in m.as_mut_slice().iter_mut() {
                                *v += cfg.noise_aug * gaussian(&mut nrng);
                            }
                            m
                        } else {
                            win.data.clone()
                        };
                        let x = g.input(noisy);
                        let target = g.input(win.data.clone());
                        let pe = g.input(win.pe.clone());
                        let wn = g.input(w_row.clone());
                        let (recon, aux) = self.model.forward(&mut g, x, pe);
                        let wmse = g.wmse(recon, target, wn);
                        let loss = match aux {
                            Some(a) if self.model.cfg.aux_weight > 0.0 => {
                                let wa = g.scale(a, self.model.cfg.aux_weight);
                                g.add(wmse, wa)
                            }
                            _ => wmse,
                        };
                        (g.scalar(loss), g.backward(loss))
                    })
                    .collect();
                let mut grads = self.params.zero_grads();
                for (l, g) in &results {
                    epoch_loss += l;
                    grads.merge(g);
                }
                seen += results.len();
                grads.scale(1.0 / results.len().max(1) as f64);
                grads.clip_global_norm(5.0);
                opt.step(&mut self.params, &grads);
            }
            self.loss_history.push(epoch_loss / seen.max(1) as f64);
        }
    }

    /// Calibrated per-timestep anomaly scores: raw weighted
    /// reconstruction error, centered and scaled by the model's own
    /// training-error distribution (z-units, clamped at 0 below).
    pub fn score_series(&self, data: &Matrix) -> Vec<f64> {
        self.score_series_raw(data)
            .into_iter()
            .map(|s| ((s - self.score_mean) / self.score_std).max(0.0))
            .collect()
    }

    /// Per-timestep anomaly scores for a (preprocessed) series: weighted
    /// reconstruction error per row, evaluated over tiled windows whose
    /// final window aligns to the series end.
    pub fn score_series_raw(&self, data: &Matrix) -> Vec<f64> {
        let t = data.rows();
        if t == 0 {
            return Vec::new();
        }
        let w = self.cfg.window.min(t).max(1);
        // Window start offsets tiling [0, t).
        let mut starts: Vec<usize> = (0..t.saturating_sub(w - 1)).step_by(w).collect();
        if starts.is_empty() {
            starts.push(0);
        }
        if starts.last().map(|&s| s + w < t).unwrap_or(false) {
            starts.push(t - w);
        }
        if ns_nn::fast_path_enabled() {
            // Tape-free fast path: each rayon worker pulls a warm
            // `InferenceSession` from the pool and scores whole windows
            // without allocating. Bit-identical to the taped branch below
            // (see crates/nn/src/infer.rs); the max-merge runs under a
            // lock in arbitrary order, which is safe because the errors
            // are non-negative finite values and `f64::max` over those is
            // order-independent.
            let scores = std::sync::Mutex::new(vec![0.0f64; t]);
            starts.par_iter().for_each(|&s| {
                let e = (s + w).min(t);
                let mut sess = self.infer.acquire();
                let err = sess.score_window(
                    &self.params,
                    &self.model,
                    data,
                    s,
                    e,
                    |r| r as f64 * REL_PE_SCALE / t as f64,
                    &self.weights,
                );
                {
                    let mut sc = scores.lock().unwrap();
                    for (k, &v) in err.iter().enumerate() {
                        let slot = &mut sc[s + k];
                        *slot = slot.max(v);
                    }
                }
                self.infer.release(sess);
            });
            return scores.into_inner().unwrap();
        }
        let mut scores = vec![0.0f64; t];
        let partial: Vec<(usize, Vec<f64>)> = starts
            .par_iter()
            .map(|&s| {
                let e = (s + w).min(t);
                let win = data.slice_rows(s, e);
                let mut g = Graph::new(&self.params);
                let x = g.input(win.clone());
                let positions: Vec<f64> =
                    (s..e).map(|r| r as f64 * REL_PE_SCALE / t as f64).collect();
                let pe = g.input(sinusoidal_pe_at(&positions, self.cfg.d_model));
                let (recon, _) = self.model.forward(&mut g, x, pe);
                let rv = g.value(recon);
                let per_row: Vec<f64> = (0..win.rows())
                    .map(|r| {
                        win.row(r)
                            .iter()
                            .zip(rv.row(r))
                            .zip(&self.weights)
                            .map(|((a, b), w)| w * (a - b) * (a - b))
                            .sum::<f64>()
                            / win.cols().max(1) as f64
                    })
                    .collect();
                (s, per_row)
            })
            .collect();
        for (s, per_row) in partial {
            for (k, v) in per_row.into_iter().enumerate() {
                // Overlapping tail windows keep the max error.
                let slot = &mut scores[s + k];
                *slot = slot.max(v);
            }
        }
        scores
    }

    /// Calibrated scores for many series through **one batched forward**:
    /// every window of every series is stacked into a single
    /// [`ns_nn::InferenceSession::score_windows_batch`] call (one matmul
    /// per layer over the whole batch), then per-window errors are fanned
    /// back out, max-merged and calibrated per series.
    ///
    /// Bit-identical per series to [`SharedModel::score_series`]: window
    /// tiling is the same, per-window errors are `to_bits`-identical
    /// (`crates/nn/tests/infer_batch_equivalence.rs`), and the max-merge
    /// over non-negative finite errors is order-independent. When the
    /// fast path is disabled this falls back to per-series scoring so the
    /// taped reference stays reachable.
    pub fn score_series_batch(&self, series: &[&Matrix]) -> Vec<Vec<f64>> {
        if !ns_nn::fast_path_enabled() {
            return series.iter().map(|d| self.score_series(d)).collect();
        }
        // The PE position scale depends on each series' own length, so
        // every series gets its own closure (pre-dividing the scale would
        // not be bit-identical to `r * SCALE / t`).
        let pos_fns: Vec<_> = series
            .iter()
            .map(|d| {
                let t = d.rows();
                move |r: usize| r as f64 * REL_PE_SCALE / t as f64
            })
            .collect();
        let mut specs: Vec<ns_nn::WindowSpec> = Vec::new();
        let mut owners: Vec<usize> = Vec::new();
        for (si, data) in series.iter().enumerate() {
            let t = data.rows();
            if t == 0 {
                continue;
            }
            let win = self.cfg.window.min(t).max(1);
            // Same start tiling as `score_series_raw`.
            let mut starts: Vec<usize> = (0..t.saturating_sub(win - 1)).step_by(win).collect();
            if starts.is_empty() {
                starts.push(0);
            }
            if starts.last().map(|&s| s + win < t).unwrap_or(false) {
                starts.push(t - win);
            }
            for s in starts {
                specs.push(ns_nn::WindowSpec {
                    data,
                    start: s,
                    end: (s + win).min(t),
                    pos_of: &pos_fns[si],
                    weights: &self.weights,
                });
                owners.push(si);
            }
        }
        let mut out: Vec<Vec<f64>> = series.iter().map(|d| vec![0.0f64; d.rows()]).collect();
        if !specs.is_empty() {
            let mut sess = self.infer.acquire();
            let errs = sess.score_windows_batch(&self.params, &self.model, &specs);
            let mut off = 0usize;
            for (sp, &si) in specs.iter().zip(&owners) {
                let n = sp.end - sp.start;
                for (k, &v) in errs[off..off + n].iter().enumerate() {
                    // Overlapping tail windows keep the max error.
                    let slot = &mut out[si][sp.start + k];
                    *slot = slot.max(v);
                }
                off += n;
            }
            self.infer.release(sess);
        }
        for sc in &mut out {
            for v in sc.iter_mut() {
                *v = ((*v - self.score_mean) / self.score_std).max(0.0);
            }
        }
        out
    }

    /// f32-tier calibrated per-timestep scores — the precision-tiered
    /// twin of [`SharedModel::score_series`]. Same window tiling, same
    /// max-merge, same f64 calibration arithmetic on the widened errors;
    /// only the forward pass runs in f32 (through a pooled
    /// [`ns_nn::InferenceSessionF32`] with prebaked weights). There is no
    /// taped fallback — the f32 tier has no tape; its reference is the
    /// f64 oracle, compared statistically, not bitwise.
    pub fn score_series_f32(&self, data: &Matrix) -> Vec<f64> {
        self.score_series_raw_f32(data)
            .into_iter()
            .map(|s| ((s - self.score_mean) / self.score_std).max(0.0))
            .collect()
    }

    /// Raw f32-tier per-timestep errors (widened to f64), tiled exactly
    /// as [`SharedModel::score_series_raw`].
    pub fn score_series_raw_f32(&self, data: &Matrix) -> Vec<f64> {
        let t = data.rows();
        if t == 0 {
            return Vec::new();
        }
        let w = self.cfg.window.min(t).max(1);
        let mut starts: Vec<usize> = (0..t.saturating_sub(w - 1)).step_by(w).collect();
        if starts.is_empty() {
            starts.push(0);
        }
        if starts.last().map(|&s| s + w < t).unwrap_or(false) {
            starts.push(t - w);
        }
        let scores = std::sync::Mutex::new(vec![0.0f64; t]);
        starts.par_iter().for_each(|&s| {
            let e = (s + w).min(t);
            let mut sess = self.infer32.acquire();
            let err = sess.score_window(
                &self.params,
                &self.model,
                data,
                s,
                e,
                |r| r as f64 * REL_PE_SCALE / t as f64,
                &self.weights,
            );
            {
                let mut sc = scores.lock().unwrap();
                for (k, &v) in err.iter().enumerate() {
                    let slot = &mut sc[s + k];
                    *slot = slot.max(v);
                }
            }
            self.infer32.release(sess);
        });
        scores.into_inner().unwrap()
    }

    /// f32-tier batched scoring — the precision-tiered twin of
    /// [`SharedModel::score_series_batch`]: same window stacking and
    /// per-series fan-out, one batched f32 forward per sub-batch.
    pub fn score_series_batch_f32(&self, series: &[&Matrix]) -> Vec<Vec<f64>> {
        let pos_fns: Vec<_> = series
            .iter()
            .map(|d| {
                let t = d.rows();
                move |r: usize| r as f64 * REL_PE_SCALE / t as f64
            })
            .collect();
        let mut specs: Vec<ns_nn::WindowSpec> = Vec::new();
        let mut owners: Vec<usize> = Vec::new();
        for (si, data) in series.iter().enumerate() {
            let t = data.rows();
            if t == 0 {
                continue;
            }
            let win = self.cfg.window.min(t).max(1);
            let mut starts: Vec<usize> = (0..t.saturating_sub(win - 1)).step_by(win).collect();
            if starts.is_empty() {
                starts.push(0);
            }
            if starts.last().map(|&s| s + win < t).unwrap_or(false) {
                starts.push(t - win);
            }
            for s in starts {
                specs.push(ns_nn::WindowSpec {
                    data,
                    start: s,
                    end: (s + win).min(t),
                    pos_of: &pos_fns[si],
                    weights: &self.weights,
                });
                owners.push(si);
            }
        }
        let mut out: Vec<Vec<f64>> = series.iter().map(|d| vec![0.0f64; d.rows()]).collect();
        if !specs.is_empty() {
            let mut sess = self.infer32.acquire();
            let errs = sess.score_windows_batch(&self.params, &self.model, &specs);
            let mut off = 0usize;
            for (sp, &si) in specs.iter().zip(&owners) {
                let n = sp.end - sp.start;
                for (k, &v) in errs[off..off + n].iter().enumerate() {
                    let slot = &mut out[si][sp.start + k];
                    *slot = slot.max(v);
                }
                off += n;
            }
            self.infer32.release(sess);
        }
        for sc in &mut out {
            for v in sc.iter_mut() {
                *v = ((*v - self.score_mean) / self.score_std).max(0.0);
            }
        }
        out
    }

    /// Final training loss (None before training).
    pub fn final_loss(&self) -> Option<f64> {
        self.loss_history.last().copied()
    }
}

/// Select training segments for a cluster and train its shared model.
/// `feats` are the raw per-segment features from the coarse stage.
pub fn train_cluster_model(
    cfg: &SharingConfig,
    cluster: usize,
    model: &crate::coarse::ClusterModel,
    segments: &[Segment],
) -> SharedModel {
    ns_obs::span!("train_cluster_model");
    // Selection size scales with cluster population (up to 2K) and is
    // stratified over the distance distribution so large clusters'
    // spread is represented, not just their cores.
    let population = model.labels.iter().filter(|&&l| l == cluster).count();
    let k = cfg.k_nearest.max((2 * cfg.k_nearest).min(population));
    let member_idx = model.spread_members(cluster, k);
    let chosen: Vec<&Matrix> = if member_idx.is_empty() {
        segments.iter().map(|s| &s.data).collect()
    } else {
        member_idx.iter().map(|&i| &segments[i].data).collect()
    };
    let mut c = cfg.clone();
    c.seed = cfg.seed ^ ((cluster as u64) << 8);
    let mut shared = SharedModel::train(&c, &chosen);
    // Calibrate on *all* cluster members (capped), not just the K the
    // model was trained on — the training set's memorized error
    // distribution understates the generalization error on fresh
    // segments of the same pattern.
    let all_members: Vec<&Matrix> = segments
        .iter()
        .enumerate()
        .filter(|(i, _)| model.labels.get(*i) == Some(&cluster))
        .take(40)
        .map(|(_, s)| &s.data)
        .collect();
    if all_members.len() > chosen.len() {
        shared.calibrate(&all_members);
    }
    shared
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pattern_segment(t: usize, m: usize, freq: f64) -> Matrix {
        Matrix::from_fn(t, m, |r, c| ((r as f64) * freq + c as f64 * 0.5).sin())
    }

    fn quick_cfg() -> SharingConfig {
        SharingConfig {
            window: 12,
            stride: 12,
            d_model: 12,
            n_heads: 2,
            n_layers: 1,
            hidden: 24,
            n_experts: 2,
            epochs: 12,
            lr: 3e-3,
            batch: 16,
            ..Default::default()
        }
    }

    #[test]
    fn mac_weights_prefer_stable_metrics() {
        // Metric 0 constant-ish, metric 1 wildly changing.
        let seg = Matrix::from_fn(50, 2, |r, c| {
            if c == 0 {
                1.0
            } else {
                if r % 2 == 0 {
                    3.0
                } else {
                    -3.0
                }
            }
        });
        let w = mac_weights(&[&seg]);
        assert!(w[0] > w[1], "stable metric should weigh more: {w:?}");
        assert!((stats::mean(&w) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn training_reduces_loss() {
        let segs = [pattern_segment(48, 3, 0.3), pattern_segment(60, 3, 0.3)];
        let refs: Vec<&Matrix> = segs.iter().collect();
        let shared = SharedModel::train(&quick_cfg(), &refs);
        let hist = &shared.loss_history;
        assert!(hist.len() >= 2);
        assert!(
            hist.last().unwrap() < &(hist[0] * 0.8),
            "loss did not drop: {hist:?}"
        );
    }

    #[test]
    fn scores_low_on_trained_pattern_high_on_anomaly() {
        let segs = [pattern_segment(48, 3, 0.3), pattern_segment(60, 3, 0.3)];
        let refs: Vec<&Matrix> = segs.iter().collect();
        let mut cfg = quick_cfg();
        cfg.epochs = 25;
        let shared = SharedModel::train(&cfg, &refs);
        let normal = pattern_segment(36, 3, 0.3);
        let normal_scores = shared.score_series(&normal);
        let anomalous = normal.map(|v| v + 3.0);
        let anom_scores = shared.score_series(&anomalous);
        let nm: f64 = normal_scores.iter().sum::<f64>() / normal_scores.len() as f64;
        let am: f64 = anom_scores.iter().sum::<f64>() / anom_scores.len() as f64;
        assert!(am > nm * 3.0, "normal {nm} vs anomalous {am}");
    }

    #[test]
    fn score_series_covers_every_timestep() {
        let segs = [pattern_segment(40, 2, 0.5)];
        let refs: Vec<&Matrix> = segs.iter().collect();
        let mut cfg = quick_cfg();
        cfg.epochs = 2;
        let shared = SharedModel::train(&cfg, &refs);
        for t in [1usize, 5, 12, 13, 29, 40] {
            let series = pattern_segment(t, 2, 0.5);
            let scores = shared.score_series(&series);
            assert_eq!(scores.len(), t, "length {t}");
            assert!(scores.iter().all(|v| v.is_finite()));
        }
        assert!(shared.score_series(&Matrix::zeros(0, 2)).is_empty());
    }

    #[test]
    fn segment_aware_pe_changes_offsets() {
        let segs = [pattern_segment(24, 2, 0.4), pattern_segment(24, 2, 0.4)];
        let refs: Vec<&Matrix> = segs.iter().collect();
        let ranks = [0usize, 1];
        let aware = windows_of(
            &refs,
            &SharingConfig {
                segment_aware_pe: true,
                window: 12,
                stride: 12,
                ..Default::default()
            },
            &ranks,
        );
        let plain = windows_of(
            &refs,
            &SharingConfig {
                segment_aware_pe: false,
                window: 12,
                stride: 12,
                ..Default::default()
            },
            &ranks,
        );
        // With segment-aware PE, windows of segment rank 1 are shifted by
        // the stride; without it every segment starts at position 0, so
        // the PE tables of the two segments' first windows coincide.
        assert_ne!(aware[0].pe, aware[aware.len() / 2].pe);
        assert_eq!(plain[0].pe, plain[plain.len() / 2].pe);
        assert_eq!(aware.len(), plain.len());
    }

    #[test]
    fn fast_path_scores_bit_identical_to_taped() {
        let segs = [pattern_segment(48, 3, 0.3), pattern_segment(60, 3, 0.3)];
        let refs: Vec<&Matrix> = segs.iter().collect();
        let mut cfg = quick_cfg();
        cfg.epochs = 3;
        for dense in [false, true] {
            cfg.dense_ffn = dense;
            let shared = SharedModel::train(&cfg, &refs);
            // Mix of exact-tile, ragged-tail and shorter-than-window series.
            for t in [5usize, 12, 29, 40] {
                let series = pattern_segment(t, 3, 0.45);
                ns_nn::set_fast_path(true);
                let fast = shared.score_series(&series);
                let fast2 = shared.score_series(&series); // warm pool
                ns_nn::set_fast_path(false);
                let taped = shared.score_series(&series);
                ns_nn::set_fast_path(true);
                let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
                assert_eq!(bits(&fast), bits(&taped), "dense={dense} t={t}");
                assert_eq!(bits(&fast), bits(&fast2), "warm pool dense={dense} t={t}");
            }
        }
    }

    #[test]
    fn score_series_batch_bit_identical_per_series() {
        let segs = [pattern_segment(48, 3, 0.3), pattern_segment(60, 3, 0.3)];
        let refs: Vec<&Matrix> = segs.iter().collect();
        let mut cfg = quick_cfg();
        cfg.epochs = 3;
        for dense in [false, true] {
            cfg.dense_ffn = dense;
            let shared = SharedModel::train(&cfg, &refs);
            // Mixed burst: exact-tile, ragged-tail, shorter-than-window
            // and empty series all stacked into one batched forward.
            let series: Vec<Matrix> = [40usize, 5, 12, 29, 0, 17]
                .iter()
                .enumerate()
                .map(|(i, &t)| pattern_segment(t, 3, 0.45 + i as f64 * 0.07))
                .collect();
            let srefs: Vec<&Matrix> = series.iter().collect();
            let batched = shared.score_series_batch(&srefs);
            let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
            assert_eq!(batched.len(), series.len());
            for (i, s) in series.iter().enumerate() {
                let single = shared.score_series(s);
                assert_eq!(
                    bits(&batched[i]),
                    bits(&single),
                    "dense={dense} series {i} (t={})",
                    s.rows()
                );
            }
            // Taped fallback: per-series scoring, still identical.
            ns_nn::set_fast_path(false);
            let taped = shared.score_series_batch(&srefs);
            ns_nn::set_fast_path(true);
            for (i, sc) in taped.iter().enumerate() {
                assert_eq!(bits(sc), bits(&batched[i]), "taped fallback series {i}");
            }
        }
    }

    #[test]
    fn f32_scores_track_f64_and_batch_matches_single() {
        let segs = [pattern_segment(48, 3, 0.3), pattern_segment(60, 3, 0.3)];
        let refs: Vec<&Matrix> = segs.iter().collect();
        let mut cfg = quick_cfg();
        cfg.epochs = 3;
        let shared = SharedModel::train(&cfg, &refs);
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        let series: Vec<Matrix> = [40usize, 5, 12, 29, 0, 17]
            .iter()
            .enumerate()
            .map(|(i, &t)| pattern_segment(t, 3, 0.45 + i as f64 * 0.07))
            .collect();
        let srefs: Vec<&Matrix> = series.iter().collect();
        let batched = shared.score_series_batch_f32(&srefs);
        for (i, s) in series.iter().enumerate() {
            // f32 batched and f32 per-series are the same tier — they
            // must agree to the bit (the tier's own determinism).
            let single = shared.score_series_f32(s);
            assert_eq!(bits(&batched[i]), bits(&single), "series {i}");
            // Across tiers the agreement is statistical: calibrated
            // scores are O(1) z-units, so compare absolutely.
            let f64_scores = shared.score_series(s);
            for (a, b) in single.iter().zip(&f64_scores) {
                assert!(
                    (a - b).abs() < 1e-2,
                    "f32 tier drifted from f64: {a} vs {b} (series {i})"
                );
            }
        }
    }

    #[test]
    fn fine_tuning_adapts_to_new_pattern() {
        let segs = [pattern_segment(48, 2, 0.3)];
        let refs: Vec<&Matrix> = segs.iter().collect();
        let mut cfg = quick_cfg();
        cfg.epochs = 15;
        let mut shared = SharedModel::train(&cfg, &refs);
        let new_pattern = pattern_segment(48, 2, 1.1);
        let before: f64 = shared.score_series(&new_pattern).iter().sum();
        let new_refs = [&new_pattern];
        shared.fit_windows(&new_refs, 15);
        let after: f64 = shared.score_series(&new_pattern).iter().sum();
        assert!(
            after < before,
            "fine-tune did not adapt: {before} → {after}"
        );
    }

    #[test]
    fn short_segments_are_skipped_not_crashed() {
        let tiny = Matrix::from_fn(2, 2, |r, _| r as f64);
        let ok = pattern_segment(30, 2, 0.2);
        let refs: Vec<&Matrix> = vec![&tiny, &ok];
        let mut cfg = quick_cfg();
        cfg.epochs = 1;
        let shared = SharedModel::train(&cfg, &refs);
        assert!(shared.final_loss().is_some());
    }
}
