//! The streaming wire format: one telemetry sample for one node.
//!
//! `Tick` is the unit every online consumer of NodeSentry speaks — the
//! sharded engine in `ns-stream` ingests them, and the fault-injection
//! layer in `ns-telemetry::faults` perturbs sequences of them. It lives
//! here (rather than in either of those crates) so the simulator and the
//! engine can agree on the format without depending on each other.

use serde::{Deserialize, Serialize};

/// One telemetry sample for one node.
///
/// A *clean* feed delivers, per node, exactly one tick per step starting
/// at 0 with no gaps, duplicates, or reordering. A *real* feed does not:
/// collectors drop samples, deliver late and twice, reset counters, skew
/// clocks, and black out whole nodes. The streaming engine is hardened
/// against all of those (see `ns-stream`); the fault model is documented
/// in DESIGN.md §"Fault model & degraded mode".
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Tick {
    pub node: usize,
    /// Global step index over the monitoring horizon.
    pub step: usize,
    /// Raw metric values (may contain NaN for lost samples).
    pub values: Vec<f64>,
    /// Whether a job transition occurs at this step (from the scheduler).
    pub transition: bool,
}
